//! The paper's worked examples, end to end through the facade: the Table 2
//! toy flap, the §3.2 grouping progression, and the §6.1 PIM case.

use syslogdigest_repro::digest::grouping::GroupingConfig;
use syslogdigest_repro::digest::offline::{learn, OfflineConfig};
use syslogdigest_repro::digest::pipeline::digest;
use syslogdigest_repro::model::{sort_batch, ErrorCode, RawMessage, Timestamp};
use syslogdigest_repro::netsim::config::render_all;
use syslogdigest_repro::netsim::scenario::{toy_table2_messages, toy_topology};

/// Training data teaching the Table 2 templates and the LINK<->LINEPROTO
/// rule (the toy's 16 messages are too few to mine from).
fn toy_knowledge() -> syslogdigest_repro::digest::knowledge::DomainKnowledge {
    let topo = toy_topology();
    let configs = render_all(&topo);
    let mut train = Vec::new();
    for i in 0..25i64 {
        for state in ["down", "up"] {
            for (code, detail) in [
                (
                    "LINK-3-UPDOWN",
                    format!("Interface Serial9/{i}.10/1:0, changed state to {state}"),
                ),
                (
                    "LINEPROTO-5-UPDOWN",
                    format!(
                        "Line protocol on Interface Serial9/{i}.10/1:0, changed state to {state}"
                    ),
                ),
            ] {
                train.push(RawMessage::new(
                    Timestamp(i * 40 + i64::from(state == "up")),
                    if i % 2 == 0 { "r1" } else { "r2" },
                    ErrorCode::from(code),
                    detail,
                ));
            }
        }
    }
    sort_batch(&mut train);
    let mut cfg = OfflineConfig::dataset_a();
    cfg.mine.sp_min = 0.0001;
    learn(&configs, &train, &cfg)
}

#[test]
fn table2_toy_digests_to_the_papers_single_event() {
    let k = toy_knowledge();
    let raw = toy_table2_messages();
    let report = digest(&k, &raw, &GroupingConfig::default());
    assert_eq!(
        report.events.len(),
        1,
        "m1..m16 must form one network event"
    );
    let ev = &report.events[0];
    assert_eq!(ev.size(), 16);
    // The paper's presentation line:
    // 2010-01-10 00:00:00|2010-01-10 00:00:31|r1 ... r2 ...|link flap, ...
    let line = ev.format_line();
    assert!(
        line.starts_with("2010-01-10 00:00:00|2010-01-10 00:00:31|"),
        "{line}"
    );
    assert!(line.contains("r1 Interface Serial1/0.10/10:0"), "{line}");
    assert!(line.contains("r2 Interface Serial1/0.20/20:0"), "{line}");
    assert!(line.contains("link flap"), "{line}");
    assert!(line.contains("line protocol flap"), "{line}");
}

#[test]
fn grouping_progression_follows_section_3_2() {
    let k = toy_knowledge();
    let raw = toy_table2_messages();
    // Temporal: {m1,m5,m9,m13}-style groups per (template, location).
    let t = digest(&k, &raw, &GroupingConfig::t_only());
    assert_eq!(t.events.len(), 8);
    // Rule-based adds same-router merges: one group per router.
    let tr = digest(&k, &raw, &GroupingConfig::t_r());
    assert_eq!(tr.events.len(), 2);
    for ev in &tr.events {
        assert_eq!(ev.routers.len(), 1);
        assert_eq!(ev.size(), 8);
    }
    // Cross-router closes the link.
    let trc = digest(&k, &raw, &GroupingConfig::default());
    assert_eq!(trc.events.len(), 1);
    assert_eq!(trc.events[0].routers.len(), 2);
}

#[test]
fn pim_dual_failure_cascade_is_recovered() {
    use rand::SeedableRng;
    // Stage the §6.1 incident on a trained dataset-B network.
    let d = syslogdigest_repro::netsim::Dataset::generate(
        syslogdigest_repro::netsim::DatasetSpec::preset_b().scaled(0.15),
    );
    let k = learn(&d.configs, d.train(), &OfflineConfig::dataset_b());
    let mut sim = syslogdigest_repro::netsim::EventSim::new(&d.topology, &d.grammar);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    sim.pim_neighbor_loss(&mut rng, 0, Timestamp::from_ymd_hms(2009, 12, 21, 9, 0, 0));
    let gt = sim.events[0].id;
    let mut msgs = sim.msgs;
    sort_batch(&mut msgs);

    let report = digest(&k, &msgs, &GroupingConfig::default());
    // The failure cascade must land in few events, and its main event must
    // span several routers and protocols.
    let mut holders: Vec<(usize, usize)> = report
        .events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| {
            let n = e
                .message_idxs
                .iter()
                .filter(|&&ix| msgs[ix].gt_event == Some(gt))
                .count();
            (n > 0).then_some((i, n))
        })
        .collect();
    holders.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    // At this reduced scale the rule base is thin, so the cascade lands
    // in a handful of events rather than exactly one (the full-scale
    // exp_pim_case binary reports the paper-scale picture).
    assert!(
        holders.len() <= 20,
        "cascade fragmented into {} events",
        holders.len()
    );
    // The biggest piece may be the single-router retry series; among the
    // pieces there must be a cross-router one and a multi-protocol one.
    let spans_routers = holders
        .iter()
        .any(|&(i, _)| report.events[i].routers.len() >= 2);
    assert!(spans_routers, "no cascade piece spans multiple routers");
    let multi_code = holders.iter().any(|&(i, _)| {
        let codes: std::collections::HashSet<&str> = report.events[i]
            .message_idxs
            .iter()
            .map(|&ix| msgs[ix].code.as_str())
            .collect();
        codes.len() >= 2
    });
    assert!(multi_code, "no cascade piece holds >= 2 error codes");
}
