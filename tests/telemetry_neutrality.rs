//! Telemetry neutrality (ISSUE 3 satellite S3): observing the pipeline
//! must never change what it produces.
//!
//! * The digest report is **byte-identical** with telemetry on vs off,
//!   with provenance tracing on vs off, and at 1 vs N worker threads —
//!   including the event ids stamped on every event.
//! * Registry counters are not a second bookkeeping system: they must
//!   equal the legacy `IngestStats`/`StreamStats` views exactly, across
//!   the fault-injection matrix.
//! * The Prometheus snapshot of a real run parses under the strict
//!   exposition validator, and provenance records line up 1:1 with the
//!   emitted events.

use std::sync::OnceLock;
use syslogdigest_repro::digest::grouping::GroupingConfig;
use syslogdigest_repro::digest::ingest::FaultTolerantIngest;
use syslogdigest_repro::digest::knowledge::DomainKnowledge;
use syslogdigest_repro::digest::offline::{learn, learn_instrumented, OfflineConfig};
use syslogdigest_repro::digest::pipeline::{digest, digest_instrumented};
use syslogdigest_repro::digest::stream::StreamConfig;
use syslogdigest_repro::model::Parallelism;
use syslogdigest_repro::netsim::{inject, Dataset, DatasetSpec, FaultSpec};
use syslogdigest_repro::telemetry::{validate_exposition, Telemetry};

fn setup() -> &'static (Dataset, DomainKnowledge) {
    static CELL: OnceLock<(Dataset, DomainKnowledge)> = OnceLock::new();
    CELL.get_or_init(|| {
        let d = Dataset::generate(DatasetSpec::preset_a().scaled(0.08));
        let k = learn(&d.configs, d.train(), &OfflineConfig::dataset_a());
        (d, k)
    })
}

/// Full presentation bytes incl. ids — the strictest comparison we have.
fn render(events: &[syslogdigest_repro::digest::NetworkEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!("{} {}\n", e.id, e.format_line()));
    }
    out
}

#[test]
fn batch_digest_is_byte_identical_with_telemetry_on_off_and_traced() {
    let (d, k) = setup();
    let online = d.online();
    let cfg = GroupingConfig::default();

    let plain = digest(k, online, &cfg);
    let (instrumented, no_prov) = digest_instrumented(k, online, &cfg, &Telemetry::new(), false);
    let (traced, prov) = digest_instrumented(k, online, &cfg, &Telemetry::new(), true);

    assert_eq!(render(&plain.events), render(&instrumented.events));
    assert_eq!(render(&plain.events), render(&traced.events));
    assert!(no_prov.is_none());

    // Provenance lines up 1:1 with the emitted events: same ids, same
    // sizes, same router sets.
    let prov = prov.expect("tracing was enabled");
    assert_eq!(prov.len(), traced.events.len());
    for (ev, p) in traced.events.iter().zip(&prov) {
        assert_eq!(ev.id, p.event_id);
        assert_eq!(ev.message_idxs.len(), p.n_messages);
        assert_eq!(ev.routers.len(), p.routers.len());
    }
    // Ids are the 1-based presentation ranks.
    for (i, ev) in traced.events.iter().enumerate() {
        assert_eq!(ev.id, i as u64 + 1);
    }
}

#[test]
fn batch_digest_is_byte_identical_across_thread_counts() {
    let (d, k) = setup();
    let online = d.online();
    let base = GroupingConfig {
        par: Parallelism::with_threads(1),
        ..GroupingConfig::default()
    };
    let tel = Telemetry::new();
    let (one, _) = digest_instrumented(k, online, &base, &tel, false);
    for t in [2, 4] {
        let cfg = GroupingConfig {
            par: Parallelism::with_threads(t),
            ..GroupingConfig::default()
        };
        let (many, _) = digest_instrumented(k, online, &cfg, &Telemetry::new(), false);
        assert_eq!(
            render(&one.events),
            render(&many.events),
            "digest differs at {t} threads"
        );
    }
}

#[test]
fn learned_knowledge_is_byte_identical_with_telemetry_on() {
    let (d, _) = setup();
    let cfg = OfflineConfig::dataset_a();
    let plain = learn(&d.configs, d.train(), &cfg)
        .to_json()
        .expect("knowledge serializes");
    let instrumented = learn_instrumented(&d.configs, d.train(), &cfg, &Telemetry::new())
        .to_json()
        .expect("knowledge serializes");
    assert_eq!(plain, instrumented);
}

#[test]
fn registry_counters_equal_the_legacy_stats_views_across_fault_seeds() {
    let (d, k) = setup();
    let online = d.online();
    let n = online.len().min(4000);
    for seed in [1u64, 2, 3] {
        let (lines, _) = inject(&online[..n], &FaultSpec::bounded(seed));
        let tel = Telemetry::new();
        let mut ing = FaultTolerantIngest::with_telemetry(
            k,
            GroupingConfig::default(),
            StreamConfig::default(),
            30,
            &tel,
        );
        let mut events = Vec::new();
        for line in &lines {
            events.extend(ing.push_line(line));
        }
        // Snapshot before finish(): the final flush moves the counters.
        let stats = ing.stats();
        let snap = tel.snapshot();
        let c = |name: &str| snap.counter(name).unwrap_or(0) as usize;
        assert_eq!(c("ingest.n_lines"), stats.n_lines, "seed {seed}");
        assert_eq!(c("ingest.n_malformed"), stats.n_malformed, "seed {seed}");
        assert_eq!(c("ingest.n_late"), stats.n_late, "seed {seed}");
        assert_eq!(c("ingest.n_duplicate"), stats.n_duplicate, "seed {seed}");
        assert_eq!(c("stream.n_input"), stats.digester.n_input, "seed {seed}");
        assert_eq!(
            c("stream.n_dropped"),
            stats.digester.n_dropped,
            "seed {seed}"
        );
        assert_eq!(
            c("stream.n_force_closed"),
            stats.digester.n_force_closed,
            "seed {seed}"
        );
        assert_eq!(
            c("stream.n_inconsistent"),
            stats.digester.n_inconsistent,
            "seed {seed}"
        );
        // After finish the live registry reflects the final stats view,
        // and every emitted event was counted.
        let (rest, final_stats) = ing.finish();
        events.extend(rest);
        let snap = tel.snapshot();
        assert_eq!(
            snap.counter("stream.n_input").unwrap_or(0) as usize,
            final_stats.digester.n_input,
            "seed {seed}"
        );
        assert_eq!(
            snap.counter("stream.n_events").unwrap_or(0) as usize,
            events.len(),
            "seed {seed}"
        );
    }
}

#[test]
fn streaming_ingest_is_identical_with_telemetry_and_tracing_on() {
    let (d, k) = setup();
    let online = d.online();
    let n = online.len().min(4000);

    let run = |tel: &Telemetry, trace: bool| {
        let mut ing = FaultTolerantIngest::with_telemetry(
            k,
            GroupingConfig::default(),
            StreamConfig::default(),
            30,
            tel,
        );
        ing.set_trace(trace);
        let mut events = Vec::new();
        for m in &online[..n] {
            events.extend(ing.push_message(m.clone()));
        }
        let (rest, _, prov) = ing.finish_traced();
        events.extend(rest);
        (render(&events), events.len(), prov)
    };

    let (off, n_off, _) = run(&Telemetry::disabled(), false);
    let (on, _, _) = run(&Telemetry::new(), false);
    let (traced, _, prov) = run(&Telemetry::new(), true);
    assert_eq!(off, on, "telemetry changed the stream digest");
    assert_eq!(off, traced, "tracing changed the stream digest");
    // Streaming ids are the emission sequence; tracing covers every event.
    assert_eq!(prov.len(), n_off);
    let mut ids: Vec<u64> = prov.iter().map(|p| p.event_id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (1..=n_off as u64).collect::<Vec<_>>());
}

#[test]
fn event_ids_continue_across_checkpoint_resume() {
    let (d, k) = setup();
    let online = d.online();
    let n = online.len().min(4000);
    let cut = n / 2;

    let run_whole = || {
        let mut ing =
            FaultTolerantIngest::new(k, GroupingConfig::default(), StreamConfig::default(), 30);
        let mut events = Vec::new();
        for m in &online[..n] {
            events.extend(ing.push_message(m.clone()));
        }
        let (rest, _) = ing.finish();
        events.extend(rest);
        events
    };
    let whole = run_whole();

    let mut first =
        FaultTolerantIngest::new(k, GroupingConfig::default(), StreamConfig::default(), 30);
    let mut split = Vec::new();
    for m in &online[..cut] {
        split.extend(first.push_message(m.clone()));
    }
    let snap = first.checkpoint();
    drop(first);
    let json = snap.to_json().expect("snapshot serializes");
    let snap = syslogdigest_repro::digest::checkpoint::StreamSnapshot::from_json(&json)
        .expect("snapshot parses");
    let mut second =
        FaultTolerantIngest::resume_with_telemetry(k, &snap, &Telemetry::new()).expect("resume");
    for m in &online[cut..n] {
        split.extend(second.push_message(m.clone()));
    }
    let (rest, _) = second.finish();
    split.extend(rest);

    // The emission-sequence ids must continue through the snapshot: the
    // resumed run assigns exactly the ids the uninterrupted run would.
    assert_eq!(render(&whole), render(&split));
}

#[test]
fn prometheus_snapshot_of_a_real_run_validates() {
    let (d, k) = setup();
    let online = d.online();
    let tel = Telemetry::new();
    let _ = digest_instrumented(k, online, &GroupingConfig::default(), &tel, false);
    let text = tel.snapshot().to_prometheus();
    let samples = validate_exposition(&text).expect("exposition must parse");
    assert!(samples > 0, "snapshot has no samples");
    assert!(text.contains("sd_digest_n_input"), "{text}");
    assert!(text.contains("sd_span_seconds_total"), "{text}");
}
