//! Property-based tests over the core data structures and grouping
//! invariants, with proptest-generated message streams.

use proptest::prelude::*;
use syslogdigest_repro::digest::grouping::{group, GroupingConfig};
use syslogdigest_repro::digest::knowledge::DomainKnowledge;
use syslogdigest_repro::digest::offline::{learn, OfflineConfig};
use syslogdigest_repro::digest::union_find::UnionFind;
use syslogdigest_repro::model::{
    sort_batch, ErrorCode, Interner, RawMessage, SyslogPlus, Timestamp,
};
use syslogdigest_repro::temporal::{count_groups, group_series, TemporalConfig};

// ---------------------------------------------------------------- model --

proptest! {
    /// Civil <-> epoch conversion roundtrips for any plausible instant.
    #[test]
    fn timestamp_civil_roundtrip(secs in -2_000_000_000i64..4_000_000_000i64) {
        let ts = Timestamp(secs);
        let (y, mo, d, h, mi, s) = ts.to_civil();
        let back = Timestamp::from_ymd_hms(y, mo, d, h, mi, s);
        prop_assert_eq!(back, ts);
    }

    /// Display -> parse roundtrips.
    #[test]
    fn timestamp_text_roundtrip(secs in 0i64..4_000_000_000i64) {
        let ts = Timestamp(secs);
        prop_assert_eq!(Timestamp::parse(&ts.to_string()), Some(ts));
    }

    /// Any message built from whitespace-free router/code fields survives
    /// the wire format.
    #[test]
    fn raw_message_wire_roundtrip(
        secs in 0i64..4_000_000_000i64,
        router in "[a-z][a-z0-9.]{0,12}",
        code in "[A-Z]{2,8}-[0-7]-[A-Z_]{2,12}",
        detail in "[ -~]{0,80}",
    ) {
        let detail = detail.trim().to_owned();
        let m = RawMessage::new(Timestamp(secs), router, ErrorCode::from(code.as_str()), detail);
        let line = m.to_line();
        let back = RawMessage::parse_line(&line).expect("parses");
        prop_assert_eq!(back.ts, m.ts);
        prop_assert_eq!(back.router, m.router);
        prop_assert_eq!(back.code, m.code);
        prop_assert_eq!(
            back.detail.split_whitespace().collect::<Vec<_>>(),
            m.detail.split_whitespace().collect::<Vec<_>>()
        );
    }

    /// The interner is a bijection over inserted names.
    #[test]
    fn interner_bijection(names in proptest::collection::vec("[a-z]{1,8}", 1..50)) {
        let mut it = Interner::new();
        let ids: Vec<u32> = names.iter().map(|n| it.intern(n)).collect();
        for (n, &id) in names.iter().zip(&ids) {
            prop_assert_eq!(it.resolve(id), n.as_str());
            prop_assert_eq!(it.get(n), Some(id));
        }
        // Distinct names got distinct ids.
        let mut uniq: Vec<&String> = names.iter().collect();
        uniq.sort();
        uniq.dedup();
        let mut uids: Vec<u32> = uniq.iter().map(|n| it.get(n).unwrap()).collect();
        uids.sort_unstable();
        uids.dedup();
        prop_assert_eq!(uids.len(), uniq.len());
    }
}

// ----------------------------------------------------------- union-find --

proptest! {
    /// Union-find yields a valid partition regardless of union order, and
    /// the group count decreases by exactly one per effective union.
    #[test]
    fn union_find_partition(
        n in 1usize..60,
        unions in proptest::collection::vec((0usize..60, 0usize..60), 0..80),
    ) {
        let mut uf = UnionFind::new(n);
        let mut effective = 0usize;
        for (a, b) in unions {
            if a < n && b < n && uf.union(a, b) {
                effective += 1;
            }
        }
        let (labels, count) = uf.groups();
        prop_assert_eq!(labels.len(), n);
        prop_assert_eq!(count, n - effective);
        for &l in &labels {
            prop_assert!(l < count);
        }
    }
}

// ------------------------------------------------------------- temporal --

proptest! {
    /// Group count never exceeds the series length, is at least 1 for
    /// nonempty input, and never increases when beta grows.
    #[test]
    fn ewma_group_count_bounds(
        gaps in proptest::collection::vec(1i64..5_000, 1..120),
        alpha in 0.0f64..0.9,
    ) {
        let mut ts = Vec::with_capacity(gaps.len());
        let mut cur = 0i64;
        for g in &gaps {
            cur += g;
            ts.push(Timestamp(cur));
        }
        let mut prev = usize::MAX;
        for beta in [1.5, 2.0, 3.0, 5.0, 8.0] {
            let cfg = TemporalConfig { alpha, beta, s_min: 1, s_max: 3 * 3600 };
            let n = count_groups(&ts, &cfg);
            prop_assert!(n >= 1 && n <= ts.len());
            prop_assert!(n <= prev, "beta {} gave {} > {}", beta, n, prev);
            prev = n;
        }
    }

    /// Group labels from group_series are non-decreasing along the series
    /// and contiguous from zero.
    #[test]
    fn ewma_group_labels_are_contiguous(
        gaps in proptest::collection::vec(1i64..20_000, 1..100),
    ) {
        let mut ts = Vec::new();
        let mut cur = 0i64;
        for g in &gaps {
            cur += g;
            ts.push(Timestamp(cur));
        }
        let cfg = TemporalConfig::dataset_a();
        let labels = group_series(&ts, &cfg);
        prop_assert_eq!(labels[0], 0);
        for w in labels.windows(2) {
            prop_assert!(w[1] == w[0] || w[1] == w[0] + 1);
        }
    }
}

// ------------------------------------------------------------- grouping --

/// A tiny fixed knowledge base for random-stream grouping properties.
fn tiny_knowledge() -> DomainKnowledge {
    let configs = vec![
        "hostname r0\n!\ninterface Serial1/0\n ip address 10.0.0.1 255.255.255.252\n description link to r1 Serial1/0\n".to_owned(),
        "hostname r1\n!\ninterface Serial1/0\n ip address 10.0.0.2 255.255.255.252\n description link to r0 Serial1/0\n".to_owned(),
        "hostname r2\n!\ninterface Serial2/0\n ip address 10.0.0.5 255.255.255.252\n".to_owned(),
    ];
    let mut train = Vec::new();
    for i in 0..40i64 {
        for r in ["r0", "r1", "r2"] {
            train.push(RawMessage::new(
                Timestamp(i * 50),
                r,
                ErrorCode::from("LINK-3-UPDOWN"),
                format!("Interface Serial{}/0, changed state to down", i % 25),
            ));
            train.push(RawMessage::new(
                Timestamp(i * 50 + 1),
                r,
                ErrorCode::from("LINEPROTO-5-UPDOWN"),
                format!(
                    "Line protocol on Interface Serial{}/0, changed state to down",
                    i % 25
                ),
            ));
        }
    }
    sort_batch(&mut train);
    let mut cfg = OfflineConfig::dataset_a();
    cfg.mine.sp_min = 0.0001;
    learn(&configs, &train, &cfg)
}

fn arbitrary_stream() -> impl Strategy<Value = Vec<RawMessage>> {
    proptest::collection::vec(
        (0i64..40_000, 0usize..3, 0usize..2, prop::bool::ANY),
        1..150,
    )
    .prop_map(|items| {
        let mut msgs: Vec<RawMessage> = items
            .into_iter()
            .map(|(ts, router, code, down)| {
                let routers = ["r0", "r1", "r2"];
                let state = if down { "down" } else { "up" };
                let (code, detail) = match code {
                    0 => (
                        "LINK-3-UPDOWN",
                        format!("Interface Serial1/0, changed state to {state}"),
                    ),
                    _ => (
                        "LINEPROTO-5-UPDOWN",
                        format!("Line protocol on Interface Serial1/0, changed state to {state}"),
                    ),
                };
                RawMessage::new(
                    Timestamp(ts),
                    routers[router],
                    ErrorCode::from(code),
                    detail,
                )
            })
            .collect();
        sort_batch(&mut msgs);
        msgs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Grouping invariants on arbitrary streams: every message belongs to
    /// exactly one group, group count is within bounds, and stacking
    /// stages never increases the group count.
    #[test]
    fn grouping_invariants(stream in arbitrary_stream()) {
        let k = tiny_knowledge();
        let (batch, dropped) = syslogdigest_repro::digest::augment_batch(&k, &stream);
        prop_assert_eq!(dropped, 0);

        let mut prev = usize::MAX;
        for cfg in [
            GroupingConfig::t_only(),
            GroupingConfig::t_r(),
            GroupingConfig::default(),
        ] {
            let g = group(&k, &batch, &cfg);
            prop_assert_eq!(g.group_of.len(), batch.len());
            prop_assert!(g.n_groups <= batch.len().max(1));
            if !batch.is_empty() {
                prop_assert!(g.n_groups >= 1);
            }
            // Labels are dense.
            for &l in &g.group_of {
                prop_assert!(l < g.n_groups);
            }
            prop_assert!(g.n_groups <= prev);
            prev = g.n_groups;
        }
    }

    /// Scores are finite, positive, and additive over group members.
    #[test]
    fn scores_are_finite_and_additive(stream in arbitrary_stream()) {
        let k = tiny_knowledge();
        let (batch, _) = syslogdigest_repro::digest::augment_batch(&k, &stream);
        if batch.is_empty() {
            return Ok(());
        }
        let g = group(&k, &batch, &GroupingConfig::default());
        for members in g.members() {
            let whole = syslogdigest_repro::digest::score_group(&k, &batch, &members);
            prop_assert!(whole.is_finite() && whole > 0.0);
            let parts: f64 = members
                .iter()
                .map(|&i| syslogdigest_repro::digest::score_group(&k, &batch, &[i]))
                .sum();
            prop_assert!((whole - parts).abs() <= 1e-9 * whole.max(1.0));
        }
    }
}

// -------------------------------------------------------- reorder buffer --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Duplicate copies injected at arbitrary offsets within the skew
    /// window never change the released sequence, never register as late,
    /// and increment `n_duplicate` exactly once each.
    ///
    /// Construction keeps every duplicate absorbable by design: inter-
    /// arrival gaps are ≤ 2 s and a copy of message `i` is delivered at
    /// most 5 arrivals later, so at delivery the high watermark exceeds
    /// `ts_i` by at most 10 s — exactly the buffer's tolerance — and the
    /// original is still buffered when its copy arrives.
    #[test]
    fn reorder_buffer_absorbs_duplicates_exactly_once(
        deltas in proptest::collection::vec(0i64..=2, 5..80),
        dups in proptest::collection::vec((0usize..80, 1usize..=5), 0..20),
    ) {
        use syslogdigest_repro::digest::ReorderBuffer;

        // Clean feed with unique message identities.
        let mut ts = 0i64;
        let clean: Vec<RawMessage> = deltas
            .iter()
            .enumerate()
            .map(|(i, d)| {
                ts += d;
                RawMessage::new(
                    Timestamp(ts),
                    "r1",
                    ErrorCode::from("A-1-X"),
                    format!("m{i}"),
                )
            })
            .collect();

        let run = |feeds: &[Vec<RawMessage>]| {
            let mut rb = ReorderBuffer::new(10);
            let mut out = Vec::new();
            for batch in feeds {
                for m in batch {
                    rb.push(m.clone(), &mut out);
                }
            }
            rb.flush(&mut out);
            (out, rb.n_duplicate.get(), rb.n_late.get())
        };

        let clean_feed: Vec<Vec<RawMessage>> = clean.iter().map(|m| vec![m.clone()]).collect();
        let (clean_out, d0, l0) = run(&clean_feed);
        prop_assert_eq!(d0, 0);
        prop_assert_eq!(l0, 0);

        // Deliver a copy of message `i` right after arrival `i + offset`.
        let mut faulted = clean_feed;
        for &(i, offset) in &dups {
            let i = i % clean.len();
            let j = (i + offset).min(clean.len() - 1);
            faulted[j].push(clean[i].clone());
        }
        let (out, n_dup, n_late) = run(&faulted);
        prop_assert_eq!(&out, &clean_out, "duplicates changed the release");
        prop_assert_eq!(n_dup, dups.len() as u64);
        prop_assert_eq!(n_late, 0);
    }
}

// A compile-time check that SyslogPlus stays Send + Sync (the streaming
// digester shares batches across threads in the benches).
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SyslogPlus>();
    assert_send_sync::<DomainKnowledge>();
};
