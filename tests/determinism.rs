//! Thread-count invariance of the parallel sharded pipeline: offline
//! learning must produce byte-identical knowledge and the online digest
//! an identical event partition for every thread count, on both dataset
//! presets and on arbitrary proptest-generated streams.

use proptest::prelude::*;
use syslogdigest_repro::digest::grouping::{group, GroupingConfig};
use syslogdigest_repro::digest::offline::{learn, OfflineConfig};
use syslogdigest_repro::digest::{augment_batch, digest, Digest, DomainKnowledge};
use syslogdigest_repro::model::{sort_batch, ErrorCode, Parallelism, RawMessage, Timestamp};
use syslogdigest_repro::netsim::{Dataset, DatasetSpec};

fn with_threads(mut cfg: OfflineConfig, n: usize) -> OfflineConfig {
    cfg.par = Parallelism::with_threads(n);
    cfg
}

fn digest_cfg(n: usize) -> GroupingConfig {
    GroupingConfig {
        par: Parallelism::with_threads(n),
        ..GroupingConfig::default()
    }
}

/// The observable shape of a digest: each event's member indices (in
/// emission order) plus its score.
fn event_shape(d: &Digest) -> Vec<(Vec<usize>, f64)> {
    d.events
        .iter()
        .map(|e| (e.message_idxs.clone(), e.score))
        .collect()
}

fn assert_threads_invariant(spec: DatasetSpec, off: OfflineConfig) {
    let d = Dataset::generate(spec);
    let k1 = learn(&d.configs, d.train(), &with_threads(off.clone(), 1));
    let j1 = k1.to_json().expect("knowledge serializes");
    for n in [2usize, 4, 8] {
        let kn = learn(&d.configs, d.train(), &with_threads(off.clone(), n));
        let jn = kn.to_json().expect("knowledge serializes");
        assert_eq!(j1, jn, "learned knowledge differs at {n} threads");
    }
    let base = digest(&k1, d.online(), &digest_cfg(1));
    for n in [2usize, 4, 8] {
        let dn = digest(&k1, d.online(), &digest_cfg(n));
        assert_eq!(base.n_dropped, dn.n_dropped);
        assert_eq!(
            event_shape(&base),
            event_shape(&dn),
            "digest differs at {n} threads"
        );
    }
}

#[test]
fn preset_a_is_thread_count_invariant() {
    assert_threads_invariant(
        DatasetSpec::preset_a().scaled(0.06),
        OfflineConfig::dataset_a(),
    );
}

#[test]
fn preset_b_is_thread_count_invariant() {
    assert_threads_invariant(
        DatasetSpec::preset_b().scaled(0.06),
        OfflineConfig::dataset_b(),
    );
}

/// Calibration mode exercises the parallel α/β sweeps and the key-ordered
/// series merge; the picked parameters must not depend on thread count.
#[test]
fn calibration_is_thread_count_invariant() {
    let d = Dataset::generate(DatasetSpec::preset_a().scaled(0.05));
    let mut cfg = OfflineConfig::dataset_a().with_calibration();
    cfg.alphas = vec![0.0, 0.05, 0.2, 0.5];
    cfg.betas = vec![2.0, 5.0, 7.0];
    let k1 = learn(&d.configs, d.train(), &with_threads(cfg.clone(), 1));
    let k4 = learn(&d.configs, d.train(), &with_threads(cfg, 4));
    assert_eq!(k1.temporal.alpha, k4.temporal.alpha);
    assert_eq!(k1.temporal.beta, k4.temporal.beta);
}

// ----------------------------------------------------- proptest streams --

/// A tiny fixed knowledge base (mirrors tests/properties.rs).
fn tiny_knowledge() -> DomainKnowledge {
    let configs = vec![
        "hostname r0\n!\ninterface Serial1/0\n ip address 10.0.0.1 255.255.255.252\n description link to r1 Serial1/0\n".to_owned(),
        "hostname r1\n!\ninterface Serial1/0\n ip address 10.0.0.2 255.255.255.252\n description link to r0 Serial1/0\n".to_owned(),
        "hostname r2\n!\ninterface Serial2/0\n ip address 10.0.0.5 255.255.255.252\n".to_owned(),
    ];
    let mut train = Vec::new();
    for i in 0..40i64 {
        for r in ["r0", "r1", "r2"] {
            train.push(RawMessage::new(
                Timestamp(i * 50),
                r,
                ErrorCode::from("LINK-3-UPDOWN"),
                format!("Interface Serial{}/0, changed state to down", i % 25),
            ));
            train.push(RawMessage::new(
                Timestamp(i * 50 + 1),
                r,
                ErrorCode::from("LINEPROTO-5-UPDOWN"),
                format!(
                    "Line protocol on Interface Serial{}/0, changed state to down",
                    i % 25
                ),
            ));
        }
    }
    sort_batch(&mut train);
    let mut cfg = OfflineConfig::dataset_a();
    cfg.mine.sp_min = 0.0001;
    learn(&configs, &train, &cfg)
}

fn arbitrary_stream() -> impl Strategy<Value = Vec<RawMessage>> {
    proptest::collection::vec(
        (0i64..40_000, 0usize..3, 0usize..2, prop::bool::ANY),
        1..150,
    )
    .prop_map(|items| {
        let mut msgs: Vec<RawMessage> = items
            .into_iter()
            .map(|(ts, router, code, down)| {
                let routers = ["r0", "r1", "r2"];
                let state = if down { "down" } else { "up" };
                let (code, detail) = match code {
                    0 => (
                        "LINK-3-UPDOWN",
                        format!("Interface Serial1/0, changed state to {state}"),
                    ),
                    _ => (
                        "LINEPROTO-5-UPDOWN",
                        format!("Line protocol on Interface Serial1/0, changed state to {state}"),
                    ),
                };
                RawMessage::new(
                    Timestamp(ts),
                    routers[router],
                    ErrorCode::from(code),
                    detail,
                )
            })
            .collect();
        sort_batch(&mut msgs);
        msgs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// digest(threads = 1) == digest(threads = N) on arbitrary streams:
    /// identical dropped count, identical group labels, identically
    /// ordered events.
    #[test]
    fn digest_equals_sequential_digest(stream in arbitrary_stream()) {
        let k = tiny_knowledge();
        let base = digest(&k, &stream, &digest_cfg(1));
        for n in [2usize, 4, 8] {
            let dn = digest(&k, &stream, &digest_cfg(n));
            prop_assert_eq!(base.n_dropped, dn.n_dropped);
            prop_assert_eq!(&base.grouping.group_of, &dn.grouping.group_of);
            prop_assert_eq!(event_shape(&base), event_shape(&dn));
        }
    }

    /// The grouping stage alone is thread-count invariant on shared
    /// augmented batches.
    #[test]
    fn grouping_labels_are_thread_count_invariant(stream in arbitrary_stream()) {
        let k = tiny_knowledge();
        let (batch, _) = augment_batch(&k, &stream);
        let base = group(&k, &batch, &digest_cfg(1));
        let par = group(&k, &batch, &digest_cfg(4));
        prop_assert_eq!(base.n_groups, par.n_groups);
        prop_assert_eq!(base.group_of, par.group_of);
    }
}
