//! Whole-system integration: generate a network, learn offline, persist
//! the knowledge base, digest online traffic — across crates, through the
//! workspace facade.

use syslogdigest_repro::digest::grouping::GroupingConfig;
use syslogdigest_repro::digest::knowledge::DomainKnowledge;
use syslogdigest_repro::digest::offline::{learn, OfflineConfig};
use syslogdigest_repro::digest::pipeline::digest;
use syslogdigest_repro::netsim::{Dataset, DatasetSpec};

fn setup_a() -> (Dataset, DomainKnowledge) {
    let d = Dataset::generate(DatasetSpec::preset_a().scaled(0.1));
    let k = learn(&d.configs, d.train(), &OfflineConfig::dataset_a());
    (d, k)
}

#[test]
fn digest_is_deterministic() {
    let (d, k) = setup_a();
    let r1 = digest(&k, d.online(), &GroupingConfig::default());
    let r2 = digest(&k, d.online(), &GroupingConfig::default());
    assert_eq!(r1.events.len(), r2.events.len());
    for (a, b) in r1.events.iter().zip(&r2.events) {
        assert_eq!(a.format_line(), b.format_line());
        assert_eq!(a.message_idxs, b.message_idxs);
        assert!((a.score - b.score).abs() < 1e-12);
    }
}

#[test]
fn knowledge_base_survives_serialization() {
    let (d, k) = setup_a();
    let json = k.to_json().expect("serialize");
    let k2 = DomainKnowledge::from_json(&json).expect("deserialize");
    let r1 = digest(&k, d.online(), &GroupingConfig::default());
    let r2 = digest(&k2, d.online(), &GroupingConfig::default());
    assert_eq!(r1.events.len(), r2.events.len());
    for (a, b) in r1.events.iter().zip(&r2.events) {
        assert_eq!(a.format_line(), b.format_line());
    }
}

#[test]
fn wire_format_roundtrip_preserves_the_digest() {
    // Messages serialized to syslog lines and parsed back must digest to
    // the same events (the gt tags are lost, which the pipeline never
    // uses anyway).
    let (d, k) = setup_a();
    let window = &d.online()[..d.online().len().min(20_000)];
    let reparsed: Vec<syslogdigest_repro::model::RawMessage> = window
        .iter()
        .map(|m| {
            syslogdigest_repro::model::RawMessage::parse_line(&m.to_line())
                .expect("every generated line parses")
        })
        .collect();
    let r1 = digest(&k, window, &GroupingConfig::default());
    let r2 = digest(&k, &reparsed, &GroupingConfig::default());
    assert_eq!(r1.events.len(), r2.events.len());
}

#[test]
fn both_vendors_compress_by_two_orders_of_magnitude() {
    for (spec, cfg) in [
        (
            DatasetSpec::preset_a().scaled(0.15),
            OfflineConfig::dataset_a(),
        ),
        (
            DatasetSpec::preset_b().scaled(0.15),
            OfflineConfig::dataset_b(),
        ),
    ] {
        let name = spec.name.clone();
        let d = Dataset::generate(spec);
        let k = learn(&d.configs, d.train(), &cfg);
        let r = digest(&k, d.online(), &GroupingConfig::default());
        let ratio = r.compression_ratio();
        assert!(
            ratio < 2.5e-2,
            "dataset {name}: ratio {ratio:.2e} ({} events / {} msgs)",
            r.events.len(),
            r.n_input
        );
        assert_eq!(r.n_dropped, 0, "dataset {name}: dropped messages");
    }
}

#[test]
fn stage_stacking_is_monotone_on_real_data() {
    let (d, k) = setup_a();
    let t = digest(&k, d.online(), &GroupingConfig::t_only())
        .events
        .len();
    let tr = digest(&k, d.online(), &GroupingConfig::t_r()).events.len();
    let trc = digest(&k, d.online(), &GroupingConfig::default())
        .events
        .len();
    assert!(t >= tr, "T {t} < T+R {tr}");
    assert!(tr >= trc, "T+R {tr} < T+R+C {trc}");
}

#[test]
fn ticket_experiment_matches_all_top_tickets() {
    let d = Dataset::generate(DatasetSpec::preset_b().scaled(0.2));
    let k = learn(&d.configs, d.train(), &OfflineConfig::dataset_b());
    let report = syslogdigest_repro::tickets::run_ticket_experiment(&d, &k, 10, 0.10, 0xBEEF);
    assert!(report.n_tickets > 0);
    assert_eq!(
        report.n_matched, report.n_tickets,
        "ranks {:?}",
        report.best_ranks
    );
}
