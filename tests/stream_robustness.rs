//! Integration tests for the fault-tolerant streaming ingest layer.
//!
//! The keystone property (ISSUE 2): a feed perturbed by *bounded* faults —
//! reordering within `max_skew_secs`, duplicates, burst floods, corrupted
//! copies — digested through the reorder buffer yields **exactly** the
//! partition of the clean feed; beyond the bounds the layer counts the
//! damage and never panics. Plus: checkpoint/kill/resume equals an
//! uninterrupted run, through an actual snapshot file on disk.
//!
//! The fault seeds are configurable with `SD_FAULT_SEEDS` (comma-separated
//! u64s) so CI can sweep a matrix without recompiling.

use proptest::prelude::*;
use std::sync::OnceLock;
use syslogdigest_repro::digest::checkpoint::{CheckpointError, StreamSnapshot};
use syslogdigest_repro::digest::grouping::GroupingConfig;
use syslogdigest_repro::digest::ingest::FaultTolerantIngest;
use syslogdigest_repro::digest::knowledge::DomainKnowledge;
use syslogdigest_repro::digest::offline::{learn, OfflineConfig};
use syslogdigest_repro::digest::stream::StreamConfig;
use syslogdigest_repro::digest::{generation_path, set_poison_marker, NetworkEvent};
use syslogdigest_repro::netsim::{
    inject, poison_message, Dataset, DatasetSpec, FaultSpec, POISON_MARKER,
};

fn setup() -> &'static (Dataset, DomainKnowledge) {
    static CELL: OnceLock<(Dataset, DomainKnowledge)> = OnceLock::new();
    CELL.get_or_init(|| {
        let d = Dataset::generate(DatasetSpec::preset_a().scaled(0.08));
        let k = learn(&d.configs, d.train(), &OfflineConfig::dataset_a());
        (d, k)
    })
}

fn fault_seeds() -> Vec<u64> {
    match std::env::var("SD_FAULT_SEEDS") {
        Ok(s) => s.split(',').filter_map(|x| x.trim().parse().ok()).collect(),
        Err(_) => vec![1, 2, 3],
    }
}

fn ingest_lines<'a>(
    k: &'a DomainKnowledge,
    lines: impl Iterator<Item = &'a str>,
    max_skew: i64,
) -> (
    Vec<NetworkEvent>,
    syslogdigest_repro::digest::ingest::IngestStats,
) {
    let mut ing = FaultTolerantIngest::new(
        k,
        GroupingConfig::default(),
        StreamConfig::default(),
        max_skew,
    );
    let mut events = Vec::new();
    for line in lines {
        events.extend(ing.push_line(line));
    }
    let (rest, stats) = ing.finish();
    events.extend(rest);
    (events, stats)
}

/// Events as a comparable partition + presentation fingerprint. Both runs
/// pass through the same ingest layer, so sequence numbers line up and the
/// comparison is exact, not just structural.
fn digest_fingerprint(events: &[NetworkEvent]) -> Vec<(Vec<usize>, String)> {
    let mut v: Vec<(Vec<usize>, String)> = events
        .iter()
        .map(|e| (e.message_idxs.clone(), e.format_line()))
        .collect();
    v.sort();
    v
}

/// KEYSTONE: bounded faults (reordering ≤ max_skew, duplicates, bursts,
/// ~1% corrupted copies) digest to the exact clean-feed result.
#[test]
fn bounded_faults_digest_to_the_exact_clean_partition() {
    let (d, k) = setup();
    let clean: Vec<String> = d.online().iter().map(|m| m.to_line()).collect();

    for seed in fault_seeds() {
        let spec = FaultSpec::bounded(seed);
        assert!(spec.reorder_secs <= 30, "preset must stay within the skew");
        let (faulted, report) = inject(d.online(), &spec);

        let (clean_events, clean_stats) = ingest_lines(k, clean.iter().map(String::as_str), 30);
        let (fault_events, fault_stats) = ingest_lines(k, faulted.iter().map(String::as_str), 30);

        assert_eq!(
            digest_fingerprint(&clean_events),
            digest_fingerprint(&fault_events),
            "seed {seed}: faulted partition diverged from clean partition"
        );
        // Every injected fault is visible in the counters.
        assert_eq!(fault_stats.n_malformed, report.n_corrupted, "seed {seed}");
        assert_eq!(
            fault_stats.n_late + fault_stats.n_duplicate,
            report.n_duplicated + clean_stats.n_duplicate,
            "seed {seed}: every duplicate delivery is absorbed or late-dropped"
        );
        assert_eq!(fault_stats.digester.n_inconsistent, 0, "seed {seed}");
    }
}

/// Beyond-bounds faults (reordering past the skew window, drops, clock
/// skew) must be survived and counted — equivalence is impossible, panics
/// are unacceptable.
#[test]
fn hostile_faults_are_counted_never_panicked_on() {
    let (d, k) = setup();
    let n = d.online().len().min(6000);
    for seed in fault_seeds() {
        let (faulted, report) = inject(&d.online()[..n], &FaultSpec::hostile(seed));
        let (events, stats) = ingest_lines(k, faulted.iter().map(String::as_str), 30);
        assert!(!events.is_empty(), "seed {seed}: nothing digested");
        assert!(report.n_dropped > 0);
        assert!(
            stats.n_late > 0,
            "seed {seed}: hour-scale reordering must produce late drops"
        );
        assert!(stats.n_malformed > 0, "seed {seed}");
        assert_eq!(stats.digester.n_inconsistent, 0, "seed {seed}");
    }
}

/// Checkpoint mid-feed, "kill" the process (drop the ingest), resume from
/// the snapshot *file*, and finish: same events as an uninterrupted run.
#[test]
fn kill_and_resume_from_snapshot_file_equals_uninterrupted_run() {
    let (d, k) = setup();
    let (faulted, _) = inject(d.online(), &FaultSpec::bounded(11));
    let cut = faulted.len() / 3;

    let (uninterrupted, _) = ingest_lines(k, faulted.iter().map(String::as_str), 30);

    let dir = std::env::temp_dir().join(format!("sd-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mid.ckpt");

    let mut first =
        FaultTolerantIngest::new(k, GroupingConfig::default(), StreamConfig::default(), 30);
    let mut events = Vec::new();
    for line in &faulted[..cut] {
        events.extend(first.push_line(line));
    }
    first.checkpoint().save(&path).expect("checkpoint saves");
    drop(first); // the kill

    let snap = StreamSnapshot::load(&path).expect("checkpoint loads");
    assert_eq!(snap.lines_consumed(), cut);
    let mut second = FaultTolerantIngest::resume(k, &snap).expect("resume");
    for line in &faulted[cut..] {
        events.extend(second.push_line(line));
    }
    let (rest, _) = second.finish();
    events.extend(rest);

    assert_eq!(
        digest_fingerprint(&uninterrupted),
        digest_fingerprint(&events),
        "resumed run diverged from uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Write a valid mid-stream checkpoint to disk and return its bytes,
/// the lines consumed, and the feed it came from.
fn saved_snapshot(dir: &std::path::Path) -> (std::path::PathBuf, Vec<u8>, usize) {
    let (d, k) = setup();
    let lines: Vec<String> = d.online().iter().map(|m| m.to_line()).collect();
    let cut = 200.min(lines.len() / 2);
    let mut ing =
        FaultTolerantIngest::new(k, GroupingConfig::default(), StreamConfig::default(), 30);
    for line in &lines[..cut] {
        ing.push_line(line);
    }
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join("snap.ckpt");
    ing.checkpoint().save(&path).expect("snapshot saves");
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes, cut)
}

/// DURABILITY: a checkpoint truncated at *every* byte offset is rejected
/// with a typed error — never a panic, never a silently wrong resume —
/// and an intact older generation always recovers.
#[test]
fn every_truncation_offset_is_rejected_and_older_generation_recovers() {
    let dir = std::env::temp_dir().join(format!("sd-truncate-{}", std::process::id()));
    let (path, bytes, cut) = saved_snapshot(&dir);
    // The pristine snapshot also lives one generation back.
    std::fs::copy(&path, generation_path(&path, 1)).unwrap();

    for at in 0..bytes.len() {
        std::fs::write(&path, &bytes[..at]).unwrap();
        match StreamSnapshot::load(&path) {
            Err(CheckpointError::Artifact(_) | CheckpointError::Corrupt(_)) => {}
            Err(other) => panic!("truncation at {at}: unexpected error kind {other}"),
            Ok(_) => panic!("truncation at {at} loaded successfully"),
        }
        // Recovery re-parses the full older generation, so exercise it on
        // a stride plus the interesting boundaries rather than at all
        // ~10^4-10^5 offsets (the load above is the exhaustive part).
        if at % 509 == 0 || at < 32 || at + 32 > bytes.len() {
            let (snap, report) = StreamSnapshot::recover_last_good(&path, 1)
                .expect("older generation must recover")
                .expect("generation 1 exists");
            assert_eq!(report.generation, 1, "truncation at {at}");
            assert_eq!(report.n_corrupt, 1, "truncation at {at}");
            assert_eq!(snap.lines_consumed(), cut, "truncation at {at}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// DURABILITY: a mid-feed crash loses at most one checkpoint interval —
/// corrupting the generation being written falls back to the previous
/// one, and the recovered replay equals the uninterrupted run exactly.
#[test]
fn generation_fallback_resumes_within_one_interval() {
    let (d, k) = setup();
    let (faulted, _) = inject(d.online(), &FaultSpec::bounded(7));
    let every = faulted.len() / 6;
    let cut = (faulted.len() * 2 / 3) / every * every; // crash at a save boundary
    assert!(cut >= 2 * every, "feed too short for two generations");

    let (uninterrupted, _) = ingest_lines(k, faulted.iter().map(String::as_str), 30);

    let dir = std::env::temp_dir().join(format!("sd-fallback-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.ckpt");
    let mut first =
        FaultTolerantIngest::new(k, GroupingConfig::default(), StreamConfig::default(), 30);
    let mut prefix_events = Vec::new();
    let mut events_at_save = Vec::new(); // events emitted by each save point
    for (i, line) in faulted[..cut].iter().enumerate() {
        prefix_events.extend(first.push_line(line));
        if (i + 1) % every == 0 {
            first
                .checkpoint()
                .save_rotated(&path, 2)
                .expect("rotated save");
            events_at_save.push((i + 1, prefix_events.len()));
        }
    }
    drop(first); // the kill, mid-write of generation 0:
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let (mut second, report) = FaultTolerantIngest::recover(k, &path, 2)
        .expect("recovery succeeds")
        .expect("a generation exists");
    assert_eq!(report.generation, 1);
    assert_eq!(report.n_corrupt, 1);
    let consumed = report.lines_consumed;
    assert!(
        cut - consumed <= every,
        "lost {} lines, more than one interval ({every})",
        cut - consumed
    );
    let &(_, n_events) = events_at_save
        .iter()
        .find(|&&(n, _)| n == consumed)
        .expect("recovered to a save point");

    let mut events: Vec<NetworkEvent> = prefix_events[..n_events].to_vec();
    for line in &faulted[consumed..] {
        events.extend(second.push_line(line));
    }
    let (rest, _) = second.finish();
    events.extend(rest);

    assert_eq!(
        digest_fingerprint(&uninterrupted),
        digest_fingerprint(&events),
        "recovered replay diverged from uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// QUARANTINE: a poison message whose augmentation panics is quarantined —
/// counted once, recorded once — and the digest is byte-identical to a
/// feed that never contained the message.
#[test]
fn quarantined_poison_message_leaves_digest_byte_identical() {
    let (d, k) = setup();
    let n = d.online().len().min(4000);
    let msgs = &d.online()[..n];
    let clean: Vec<String> = msgs.iter().map(|m| m.to_line()).collect();
    let mid = n / 2;
    let poison = poison_message(msgs[mid].ts, &msgs[mid].router);
    let mut poisoned = clean.clone();
    poisoned.insert(mid, poison.to_line());

    set_poison_marker(Some(POISON_MARKER));
    let (clean_events, clean_stats) = ingest_lines(k, clean.iter().map(String::as_str), 0);
    let (pois_events, pois_stats) = ingest_lines(k, poisoned.iter().map(String::as_str), 0);
    set_poison_marker(None);

    assert_eq!(clean_stats.digester.n_quarantined, 0);
    assert_eq!(pois_stats.digester.n_quarantined, 1);
    assert_eq!(
        digest_fingerprint(&clean_events),
        digest_fingerprint(&pois_events),
        "digest with a quarantined message diverged from the poison-free feed"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any feed shuffled within `max_skew_secs` of delivery jitter digests
    /// byte-identically to the sorted feed.
    #[test]
    fn shuffle_within_skew_is_byte_identical(
        seed in 0u64..1_000_000,
        skew in 1i64..120,
    ) {
        let (d, k) = setup();
        let n = d.online().len().min(3000);
        let msgs = &d.online()[..n];

        // Deterministic jitter in [0, skew] per message, sorted by
        // delivery time (stable, so equal deliveries keep feed order).
        let mut rng = seed;
        let mut delivery: Vec<(i64, usize)> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| {
                // xorshift64* — cheap deterministic jitter source.
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let jitter = (rng % (skew as u64 + 1)) as i64;
                (m.ts.0 + jitter, i)
            })
            .collect();
        delivery.sort();
        let shuffled: Vec<String> = delivery.iter().map(|&(_, i)| msgs[i].to_line()).collect();
        let sorted: Vec<String> = msgs.iter().map(|m| m.to_line()).collect();

        let (ev_sorted, _) = ingest_lines(k, sorted.iter().map(String::as_str), skew);
        let (ev_shuffled, stats) = ingest_lines(k, shuffled.iter().map(String::as_str), skew);

        prop_assert_eq!(stats.n_late, 0, "jitter within skew must never be late");
        prop_assert_eq!(
            digest_fingerprint(&ev_sorted),
            digest_fingerprint(&ev_shuffled)
        );
    }

    /// No byte sequence fed as lines can panic the ingest stack.
    #[test]
    fn arbitrary_garbage_lines_never_panic(
        lines in proptest::collection::vec("[ -~]{0,60}", 0..40),
    ) {
        let (_, k) = setup();
        let (_events, stats) = ingest_lines(k, lines.iter().map(String::as_str), 10);
        prop_assert_eq!(stats.digester.n_inconsistent, 0);
        prop_assert_eq!(stats.n_lines, lines.len());
    }

    /// Any truncation point combined with any single flipped bit leaves a
    /// checkpoint that loads as a typed error (never a panic, never a
    /// wrong resume), while an intact older generation still recovers.
    #[test]
    fn truncated_and_bitflipped_checkpoints_fail_typed_and_recover(
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "sd-prop-damage-{}-{}",
            std::process::id(),
            (cut_frac * 1e6) as u64 ^ ((flip_frac * 1e6) as u64) << 20 ^ u64::from(bit),
        ));
        let (path, bytes, cut) = saved_snapshot(&dir);
        std::fs::copy(&path, generation_path(&path, 1)).unwrap();

        let keep = (cut_frac * bytes.len() as f64) as usize; // < len: always damages
        let mut damaged = bytes[..keep].to_vec();
        if !damaged.is_empty() {
            let off = ((flip_frac * damaged.len() as f64) as usize).min(damaged.len() - 1);
            damaged[off] ^= 1 << bit;
        }
        std::fs::write(&path, &damaged).unwrap();

        prop_assert!(
            StreamSnapshot::load(&path).is_err(),
            "damaged snapshot (cut {keep}, flip bit {bit}) loaded successfully"
        );
        let (snap, report) = StreamSnapshot::recover_last_good(&path, 1)
            .expect("older generation must recover")
            .expect("generation 1 exists");
        prop_assert_eq!(report.generation, 1);
        prop_assert_eq!(snap.lines_consumed(), cut);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
