//! Integration tests for the fault-tolerant streaming ingest layer.
//!
//! The keystone property (ISSUE 2): a feed perturbed by *bounded* faults —
//! reordering within `max_skew_secs`, duplicates, burst floods, corrupted
//! copies — digested through the reorder buffer yields **exactly** the
//! partition of the clean feed; beyond the bounds the layer counts the
//! damage and never panics. Plus: checkpoint/kill/resume equals an
//! uninterrupted run, through an actual snapshot file on disk.
//!
//! The fault seeds are configurable with `SD_FAULT_SEEDS` (comma-separated
//! u64s) so CI can sweep a matrix without recompiling.

use proptest::prelude::*;
use std::sync::OnceLock;
use syslogdigest_repro::digest::checkpoint::StreamSnapshot;
use syslogdigest_repro::digest::grouping::GroupingConfig;
use syslogdigest_repro::digest::ingest::FaultTolerantIngest;
use syslogdigest_repro::digest::knowledge::DomainKnowledge;
use syslogdigest_repro::digest::offline::{learn, OfflineConfig};
use syslogdigest_repro::digest::stream::StreamConfig;
use syslogdigest_repro::digest::NetworkEvent;
use syslogdigest_repro::netsim::{inject, Dataset, DatasetSpec, FaultSpec};

fn setup() -> &'static (Dataset, DomainKnowledge) {
    static CELL: OnceLock<(Dataset, DomainKnowledge)> = OnceLock::new();
    CELL.get_or_init(|| {
        let d = Dataset::generate(DatasetSpec::preset_a().scaled(0.08));
        let k = learn(&d.configs, d.train(), &OfflineConfig::dataset_a());
        (d, k)
    })
}

fn fault_seeds() -> Vec<u64> {
    match std::env::var("SD_FAULT_SEEDS") {
        Ok(s) => s.split(',').filter_map(|x| x.trim().parse().ok()).collect(),
        Err(_) => vec![1, 2, 3],
    }
}

fn ingest_lines<'a>(
    k: &'a DomainKnowledge,
    lines: impl Iterator<Item = &'a str>,
    max_skew: i64,
) -> (
    Vec<NetworkEvent>,
    syslogdigest_repro::digest::ingest::IngestStats,
) {
    let mut ing = FaultTolerantIngest::new(
        k,
        GroupingConfig::default(),
        StreamConfig::default(),
        max_skew,
    );
    let mut events = Vec::new();
    for line in lines {
        events.extend(ing.push_line(line));
    }
    let (rest, stats) = ing.finish();
    events.extend(rest);
    (events, stats)
}

/// Events as a comparable partition + presentation fingerprint. Both runs
/// pass through the same ingest layer, so sequence numbers line up and the
/// comparison is exact, not just structural.
fn digest_fingerprint(events: &[NetworkEvent]) -> Vec<(Vec<usize>, String)> {
    let mut v: Vec<(Vec<usize>, String)> = events
        .iter()
        .map(|e| (e.message_idxs.clone(), e.format_line()))
        .collect();
    v.sort();
    v
}

/// KEYSTONE: bounded faults (reordering ≤ max_skew, duplicates, bursts,
/// ~1% corrupted copies) digest to the exact clean-feed result.
#[test]
fn bounded_faults_digest_to_the_exact_clean_partition() {
    let (d, k) = setup();
    let clean: Vec<String> = d.online().iter().map(|m| m.to_line()).collect();

    for seed in fault_seeds() {
        let spec = FaultSpec::bounded(seed);
        assert!(spec.reorder_secs <= 30, "preset must stay within the skew");
        let (faulted, report) = inject(d.online(), &spec);

        let (clean_events, clean_stats) = ingest_lines(k, clean.iter().map(String::as_str), 30);
        let (fault_events, fault_stats) = ingest_lines(k, faulted.iter().map(String::as_str), 30);

        assert_eq!(
            digest_fingerprint(&clean_events),
            digest_fingerprint(&fault_events),
            "seed {seed}: faulted partition diverged from clean partition"
        );
        // Every injected fault is visible in the counters.
        assert_eq!(fault_stats.n_malformed, report.n_corrupted, "seed {seed}");
        assert_eq!(
            fault_stats.n_late + fault_stats.n_duplicate,
            report.n_duplicated + clean_stats.n_duplicate,
            "seed {seed}: every duplicate delivery is absorbed or late-dropped"
        );
        assert_eq!(fault_stats.digester.n_inconsistent, 0, "seed {seed}");
    }
}

/// Beyond-bounds faults (reordering past the skew window, drops, clock
/// skew) must be survived and counted — equivalence is impossible, panics
/// are unacceptable.
#[test]
fn hostile_faults_are_counted_never_panicked_on() {
    let (d, k) = setup();
    let n = d.online().len().min(6000);
    for seed in fault_seeds() {
        let (faulted, report) = inject(&d.online()[..n], &FaultSpec::hostile(seed));
        let (events, stats) = ingest_lines(k, faulted.iter().map(String::as_str), 30);
        assert!(!events.is_empty(), "seed {seed}: nothing digested");
        assert!(report.n_dropped > 0);
        assert!(
            stats.n_late > 0,
            "seed {seed}: hour-scale reordering must produce late drops"
        );
        assert!(stats.n_malformed > 0, "seed {seed}");
        assert_eq!(stats.digester.n_inconsistent, 0, "seed {seed}");
    }
}

/// Checkpoint mid-feed, "kill" the process (drop the ingest), resume from
/// the snapshot *file*, and finish: same events as an uninterrupted run.
#[test]
fn kill_and_resume_from_snapshot_file_equals_uninterrupted_run() {
    let (d, k) = setup();
    let (faulted, _) = inject(d.online(), &FaultSpec::bounded(11));
    let cut = faulted.len() / 3;

    let (uninterrupted, _) = ingest_lines(k, faulted.iter().map(String::as_str), 30);

    let dir = std::env::temp_dir().join(format!("sd-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mid.ckpt");

    let mut first =
        FaultTolerantIngest::new(k, GroupingConfig::default(), StreamConfig::default(), 30);
    let mut events = Vec::new();
    for line in &faulted[..cut] {
        events.extend(first.push_line(line));
    }
    first.checkpoint().save(&path).expect("checkpoint saves");
    drop(first); // the kill

    let snap = StreamSnapshot::load(&path).expect("checkpoint loads");
    assert_eq!(snap.lines_consumed(), cut);
    let mut second = FaultTolerantIngest::resume(k, &snap).expect("resume");
    for line in &faulted[cut..] {
        events.extend(second.push_line(line));
    }
    let (rest, _) = second.finish();
    events.extend(rest);

    assert_eq!(
        digest_fingerprint(&uninterrupted),
        digest_fingerprint(&events),
        "resumed run diverged from uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any feed shuffled within `max_skew_secs` of delivery jitter digests
    /// byte-identically to the sorted feed.
    #[test]
    fn shuffle_within_skew_is_byte_identical(
        seed in 0u64..1_000_000,
        skew in 1i64..120,
    ) {
        let (d, k) = setup();
        let n = d.online().len().min(3000);
        let msgs = &d.online()[..n];

        // Deterministic jitter in [0, skew] per message, sorted by
        // delivery time (stable, so equal deliveries keep feed order).
        let mut rng = seed;
        let mut delivery: Vec<(i64, usize)> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| {
                // xorshift64* — cheap deterministic jitter source.
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let jitter = (rng % (skew as u64 + 1)) as i64;
                (m.ts.0 + jitter, i)
            })
            .collect();
        delivery.sort();
        let shuffled: Vec<String> = delivery.iter().map(|&(_, i)| msgs[i].to_line()).collect();
        let sorted: Vec<String> = msgs.iter().map(|m| m.to_line()).collect();

        let (ev_sorted, _) = ingest_lines(k, sorted.iter().map(String::as_str), skew);
        let (ev_shuffled, stats) = ingest_lines(k, shuffled.iter().map(String::as_str), skew);

        prop_assert_eq!(stats.n_late, 0, "jitter within skew must never be late");
        prop_assert_eq!(
            digest_fingerprint(&ev_sorted),
            digest_fingerprint(&ev_shuffled)
        );
    }

    /// No byte sequence fed as lines can panic the ingest stack.
    #[test]
    fn arbitrary_garbage_lines_never_panic(
        lines in proptest::collection::vec("[ -~]{0,60}", 0..40),
    ) {
        let (_, k) = setup();
        let (_events, stats) = ingest_lines(k, lines.iter().map(String::as_str), 10);
        prop_assert_eq!(stats.digester.n_inconsistent, 0);
        prop_assert_eq!(stats.n_lines, lines.len());
    }
}
