//! The §6.1 case study: a PIM neighbor loss in an IPTV backbone that
//! should have been impossible — fast-reroute protects every multicast
//! tree edge — until the digest reveals the secondary path had been down
//! and retrying for hours before the primary failed.
//!
//! ```sh
//! cargo run --release --example iptv_pim_outage
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use syslogdigest_repro::digest::grouping::GroupingConfig;
use syslogdigest_repro::digest::offline::{learn, OfflineConfig};
use syslogdigest_repro::digest::pipeline::digest;
use syslogdigest_repro::model::{sort_batch, Timestamp};
use syslogdigest_repro::netsim::{Dataset, DatasetSpec, EventSim};

fn main() {
    // Learn knowledge from the IPTV network's history (dataset B).
    println!("training on IPTV backbone history (vendor V2)...");
    let data = Dataset::generate(DatasetSpec::preset_b().scaled(0.35));
    let knowledge = learn(&data.configs, data.train(), &OfflineConfig::dataset_b());
    println!(
        "  {} templates, {} rules learned from {} messages",
        knowledge.templates.len(),
        knowledge.rules.len(),
        data.train().len()
    );

    // Stage the dual failure on the trained network, buried in chaff.
    println!("staging the dual-failure PIM outage + background chaff...");
    let mut sim = EventSim::new(&data.topology, &data.grammar);
    let mut rng = StdRng::seed_from_u64(61);
    let t0 = Timestamp::from_ymd_hms(2009, 12, 20, 12, 0, 0);
    sim.pim_neighbor_loss(&mut rng, 0, t0);
    let gt = sim.events[0].id;
    let keys = [
        "LOGIN_V2",
        "SNMP_AUTH_V2",
        "CHASSIS_FAN",
        "NTP_V2",
        "IGMP_QUERY",
        "CRON_RUN",
    ];
    for i in 0..400usize {
        let router = (i * 7) % data.topology.routers.len();
        sim.background(
            &mut rng,
            router,
            keys[i % keys.len()],
            t0.plus((i as i64 * 53) % 21_600),
        );
    }
    let mut msgs = sim.msgs;
    sort_batch(&mut msgs);
    let cascade = msgs.iter().filter(|m| m.gt_event == Some(gt)).count();
    println!(
        "  {} messages in the window, {} belong to the outage",
        msgs.len(),
        cascade
    );

    let report = digest(&knowledge, &msgs, &GroupingConfig::default());
    println!(
        "digest: {} events from {} messages\n",
        report.events.len(),
        report.n_input
    );

    // The pieces of the outage, largest first.
    let mut pieces: Vec<(&syslogdigest_repro::digest::NetworkEvent, usize)> = report
        .events
        .iter()
        .filter_map(|e| {
            let n = e
                .message_idxs
                .iter()
                .filter(|&&i| msgs[i].gt_event == Some(gt))
                .count();
            (n > 0).then_some((e, n))
        })
        .collect();
    pieces.sort_by_key(|&(_, n)| std::cmp::Reverse(n));

    println!("the outage as the operator sees it (largest pieces):");
    for (e, _) in pieces.iter().take(3) {
        let codes: std::collections::BTreeSet<&str> = e
            .message_idxs
            .iter()
            .map(|&i| msgs[i].code.as_str())
            .collect();
        println!("  {}", e.format_line());
        println!(
            "    {} msgs | {} routers | codes: {}",
            e.size(),
            e.routers.len(),
            codes.into_iter().collect::<Vec<_>>().join(", ")
        );
    }

    // The smoking gun the paper describes: LSP setup retries every ~5
    // minutes, long before the primary failed — co-located with the
    // failure event on the same LSP path.
    let retries: Vec<&syslogdigest_repro::model::RawMessage> = msgs
        .iter()
        .filter(|m| m.code.as_str().contains("lspPathRetry"))
        .collect();
    println!(
        "\nsmoking gun: {} secondary-path setup retries, ~5 minutes apart:",
        retries.len()
    );
    for m in retries.iter().take(3) {
        println!("  {}", m.to_line());
    }
    if retries.len() > 3 {
        println!("  ... ({} more)", retries.len() - 3);
    }
    println!(
        "\nwithout the digest, an operator would search {} raw messages with no \
         idea which time window matters — the retries start hours before the outage.",
        msgs.len()
    );
}
