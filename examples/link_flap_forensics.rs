//! Troubleshooting forensics: a link between two routers flaps for an
//! hour; SyslogDigest folds the whole multi-layer, two-router cascade —
//! LINK, LINEPROTO, OSPF and the delayed BGP teardown — into one event,
//! and the event's message index recovers the raw evidence.
//!
//! This is the paper's Table 2 narrative at realistic size.
//!
//! ```sh
//! cargo run --release --example link_flap_forensics
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use syslogdigest_repro::digest::grouping::GroupingConfig;
use syslogdigest_repro::digest::offline::{learn, OfflineConfig};
use syslogdigest_repro::digest::pipeline::digest;
use syslogdigest_repro::model::{sort_batch, Timestamp};
use syslogdigest_repro::netsim::{Dataset, DatasetSpec, EventSim};

fn main() {
    // Train knowledge on a scaled dataset A.
    println!("training domain knowledge on 3 weeks of history...");
    let data = Dataset::generate(DatasetSpec::preset_a().scaled(0.25));
    let knowledge = learn(&data.configs, data.train(), &OfflineConfig::dataset_a());

    // Stage a fresh incident: one link flapping 40 times, with background
    // chaff from every router, in a quiet two-hour window after training.
    println!("staging incident: 40 flaps on one backbone link + chaff...");
    let mut sim = EventSim::new(&data.topology, &data.grammar);
    let mut rng = StdRng::seed_from_u64(2024);
    let t0 = Timestamp::from_ymd_hms(2009, 12, 20, 3, 0, 0);
    // Flap a link that carries a BGP session, so the cascade includes the
    // delayed hold-timer teardown the drill-down below recovers.
    let link = data
        .topology
        .bgp_sessions
        .iter()
        .find_map(|s| s.link)
        .unwrap_or(0);
    sim.link_flap(&mut rng, link, t0, 40, 90.0);
    let flap_id = sim.events[0].id;
    for i in 0..300u32 {
        let router = (i as usize * 5) % data.topology.routers.len();
        let keys = [
            "CONFIG_I",
            "SNMP_AUTHFAIL",
            "NTP_UNSYNC",
            "MEM_LOW",
            "ACL_DENY",
        ];
        sim.background(
            &mut rng,
            router,
            keys[i as usize % keys.len()],
            t0.plus(i64::from(i) * 23 % 7200),
        );
    }
    let mut incident = sim.msgs;
    sort_batch(&mut incident);
    let gt_size = incident
        .iter()
        .filter(|m| m.gt_event == Some(flap_id))
        .count();
    println!(
        "  {} messages total, {} belong to the flap",
        incident.len(),
        gt_size
    );

    // Digest the incident window.
    let report = digest(&knowledge, &incident, &GroupingConfig::default());
    println!(
        "\ndigest: {} messages -> {} events",
        report.n_input,
        report.events.len()
    );

    // Find the flap event: the one with the most messages.
    let flap = report
        .events
        .iter()
        .max_by_key(|e| e.size())
        .expect("events exist");
    println!("\nthe flap event:");
    println!("  {}", flap.format_line());
    println!(
        "  {} messages across {} routers",
        flap.size(),
        flap.routers.len()
    );
    println!("  signatures:");
    for s in &flap.signatures {
        println!("    {s}");
    }

    // How well did grouping reassemble the ground truth?
    let member_gt = flap
        .message_idxs
        .iter()
        .filter(|&&i| incident[i].gt_event == Some(flap_id))
        .count();
    println!(
        "\nground-truth check: {member_gt}/{} flap messages captured, {} foreign",
        gt_size,
        flap.size() - member_gt
    );

    // Drill down like an operator would: pull the raw BGP evidence.
    println!("\nraw BGP messages recovered via the event index:");
    for &i in &flap.message_idxs {
        let m = &incident[i];
        if m.code.as_str().starts_with("BGP") {
            println!("  {}", m.to_line());
        }
    }
}
