//! Quickstart: learn domain knowledge offline, digest an online stream,
//! print the prioritized event report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use syslogdigest_repro::digest::grouping::GroupingConfig;
use syslogdigest_repro::digest::offline::{learn, OfflineConfig};
use syslogdigest_repro::digest::pipeline::digest;
use syslogdigest_repro::netsim::{Dataset, DatasetSpec};

fn main() {
    // A small tier-1-ISP-style network: 12 weeks of training syslog plus
    // 2 weeks to digest (scaled down so this example runs in seconds).
    println!("generating synthetic ISP dataset (vendor V1)...");
    let data = Dataset::generate(DatasetSpec::preset_a().scaled(0.25));
    println!(
        "  {} routers, {} training messages, {} online messages",
        data.topology.routers.len(),
        data.train().len(),
        data.online().len()
    );

    // Offline: learn templates from history, locations from configs,
    // temporal parameters and association rules (Figure 1, left half).
    println!("learning domain knowledge offline...");
    let knowledge = learn(&data.configs, data.train(), &OfflineConfig::dataset_a());
    println!(
        "  {} templates, {} locations, {} rules, alpha={} beta={} W={}s",
        knowledge.templates.len(),
        knowledge.dict.len(),
        knowledge.rules.len(),
        knowledge.temporal.alpha,
        knowledge.temporal.beta,
        knowledge.window_secs
    );

    // Online: augment -> temporal + rule-based + cross-router grouping ->
    // prioritize -> present. Digest one day at a time, as the paper's
    // deployment does ("it generally takes less than one hour to digest
    // one day's syslog" - here it takes milliseconds).
    let online = data.online();
    let day_end = online[0]
        .ts
        .start_of_day()
        .plus(syslogdigest_repro::model::DAY);
    let day = &online[..online.partition_point(|m| m.ts < day_end)];
    println!("digesting day one of the online period...");
    let report = digest(&knowledge, day, &GroupingConfig::default());
    println!(
        "  {} messages -> {} events (compression ratio {:.2e})\n",
        report.n_input,
        report.events.len(),
        report.compression_ratio()
    );

    println!("top 10 events (start|end|locations|type):");
    for ev in report.top(10) {
        println!(
            "  [{:>8.1}] {} ({} msgs)",
            ev.score,
            ev.format_line(),
            ev.size()
        );
    }

    // The section 4.2.4 score favors rare, router-scoped signatures, so
    // chronic single-signature chatter (periodic ACL hits, login scans)
    // can crowd the top at small scale — the paper notes operators adjust
    // weights to taste. One line of filtering surfaces the multi-signature
    // incidents:
    println!("\ntop 5 multi-signature incidents:");
    for ev in report
        .events
        .iter()
        .filter(|e| e.signatures.len() >= 3)
        .take(5)
    {
        println!(
            "  [{:>8.1}] {} ({} msgs, {} signatures)",
            ev.score,
            ev.format_line(),
            ev.size(),
            ev.signatures.len()
        );
    }

    // Every event indexes its raw messages for drill-down.
    if let Some(top) = report.events.first() {
        println!("\nfirst 3 raw messages of the top event:");
        for &i in top.message_idxs.iter().take(3) {
            println!("  {}", day[i].to_line());
        }
    }
}
