//! Network-health dashboard (§6.2, Figures 14–15): the same 10-minute
//! window rendered twice — circles sized by digested events vs. circles
//! sized by raw message counts — showing why raw-syslog visualization
//! misleads (chatty routers look like outages; real outages hide).
//!
//! ```sh
//! cargo run --release --example network_dashboard
//! ```

use syslogdigest_repro::digest::grouping::GroupingConfig;
use syslogdigest_repro::digest::offline::{learn, OfflineConfig};
use syslogdigest_repro::digest::pipeline::digest;
use syslogdigest_repro::digest::viz::{gini, snapshot};
use syslogdigest_repro::model::DAY;
use syslogdigest_repro::netsim::{Dataset, DatasetSpec};

fn bar(n: usize, per: usize) -> String {
    "#".repeat((n / per.max(1)).clamp(if n > 0 { 1 } else { 0 }, 40))
}

fn main() {
    let data = Dataset::generate(DatasetSpec::preset_a().scaled(0.25));
    let knowledge = learn(&data.configs, data.train(), &OfflineConfig::dataset_a());
    let online = data.online();
    let report = digest(&knowledge, online, &GroupingConfig::default());

    // Pick the busiest 10-minute window of the online period.
    let t0 = online[0].ts.start_of_day();
    let mut best = (t0, 0usize);
    let mut w = t0;
    while w.0 < online.last().unwrap().ts.0 {
        let hi = w.plus(600);
        let count = online.iter().filter(|m| m.ts >= w && m.ts < hi).count();
        if count > best.1 {
            best = (w, count);
        }
        w = w.plus(600);
        if w.seconds_since(t0) > 2 * DAY {
            break;
        }
    }
    let (from, _) = best;
    let to = from.plus(600);
    println!("status map window: {from} .. {to}\n");

    let rows = snapshot(online, &report.events, from, to, |r| {
        knowledge.dict.routers.resolve(r.0)
    });

    println!(
        "{:<12} {:>6} {:>7}  event view (Fig 14)   raw view (Fig 15)",
        "router", "events", "msgs"
    );
    let max_msgs = rows.iter().map(|r| r.n_messages).max().unwrap_or(1);
    for r in &rows {
        println!(
            "{:<12} {:>6} {:>7}  {:<21} {:<40}",
            r.router,
            r.n_events,
            r.n_messages,
            bar(r.n_events, 1),
            bar(r.n_messages, (max_msgs / 40).max(1)),
        );
        if !r.top_label.is_empty() {
            println!("{:<12} {:>6} {:>7}  top: {}", "", "", "", r.top_label);
        }
    }

    let ev_counts: Vec<usize> = rows.iter().map(|r| r.n_events).collect();
    let msg_counts: Vec<usize> = rows.iter().map(|r| r.n_messages).collect();
    println!(
        "\nskew (gini): events {:.3} vs raw messages {:.3} — \
         the event view spreads attention where incidents are,\n\
         the raw view funnels it to whoever shouts loudest",
        gini(&ev_counts),
        gini(&msg_counts)
    );
}
