//! # syslogdigest-repro
//!
//! Workspace facade for the reproduction of *"What Happened in my Network?
//! Mining Network Events from Router Syslogs"* (IMC 2010). Re-exports the
//! member crates so the repository-level examples and integration tests
//! can exercise the whole system through one dependency:
//!
//! * [`model`] (`sd-model`) — messages, timestamps, error codes, ids;
//! * [`netsim`] (`sd-netsim`) — the synthetic ISP/IPTV substrate;
//! * [`templates`] (`sd-templates`) — template learning and matching;
//! * [`locations`] (`sd-locations`) — config-derived location knowledge;
//! * [`temporal`] (`sd-temporal`) — EWMA interarrival mining;
//! * [`rules`] (`sd-rules`) — association rule mining;
//! * [`digest`] (`syslogdigest`) — the offline + online SyslogDigest core;
//! * [`tickets`] (`sd-tickets`) — trouble tickets and §5.3 matching;
//! * [`telemetry`] (`sd-telemetry`) — counters, spans, structured logs;
//! * [`conformance`] (`sd-conformance`) — paper-faithful reference oracles
//!   and the differential conformance harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sd_conformance as conformance;
pub use sd_locations as locations;
pub use sd_model as model;
pub use sd_netsim as netsim;
pub use sd_rules as rules;
pub use sd_telemetry as telemetry;
pub use sd_templates as templates;
pub use sd_temporal as temporal;
pub use sd_tickets as tickets;
pub use syslogdigest as digest;
