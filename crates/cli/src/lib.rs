//! # sd-cli
//!
//! Library backing the `sdigest` command-line tool. All subcommand logic
//! lives here (testable without spawning processes); `main.rs` only parses
//! `std::env::args` and dispatches.
//!
//! ```text
//! sdigest generate --dataset A --scale 0.2 --out corpus/
//! sdigest learn    --configs corpus/configs --log corpus/syslog.log \
//!                  --profile A --out knowledge.json
//! sdigest digest   --knowledge knowledge.json --log corpus/syslog.log --top 20
//! sdigest stats    --log corpus/syslog.log
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Parsed};
pub use commands::{cmd_digest, cmd_explain, cmd_generate, cmd_learn, cmd_stats};
