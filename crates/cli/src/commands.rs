//! Subcommand implementations for `sdigest`.

use crate::args::{ArgError, Parsed};
use sd_model::{Parallelism, ParseError, RawMessage, Vendor};
use sd_netsim::{apply_fault, inject, Dataset, DatasetSpec, FaultSpec, StorageFault};
use sd_telemetry::{Json, JsonlSink, LogFormat, Logger, Telemetry};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use syslogdigest::offline::{learn_instrumented, OfflineConfig};
use syslogdigest::{
    digest_instrumented, DomainKnowledge, EventProvenance, FaultTolerantIngest, GroupingConfig,
    QuarantineRecord, StreamConfig,
};

type CmdResult = Result<String, ArgError>;

fn io_err(context: &str, e: std::io::Error) -> ArgError {
    ArgError(format!("{context}: {e}"))
}

/// How many malformed lines [`read_log`] keeps verbatim for diagnostics.
const MALFORMED_SAMPLES: usize = 5;

/// What [`read_log`] found wrong with a feed file: a count plus the first
/// few offenders as `(line number, reason)`, so operators see *why* lines
/// were rejected, not only how many.
#[derive(Debug, Clone, Default)]
pub struct MalformedReport {
    /// Non-blank lines that failed to parse.
    pub count: usize,
    /// First few `(1-based line number, reason)` pairs.
    pub samples: Vec<(usize, String)>,
}

impl MalformedReport {
    fn record(&mut self, line_no: usize, err: &ParseError) {
        self.count += 1;
        if self.samples.len() < MALFORMED_SAMPLES {
            self.samples.push((line_no, err.to_string()));
        }
    }
}

impl fmt::Display for MalformedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} malformed", self.count)?;
        if !self.samples.is_empty() {
            let shown: Vec<String> = self
                .samples
                .iter()
                .map(|(n, why)| format!("line {n}: {why}"))
                .collect();
            write!(f, " (first: {})", shown.join("; "))?;
        }
        Ok(())
    }
}

/// Read and parse a syslog wire-format file, skipping blank lines and
/// reporting the malformed ones (count + first offenders with reasons).
pub fn read_log(path: &Path) -> Result<(Vec<RawMessage>, MalformedReport), ArgError> {
    let text = fs::read_to_string(path).map_err(|e| io_err("reading log", e))?;
    let mut msgs = Vec::new();
    let mut bad = MalformedReport::default();
    for (i, line) in text.lines().enumerate() {
        match RawMessage::parse_line(line) {
            Ok(m) => msgs.push(m),
            Err(ParseError::Blank) => {}
            Err(e) => bad.record(i + 1, &e),
        }
    }
    sd_model::sort_batch(&mut msgs);
    Ok((msgs, bad))
}

fn profile(name: &str) -> Result<OfflineConfig, ArgError> {
    match name {
        "A" | "a" | "isp" => Ok(OfflineConfig::dataset_a()),
        "B" | "b" | "iptv" => Ok(OfflineConfig::dataset_b()),
        other => Err(ArgError(format!("unknown profile {other:?} (use A or B)"))),
    }
}

/// `--threads N` (0 or absent = all cores; 1 = exact sequential path).
fn threads_arg(p: &Parsed) -> Result<Parallelism, ArgError> {
    let n: usize = p.opt_parse("threads", 0)?;
    Ok(if n == 0 {
        Parallelism::default()
    } else {
        Parallelism::with_threads(n)
    })
}

/// `--log-format text|json` (default text): how diagnostics reach stderr.
pub fn logger_for(p: &Parsed) -> Result<Logger, ArgError> {
    let fmt: LogFormat = p
        .opt("log-format")
        .unwrap_or("text")
        .parse()
        .map_err(ArgError)?;
    Ok(Logger::stderr(fmt))
}

/// `--metrics-out FILE` enables the counter/span registry; without it
/// telemetry is a no-op.
fn telemetry_for(p: &Parsed) -> (Telemetry, Option<PathBuf>) {
    match p.opt("metrics-out") {
        Some(path) => (Telemetry::new(), Some(PathBuf::from(path))),
        None => (Telemetry::disabled(), None),
    }
}

/// Snapshot the registry as Prometheus text exposition.
fn write_metrics(tel: &Telemetry, path: &Path) -> Result<(), ArgError> {
    fs::write(path, tel.snapshot().to_prometheus()).map_err(|e| io_err("writing metrics", e))
}

/// `--trace FILE` opens a JSONL sink for per-event provenance records.
fn trace_sink(p: &Parsed) -> Result<Option<JsonlSink>, ArgError> {
    match p.opt("trace") {
        Some(path) => Ok(Some(
            JsonlSink::create(Path::new(path)).map_err(|e| io_err("creating trace file", e))?,
        )),
        None => Ok(None),
    }
}

fn write_trace(sink: &JsonlSink, prov: &[EventProvenance]) -> Result<(), ArgError> {
    for record in prov {
        sink.write(&record.to_json())
            .map_err(|e| io_err("writing trace", e))?;
    }
    Ok(())
}

/// `--quarantine-out FILE` opens a JSONL sidecar for messages whose
/// augmentation panicked (quarantined rather than crashing the run).
fn quarantine_sink(p: &Parsed) -> Result<Option<fs::File>, ArgError> {
    match p.opt("quarantine-out") {
        Some(path) => Ok(Some(
            fs::File::create(Path::new(path)).map_err(|e| io_err("creating quarantine file", e))?,
        )),
        None => Ok(None),
    }
}

fn write_quarantine(sink: &mut fs::File, records: &[QuarantineRecord]) -> Result<(), ArgError> {
    for rec in records {
        writeln!(sink, "{}", rec.to_json()).map_err(|e| io_err("writing quarantine file", e))?;
    }
    Ok(())
}

/// The observability outputs one command run threads through its stages:
/// the telemetry handle, where to snapshot metrics, where to stream
/// provenance traces, and where structured diagnostics go.
struct Obs<'a> {
    tel: &'a Telemetry,
    metrics: Option<&'a Path>,
    trace: Option<&'a JsonlSink>,
    logger: &'a Logger,
}

/// Report sampled malformed lines through the structured log sink.
fn log_malformed(logger: &Logger, samples: &[(usize, String)]) {
    for (n, why) in samples {
        logger.warn(
            "malformed line",
            &[
                ("line", Json::from(*n)),
                ("reason", Json::from(why.as_str())),
            ],
        );
    }
}

/// Load a knowledge base, accepting both the enveloped (checksummed)
/// format written by `sdigest learn` and legacy raw-JSON files.
fn load_knowledge(p: &Parsed) -> Result<DomainKnowledge, ArgError> {
    DomainKnowledge::load(Path::new(p.req("knowledge")?))
        .map_err(|e| ArgError(format!("reading knowledge: {e}")))
}

fn stages(name: &str) -> Result<GroupingConfig, ArgError> {
    match name.to_ascii_uppercase().as_str() {
        "T" => Ok(GroupingConfig::t_only()),
        "TR" | "T+R" => Ok(GroupingConfig::t_r()),
        "TRC" | "T+R+C" => Ok(GroupingConfig::default()),
        other => Err(ArgError(format!(
            "unknown stages {other:?} (use T, TR, or TRC)"
        ))),
    }
}

/// `sdigest generate --dataset A|B [--scale F] [--seed N] --out DIR [--metrics-out FILE]`
///
/// Writes `syslog.log` (wire format), one config per router under
/// `configs/`, and `tickets.json` for the online period.
pub fn cmd_generate(p: &Parsed) -> CmdResult {
    let which = p.opt("dataset").unwrap_or("A");
    let scale: f64 = p.opt_parse("scale", 0.25)?;
    let seed: u64 = p.opt_parse("seed", 0)?;
    let out = Path::new(p.req("out")?);

    let mut spec = match which {
        "A" | "a" => DatasetSpec::preset_a(),
        "B" | "b" => DatasetSpec::preset_b(),
        other => return Err(ArgError(format!("unknown dataset {other:?} (use A or B)"))),
    };
    if seed != 0 {
        spec.seed = seed;
    }
    if (scale - 1.0).abs() > 1e-9 {
        spec = spec.scaled(scale);
    }
    let (tel, metrics) = telemetry_for(p);
    let d = Dataset::generate_with(spec, &tel);

    fs::create_dir_all(out.join("configs")).map_err(|e| io_err("creating output dir", e))?;
    let mut log =
        fs::File::create(out.join("syslog.log")).map_err(|e| io_err("creating syslog.log", e))?;
    for m in &d.messages {
        writeln!(log, "{}", m.to_line()).map_err(|e| io_err("writing syslog.log", e))?;
    }
    for (r, cfg) in d.topology.routers.iter().zip(&d.configs) {
        fs::write(out.join("configs").join(format!("{}.cfg", r.name)), cfg)
            .map_err(|e| io_err("writing config", e))?;
    }
    let tickets = sd_tickets::generate_tickets(&d, d.spec.seed);
    let tickets_json = serde_json::to_string_pretty(&tickets)
        .map_err(|e| ArgError(format!("serializing tickets: {e}")))?;
    fs::write(out.join("tickets.json"), tickets_json)
        .map_err(|e| io_err("writing tickets.json", e))?;
    if let Some(mp) = &metrics {
        write_metrics(&tel, mp)?;
    }

    Ok(format!(
        "dataset {} ({:?}): {} routers, {} messages ({} train / {} online), \
         {} ground-truth events, {} tickets -> {}",
        d.spec.name,
        if d.spec.vendor == Vendor::V1 {
            "V1"
        } else {
            "V2"
        },
        d.topology.routers.len(),
        d.messages.len(),
        d.train().len(),
        d.online().len(),
        d.gt_events.len(),
        tickets.len(),
        out.display()
    ))
}

/// `sdigest learn --configs DIR --log FILE --profile A|B --out FILE [--threads N]
///  [--metrics-out FILE] [--log-format text|json]`
pub fn cmd_learn(p: &Parsed) -> CmdResult {
    let cfg_dir = Path::new(p.req("configs")?);
    let log = Path::new(p.req("log")?);
    let out = Path::new(p.req("out")?);
    let mut cfg = profile(p.opt("profile").unwrap_or("A"))?;
    cfg.par = threads_arg(p)?;
    let (tel, metrics) = telemetry_for(p);
    let logger = logger_for(p)?;

    let mut configs = Vec::new();
    let mut entries: Vec<_> = fs::read_dir(cfg_dir)
        .map_err(|e| io_err("reading configs dir", e))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "cfg"))
        .collect();
    entries.sort();
    for path in entries {
        configs.push(fs::read_to_string(&path).map_err(|e| io_err("reading config", e))?);
    }
    if configs.is_empty() {
        return Err(ArgError(format!("no .cfg files in {}", cfg_dir.display())));
    }
    let (msgs, bad) = read_log(log)?;
    log_malformed(&logger, &bad.samples);
    let k = learn_instrumented(&configs, &msgs, &cfg, &tel);
    k.save(out)
        .map_err(|e| ArgError(format!("writing knowledge: {e}")))?;
    if let Some(mp) = &metrics {
        write_metrics(&tel, mp)?;
    }
    Ok(format!(
        "learned from {} messages ({bad}): {} templates, {} locations, \
         {} rules, alpha={} beta={} W={}s -> {}",
        msgs.len(),
        k.templates.len(),
        k.dict.len(),
        k.rules.len(),
        k.temporal.alpha,
        k.temporal.beta,
        k.window_secs,
        out.display()
    ))
}

/// Streaming digestion of a feed file through the fault-tolerant ingest
/// layer, with optional checkpointing:
///
/// * `--max-skew S` — reorder tolerance in seconds (default 0);
/// * `--max-open M` — force-close oldest groups beyond M open messages;
/// * `--checkpoint FILE` — resume from the newest verifiable snapshot
///   generation at FILE (falling back past corrupt ones), and write a
///   rotated snapshot there every `--checkpoint-every N` lines
///   (default 10000);
/// * `--checkpoint-keep K` — previous generations kept alongside the
///   newest (`FILE.1`, `FILE.2`, …; default 2);
/// * `--quarantine-out FILE` — JSONL sidecar for messages whose
///   augmentation panicked (the run continues without them).
fn stream_digest(
    p: &Parsed,
    k: &DomainKnowledge,
    gcfg: GroupingConfig,
    log: &Path,
    out: &mut String,
    obs: &Obs<'_>,
) -> Result<Vec<syslogdigest::NetworkEvent>, ArgError> {
    let max_skew: i64 = p.opt_parse("max-skew", 0)?;
    let max_open: usize = p.opt_parse("max-open", 0)?;
    let every: usize = p.opt_parse("checkpoint-every", 10_000)?;
    let keep: usize = p.opt_parse("checkpoint-keep", 2)?;
    let ckpt = p.opt("checkpoint").map(Path::new);
    let mut qsink = quarantine_sink(p)?;
    let scfg = StreamConfig {
        idle_close: 0,
        max_open_messages: max_open,
    };

    let text = fs::read_to_string(log).map_err(|e| io_err("reading log", e))?;
    let recovered = match ckpt {
        Some(path) => FaultTolerantIngest::recover_with_telemetry(k, path, keep, obs.tel)
            .map_err(|e| ArgError(format!("resuming from checkpoint: {e}")))?,
        None => None,
    };
    let (mut ingest, mut skip) = match (recovered, ckpt) {
        (Some((ing, report)), Some(path)) => {
            out.push_str(&format!(
                "resumed from {} (generation {}, {} lines already consumed, \
                 {} corrupt generation(s) skipped)\n",
                path.display(),
                report.generation,
                report.lines_consumed,
                report.n_corrupt,
            ));
            (ing, report.lines_consumed)
        }
        _ => (
            FaultTolerantIngest::with_telemetry(k, gcfg, scfg, max_skew, obs.tel),
            0,
        ),
    };
    ingest.set_trace(obs.trace.is_some());

    let mut events = Vec::new();
    let mut since_ckpt = 0usize;
    for line in text.lines() {
        if skip > 0 {
            skip -= 1;
            continue;
        }
        events.extend(ingest.push_line(line));
        since_ckpt += 1;
        if let Some(path) = ckpt {
            if every > 0 && since_ckpt >= every {
                since_ckpt = 0;
                ingest
                    .checkpoint()
                    .save_rotated(path, keep)
                    .map_err(|e| ArgError(format!("writing checkpoint: {e}")))?;
                if let Some(mp) = obs.metrics {
                    write_metrics(obs.tel, mp)?;
                }
                if let Some(sink) = obs.trace {
                    write_trace(sink, &ingest.take_provenance())?;
                }
                if let Some(sink) = qsink.as_mut() {
                    write_quarantine(sink, &ingest.take_quarantined())?;
                }
            }
        }
    }
    if let Some(path) = ckpt {
        ingest
            .checkpoint()
            .save_rotated(path, keep)
            .map_err(|e| ArgError(format!("writing checkpoint: {e}")))?;
    }

    let samples = ingest.malformed_samples().to_vec();
    if let Some(sink) = obs.trace {
        write_trace(sink, &ingest.take_provenance())?;
    }
    if let Some(sink) = qsink.as_mut() {
        write_quarantine(sink, &ingest.take_quarantined())?;
    }
    let (rest, stats, prov, quarantined) = ingest.finish_full();
    if let Some(sink) = obs.trace {
        write_trace(sink, &prov)?;
    }
    if let Some(sink) = qsink.as_mut() {
        write_quarantine(sink, &quarantined)?;
    }
    events.extend(rest);
    events.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.start.cmp(&b.start)));
    out.push_str(&format!(
        "streamed {} lines ({} malformed, {} late, {} duplicate, {} unknown-router, \
         {} force-closed, {} quarantined) -> {} events\n",
        stats.n_lines,
        stats.n_malformed,
        stats.n_late,
        stats.n_duplicate,
        stats.digester.n_dropped,
        stats.digester.n_force_closed,
        stats.digester.n_quarantined,
        events.len()
    ));
    log_malformed(obs.logger, &samples);
    Ok(events)
}

/// `sdigest digest --knowledge FILE --log FILE [--top N] [--stages TRC] [--threads N]
///  [--metrics-out FILE] [--trace FILE] [--log-format text|json]
///  [--stream [--max-skew S] [--max-open M] [--checkpoint FILE] [--checkpoint-every N]]`
pub fn cmd_digest(p: &Parsed) -> CmdResult {
    let k = load_knowledge(p)?;
    let log = Path::new(p.req("log")?);
    let top: usize = p.opt_parse("top", 20)?;
    let mut gcfg = stages(p.opt("stages").unwrap_or("TRC"))?;
    gcfg.par = threads_arg(p)?;
    let (tel, metrics) = telemetry_for(p);
    let logger = logger_for(p)?;
    let trace = trace_sink(p)?;

    let mut out = String::new();
    let events = if p.flag("stream") {
        stream_digest(
            p,
            &k,
            gcfg,
            log,
            &mut out,
            &Obs {
                tel: &tel,
                metrics: metrics.as_deref(),
                trace: trace.as_ref(),
                logger: &logger,
            },
        )?
    } else {
        let (msgs, bad) = read_log(log)?;
        log_malformed(&logger, &bad.samples);
        let (d, prov) = digest_instrumented(&k, &msgs, &gcfg, &tel, trace.is_some());
        if let (Some(sink), Some(prov)) = (trace.as_ref(), prov.as_deref()) {
            write_trace(sink, prov)?;
        }
        if let Some(mut sink) = quarantine_sink(p)? {
            write_quarantine(&mut sink, &d.quarantined)?;
        }
        out.push_str(&format!(
            "digested {} messages ({bad}, {} unknown-router, {} quarantined) -> {} events \
             (compression {:.2e})\n",
            msgs.len(),
            d.n_dropped,
            d.n_quarantined,
            d.events.len(),
            d.compression_ratio()
        ));
        d.events
    };
    if let Some(mp) = &metrics {
        write_metrics(&tel, mp)?;
    }
    for (i, e) in events.iter().take(top).enumerate() {
        out.push_str(&format!(
            "{:>4}. [{:>10.1}] {}  ({} msgs)\n",
            i + 1,
            e.score,
            e.format_line(),
            e.size()
        ));
    }
    Ok(out)
}

/// `sdigest explain --knowledge FILE --log FILE --event N [--stages TRC] [--threads N]`
///
/// Re-runs the batch digest with provenance tracing enabled and renders
/// the full provenance of one event: which templates its messages
/// matched, how many links each grouping stage contributed, which mined
/// rules fired, and what closed it. Event ids are the 1-based ranks
/// printed by `sdigest digest` (same knowledge, log, and stages).
pub fn cmd_explain(p: &Parsed) -> CmdResult {
    let k = load_knowledge(p)?;
    let log = Path::new(p.req("log")?);
    let id: u64 = p
        .req("event")?
        .parse()
        .map_err(|_| ArgError("invalid value for --event: expected an event id".to_owned()))?;
    let mut gcfg = stages(p.opt("stages").unwrap_or("TRC"))?;
    gcfg.par = threads_arg(p)?;
    let logger = logger_for(p)?;

    let (msgs, bad) = read_log(log)?;
    log_malformed(&logger, &bad.samples);
    let (d, prov) = digest_instrumented(&k, &msgs, &gcfg, &Telemetry::disabled(), true);
    let prov = prov.unwrap_or_default();
    match prov.iter().find(|e| e.event_id == id) {
        Some(e) => Ok(e.render_text()),
        None => Err(ArgError(format!(
            "no event with id {id}: this digest produced {} events (ids 1..={})",
            d.events.len(),
            d.events.len()
        ))),
    }
}

/// `sdigest stats --log FILE [--top N]` — raw per-code and per-router
/// message counts (what operators look at *before* they have a digest).
pub fn cmd_stats(p: &Parsed) -> CmdResult {
    let (msgs, bad) = read_log(Path::new(p.req("log")?))?;
    let top: usize = p.opt_parse("top", 15)?;
    let mut by_code: BTreeMap<&str, usize> = BTreeMap::new();
    let mut by_router: BTreeMap<&str, usize> = BTreeMap::new();
    for m in &msgs {
        *by_code.entry(m.code.as_str()).or_insert(0) += 1;
        *by_router.entry(m.router.as_str()).or_insert(0) += 1;
    }
    let mut out = format!(
        "{} messages ({bad}), {} codes, {} routers",
        msgs.len(),
        by_code.len(),
        by_router.len()
    );
    if let (Some(first), Some(last)) = (msgs.first(), msgs.last()) {
        out.push_str(&format!(", spanning {} .. {}", first.ts, last.ts));
    }
    out.push_str("\ntop codes:\n");
    let mut codes: Vec<(&str, usize)> = by_code.into_iter().collect();
    codes.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for (code, c) in codes.into_iter().take(top) {
        out.push_str(&format!("  {c:>9}  {code}\n"));
    }
    Ok(out)
}

/// `sdigest inject --log FILE --out FILE [--preset clean|bounded|hostile] [--seed N]`
/// `sdigest inject --artifact FILE [--storage KIND] [--at BYTE] [--seed N] [--out FILE]`
///
/// Feed mode perturbs a clean wire-format feed with deterministic faults
/// (bounded reordering, duplicates, corrupted copies, and — for
/// `hostile` — drops and clock skew), for exercising the fault-tolerant
/// ingest path. Artifact mode instead damages a persisted artifact
/// (checkpoint or knowledge file) with a storage fault — `truncate`,
/// `bitflip`, `short-write` or `disk-full` — at a seed-derived offset
/// (or an explicit `--at`), for exercising the recovery path.
pub fn cmd_inject(p: &Parsed) -> CmdResult {
    if let Some(artifact) = p.opt("artifact") {
        return inject_artifact(p, Path::new(artifact));
    }
    let log = Path::new(p.req("log")?);
    let out_path = Path::new(p.req("out")?);
    let seed: u64 = p.opt_parse("seed", 1)?;
    let spec = match p.opt("preset").unwrap_or("bounded") {
        "clean" => FaultSpec::clean(seed),
        "bounded" => FaultSpec::bounded(seed),
        "hostile" => FaultSpec::hostile(seed),
        other => {
            return Err(ArgError(format!(
                "unknown preset {other:?} (use clean, bounded, or hostile)"
            )))
        }
    };
    let (msgs, bad) = read_log(log)?;
    let (lines, report) = inject(&msgs, &spec);
    let mut f = fs::File::create(out_path).map_err(|e| io_err("creating faulted log", e))?;
    for line in &lines {
        writeln!(f, "{line}").map_err(|e| io_err("writing faulted log", e))?;
    }
    Ok(format!(
        "injected faults into {} messages ({bad} in input): {} lines out \
         ({} reordered, {} duplicated, {} corrupted, {} dropped, {} skewed) -> {}",
        report.n_input,
        report.n_lines,
        report.n_reordered,
        report.n_duplicated,
        report.n_corrupted,
        report.n_dropped,
        report.n_skewed,
        out_path.display()
    ))
}

/// Artifact mode of `sdigest inject`: damage a persisted artifact the
/// way a torn write, bit flip, lying kernel or full disk would.
fn inject_artifact(p: &Parsed, artifact: &Path) -> CmdResult {
    let bytes = fs::read(artifact).map_err(|e| io_err("reading artifact", e))?;
    let kind = p.opt("storage").unwrap_or("truncate");
    let seed: u64 = p.opt_parse("seed", 1)?;
    let fault = match p.opt("at") {
        Some(s) => {
            let at: usize = s.parse().map_err(|_| {
                ArgError("invalid value for --at: expected a byte offset".to_owned())
            })?;
            match kind {
                "truncate" => StorageFault::Truncate { at },
                "bitflip" => StorageFault::BitFlip {
                    offset: at,
                    bit: (seed % 8) as u8,
                },
                "short" | "short-write" => StorageFault::ShortWrite { at },
                "diskfull" | "disk-full" => StorageFault::DiskFull { at },
                other => {
                    return Err(ArgError(format!(
                        "unknown storage fault {other:?} \
                         (use truncate, bitflip, short-write, or disk-full)"
                    )))
                }
            }
        }
        None => StorageFault::from_seed(kind, seed, bytes.len()).ok_or_else(|| {
            ArgError(format!(
                "unknown storage fault {kind:?} \
                 (use truncate, bitflip, short-write, or disk-full)"
            ))
        })?,
    };
    let out_path = p.opt("out").map(Path::new).unwrap_or(artifact);
    let damaged = apply_fault(&bytes, &fault);
    fs::write(out_path, &damaged).map_err(|e| io_err("writing damaged artifact", e))?;
    Ok(format!(
        "injected storage fault {} into {} ({} -> {} bytes) -> {}",
        fault.kind(),
        artifact.display(),
        bytes.len(),
        damaged.len(),
        out_path.display()
    ))
}

/// Usage text.
pub fn usage() -> &'static str {
    "sdigest — SyslogDigest command line\n\
     \n\
     USAGE:\n\
       sdigest generate --out DIR [--dataset A|B] [--scale F] [--seed N]\n\
       sdigest learn    --configs DIR --log FILE --out FILE [--profile A|B] [--threads N]\n\
                        [--metrics-out FILE] [--log-format text|json]\n\
       sdigest digest   --knowledge FILE --log FILE [--top N] [--stages T|TR|TRC]\n\
                        [--threads N] [--metrics-out FILE] [--trace FILE]\n\
                        [--log-format text|json] [--quarantine-out FILE]\n\
                        [--stream [--max-skew SECS] [--max-open N]\n\
                        [--checkpoint FILE] [--checkpoint-every N]\n\
                        [--checkpoint-keep K]]\n\
       sdigest explain  --knowledge FILE --log FILE --event ID [--stages T|TR|TRC]\n\
                        [--threads N]\n\
       sdigest inject   --log FILE --out FILE [--preset clean|bounded|hostile] [--seed N]\n\
       sdigest inject   --artifact FILE [--storage truncate|bitflip|short-write|disk-full]\n\
                        [--at BYTE] [--seed N] [--out FILE]\n\
       sdigest stats    --log FILE [--top N]\n\
     \n\
     OBSERVABILITY:\n\
       --metrics-out FILE   write a Prometheus text-format snapshot of all\n\
                            stage counters and span timings (updated at every\n\
                            checkpoint and at exit)\n\
       --trace FILE         append one JSON provenance record per emitted\n\
                            event (templates matched, rules fired, links per\n\
                            grouping stage, close reason)\n\
       --log-format FORMAT  diagnostics on stderr as human text (default) or\n\
                            one JSON object per line\n\
     \n\
     DURABILITY:\n\
       Checkpoints and knowledge files are written atomically inside a\n\
       checksummed envelope; a resume falls back past corrupt checkpoint\n\
       generations to the newest verifiable one, so a crash (even mid-write)\n\
       loses at most one --checkpoint-every interval of progress.\n\
       --checkpoint-keep K  previous checkpoint generations to retain as\n\
                            FILE.1 .. FILE.K (default 2)\n\
       --quarantine-out F   JSONL sidecar recording messages whose\n\
                            augmentation panicked; the run continues and the\n\
                            digest is as if those messages were absent\n"
}

/// Dispatch a parsed command line.
pub fn dispatch(p: &Parsed) -> CmdResult {
    match p.command.as_str() {
        "generate" => cmd_generate(p),
        "learn" => cmd_learn(p),
        "digest" => cmd_digest(p),
        "explain" => cmd_explain(p),
        "inject" => cmd_inject(p),
        "stats" => cmd_stats(p),
        "help" | "--help" => Ok(usage().to_owned()),
        other => Err(ArgError(format!(
            "unknown subcommand {other:?}\n\n{}",
            usage()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Parsed;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sdigest-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn parse(args: &[&str]) -> Parsed {
        Parsed::parse(args.iter().map(|s| (*s).to_owned())).unwrap()
    }

    #[test]
    fn generate_learn_digest_roundtrip() {
        let dir = tmpdir("roundtrip");
        let out = dir.to_str().unwrap();

        let msg = cmd_generate(&parse(&[
            "generate",
            "--dataset",
            "A",
            "--scale",
            "0.08",
            "--out",
            out,
        ]))
        .unwrap();
        assert!(msg.contains("routers"), "{msg}");
        assert!(dir.join("syslog.log").exists());
        assert!(dir.join("tickets.json").exists());

        let kpath = dir.join("knowledge.json");
        let msg = cmd_learn(&parse(&[
            "learn",
            "--configs",
            dir.join("configs").to_str().unwrap(),
            "--log",
            dir.join("syslog.log").to_str().unwrap(),
            "--profile",
            "A",
            "--out",
            kpath.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(msg.contains("templates"), "{msg}");
        assert!(kpath.exists());

        let report = cmd_digest(&parse(&[
            "digest",
            "--knowledge",
            kpath.to_str().unwrap(),
            "--log",
            dir.join("syslog.log").to_str().unwrap(),
            "--top",
            "5",
        ]))
        .unwrap();
        assert!(report.contains("events"), "{report}");
        assert!(report.lines().count() >= 2, "{report}");

        // Streaming mode produces a report too.
        let streamed = cmd_digest(&parse(&[
            "digest",
            "--knowledge",
            kpath.to_str().unwrap(),
            "--log",
            dir.join("syslog.log").to_str().unwrap(),
            "--stream",
        ]))
        .unwrap();
        assert!(streamed.contains("streamed"), "{streamed}");

        let stats = cmd_stats(&parse(&[
            "stats",
            "--log",
            dir.join("syslog.log").to_str().unwrap(),
        ]))
        .unwrap();
        assert!(stats.contains("top codes"), "{stats}");

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_log_reports_first_malformed_lines_with_reasons() {
        let dir = tmpdir("malformed");
        let path = dir.join("bad.log");
        fs::write(
            &path,
            "2010-01-10 00:00:15 r1 SYS-5-RESTART fine\n\
             \n\
             2010-01-10 00:00:16 r1\n\
             garbage here entirely today\n\
             2010-01-10 00:00:17 r1 SYS-5-RESTART also fine\n",
        )
        .unwrap();
        let (msgs, bad) = read_log(&path).unwrap();
        assert_eq!(msgs.len(), 2);
        assert_eq!(bad.count, 2);
        assert_eq!(bad.samples.len(), 2);
        assert_eq!(
            bad.samples[0],
            (3, "truncated line: missing code".to_owned())
        );
        assert_eq!(bad.samples[1], (4, "malformed timestamp".to_owned()));
        let rendered = bad.to_string();
        assert!(rendered.contains("line 3"), "{rendered}");
        assert!(rendered.contains("malformed timestamp"), "{rendered}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn inject_then_stream_digest_with_checkpoint() {
        let dir = tmpdir("faulted-stream");
        let out = dir.to_str().unwrap();
        cmd_generate(&parse(&[
            "generate",
            "--dataset",
            "A",
            "--scale",
            "0.06",
            "--out",
            out,
        ]))
        .unwrap();
        let kpath = dir.join("knowledge.json");
        cmd_learn(&parse(&[
            "learn",
            "--configs",
            dir.join("configs").to_str().unwrap(),
            "--log",
            dir.join("syslog.log").to_str().unwrap(),
            "--out",
            kpath.to_str().unwrap(),
        ]))
        .unwrap();

        // Fault the feed deterministically.
        let faulted = dir.join("faulted.log");
        let msg = cmd_inject(&parse(&[
            "inject",
            "--log",
            dir.join("syslog.log").to_str().unwrap(),
            "--out",
            faulted.to_str().unwrap(),
            "--preset",
            "bounded",
            "--seed",
            "5",
        ]))
        .unwrap();
        assert!(msg.contains("corrupted"), "{msg}");

        // Stream-digest it with reorder repair and periodic checkpoints.
        let ckpt = dir.join("stream.ckpt");
        let report = cmd_digest(&parse(&[
            "digest",
            "--knowledge",
            kpath.to_str().unwrap(),
            "--log",
            faulted.to_str().unwrap(),
            "--stream",
            "--max-skew",
            "30",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "2000",
        ]))
        .unwrap();
        assert!(report.contains("streamed"), "{report}");
        assert!(ckpt.exists(), "checkpoint file was not written");

        // A second run resumes from the checkpoint instead of starting over.
        let resumed = cmd_digest(&parse(&[
            "digest",
            "--knowledge",
            kpath.to_str().unwrap(),
            "--log",
            faulted.to_str().unwrap(),
            "--stream",
            "--max-skew",
            "30",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(resumed.contains("resumed from"), "{resumed}");

        let _ = fs::remove_dir_all(&dir);
    }

    /// Storage-fault recovery end to end through the CLI: rotated
    /// checkpoint generations are written, `inject --artifact` damages
    /// the newest one, and the next run falls back to an older
    /// generation instead of failing or starting over.
    #[test]
    fn artifact_fault_then_resume_falls_back_a_generation() {
        let dir = tmpdir("artifact-fault");
        let out = dir.to_str().unwrap();
        cmd_generate(&parse(&[
            "generate",
            "--dataset",
            "A",
            "--scale",
            "0.06",
            "--out",
            out,
        ]))
        .unwrap();
        let kpath = dir.join("knowledge.json");
        cmd_learn(&parse(&[
            "learn",
            "--configs",
            dir.join("configs").to_str().unwrap(),
            "--log",
            dir.join("syslog.log").to_str().unwrap(),
            "--out",
            kpath.to_str().unwrap(),
        ]))
        .unwrap();

        let ckpt = dir.join("run.ckpt");
        let first = cmd_digest(&parse(&[
            "digest",
            "--knowledge",
            kpath.to_str().unwrap(),
            "--log",
            dir.join("syslog.log").to_str().unwrap(),
            "--stream",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "1000",
            "--checkpoint-keep",
            "2",
        ]))
        .unwrap();
        assert!(first.contains("streamed"), "{first}");
        assert!(ckpt.exists());
        let gen1 = dir.join("run.ckpt.1");
        assert!(gen1.exists(), "rotation did not keep a previous generation");

        // Damage the newest generation the way a torn write would.
        let msg = cmd_inject(&parse(&[
            "inject",
            "--artifact",
            ckpt.to_str().unwrap(),
            "--storage",
            "truncate",
            "--seed",
            "3",
        ]))
        .unwrap();
        assert!(msg.contains("truncate"), "{msg}");

        let resumed = cmd_digest(&parse(&[
            "digest",
            "--knowledge",
            kpath.to_str().unwrap(),
            "--log",
            dir.join("syslog.log").to_str().unwrap(),
            "--stream",
            "--checkpoint",
            ckpt.to_str().unwrap(),
            "--checkpoint-keep",
            "2",
        ]))
        .unwrap();
        assert!(resumed.contains("resumed from"), "{resumed}");
        assert!(resumed.contains("generation 1"), "{resumed}");
        assert!(
            resumed.contains("1 corrupt generation(s) skipped"),
            "{resumed}"
        );

        let _ = fs::remove_dir_all(&dir);
    }

    /// A poison message (augmentation panic) is quarantined to the JSONL
    /// sidecar instead of crashing the run, and the stream report counts it.
    #[test]
    fn poison_message_is_quarantined_to_sidecar() {
        let dir = tmpdir("quarantine");
        let out = dir.to_str().unwrap();
        cmd_generate(&parse(&[
            "generate",
            "--dataset",
            "A",
            "--scale",
            "0.05",
            "--out",
            out,
        ]))
        .unwrap();
        let kpath = dir.join("knowledge.json");
        cmd_learn(&parse(&[
            "learn",
            "--configs",
            dir.join("configs").to_str().unwrap(),
            "--log",
            dir.join("syslog.log").to_str().unwrap(),
            "--out",
            kpath.to_str().unwrap(),
        ]))
        .unwrap();

        // Append one syntactically ordinary poison line to the feed.
        let log_path = dir.join("syslog.log");
        let text = fs::read_to_string(&log_path).unwrap();
        let last = RawMessage::parse_line(text.lines().last().unwrap()).unwrap();
        let poison = sd_netsim::poison_message(sd_model::Timestamp(last.ts.0 + 1), &last.router);
        fs::write(&log_path, format!("{text}{}\n", poison.to_line())).unwrap();

        syslogdigest::set_poison_marker(Some(sd_netsim::POISON_MARKER));
        let qpath = dir.join("quarantine.jsonl");
        let report = cmd_digest(&parse(&[
            "digest",
            "--knowledge",
            kpath.to_str().unwrap(),
            "--log",
            log_path.to_str().unwrap(),
            "--stream",
            "--quarantine-out",
            qpath.to_str().unwrap(),
        ]));
        syslogdigest::set_poison_marker(None);
        let report = report.unwrap();
        assert!(report.contains("1 quarantined"), "{report}");
        let sidecar = fs::read_to_string(&qpath).unwrap();
        assert_eq!(sidecar.lines().count(), 1, "{sidecar}");
        assert!(sidecar.contains(sd_netsim::POISON_MARKER), "{sidecar}");
        assert!(sidecar.contains("injected poison panic"), "{sidecar}");

        let _ = fs::remove_dir_all(&dir);
    }

    /// `explain` failure paths return clean errors (mapped to exit code 1
    /// by `main`'s dispatch-Err arm) — never a panic, never silence.
    #[test]
    fn explain_rejects_missing_files_and_unknown_event_ids() {
        let dir = tmpdir("explain-negative");
        let out = dir.to_str().unwrap();
        cmd_generate(&parse(&[
            "generate",
            "--dataset",
            "A",
            "--scale",
            "0.05",
            "--out",
            out,
        ]))
        .unwrap();
        let kpath = dir.join("knowledge.json");
        cmd_learn(&parse(&[
            "learn",
            "--configs",
            dir.join("configs").to_str().unwrap(),
            "--log",
            dir.join("syslog.log").to_str().unwrap(),
            "--out",
            kpath.to_str().unwrap(),
        ]))
        .unwrap();
        let k = kpath.to_str().unwrap().to_owned();
        let log = dir.join("syslog.log").to_str().unwrap().to_owned();

        // Out-of-range event id: the error names the id and the valid range.
        let args = [
            "explain",
            "--knowledge",
            &k,
            "--log",
            &log,
            "--event",
            "999999",
        ];
        let msg = cmd_explain(&parse(&args)).unwrap_err().to_string();
        assert!(msg.contains("no event with id 999999"), "{msg}");
        assert!(msg.contains("ids 1..="), "{msg}");
        // Same through the dispatcher, which is what main maps to exit 1.
        assert!(dispatch(&parse(&args)).is_err());

        // Missing log file: the I/O error keeps its context.
        let missing = dir.join("nope.log").to_str().unwrap().to_owned();
        let msg = cmd_explain(&parse(&[
            "explain",
            "--knowledge",
            &k,
            "--log",
            &missing,
            "--event",
            "1",
        ]))
        .unwrap_err()
        .to_string();
        assert!(msg.contains("reading log"), "{msg}");

        // Missing knowledge file, likewise.
        let msg = cmd_explain(&parse(&[
            "explain",
            "--knowledge",
            &missing,
            "--log",
            &log,
            "--event",
            "1",
        ]))
        .unwrap_err()
        .to_string();
        assert!(msg.contains("reading knowledge"), "{msg}");

        // Non-numeric --event is rejected with a usage-style message.
        let msg = cmd_explain(&parse(&[
            "explain",
            "--knowledge",
            &k,
            "--log",
            &log,
            "--event",
            "first",
        ]))
        .unwrap_err()
        .to_string();
        assert!(msg.contains("invalid value for --event"), "{msg}");

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn helpful_errors() {
        assert!(cmd_generate(&parse(&["generate", "--dataset", "Z", "--out", "/tmp/x"])).is_err());
        assert!(cmd_learn(&parse(&["learn"])).is_err());
        assert!(dispatch(&parse(&["frobnicate"])).is_err());
        assert!(dispatch(&parse(&["help"])).unwrap().contains("USAGE"));
    }
}
