//! `sdigest` — the SyslogDigest command line (see `sd_cli` for the
//! subcommand implementations).

use sd_telemetry::{LogFormat, Logger};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Errors respect --log-format even when parsing itself fails, so a
    // supervisor reading JSON diagnostics never sees a stray text line.
    let fmt = args
        .windows(2)
        .find(|w| w[0] == "--log-format")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(LogFormat::Text);
    let logger = Logger::stderr(fmt);
    if args.is_empty() {
        eprint!("{}", sd_cli::commands::usage());
        std::process::exit(2);
    }
    let parsed = match sd_cli::Parsed::parse(args) {
        Ok(p) => p,
        Err(e) => {
            logger.error(&e.to_string(), &[]);
            std::process::exit(2);
        }
    };
    match sd_cli::commands::dispatch(&parsed) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            logger.error(&e.to_string(), &[]);
            std::process::exit(1);
        }
    }
}
