//! `sdigest` — the SyslogDigest command line (see `sd_cli` for the
//! subcommand implementations).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprint!("{}", sd_cli::commands::usage());
        std::process::exit(2);
    }
    let parsed = match sd_cli::Parsed::parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match sd_cli::commands::dispatch(&parsed) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
