//! Minimal `--flag value` argument parsing (no external dependency).

use std::collections::HashMap;
use std::fmt;

/// Parsed command line: the subcommand and its `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    /// Subcommand name (first positional argument).
    pub command: String,
    /// `--key value` pairs.
    options: HashMap<String, String>,
    /// `--key` flags with no value.
    flags: Vec<String>,
}

/// Argument errors with user-facing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Parsed {
    /// Parse an argument vector (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Parsed, ArgError> {
        let mut it = args.into_iter().peekable();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing subcommand".to_owned()))?;
        if command.starts_with("--") {
            return Err(ArgError(format!("expected subcommand, got flag {command}")));
        }
        let mut parsed = Parsed {
            command,
            ..Default::default()
        };
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument {a:?}")));
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    let v = it.next().expect("peeked");
                    parsed.options.insert(key.to_owned(), v);
                }
                _ => parsed.flags.push(key.to_owned()),
            }
        }
        Ok(parsed)
    }

    /// Required string option.
    pub fn req(&self, key: &str) -> Result<&str, ArgError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))
    }

    /// Optional string option.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Optional parsed option with a default.
    pub fn opt_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("invalid value for --{key}: {v:?}"))),
        }
    }

    /// Whether a bare `--flag` was present.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_options_and_flags() {
        let p = Parsed::parse(v(&["digest", "--log", "x.log", "--top", "5", "--stream"])).unwrap();
        assert_eq!(p.command, "digest");
        assert_eq!(p.req("log").unwrap(), "x.log");
        assert_eq!(p.opt_parse("top", 10usize).unwrap(), 5);
        assert!(p.flag("stream"));
        assert!(!p.flag("verbose"));
    }

    #[test]
    fn errors_are_helpful() {
        assert!(Parsed::parse(v(&[])).is_err());
        assert!(Parsed::parse(v(&["--nope"])).is_err());
        assert!(Parsed::parse(v(&["learn", "stray"])).is_err());
        let p = Parsed::parse(v(&["learn"])).unwrap();
        let e = p.req("log").unwrap_err();
        assert!(e.0.contains("--log"));
        let p = Parsed::parse(v(&["x", "--top", "abc"])).unwrap();
        assert!(p.opt_parse("top", 1usize).is_err());
    }

    #[test]
    fn defaults_apply_when_absent() {
        let p = Parsed::parse(v(&["generate"])).unwrap();
        assert_eq!(p.opt_parse("scale", 1.0f64).unwrap(), 1.0);
        assert_eq!(p.opt("dataset"), None);
    }
}
