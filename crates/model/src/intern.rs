//! A small string interner.
//!
//! Router names, template keys and location names repeat millions of times
//! across a syslog batch; the mining pipeline interns them once and works
//! with dense `u32` ids thereafter (hashable, copyable, and usable as
//! vector indices).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Bidirectional `String <-> u32` mapping with dense, insertion-ordered ids.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Interner {
    names: Vec<String>,
    #[serde(skip)]
    map: HashMap<String, u32>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its existing id if already present.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), id);
        id
    }

    /// Look up an id without inserting.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.map.get(name).copied()
    }

    /// The string for `id`. Panics on a foreign id — ids are only minted by
    /// this interner, so that is a logic error, not input-dependent.
    pub fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }

    /// Rebuild the reverse map after deserialization (serde skips it).
    pub fn rebuild_index(&mut self) {
        self.map = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut it = Interner::new();
        let a = it.intern("r1");
        let b = it.intern("r2");
        let a2 = it.intern("r1");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(a, a2);
        assert_eq!(it.resolve(a), "r1");
        assert_eq!(it.get("r2"), Some(1));
        assert_eq!(it.get("r3"), None);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn serde_roundtrip_restores_lookup() {
        let mut it = Interner::new();
        it.intern("alpha");
        it.intern("beta");
        let json = serde_json::to_string(&it).unwrap();
        let mut back: Interner = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.get("beta"), Some(1));
        assert_eq!(back.resolve(0), "alpha");
    }

    #[test]
    fn iter_follows_id_order() {
        let mut it = Interner::new();
        for n in ["z", "y", "x"] {
            it.intern(n);
        }
        let order: Vec<&str> = it.iter().map(|(_, n)| n).collect();
        assert_eq!(order, vec!["z", "y", "x"]);
    }
}
