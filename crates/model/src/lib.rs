//! # sd-model
//!
//! Shared data model for the SyslogDigest reproduction: second-granularity
//! [`Timestamp`]s, vendor-specific [`ErrorCode`]s, raw [`RawMessage`]s and
//! their wire format, the augmented [`SyslogPlus`] form, and the dense id
//! types ([`RouterId`], [`TemplateId`], [`LocationId`]) minted by the
//! learning components.
//!
//! Everything here is deliberately free of mining logic — it is the
//! vocabulary the other crates speak.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augmented;
pub mod errorcode;
pub mod intern;
pub mod message;
pub mod par;
pub mod time;

pub use augmented::{LocationId, LocationLevel, RouterId, SyslogPlus, TemplateId};
pub use errorcode::{ErrorCode, Severity};
pub use intern::Interner;
pub use message::{sort_batch, GroundTruthId, ParseError, RawMessage, Vendor};
pub use par::{catch_panic, par_chunks, par_chunks_isolated, par_map, Parallelism};
pub use time::{Timestamp, DAY, HOUR, MINUTE, WEEK};
