//! Augmented messages ("Syslog+") and the shared id types that the
//! template/location learners mint.

use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense id of a learned message template (minted by the template learner).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TemplateId(pub u32);

/// Dense id of an interned router name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RouterId(pub u32);

/// Dense id of a location in the location dictionary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LocationId(pub u32);

impl fmt::Display for TemplateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for LocationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Level of a location in the Figure 3 hierarchy.
///
/// `depth()` grows downwards from the router; prioritization weighs an
/// event at a *higher* level (smaller depth) more heavily, one order of
/// magnitude per level (§4.2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LocationLevel {
    /// The router chassis itself.
    Router,
    /// A slot / linecard.
    Slot,
    /// A physical port on a linecard.
    Port,
    /// A physical layer-3 interface.
    PhysInterface,
    /// A logical layer-3 (sub-)interface.
    LogInterface,
    /// A logical multilink / bundle aggregating physical interfaces.
    Bundle,
    /// A cross-router path object (link, BGP session, tunnel).
    Path,
}

impl LocationLevel {
    /// Depth below the router in the physical hierarchy.
    ///
    /// Logical objects are assigned the depth of the physical level they
    /// aggregate to: a bundle behaves like a physical interface, a path
    /// spans routers and therefore sits just below the router level.
    pub fn depth(self) -> u8 {
        match self {
            LocationLevel::Router => 0,
            LocationLevel::Path => 1,
            LocationLevel::Slot => 1,
            LocationLevel::Port => 2,
            LocationLevel::PhysInterface | LocationLevel::Bundle => 3,
            LocationLevel::LogInterface => 4,
        }
    }

    /// The §4.2.4 importance weight: ×10 per level above the deepest.
    pub fn weight(self) -> f64 {
        let max_depth = LocationLevel::LogInterface.depth();
        10f64.powi(i32::from(max_depth - self.depth()))
    }
}

impl fmt::Display for LocationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LocationLevel::Router => "router",
            LocationLevel::Slot => "slot",
            LocationLevel::Port => "port",
            LocationLevel::PhysInterface => "interface",
            LocationLevel::LogInterface => "subinterface",
            LocationLevel::Bundle => "bundle",
            LocationLevel::Path => "path",
        };
        f.write_str(s)
    }
}

/// A Syslog+ message: a raw message augmented with its learned template and
/// parsed locations (§3.1 step 3).
///
/// It references the raw batch by index instead of owning the text, so the
/// online pipeline never copies message bodies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyslogPlus {
    /// Index of the raw message in its batch.
    pub idx: usize,
    /// Timestamp copied out of the raw message (hot field for grouping).
    pub ts: Timestamp,
    /// Interned originating router.
    pub router: RouterId,
    /// Matched template, or `None` when no learned template matches
    /// (unmatched messages fall back to per-error-code handling).
    pub template: Option<TemplateId>,
    /// Locations extracted from the message and verified against the
    /// dictionary, most specific first.
    pub locations: Vec<LocationId>,
}

impl SyslogPlus {
    /// The primary (most specific) location, if any was extracted.
    pub fn primary_location(&self) -> Option<LocationId> {
        self.locations.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_scale_by_ten_per_level() {
        assert_eq!(LocationLevel::LogInterface.weight(), 1.0);
        assert_eq!(LocationLevel::PhysInterface.weight(), 10.0);
        assert_eq!(LocationLevel::Bundle.weight(), 10.0);
        assert_eq!(LocationLevel::Port.weight(), 100.0);
        assert_eq!(LocationLevel::Slot.weight(), 1_000.0);
        assert_eq!(LocationLevel::Path.weight(), 1_000.0);
        assert_eq!(LocationLevel::Router.weight(), 10_000.0);
    }

    #[test]
    fn router_outranks_everything() {
        for lvl in [
            LocationLevel::Slot,
            LocationLevel::Port,
            LocationLevel::PhysInterface,
            LocationLevel::LogInterface,
            LocationLevel::Bundle,
            LocationLevel::Path,
        ] {
            assert!(LocationLevel::Router.weight() > lvl.weight(), "{lvl}");
        }
    }

    #[test]
    fn primary_location_is_first() {
        let sp = SyslogPlus {
            idx: 0,
            ts: Timestamp(0),
            router: RouterId(1),
            template: Some(TemplateId(7)),
            locations: vec![LocationId(5), LocationId(2)],
        };
        assert_eq!(sp.primary_location(), Some(LocationId(5)));
    }
}
