//! Raw syslog messages and their wire format.

use crate::errorcode::ErrorCode;
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Router vendor family, as in Table 1 of the paper.
///
/// The two operational networks studied use different vendors with very
/// different message grammars; everything downstream of parsing is
/// vendor-independent (that is the point of the system).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// Cisco-style: numeric severities, `Interface X, changed state to down`.
    V1,
    /// ALU-style: word severities, `Interface X is not operational`.
    V2,
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vendor::V1 => write!(f, "V1"),
            Vendor::V2 => write!(f, "V2"),
        }
    }
}

/// Identifier of a ground-truth network condition in the simulator.
///
/// Real syslog obviously has no such field; the generator attaches it so
/// the reproduction can score grouping quality quantitatively (the paper
/// validated groups manually with domain experts).
pub type GroundTruthId = u64;

/// One raw router syslog message (Table 1 fields).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawMessage {
    /// NTP-synchronized generation time, 1 s granularity.
    pub ts: Timestamp,
    /// Name of the originating router.
    pub router: String,
    /// Message type / error code.
    pub code: ErrorCode,
    /// Free-form detailed message text.
    pub detail: String,
    /// Simulator-only ground-truth tag; `None` for messages parsed from text
    /// and for simulated background noise that belongs to no event.
    pub gt_event: Option<GroundTruthId>,
}

/// Why a wire-format line failed to parse (see [`RawMessage::parse_line`]).
///
/// Real feeds truncate and garble lines (UDP loss, relay restarts, disk
/// corruption); callers need to know *what* was wrong — to report the
/// first few offenders with line numbers — without the parser allocating
/// an error message per good line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParseError {
    /// The line is empty or whitespace-only (skippable, not corruption).
    Blank,
    /// The line ended before the named field.
    Missing(&'static str),
    /// The named field was present but empty.
    Empty(&'static str),
    /// The first two fields do not form a `YYYY-MM-DD HH:MM:SS` timestamp.
    BadTimestamp,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Blank => write!(f, "blank line"),
            ParseError::Missing(field) => write!(f, "truncated line: missing {field}"),
            ParseError::Empty(field) => write!(f, "empty {field} field"),
            ParseError::BadTimestamp => write!(f, "malformed timestamp"),
        }
    }
}

impl std::error::Error for ParseError {}

impl RawMessage {
    /// Construct a message with no ground-truth tag.
    pub fn new(
        ts: Timestamp,
        router: impl Into<String>,
        code: ErrorCode,
        detail: impl Into<String>,
    ) -> Self {
        RawMessage {
            ts,
            router: router.into(),
            code,
            detail: detail.into(),
            gt_event: None,
        }
    }

    /// Attach a ground-truth event id (builder style).
    #[must_use]
    pub fn with_gt(mut self, gt: GroundTruthId) -> Self {
        self.gt_event = Some(gt);
        self
    }

    /// Render the single-line wire format:
    /// `YYYY-MM-DD HH:MM:SS <router> <code> <detail...>`.
    ///
    /// Router names and error codes never contain whitespace, which makes
    /// the format unambiguous; the ground-truth tag is deliberately *not*
    /// serialized (it does not exist on the wire).
    pub fn to_line(&self) -> String {
        format!("{} {} {} {}", self.ts, self.router, self.code, self.detail)
    }

    /// Parse the wire format produced by [`RawMessage::to_line`].
    ///
    /// Returns a structured [`ParseError`] for blank lines or lines that
    /// do not carry all four fields — callers decide whether that is an
    /// error or skippable noise, and can report *why* a line was bad.
    pub fn parse_line(line: &str) -> Result<Self, ParseError> {
        let line = line.trim_end_matches(['\r', '\n']);
        if line.trim().is_empty() {
            return Err(ParseError::Blank);
        }
        // Timestamp occupies the first two whitespace-separated fields.
        let mut parts = line.splitn(5, ' ');
        let date = parts.next().ok_or(ParseError::Missing("date"))?;
        let time = parts.next().ok_or(ParseError::Missing("time"))?;
        let router = parts.next().ok_or(ParseError::Missing("router"))?;
        let code = parts.next().ok_or(ParseError::Missing("code"))?;
        let detail = parts.next().unwrap_or("");
        if router.is_empty() {
            return Err(ParseError::Empty("router"));
        }
        if code.is_empty() {
            return Err(ParseError::Empty("code"));
        }
        let ts = Timestamp::parse(&format!("{date} {time}")).ok_or(ParseError::BadTimestamp)?;
        Ok(RawMessage {
            ts,
            router: router.to_owned(),
            code: ErrorCode::from(code),
            detail: detail.to_owned(),
            gt_event: None,
        })
    }
}

impl fmt::Display for RawMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

/// Sort a batch of messages by `(timestamp, router, code)`.
///
/// All mining components assume time-ordered input; the secondary keys make
/// the order deterministic for equal timestamps so experiments are exactly
/// reproducible from a seed.
pub fn sort_batch(batch: &mut [RawMessage]) {
    batch.sort_by(|a, b| {
        a.ts.cmp(&b.ts)
            .then_with(|| a.router.cmp(&b.router))
            .then_with(|| a.code.cmp(&b.code))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RawMessage {
        RawMessage::new(
            Timestamp::from_ymd_hms(2010, 1, 10, 0, 0, 15),
            "r1",
            ErrorCode::v1("LINEPROTO", 5, "UPDOWN"),
            "Line protocol on Interface Serial13/0.10/20:0, changed state to down",
        )
    }

    #[test]
    fn wire_roundtrip() {
        let m = sample();
        let line = m.to_line();
        assert_eq!(
            line,
            "2010-01-10 00:00:15 r1 LINEPROTO-5-UPDOWN Line protocol on Interface \
             Serial13/0.10/20:0, changed state to down"
        );
        let back = RawMessage::parse_line(&line).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn gt_tag_is_not_serialized_to_wire() {
        let m = sample().with_gt(42);
        let back = RawMessage::parse_line(&m.to_line()).unwrap();
        assert_eq!(back.gt_event, None);
    }

    #[test]
    fn parse_rejects_garbage_with_reasons() {
        assert_eq!(RawMessage::parse_line(""), Err(ParseError::Blank));
        assert_eq!(RawMessage::parse_line("   \n"), Err(ParseError::Blank));
        assert_eq!(
            RawMessage::parse_line("2010-01-10 00:00:15 r1"),
            Err(ParseError::Missing("code"))
        );
        assert_eq!(
            RawMessage::parse_line("2010-01-10"),
            Err(ParseError::Missing("time"))
        );
        assert_eq!(
            RawMessage::parse_line("not a timestamp r1 CODE detail"),
            Err(ParseError::BadTimestamp)
        );
        // Errors render as human-readable reasons for malformed-line reports.
        assert_eq!(
            ParseError::Missing("code").to_string(),
            "truncated line: missing code"
        );
        assert_eq!(ParseError::BadTimestamp.to_string(), "malformed timestamp");
    }

    #[test]
    fn empty_detail_is_allowed() {
        let line = "2010-01-10 00:00:15 r1 SYS-5-RESTART";
        let m = RawMessage::parse_line(line).unwrap();
        assert_eq!(m.detail, "");
    }

    #[test]
    fn sort_is_deterministic() {
        let t = Timestamp::from_ymd_hms(2010, 1, 10, 0, 0, 0);
        let mut batch = vec![
            RawMessage::new(t, "r2", ErrorCode::from("B-1-X"), "x"),
            RawMessage::new(t, "r1", ErrorCode::from("B-1-X"), "x"),
            RawMessage::new(t.plus(-5), "r9", ErrorCode::from("A-1-X"), "x"),
            RawMessage::new(t, "r1", ErrorCode::from("A-1-X"), "x"),
        ];
        sort_batch(&mut batch);
        assert_eq!(batch[0].router, "r9");
        assert_eq!(batch[1].router, "r1");
        assert_eq!(batch[1].code.as_str(), "A-1-X");
        assert_eq!(batch[2].code.as_str(), "B-1-X");
        assert_eq!(batch[3].router, "r2");
    }
}
