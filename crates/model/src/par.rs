//! Scoped-thread parallel execution: the [`Parallelism`] knob shared by
//! every stage of the offline learner and the online digester, plus small
//! deterministic fan-out helpers built on `std::thread::scope`.
//!
//! Design rules the rest of the workspace relies on:
//!
//! * `threads == 1` never spawns — callers get the exact sequential code
//!   path, byte for byte.
//! * Results are always merged back in **input order**, so a helper's
//!   output is independent of scheduling; determinism then only requires
//!   that the caller's per-item work is itself deterministic.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Thread-count configuration for parallel pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Parallelism {
    /// Worker threads to use; `1` selects the sequential path.
    pub threads: usize,
}

impl Default for Parallelism {
    /// One worker per available core (sequential if that cannot be
    /// determined).
    fn default() -> Self {
        Parallelism {
            threads: available_threads(),
        }
    }
}

impl Parallelism {
    /// Exactly the sequential path: no worker threads, no sharding.
    pub fn sequential() -> Self {
        Parallelism { threads: 1 }
    }

    /// A specific thread count (`0` is clamped to `1`).
    pub fn with_threads(threads: usize) -> Self {
        Parallelism {
            threads: threads.max(1),
        }
    }

    /// Whether this configuration runs sequentially.
    pub fn is_sequential(&self) -> bool {
        self.threads <= 1
    }
}

/// Worker threads available on this machine (≥ 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Apply `f` to every item, returning results in input order. With
/// `threads == 1` (or ≤ 1 item) this is a plain sequential loop on the
/// calling thread; otherwise items are pulled from a shared work queue by
/// scoped worker threads.
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if par.is_sequential() || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let n_workers = par.threads.min(items.len());
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            tagged.extend(h.join().expect("parallel worker panicked"));
        }
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Split `items` into at most `threads` near-equal contiguous chunks and
/// apply `f(chunk_start, chunk)` to each, returning per-chunk results in
/// input order. With `threads == 1` `f` is called once on the whole slice
/// from the calling thread.
pub fn par_chunks<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    if par.is_sequential() || items.len() <= 1 {
        return vec![f(0, items)];
    }
    let n_chunks = par.threads.min(items.len());
    let chunk_len = items.len().div_ceil(n_chunks);
    let chunks: Vec<(usize, &[T])> = items
        .chunks(chunk_len)
        .enumerate()
        .map(|(ci, c)| (ci * chunk_len, c))
        .collect();
    par_map(par, &chunks, |_, &(start, chunk)| f(start, chunk))
}

/// Run `f`, converting any panic into an `Err` carrying the rendered
/// panic payload. The payload is downcast to `String` / `&str` where
/// possible so injected-fault messages survive verbatim.
pub fn catch_panic<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(panic_message)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Like [`par_chunks`], but each chunk (shard) runs under
/// [`catch_panic`]: a panicking shard yields `Err(panic message)` for
/// that chunk instead of unwinding the worker thread and aborting the
/// whole fan-out. Returns `(chunk_start, result)` pairs in input order;
/// chunk starts are contiguous, so a caller can recover each chunk's
/// extent from the next start (or `items.len()` for the last chunk) and
/// retry a poisoned shard sequentially.
pub fn par_chunks_isolated<T, R, F>(
    par: Parallelism,
    items: &[T],
    f: F,
) -> Vec<(usize, Result<R, String>)>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    // The catch happens *inside* the worker closure, so scoped threads
    // never unwind and the `join()` in `par_map` stays infallible.
    par_chunks(par, items, |start, chunk| {
        (start, catch_panic(|| f(start, chunk)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 4, 8] {
            let out = par_map(Parallelism::with_threads(threads), &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sequential_runs_on_calling_thread() {
        let me = std::thread::current().id();
        let items = [1, 2, 3, 4];
        let out = par_map(Parallelism::sequential(), &items, |_, &x| {
            assert_eq!(std::thread::current().id(), me);
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4, 5]);
    }

    #[test]
    fn chunks_cover_everything_once() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 3, 8, 200] {
            let chunks = par_chunks(Parallelism::with_threads(threads), &items, |start, c| {
                (start, c.to_vec())
            });
            let mut flat = Vec::new();
            for (start, c) in chunks {
                assert_eq!(flat.len(), start, "chunk starts are contiguous");
                flat.extend(c);
            }
            assert_eq!(flat, items);
        }
    }

    #[test]
    fn zero_threads_clamps_to_sequential() {
        let p = Parallelism::with_threads(0);
        assert!(p.is_sequential());
        assert!(Parallelism::default().threads >= 1);
    }

    #[test]
    fn catch_panic_preserves_string_payloads() {
        assert_eq!(catch_panic(|| 7), Ok(7));
        let err = catch_panic(|| -> u32 { panic!("boom {}", 42) });
        assert_eq!(err, Err("boom 42".to_string()));
        let err = catch_panic(|| -> u32 { panic!("static str") });
        assert_eq!(err, Err("static str".to_string()));
    }

    #[test]
    fn isolated_chunks_survive_a_poisoned_shard() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [1, 3, 8] {
            let out =
                par_chunks_isolated(Parallelism::with_threads(threads), &items, |_, chunk| {
                    if chunk.contains(&41) {
                        panic!("poisoned shard");
                    }
                    chunk.iter().sum::<usize>()
                });
            // Starts are in order beginning at 0, and exactly one chunk
            // carries the panic (41 lives in a single shard).
            assert_eq!(out[0].0, 0);
            assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
            let errs: Vec<&String> = out.iter().filter_map(|(_, r)| r.as_ref().err()).collect();
            assert_eq!(errs, vec!["poisoned shard"], "threads={threads}");
        }
    }
}
