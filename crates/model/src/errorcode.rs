//! Syslog message type ("error code") handling.
//!
//! The error code is the only semi-structured field in a raw router syslog
//! message. Its shape is vendor-specific:
//!
//! * vendor **V1** (Cisco-style): `FACILITY-<severity digit>-MNEMONIC`,
//!   e.g. `LINK-3-UPDOWN`, `SYS-1-CPURISINGTHRESHOLD`;
//! * vendor **V2** (ALU-style): `FACILITY-SEVERITYWORD-name`,
//!   e.g. `SNMP-WARNING-linkDown`, `SVCMGR-MAJOR-sapPortStateChangeProcessed`.
//!
//! The paper stresses that the vendor-assigned severity must **not** be used
//! for event ranking (§2); we still parse it so the severity-baseline ranker
//! and filtering-by-level can be implemented and compared against.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A message type / error code, stored verbatim.
///
/// Codes are compared byte-for-byte; accessor methods lazily decompose the
/// vendor-specific parts.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ErrorCode(pub String);

/// Vendor-assigned severity of a message, normalized across vendors.
///
/// V1 encodes severity as a digit 0..=7 (smaller = more severe, syslog
/// convention); V2 uses words. `rank()` maps both onto the V1 numeric scale
/// so they can be compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Numeric severity level (vendor V1), 0 = emergency .. 7 = debug.
    Level(u8),
    /// `CRITICAL` (V2).
    Critical,
    /// `MAJOR` (V2).
    Major,
    /// `MINOR` (V2).
    Minor,
    /// `WARNING` (V2).
    Warning,
    /// `INFO` (V2).
    Info,
}

impl Severity {
    /// Severity on the numeric 0 (worst) .. 7 (chattiest) scale.
    pub fn rank(self) -> u8 {
        match self {
            Severity::Level(n) => n.min(7),
            Severity::Critical => 2,
            Severity::Major => 3,
            Severity::Minor => 4,
            Severity::Warning => 5,
            Severity::Info => 6,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Level(n) => write!(f, "{n}"),
            Severity::Critical => write!(f, "CRITICAL"),
            Severity::Major => write!(f, "MAJOR"),
            Severity::Minor => write!(f, "MINOR"),
            Severity::Warning => write!(f, "WARNING"),
            Severity::Info => write!(f, "INFO"),
        }
    }
}

impl ErrorCode {
    /// Build a vendor-V1 code `FACILITY-<level>-MNEMONIC`.
    pub fn v1(facility: &str, level: u8, mnemonic: &str) -> Self {
        ErrorCode(format!("{facility}-{level}-{mnemonic}"))
    }

    /// Build a vendor-V2 code `FACILITY-SEVERITYWORD-name`.
    pub fn v2(facility: &str, severity: &str, name: &str) -> Self {
        ErrorCode(format!("{facility}-{severity}-{name}"))
    }

    /// The raw code text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The facility (leading segment before the first `-`), e.g. `LINK`.
    pub fn facility(&self) -> &str {
        self.0.split('-').next().unwrap_or("")
    }

    /// The trailing mnemonic/name after the second `-`, e.g. `UPDOWN`.
    ///
    /// Codes with fewer than three segments return the last segment.
    pub fn mnemonic(&self) -> &str {
        self.0.splitn(3, '-').last().unwrap_or("")
    }

    /// The vendor severity embedded in the middle segment, if recognized.
    pub fn severity(&self) -> Option<Severity> {
        let mid = self.0.split('-').nth(1)?;
        if let Ok(n) = mid.parse::<u8>() {
            if n <= 7 {
                return Some(Severity::Level(n));
            }
            return None;
        }
        match mid {
            "CRITICAL" => Some(Severity::Critical),
            "MAJOR" => Some(Severity::Major),
            "MINOR" => Some(Severity::Minor),
            "WARNING" => Some(Severity::Warning),
            "INFO" => Some(Severity::Info),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ErrorCode {
    fn from(s: &str) -> Self {
        ErrorCode(s.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1_code_decomposes() {
        let c = ErrorCode::v1("LINK", 3, "UPDOWN");
        assert_eq!(c.as_str(), "LINK-3-UPDOWN");
        assert_eq!(c.facility(), "LINK");
        assert_eq!(c.mnemonic(), "UPDOWN");
        assert_eq!(c.severity(), Some(Severity::Level(3)));
    }

    #[test]
    fn v2_code_decomposes() {
        let c = ErrorCode::v2("SVCMGR", "MAJOR", "sapPortStateChangeProcessed");
        assert_eq!(c.facility(), "SVCMGR");
        assert_eq!(c.mnemonic(), "sapPortStateChangeProcessed");
        assert_eq!(c.severity(), Some(Severity::Major));
        assert_eq!(c.severity().unwrap().rank(), 3);
    }

    #[test]
    fn severity_ranks_are_comparable_across_vendors() {
        // V1 level 1 (alert) is more severe than V2 MAJOR.
        assert!(Severity::Level(1).rank() < Severity::Major.rank());
        // V2 WARNING is less severe than V1 level 3 (error).
        assert!(Severity::Warning.rank() > Severity::Level(3).rank());
        // Out-of-range levels clamp.
        assert_eq!(Severity::Level(200).rank(), 7);
    }

    #[test]
    fn unknown_middle_segment_has_no_severity() {
        assert_eq!(ErrorCode::from("SNMP-ODD-linkDown").severity(), None);
        assert_eq!(ErrorCode::from("SNMP-42-linkDown").severity(), None);
        assert_eq!(ErrorCode::from("PLAIN").severity(), None);
    }

    #[test]
    fn mnemonic_with_embedded_dashes_is_kept_whole() {
        let c = ErrorCode::from("OSPF-5-ADJCHG-EXTRA");
        assert_eq!(c.mnemonic(), "ADJCHG-EXTRA");
    }
}
