//! Minimal civil-time handling for syslog timestamps.
//!
//! Router syslogs in the paper carry second-granularity timestamps of the
//! form `2010-01-10 00:00:15`, with all router clocks NTP-synchronized.
//! We therefore model time as plain Unix seconds and provide exact
//! civil-date conversions (Howard Hinnant's `days_from_civil` algorithm)
//! so no external date crate is needed.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Seconds in one minute.
pub const MINUTE: i64 = 60;
/// Seconds in one hour.
pub const HOUR: i64 = 3600;
/// Seconds in one day.
pub const DAY: i64 = 86_400;
/// Seconds in one week.
pub const WEEK: i64 = 7 * DAY;

/// A second-granularity point in time (Unix seconds, UTC).
///
/// Ordering, arithmetic and formatting match what the paper's pipeline
/// needs: messages are sorted by timestamp, interarrival gaps are computed
/// by subtraction, and digests print `YYYY-MM-DD HH:MM:SS`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// Construct from a civil date and time-of-day (UTC).
    ///
    /// `month` is 1..=12 and `day` 1..=31; out-of-range fields are the
    /// caller's bug and will simply produce the arithmetically shifted
    /// instant (same behaviour as `timegm`).
    pub fn from_ymd_hms(year: i32, month: u32, day: u32, h: u32, m: u32, s: u32) -> Self {
        let days = days_from_civil(year, month, day);
        Timestamp(days * DAY + i64::from(h) * HOUR + i64::from(m) * MINUTE + i64::from(s))
    }

    /// The civil `(year, month, day, hour, minute, second)` of this instant.
    pub fn to_civil(self) -> (i32, u32, u32, u32, u32, u32) {
        let days = self.0.div_euclid(DAY);
        let secs = self.0.rem_euclid(DAY);
        let (y, mo, d) = civil_from_days(days);
        let h = (secs / HOUR) as u32;
        let mi = ((secs % HOUR) / MINUTE) as u32;
        let s = (secs % MINUTE) as u32;
        (y, mo, d, h, mi, s)
    }

    /// Seconds elapsed since `earlier` (negative if `self` is earlier).
    pub fn seconds_since(self, earlier: Timestamp) -> i64 {
        self.0 - earlier.0
    }

    /// This instant shifted forward by `secs` seconds.
    #[must_use]
    pub fn plus(self, secs: i64) -> Timestamp {
        Timestamp(self.0 + secs)
    }

    /// The midnight at the start of this instant's civil day.
    pub fn start_of_day(self) -> Timestamp {
        Timestamp(self.0.div_euclid(DAY) * DAY)
    }

    /// Zero-based day index relative to `epoch_start` (used to bucket a
    /// multi-day run into per-day series, as in Figure 12).
    pub fn day_index(self, epoch_start: Timestamp) -> i64 {
        (self.0 - epoch_start.0).div_euclid(DAY)
    }

    /// Parse `YYYY-MM-DD HH:MM:SS`. Returns `None` on any malformation.
    pub fn parse(text: &str) -> Option<Self> {
        let text = text.trim();
        let (date, time) = text.split_once(' ')?;
        let mut dit = date.split('-');
        let year: i32 = dit.next()?.parse().ok()?;
        let month: u32 = dit.next()?.parse().ok()?;
        let day: u32 = dit.next()?.parse().ok()?;
        if dit.next().is_some() {
            return None;
        }
        let mut tit = time.split(':');
        let h: u32 = tit.next()?.parse().ok()?;
        let m: u32 = tit.next()?.parse().ok()?;
        let s: u32 = tit.next()?.parse().ok()?;
        if tit.next().is_some() || month == 0 || month > 12 || day == 0 || day > 31 {
            return None;
        }
        if h > 23 || m > 59 || s > 59 {
            return None;
        }
        Some(Self::from_ymd_hms(year, month, day, h, m, s))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d, h, mi, s) = self.to_civil();
        write!(f, "{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{s:02}")
    }
}

/// Days from 1970-01-01 to the given civil date (proleptic Gregorian).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date from days since 1970-01-01 (inverse of [`days_from_civil`]).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(Timestamp::from_ymd_hms(1970, 1, 1, 0, 0, 0).0, 0);
    }

    #[test]
    fn paper_example_timestamp_roundtrips() {
        let ts = Timestamp::from_ymd_hms(2010, 1, 10, 0, 0, 15);
        assert_eq!(ts.to_string(), "2010-01-10 00:00:15");
        assert_eq!(Timestamp::parse("2010-01-10 00:00:15"), Some(ts));
    }

    #[test]
    fn civil_roundtrip_across_leap_years() {
        for &(y, m, d) in &[
            (2000, 2, 29),
            (2009, 12, 31),
            (2010, 1, 1),
            (1999, 3, 1),
            (2100, 2, 28),
            (1969, 12, 31),
        ] {
            let ts = Timestamp::from_ymd_hms(y, m, d, 23, 59, 59);
            let (yy, mm, dd, h, mi, s) = ts.to_civil();
            assert_eq!((yy, mm, dd, h, mi, s), (y, m, d, 23, 59, 59));
        }
    }

    #[test]
    fn day_arithmetic() {
        let start = Timestamp::from_ymd_hms(2009, 12, 1, 0, 0, 0);
        let later = Timestamp::from_ymd_hms(2009, 12, 3, 5, 0, 0);
        assert_eq!(later.day_index(start), 2);
        assert_eq!(
            later.start_of_day(),
            Timestamp::from_ymd_hms(2009, 12, 3, 0, 0, 0)
        );
        assert_eq!(later.seconds_since(start), 2 * DAY + 5 * HOUR);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "2010-01-10",
            "2010-01-10 00:00",
            "2010-13-10 00:00:15",
            "2010-01-32 00:00:15",
            "2010-01-10 24:00:15",
            "2010-01-10 00:61:15",
            "2010-01-10 00:00:75",
            "2010-01-10-2 00:00:00",
            "x010-01-10 00:00:15",
        ] {
            assert!(Timestamp::parse(bad).is_none(), "should reject {bad:?}");
        }
    }

    #[test]
    fn negative_times_before_epoch() {
        let ts = Timestamp::from_ymd_hms(1969, 12, 31, 23, 59, 59);
        assert_eq!(ts.0, -1);
        assert_eq!(ts.to_string(), "1969-12-31 23:59:59");
    }
}
