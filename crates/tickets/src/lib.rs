//! # sd-tickets
//!
//! Trouble-ticket substrate and the §5.3 validation: the paper verifies
//! that SyslogDigest "does not miss important incidents" by taking the 30
//! most-investigated trouble tickets and checking each matches a digest
//! event ranked in the top 5 %. Real ticket systems are proprietary, so
//! tickets are derived from the simulator's ground-truth events: each
//! ticketed incident gets a creation time inside the event, a location at
//! state granularity (tickets say "TX", not an interface), and an update
//! count that grows with operational importance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sd_model::{GroundTruthId, Timestamp};
use sd_netsim::Dataset;
use serde::{Deserialize, Serialize};
use syslogdigest::{DomainKnowledge, NetworkEvent};

/// One trouble ticket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ticket {
    /// Unique case identifier.
    pub case_id: u64,
    /// Creation time (within the underlying incident).
    pub created: Timestamp,
    /// Times the ticket was investigated/updated (proxy for importance).
    pub updates: Vec<Timestamp>,
    /// Location at state granularity (e.g. `TX`).
    pub state: String,
    /// Free-text event type.
    pub kind: String,
    /// Hidden ground-truth link (evaluation only; a real ticket system
    /// has no such field).
    pub gt_event: GroundTruthId,
}

impl Ticket {
    /// Number of investigations — the §5.3 ranking key.
    pub fn n_updates(&self) -> usize {
        self.updates.len()
    }
}

/// Generate tickets for a dataset's online period.
///
/// Ticketing probability and update count both grow with the event's
/// importance, so "most-updated" ≈ "most important", as the paper assumes.
pub fn generate_tickets(data: &Dataset, seed: u64) -> Vec<Ticket> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x71c4_e75a);
    let _online_start = data.spec.online_start();

    // Index the online-period alarm messages of each ground-truth event:
    // a NOC cuts a case off a concrete alarm, so the ticket's creation
    // time and location come from one of the incident's own messages.
    let mut alarms: std::collections::HashMap<GroundTruthId, Vec<(Timestamp, &str)>> =
        std::collections::HashMap::new();
    for m in data.online() {
        if let Some(gt) = m.gt_event {
            alarms
                .entry(gt)
                .or_default()
                .push((m.ts, m.router.as_str()));
        }
    }
    let state_of: std::collections::HashMap<&str, &str> = data
        .topology
        .routers
        .iter()
        .map(|r| (r.name.as_str(), r.state.as_str()))
        .collect();

    let mut out = Vec::new();
    let mut case_id = 50_000u64;
    for ev in &data.gt_events {
        let Some(evt_alarms) = alarms.get(&ev.id) else {
            continue;
        };
        let p = (ev.importance - 0.25).clamp(0.0, 0.9);
        if !rng.gen_bool(p) {
            continue;
        }
        // The triggering alarm: early in the incident (first quarter of
        // its online messages).
        let pick = rng.gen_range(0..evt_alarms.len().div_ceil(4));
        let (created, router_name) = evt_alarms[pick];
        let n_updates =
            1 + (ev.importance * 10.0) as usize + rng.gen_range(0..3) + ev.routers.len();
        let mut updates = Vec::with_capacity(n_updates);
        let mut t = created;
        for _ in 0..n_updates {
            t = t.plus(rng.gen_range(600..14_400));
            updates.push(t);
        }
        case_id += rng.gen_range(1..50);
        out.push(Ticket {
            case_id,
            created,
            updates,
            state: state_of.get(router_name).copied().unwrap_or("").to_owned(),
            kind: ev.kind.label().to_owned(),
            gt_event: ev.id,
        });
    }
    out
}

/// Top `n` tickets by update count (the paper's importance proxy).
pub fn top_tickets(tickets: &[Ticket], n: usize) -> Vec<&Ticket> {
    let mut sorted: Vec<&Ticket> = tickets.iter().collect();
    sorted.sort_by(|a, b| {
        b.n_updates()
            .cmp(&a.n_updates())
            .then(a.case_id.cmp(&b.case_id))
    });
    sorted.truncate(n);
    sorted
}

/// §5.3 match predicate: the digest event's duration covers the ticket's
/// creation time, and the event's location is consistent with the ticket's
/// at state granularity.
pub fn matches(k: &DomainKnowledge, ticket: &Ticket, event: &NetworkEvent) -> bool {
    if ticket.created < event.start || ticket.created > event.end {
        return false;
    }
    event
        .routers
        .iter()
        .any(|r| k.dict.state_of(*r) == ticket.state)
}

/// Result of correlating top tickets with a ranked digest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TicketMatchReport {
    /// Tickets considered.
    pub n_tickets: usize,
    /// Tickets matched by *some* digest event.
    pub n_matched: usize,
    /// Tickets whose best match ranks in the top `percentile` of events.
    pub n_matched_top: usize,
    /// The rank percentile threshold used (paper: 5 %).
    pub percentile: f64,
    /// Best (smallest) matching rank per ticket, `usize::MAX` if unmatched.
    pub best_ranks: Vec<usize>,
}

/// Correlate `tickets` against a rank-ordered digest event list.
pub fn correlate(
    k: &DomainKnowledge,
    tickets: &[&Ticket],
    events: &[NetworkEvent],
    percentile: f64,
) -> TicketMatchReport {
    let cutoff = ((events.len() as f64 * percentile).ceil() as usize).max(1);
    let mut n_matched = 0usize;
    let mut n_matched_top = 0usize;
    let mut best_ranks = Vec::with_capacity(tickets.len());
    for t in tickets {
        let best = events
            .iter()
            .enumerate()
            .find(|(_, e)| matches(k, t, e))
            .map(|(rank, _)| rank);
        match best {
            None => best_ranks.push(usize::MAX),
            Some(rank) => {
                n_matched += 1;
                if rank < cutoff {
                    n_matched_top += 1;
                }
                best_ranks.push(rank);
            }
        }
    }
    TicketMatchReport {
        n_tickets: tickets.len(),
        n_matched,
        n_matched_top,
        percentile,
        best_ranks,
    }
}

/// Convenience: generate tickets, digest the online period, and correlate
/// the top `n` tickets at `percentile` — the whole §5.3 experiment.
pub fn run_ticket_experiment(
    data: &Dataset,
    k: &DomainKnowledge,
    n: usize,
    percentile: f64,
    seed: u64,
) -> TicketMatchReport {
    let tickets = generate_tickets(data, seed);
    let top = top_tickets(&tickets, n);
    let digest = syslogdigest::digest(k, data.online(), &syslogdigest::GroupingConfig::default());
    correlate(k, &top, &digest.events, percentile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_netsim::DatasetSpec;
    use syslogdigest::offline::{learn, OfflineConfig};

    fn setup() -> (Dataset, DomainKnowledge) {
        let d = Dataset::generate(DatasetSpec::preset_b().scaled(0.12));
        let k = learn(&d.configs, d.train(), &OfflineConfig::dataset_b());
        (d, k)
    }

    #[test]
    fn tickets_are_generated_for_important_online_events() {
        let (d, _k) = setup();
        let tickets = generate_tickets(&d, 7);
        assert!(!tickets.is_empty());
        let online_start = d.spec.online_start();
        for t in &tickets {
            let ev = d.gt_events.iter().find(|e| e.id == t.gt_event).unwrap();
            assert!(ev.end >= online_start);
            assert!(t.created >= ev.start && t.created <= ev.end);
            assert!(t.created >= online_start);
            assert!(!t.state.is_empty());
            assert!(t.n_updates() >= 1);
        }
        // Determinism.
        let again = generate_tickets(&d, 7);
        assert_eq!(tickets.len(), again.len());
        assert_eq!(tickets[0].case_id, again[0].case_id);
    }

    #[test]
    fn top_tickets_sorted_by_updates() {
        let (d, _k) = setup();
        let tickets = generate_tickets(&d, 7);
        let top = top_tickets(&tickets, 10);
        for w in top.windows(2) {
            assert!(w[0].n_updates() >= w[1].n_updates());
        }
        assert!(top.len() <= 10);
    }

    #[test]
    fn important_tickets_match_high_ranked_events() {
        let (d, k) = setup();
        let report = run_ticket_experiment(&d, &k, 10, 0.10, 7);
        assert!(report.n_tickets > 0);
        // Every important ticket must match *some* event (SyslogDigest
        // "does not miss important incidents").
        assert_eq!(
            report.n_matched, report.n_tickets,
            "unmatched tickets: ranks {:?}",
            report.best_ranks
        );
        // Rank quality at this toy scale (a handful of events, so a 10%
        // cutoff is 1-2 events) only admits a coarse check: at least one
        // important ticket hits the very top, and the median matched rank
        // sits in the upper half. The full-scale §5.3 experiment binary
        // (exp_tickets) measures the paper's top-5% criterion.
        assert!(report.n_matched_top >= 1, "ranks {:?}", report.best_ranks);
        let mut ranks = report.best_ranks.clone();
        ranks.sort_unstable();
        let dg = syslogdigest::digest(&k, d.online(), &syslogdigest::GroupingConfig::default());
        assert!(
            ranks[ranks.len() / 2] <= dg.events.len() / 2,
            "median rank {} of {}",
            ranks[ranks.len() / 2],
            dg.events.len()
        );
    }

    #[test]
    fn match_requires_time_and_state() {
        let (d, k) = setup();
        let tickets = generate_tickets(&d, 7);
        let t = &tickets[0];
        let ev_template = NetworkEvent {
            id: 0,
            start: t.created.plus(-100),
            end: t.created.plus(100),
            score: 1.0,
            routers: vec![],
            location_summary: String::new(),
            label: String::new(),
            signatures: vec![],
            message_idxs: vec![],
        };
        // No routers -> no state match.
        assert!(!matches(&k, t, &ev_template));
        // Wrong time window.
        let router = d
            .topology
            .routers
            .iter()
            .find(|r| r.state == t.state)
            .expect("ticket state comes from a real router");
        let rid = k.dict.router_id(&router.name).unwrap();
        let late = NetworkEvent {
            start: t.created.plus(10),
            end: t.created.plus(100),
            routers: vec![rid],
            ..ev_template.clone()
        };
        assert!(!matches(&k, t, &late));
        // Right time + right state.
        let good = NetworkEvent {
            routers: vec![rid],
            ..ev_template
        };
        assert!(matches(&k, t, &good));
    }
}
