//! Property tests for co-occurrence counting and rule mining.

use proptest::prelude::*;
use sd_model::{RouterId, TemplateId, Timestamp};
use sd_rules::{mine, CoOccurrence, MineConfig, RuleBase, StreamItem};

fn stream() -> impl Strategy<Value = Vec<StreamItem>> {
    proptest::collection::vec((0i64..50_000, 0u32..4, 0u32..8), 1..400).prop_map(|items| {
        let mut s: Vec<StreamItem> = items
            .into_iter()
            .map(|(ts, r, t)| (Timestamp(ts), RouterId(r), TemplateId(t)))
            .collect();
        s.sort_by_key(|&(ts, r, _)| (ts, r.0));
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Counting invariants: one transaction per message; every support and
    /// confidence lies in [0, 1]; an item's pair count never exceeds its
    /// item count.
    #[test]
    fn counting_invariants(s in stream(), w in 1i64..600) {
        let co = CoOccurrence::count(&s, w);
        prop_assert_eq!(co.n_transactions, s.len() as u64);
        for (&t, &c) in &co.item_counts {
            prop_assert!(c <= co.n_transactions);
            let supp = co.support(TemplateId(t));
            prop_assert!((0.0..=1.0).contains(&supp));
        }
        for (&(a, b), &c) in &co.pair_counts {
            prop_assert!(a < b, "pair keys normalized");
            prop_assert!(c <= *co.item_counts.get(&a).unwrap());
            prop_assert!(c <= *co.item_counts.get(&b).unwrap());
        }
    }

    /// Wider windows can only see more co-occurrence: per-pair counts are
    /// monotone in W.
    #[test]
    fn pair_counts_monotone_in_window(s in stream()) {
        let narrow = CoOccurrence::count(&s, 10);
        let wide = CoOccurrence::count(&s, 100);
        for (k, &c) in &narrow.pair_counts {
            let cw = wide.pair_counts.get(k).copied().unwrap_or(0);
            prop_assert!(cw >= c, "pair {k:?}: wide {cw} < narrow {c}");
        }
    }

    /// Every mined rule satisfies the thresholds it was mined with.
    #[test]
    fn mined_rules_respect_thresholds(
        s in stream(),
        sp in 0.0f64..0.3,
        conf in 0.3f64..0.95,
    ) {
        let co = CoOccurrence::count(&s, 60);
        let rs = mine(&co, &MineConfig { sp_min: sp, conf_min: conf });
        for r in rs.rules() {
            prop_assert!(r.support >= sp, "rule supp {} < {}", r.support, sp);
            prop_assert!(r.confidence >= conf);
            prop_assert!(rs.related(r.x, r.y));
            prop_assert!(rs.related(r.y, r.x), "relatedness is symmetric");
        }
    }

    /// Updating a base with the same week twice is idempotent: the second
    /// application adds and deletes nothing.
    #[test]
    fn weekly_update_idempotent(s in stream()) {
        let co = CoOccurrence::count(&s, 60);
        let cfg = MineConfig { sp_min: 0.01, conf_min: 0.6 };
        let mut base = RuleBase::new();
        base.update(&co, &cfg);
        let second = base.update(&co, &cfg);
        prop_assert_eq!(second.added, 0);
        prop_assert_eq!(second.deleted, 0);
    }
}
