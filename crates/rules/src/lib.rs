//! # sd-rules
//!
//! Association-rule mining over syslog template streams (§4.1.4): per-router
//! sliding-window [`transactions::CoOccurrence`] counting, pairwise
//! support/confidence [`mine`]-ing into a [`RuleSet`], and the weekly
//! conservative add/delete [`RuleBase`] maintenance behind Figures 8–9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mine;
pub mod transactions;
pub mod update;

pub use mine::{coverage, mine, MineConfig, Rule, RuleSet};
pub use transactions::{CoOccurrence, StreamItem};
pub use update::{RuleBase, UpdateStats};
