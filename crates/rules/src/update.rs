//! Weekly incremental rule maintenance (§4.1.4, Figures 8–9).
//!
//! Each week the rule base is re-evaluated against that week's
//! co-occurrence counts: new qualifying rules are **added**; an existing
//! rule is **deleted** only when its updated confidence falls below the
//! threshold *while its antecedent actually occurred* — the paper's
//! conservative deletion ("we do not delete the rules because X are not
//! common in this updating period").

use crate::mine::{mine, MineConfig, Rule, RuleSet};
use crate::transactions::CoOccurrence;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-week update statistics (the Figure 8/9 series).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Rules added this week.
    pub added: usize,
    /// Rules deleted this week.
    pub deleted: usize,
    /// Total rules after the update.
    pub total: usize,
}

/// The evolving rule knowledge base.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RuleBase {
    rules: HashMap<(u32, u32), Rule>,
}

impl RuleBase {
    /// An empty base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rules currently held.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the base is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Apply one week's counts.
    pub fn update(&mut self, co: &CoOccurrence, cfg: &MineConfig) -> UpdateStats {
        let fresh = mine(co, cfg);
        let mut added = 0usize;
        for r in fresh.rules() {
            let key = (r.x.0, r.y.0);
            if !self.rules.contains_key(&key) {
                added += 1;
            }
            // Insert or refresh the stored support/confidence.
            self.rules.insert(key, r.clone());
        }
        // Conservative deletion.
        let mut to_delete = Vec::new();
        for (key, r) in &self.rules {
            match co.confidence(r.x, r.y) {
                Some(conf) if conf < cfg.conf_min => to_delete.push(*key),
                // Antecedent absent this week (None): keep — can't judge.
                _ => {}
            }
        }
        let deleted = to_delete.len();
        for k in to_delete {
            self.rules.remove(&k);
        }
        UpdateStats {
            added,
            deleted,
            total: self.rules.len(),
        }
    }

    /// Snapshot the current rules as a queryable [`RuleSet`].
    pub fn snapshot(&self) -> RuleSet {
        let mut rules: Vec<Rule> = self.rules.values().cloned().collect();
        rules.sort_by(|p, q| p.x.cmp(&q.x).then(p.y.cmp(&q.y)));
        RuleSet::new(rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transactions::StreamItem;
    use sd_model::{RouterId, TemplateId, Timestamp};

    fn correlated_week(base: i64) -> Vec<StreamItem> {
        let mut s = Vec::new();
        for i in 0..200 {
            s.push((Timestamp(base + i * 100), RouterId(0), TemplateId(1)));
            s.push((Timestamp(base + i * 100 + 3), RouterId(0), TemplateId(2)));
        }
        s
    }

    fn decorrelated_week(base: i64) -> Vec<StreamItem> {
        let mut s = Vec::new();
        for i in 0..200 {
            s.push((Timestamp(base + i * 100), RouterId(0), TemplateId(1)));
            // Template 2 now far from template 1.
            s.push((Timestamp(base + i * 100 + 50), RouterId(0), TemplateId(2)));
        }
        s
    }

    fn without_antecedent(base: i64) -> Vec<StreamItem> {
        (0..200)
            .map(|i| (Timestamp(base + i * 100), RouterId(0), TemplateId(9)))
            .collect()
    }

    const CFG: MineConfig = MineConfig {
        sp_min: 0.001,
        conf_min: 0.8,
    };

    #[test]
    fn add_then_stable_then_delete() {
        let mut base = RuleBase::new();
        let w1 = base.update(&CoOccurrence::count(&correlated_week(0), 10), &CFG);
        assert!(w1.added >= 1, "{w1:?}"); // 1 => 2 qualifies (2 => 1 is at conf 0.5)
        assert_eq!(w1.deleted, 0);

        let w2 = base.update(&CoOccurrence::count(&correlated_week(1_000_000), 10), &CFG);
        assert_eq!(w2.added, 0, "{w2:?}");
        assert_eq!(w2.deleted, 0);
        assert_eq!(w2.total, w1.total);

        let w3 = base.update(
            &CoOccurrence::count(&decorrelated_week(2_000_000), 10),
            &CFG,
        );
        assert!(w3.deleted >= 1, "{w3:?}");
        assert_eq!(w3.total, 0);
    }

    #[test]
    fn conservative_deletion_keeps_rules_when_antecedent_absent() {
        let mut base = RuleBase::new();
        base.update(&CoOccurrence::count(&correlated_week(0), 10), &CFG);
        let before = base.len();
        let w = base.update(
            &CoOccurrence::count(&without_antecedent(1_000_000), 10),
            &CFG,
        );
        assert_eq!(w.deleted, 0, "{w:?}");
        assert_eq!(base.len(), before);
    }

    #[test]
    fn snapshot_reflects_current_rules() {
        let mut base = RuleBase::new();
        base.update(&CoOccurrence::count(&correlated_week(0), 10), &CFG);
        let rs = base.snapshot();
        assert!(rs.related(TemplateId(1), TemplateId(2)));
        assert_eq!(rs.len(), base.len());
    }

    #[test]
    fn refresh_updates_confidence_values() {
        let mut base = RuleBase::new();
        base.update(&CoOccurrence::count(&correlated_week(0), 10), &CFG);
        // Second week with slightly weaker correlation (but above conf).
        let mut week2 = correlated_week(1_000_000);
        for i in 0..20 {
            week2.push((Timestamp(2_000_000 + i * 100), RouterId(0), TemplateId(1)));
        }
        base.update(&CoOccurrence::count(&week2, 10), &CFG);
        let rs = base.snapshot();
        let r12 = rs
            .rules()
            .iter()
            .find(|r| r.x == TemplateId(1) && r.y == TemplateId(2))
            .unwrap();
        assert!(r12.confidence < 1.0 && r12.confidence >= 0.8);
    }
}
