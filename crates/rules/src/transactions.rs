//! Sliding-window transaction construction and co-occurrence counting.
//!
//! §4.1.4: "we use a sliding window W. It starts with the first message and
//! slides message by message. Each time there is one transaction" whose
//! items are the message templates inside the window. Because association
//! is only meaningful between messages "close enough in time and at
//! related locations", windows are built **per router** — the same
//! constraint rule-based grouping later enforces (same router + spatial
//! match). One counting pass per window size serves every `(SPmin,
//! Confmin)` combination, which is what makes the Figure 6/7 sweeps cheap.

use sd_model::{par_map, Parallelism, RouterId, TemplateId, Timestamp};
use std::collections::HashMap;

/// One event in the mining stream: `(time, router, template)`.
pub type StreamItem = (Timestamp, RouterId, TemplateId);

/// Counts from one pass over the stream with one window size.
#[derive(Debug, Clone, Default)]
pub struct CoOccurrence {
    /// Total number of transactions (= number of messages).
    pub n_transactions: u64,
    /// Per-item transaction counts (transactions whose window contains the
    /// item).
    pub item_counts: HashMap<u32, u64>,
    /// Unordered pair counts, keyed `(min, max)`.
    pub pair_counts: HashMap<(u32, u32), u64>,
}

impl CoOccurrence {
    /// Support of a single template.
    pub fn support(&self, t: TemplateId) -> f64 {
        if self.n_transactions == 0 {
            return 0.0;
        }
        *self.item_counts.get(&t.0).unwrap_or(&0) as f64 / self.n_transactions as f64
    }

    /// Support of an unordered pair.
    pub fn pair_support(&self, a: TemplateId, b: TemplateId) -> f64 {
        if self.n_transactions == 0 {
            return 0.0;
        }
        let key = (a.0.min(b.0), a.0.max(b.0));
        *self.pair_counts.get(&key).unwrap_or(&0) as f64 / self.n_transactions as f64
    }

    /// Confidence of `x ⇒ y`.
    pub fn confidence(&self, x: TemplateId, y: TemplateId) -> Option<f64> {
        let sx = *self.item_counts.get(&x.0).unwrap_or(&0);
        if sx == 0 {
            return None;
        }
        let key = (x.0.min(y.0), x.0.max(y.0));
        let sxy = *self.pair_counts.get(&key).unwrap_or(&0);
        Some(sxy as f64 / sx as f64)
    }

    /// Count transactions over a time-sorted stream with window `w_secs`.
    pub fn count(stream: &[StreamItem], w_secs: i64) -> CoOccurrence {
        Self::count_par(stream, w_secs, Parallelism::sequential())
    }

    /// [`CoOccurrence::count`] with the per-router passes running on
    /// `par.threads` scoped threads. Windows never span routers, so each
    /// router's counts are independent; the per-router results are
    /// sum-merged in sorted router order (all merges are `u64` additions),
    /// giving counts identical to the sequential pass for every thread
    /// count.
    pub fn count_par(stream: &[StreamItem], w_secs: i64, par: Parallelism) -> CoOccurrence {
        // Split per router, preserving time order.
        let mut per_router: HashMap<u32, Vec<(Timestamp, u32)>> = HashMap::new();
        for &(ts, r, t) in stream {
            per_router.entry(r.0).or_default().push((ts, t.0));
        }
        let mut routers: Vec<u32> = per_router.keys().copied().collect();
        routers.sort_unstable();
        let shards: Vec<Vec<(Timestamp, u32)>> = routers
            .iter()
            .map(|r| per_router.remove(r).expect("router shard"))
            .collect();
        let parts = par_map(par, &shards, |_, msgs| {
            let mut co = CoOccurrence::default();
            co.count_router(msgs, w_secs);
            co
        });
        let mut co = CoOccurrence::default();
        for p in parts {
            co.merge(p);
        }
        co
    }

    /// Add another pass's counts into this one.
    fn merge(&mut self, other: CoOccurrence) {
        self.n_transactions += other.n_transactions;
        for (k, v) in other.item_counts {
            *self.item_counts.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.pair_counts {
            *self.pair_counts.entry(k).or_insert(0) += v;
        }
    }

    /// Count one router's stream. A multiset of in-window templates is
    /// maintained incrementally; runs of anchors with an identical distinct
    /// set are flushed with a weight instead of re-enumerating pairs.
    fn count_router(&mut self, msgs: &[(Timestamp, u32)], w_secs: i64) {
        let n = msgs.len();
        let mut in_window: HashMap<u32, u32> = HashMap::new();
        let mut right = 0usize;
        let mut current: Vec<u32> = Vec::new(); // sorted distinct set
        let mut dirty = true;
        let mut pending: u64 = 0;

        for left in 0..n {
            let (t_left, _) = msgs[left];
            // Expand the right edge to cover [t_left, t_left + W].
            while right < n && msgs[right].0.seconds_since(t_left) <= w_secs {
                let e = in_window.entry(msgs[right].1).or_insert(0);
                *e += 1;
                if *e == 1 {
                    dirty = true;
                }
                right += 1;
            }
            if dirty {
                self.flush(&current, pending);
                pending = 0;
                current = {
                    let mut v: Vec<u32> = in_window.keys().copied().collect();
                    v.sort_unstable();
                    v
                };
                dirty = false;
            }
            pending += 1;
            // Remove the anchor message before the next iteration (windows
            // start at each successive message).
            if let Some(e) = in_window.get_mut(&msgs[left].1) {
                *e -= 1;
                if *e == 0 {
                    in_window.remove(&msgs[left].1);
                    dirty = true;
                }
            }
        }
        self.flush(&current, pending);
    }

    fn flush(&mut self, distinct: &[u32], weight: u64) {
        if weight == 0 || distinct.is_empty() {
            return;
        }
        self.n_transactions += weight;
        for (i, &a) in distinct.iter().enumerate() {
            *self.item_counts.entry(a).or_insert(0) += weight;
            for &b in &distinct[i + 1..] {
                *self.pair_counts.entry((a, b)).or_insert(0) += weight;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ts: i64, r: u32, t: u32) -> StreamItem {
        (Timestamp(ts), RouterId(r), TemplateId(t))
    }

    #[test]
    fn always_cooccurring_pair_has_high_confidence() {
        // Template 1 is always followed by template 2 within 5 s.
        let mut stream = Vec::new();
        for i in 0..100 {
            stream.push(s(i * 100, 0, 1));
            stream.push(s(i * 100 + 5, 0, 2));
        }
        let co = CoOccurrence::count(&stream, 10);
        assert_eq!(co.n_transactions, 200);
        let conf = co.confidence(TemplateId(1), TemplateId(2)).unwrap();
        assert!(conf > 0.95, "conf {conf}");
        // Reverse direction: only the windows anchored at template 1
        // contain both (windows look forward), so conf(2 => 1) is the
        // share of "2-containing" windows that were anchored at a 1 — one
        // half. This asymmetry is what Confmin = 0.8 exploits.
        let rev = co.confidence(TemplateId(2), TemplateId(1)).unwrap();
        assert!((rev - 0.5).abs() < 0.05, "rev {rev}");
    }

    #[test]
    fn different_routers_never_share_transactions() {
        let stream = vec![s(0, 0, 1), s(1, 1, 2), s(2, 0, 1), s(3, 1, 2)];
        let co = CoOccurrence::count(&stream, 100);
        assert_eq!(co.pair_support(TemplateId(1), TemplateId(2)), 0.0);
    }

    #[test]
    fn window_size_gates_cooccurrence() {
        let mut stream = Vec::new();
        for i in 0..50 {
            stream.push(s(i * 1000, 0, 1));
            stream.push(s(i * 1000 + 35, 0, 2)); // 35 s lag
        }
        let narrow = CoOccurrence::count(&stream, 30);
        let wide = CoOccurrence::count(&stream, 40);
        assert_eq!(narrow.pair_support(TemplateId(1), TemplateId(2)), 0.0);
        assert!(wide.pair_support(TemplateId(1), TemplateId(2)) > 0.3);
    }

    #[test]
    fn supports_are_fractions_of_transactions() {
        let stream = vec![s(0, 0, 7), s(1, 0, 7), s(5000, 0, 8)];
        let co = CoOccurrence::count(&stream, 10);
        assert_eq!(co.n_transactions, 3);
        assert!((co.support(TemplateId(7)) - 2.0 / 3.0).abs() < 1e-9);
        assert!((co.support(TemplateId(8)) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(co.confidence(TemplateId(9), TemplateId(7)), None);
    }

    #[test]
    fn empty_stream() {
        let co = CoOccurrence::count(&[], 60);
        assert_eq!(co.n_transactions, 0);
        assert_eq!(co.support(TemplateId(0)), 0.0);
    }

    #[test]
    fn storm_of_identical_messages_counts_every_transaction() {
        // 1000 identical messages at 1 s spacing: the run-compression path
        // must still count 1000 transactions.
        let stream: Vec<StreamItem> = (0..1000).map(|i| s(i, 0, 3)).collect();
        let co = CoOccurrence::count(&stream, 60);
        assert_eq!(co.n_transactions, 1000);
        assert_eq!(*co.item_counts.get(&3).unwrap(), 1000);
    }
}
