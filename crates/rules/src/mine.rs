//! Rule extraction from co-occurrence counts, and the rule set the online
//! grouper queries.

use crate::transactions::CoOccurrence;
use sd_model::TemplateId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A directed pairwise association rule `x ⇒ y` (§4.1.4: `|X| = |Y| = 1`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Antecedent template.
    pub x: TemplateId,
    /// Consequent template.
    pub y: TemplateId,
    /// `supp(x)` at mining time.
    pub support: f64,
    /// `conf(x ⇒ y)` at mining time.
    pub confidence: f64,
}

/// Mining thresholds (Table 6: `SPmin = 0.0005`, `Confmin = 0.8`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MineConfig {
    /// Minimum single-item support for a template to participate.
    pub sp_min: f64,
    /// Minimum rule confidence.
    pub conf_min: f64,
}

impl Default for MineConfig {
    fn default() -> Self {
        MineConfig {
            sp_min: 0.0005,
            conf_min: 0.8,
        }
    }
}

/// A queryable set of rules. Direction is kept for bookkeeping but the
/// grouper's `related` query is undirected (§4.2.2 ignores direction).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RuleSet {
    rules: Vec<Rule>,
    #[serde(skip)]
    undirected: HashSet<(u32, u32)>,
}

impl RuleSet {
    /// Build from rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        let mut s = RuleSet {
            rules,
            undirected: HashSet::new(),
        };
        s.rebuild_index();
        s
    }

    /// Rebuild the undirected lookup (after deserialization).
    pub fn rebuild_index(&mut self) {
        self.undirected = self
            .rules
            .iter()
            .map(|r| (r.x.0.min(r.y.0), r.x.0.max(r.y.0)))
            .collect();
    }

    /// All rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Whether templates `a` and `b` are associated (either direction).
    pub fn related(&self, a: TemplateId, b: TemplateId) -> bool {
        self.undirected.contains(&(a.0.min(b.0), a.0.max(b.0)))
    }
}

/// Extract rules from counted co-occurrence: both items must clear
/// `sp_min` (Table 5: SPmin selects the "top %" of message types used in
/// mining) and the rule must clear `conf_min`.
pub fn mine(co: &CoOccurrence, cfg: &MineConfig) -> RuleSet {
    let mut eligible: Vec<u32> = co
        .item_counts
        .iter()
        .filter(|(_, &c)| {
            co.n_transactions > 0 && c as f64 / co.n_transactions as f64 >= cfg.sp_min
        })
        .map(|(&t, _)| t)
        .collect();
    eligible.sort_unstable();
    let eligible_set: HashSet<u32> = eligible.iter().copied().collect();

    let mut rules = Vec::new();
    for (&(a, b), _) in co.pair_counts.iter() {
        if !eligible_set.contains(&a) || !eligible_set.contains(&b) {
            continue;
        }
        for (x, y) in [(a, b), (b, a)] {
            let (x, y) = (TemplateId(x), TemplateId(y));
            if let Some(conf) = co.confidence(x, y) {
                if conf >= cfg.conf_min {
                    rules.push(Rule {
                        x,
                        y,
                        support: co.support(x),
                        confidence: conf,
                    });
                }
            }
        }
    }
    rules.sort_by(|p, q| p.x.cmp(&q.x).then(p.y.cmp(&q.y)));
    RuleSet::new(rules)
}

/// The Table 5 statistic for one `sp_min`: `(fraction of message types
/// eligible, fraction of messages covered by eligible types)`.
///
/// `type_counts` are raw per-template *message* counts (not transaction
/// counts); eligibility still uses transaction support.
pub fn coverage(
    co: &CoOccurrence,
    type_counts: &std::collections::HashMap<u32, u64>,
    sp_min: f64,
) -> (f64, f64) {
    if co.n_transactions == 0 || type_counts.is_empty() {
        return (0.0, 0.0);
    }
    let total_msgs: u64 = type_counts.values().sum();
    let mut eligible_types = 0usize;
    let mut covered = 0u64;
    for (&t, &msgs) in type_counts {
        let supp = *co.item_counts.get(&t).unwrap_or(&0) as f64 / co.n_transactions as f64;
        if supp >= sp_min {
            eligible_types += 1;
            covered += msgs;
        }
    }
    (
        eligible_types as f64 / type_counts.len() as f64,
        covered as f64 / total_msgs as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transactions::StreamItem;
    use sd_model::{RouterId, Timestamp};

    fn stream_pairs() -> Vec<StreamItem> {
        let mut stream = Vec::new();
        for i in 0..200 {
            stream.push((Timestamp(i * 100), RouterId(0), TemplateId(1)));
            stream.push((Timestamp(i * 100 + 3), RouterId(0), TemplateId(2)));
            if i % 4 == 0 {
                // Template 3: occasionally precedes 1 closely, so windows
                // anchored at 3 almost always contain 1 (conf(3 => 1) ~ 1)
                // while conf(1 => 3) stays low.
                stream.push((Timestamp(i * 100 - 4), RouterId(0), TemplateId(3)));
            }
        }
        stream.sort_by_key(|&(ts, _, _)| ts);
        stream
    }

    #[test]
    fn mines_the_reliable_pair_only() {
        let co = CoOccurrence::count(&stream_pairs(), 10);
        let rs = mine(
            &co,
            &MineConfig {
                sp_min: 0.001,
                conf_min: 0.8,
            },
        );
        assert!(rs.related(TemplateId(1), TemplateId(2)));
        // 3 => 1 has high confidence (every 3 closely precedes a 1), but
        // 1 => 3 does not; undirected relatedness still holds.
        assert!(rs.related(TemplateId(1), TemplateId(3)));
        let directed: Vec<(u32, u32)> = rs.rules().iter().map(|r| (r.x.0, r.y.0)).collect();
        assert!(directed.contains(&(3, 1)));
        assert!(!directed.contains(&(1, 3)));
    }

    #[test]
    fn conf_min_prunes() {
        let co = CoOccurrence::count(&stream_pairs(), 10);
        let loose = mine(
            &co,
            &MineConfig {
                sp_min: 0.001,
                conf_min: 0.5,
            },
        );
        let strict = mine(
            &co,
            &MineConfig {
                sp_min: 0.001,
                conf_min: 0.99,
            },
        );
        assert!(strict.len() < loose.len());
    }

    #[test]
    fn sp_min_excludes_rare_items() {
        let co = CoOccurrence::count(&stream_pairs(), 10);
        // Template 3 appears in ~1/9 of transactions; a high SPmin excludes it.
        let rs = mine(
            &co,
            &MineConfig {
                sp_min: 0.5,
                conf_min: 0.8,
            },
        );
        assert!(!rs.related(TemplateId(1), TemplateId(3)));
    }

    #[test]
    fn coverage_shrinks_with_higher_sp_min() {
        let co = CoOccurrence::count(&stream_pairs(), 10);
        let mut counts = std::collections::HashMap::new();
        counts.insert(1u32, 200u64);
        counts.insert(2u32, 200u64);
        counts.insert(3u32, 50u64);
        let (top_lo, cov_lo) = coverage(&co, &counts, 0.001);
        let (top_hi, cov_hi) = coverage(&co, &counts, 0.5);
        assert!(top_lo >= top_hi);
        assert!(cov_lo >= cov_hi);
        assert!((cov_lo - 1.0).abs() < 1e-9);
        assert!((top_lo - 1.0).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip_restores_relatedness() {
        let co = CoOccurrence::count(&stream_pairs(), 10);
        let rs = mine(&co, &MineConfig::default());
        let json = serde_json::to_string(&rs).unwrap();
        let mut back: RuleSet = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert!(back.related(TemplateId(1), TemplateId(2)));
    }

    #[test]
    fn empty_counts_produce_no_rules() {
        let rs = mine(&CoOccurrence::default(), &MineConfig::default());
        assert!(rs.is_empty());
        assert!(!rs.related(TemplateId(0), TemplateId(1)));
    }
}
