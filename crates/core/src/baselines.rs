//! Baselines the paper argues against, implemented for the ablation
//! benches: vendor-severity ranking (§2 explains why it misleads) and
//! fixed-gap temporal clustering (what EWMA improves upon).

use crate::event::NetworkEvent;
use crate::knowledge::DomainKnowledge;
use sd_model::{RawMessage, Severity, SyslogPlus};
use std::collections::HashMap;

/// Re-rank events by vendor severity: an event's severity is the most
/// severe (lowest-rank) vendor severity among its member messages; ties
/// break toward more messages. This is the ranking the paper says *not*
/// to trust — benches compare it against §4.2.4 scoring.
pub fn severity_rank(events: &mut [NetworkEvent], raw: &[RawMessage]) {
    let sev_of = |e: &NetworkEvent| -> u8 {
        e.message_idxs
            .iter()
            .filter_map(|&i| raw.get(i).and_then(|m| m.code.severity()))
            .map(Severity::rank)
            .min()
            .unwrap_or(7)
    };
    events.sort_by(|a, b| {
        sev_of(a)
            .cmp(&sev_of(b))
            .then_with(|| b.size().cmp(&a.size()))
    });
}

/// Fixed-gap temporal grouping: split a per-(router, template, location)
/// series whenever the gap exceeds `gap_secs` — no adaptation. Returns the
/// number of groups over the batch (comparable with the EWMA stage's
/// group count on the same batch).
pub fn fixed_gap_group_count(batch: &[SyslogPlus], gap_secs: i64) -> usize {
    let mut last: HashMap<(u32, u32, u32), sd_model::Timestamp> = HashMap::new();
    let mut groups = 0usize;
    for sp in batch {
        let key = (
            sp.router.0,
            sp.template.map(|t| t.0).unwrap_or(u32::MAX),
            sp.primary_location().map(|l| l.0).unwrap_or(u32::MAX),
        );
        match last.get(&key) {
            Some(&prev) if sp.ts.seconds_since(prev) <= gap_secs => {}
            _ => groups += 1,
        }
        last.insert(key, sp.ts);
    }
    groups
}

/// Count the temporal-stage groups the EWMA model produces on the same
/// batch (helper mirroring [`fixed_gap_group_count`] for bench parity).
pub fn ewma_group_count(k: &DomainKnowledge, batch: &[SyslogPlus]) -> usize {
    use sd_temporal::EwmaTracker;
    let mut trackers: HashMap<(u32, u32, u32), EwmaTracker> = HashMap::new();
    let mut groups = 0usize;
    for sp in batch {
        let key = (
            sp.router.0,
            sp.template.map(|t| t.0).unwrap_or(u32::MAX),
            sp.primary_location().map(|l| l.0).unwrap_or(u32::MAX),
        );
        let tr = trackers.entry(key).or_default();
        if tr.observe(sp.ts, &k.temporal) {
            groups += 1;
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_model::{ErrorCode, RouterId, TemplateId, Timestamp};

    fn sp(ts: i64, t: u32) -> SyslogPlus {
        SyslogPlus {
            idx: 0,
            ts: Timestamp(ts),
            router: RouterId(0),
            template: Some(TemplateId(t)),
            locations: vec![],
        }
    }

    #[test]
    fn fixed_gap_splits_on_threshold() {
        let batch = vec![sp(0, 1), sp(30, 1), sp(100, 1), sp(5000, 1)];
        assert_eq!(fixed_gap_group_count(&batch, 60), 3); // gaps 70 and 4900 both split
        assert_eq!(fixed_gap_group_count(&batch, 80), 2);
        assert_eq!(fixed_gap_group_count(&batch, 10_000), 1);
        assert_eq!(fixed_gap_group_count(&[], 60), 0);
    }

    #[test]
    fn severity_rank_prefers_low_severity_numbers() {
        let raw = vec![
            RawMessage::new(Timestamp(0), "r", ErrorCode::from("SYS-1-X"), "a"),
            RawMessage::new(Timestamp(0), "r", ErrorCode::from("LINK-3-Y"), "b"),
        ];
        let mk = |idxs: Vec<usize>| NetworkEvent {
            start: Timestamp(0),
            end: Timestamp(0),
            score: 0.0,
            routers: vec![],
            location_summary: String::new(),
            label: String::new(),
            signatures: vec![],
            message_idxs: idxs,
            id: 0,
        };
        let mut events = vec![mk(vec![1]), mk(vec![0])];
        severity_rank(&mut events, &raw);
        assert_eq!(events[0].message_idxs, vec![0], "severity-1 event first");
    }
}
