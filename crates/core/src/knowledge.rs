//! The domain knowledge base (the output of offline learning in Figure 1):
//! message templates, the location dictionary, temporal parameters, the
//! association rule set, and historical signature frequencies for
//! prioritization. Serializable, so a learned base can be shipped to the
//! online system.

use crate::envelope::{self, ArtifactError, ArtifactKind, EnvelopeError};
use sd_locations::LocationDictionary;
use sd_model::{ErrorCode, Interner, RouterId, TemplateId};
use sd_rules::RuleSet;
use sd_templates::{TemplateSet, TokenScratch};
use sd_temporal::TemporalConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Sentinel template id for codes never seen during training.
pub const UNKNOWN_TEMPLATE: TemplateId = TemplateId(u32::MAX);

/// On-disk schema version of enveloped knowledge artifacts. Bump on any
/// incompatible change to the serialized [`DomainKnowledge`] shape.
pub const KNOWLEDGE_VERSION: u32 = 1;

/// Everything the online digester needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainKnowledge {
    /// Learned message templates.
    pub templates: TemplateSet,
    /// Per-code fallback pseudo-templates for messages that match no
    /// learned template; ids start at `templates.len()`.
    pub fallback_codes: Interner,
    /// Location dictionary learned from configs.
    pub dict: LocationDictionary,
    /// Calibrated temporal parameters.
    pub temporal: TemporalConfig,
    /// Learned association rules.
    pub rules: RuleSet,
    /// Rule/transaction window W in seconds (Table 6: 120 for A, 40 for B).
    pub window_secs: i64,
    /// Historical per-(router, template) message counts — the `f_m` of
    /// §4.2.4 (stored as a Vec for serde friendliness).
    freq: Vec<((u32, u32), u64)>,
    #[serde(skip)]
    freq_map: HashMap<(u32, u32), u64>,
}

impl DomainKnowledge {
    /// Assemble a knowledge base.
    pub fn new(
        templates: TemplateSet,
        fallback_codes: Interner,
        dict: LocationDictionary,
        temporal: TemporalConfig,
        rules: RuleSet,
        window_secs: i64,
        freq_map: HashMap<(u32, u32), u64>,
    ) -> Self {
        let mut freq: Vec<((u32, u32), u64)> = freq_map.iter().map(|(&k, &v)| (k, v)).collect();
        freq.sort_unstable();
        DomainKnowledge {
            templates,
            fallback_codes,
            dict,
            temporal,
            rules,
            window_secs,
            freq,
            freq_map,
        }
    }

    /// Rebuild all skipped lookup structures (after deserialization).
    pub fn rebuild_index(&mut self) {
        self.templates.rebuild_index();
        self.fallback_codes.rebuild_index();
        self.dict.rebuild_index();
        self.rules.rebuild_index();
        self.freq_map = self.freq.iter().copied().collect();
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialize from JSON (indexes rebuilt).
    pub fn from_json(text: &str) -> serde_json::Result<Self> {
        let mut k: DomainKnowledge = serde_json::from_str(text)?;
        k.rebuild_index();
        Ok(k)
    }

    /// Persist to `path` inside the checksummed artifact envelope
    /// (kind `KNOW`, version [`KNOWLEDGE_VERSION`]), atomically.
    pub fn save(&self, path: &std::path::Path) -> Result<(), ArtifactError> {
        let json = self
            .to_json()
            .map_err(|e| ArtifactError::at(path, EnvelopeError::Payload(e.to_string())))?;
        envelope::save_atomic(
            path,
            ArtifactKind::KNOWLEDGE,
            KNOWLEDGE_VERSION,
            json.as_bytes(),
        )
    }

    /// Load from `path`: an enveloped artifact written by
    /// [`DomainKnowledge::save`], or a legacy raw-JSON knowledge file.
    /// Truncation, bit flips, kind confusion (e.g. pointing `--knowledge`
    /// at a checkpoint) and version skew all surface as typed
    /// [`ArtifactError`]s carrying the file path.
    pub fn load(path: &std::path::Path) -> Result<Self, ArtifactError> {
        let bytes = envelope::load_bytes(path)?;
        let text = if envelope::is_enveloped(&bytes) {
            let payload = envelope::decode(&bytes, ArtifactKind::KNOWLEDGE, KNOWLEDGE_VERSION)
                .map_err(|e| ArtifactError::at(path, e))?;
            std::str::from_utf8(payload)
                .map_err(|e| ArtifactError::at(path, EnvelopeError::Payload(e.to_string())))?
                .to_string()
        } else {
            // Legacy pre-envelope knowledge file: the file is the JSON.
            String::from_utf8(bytes)
                .map_err(|e| ArtifactError::at(path, EnvelopeError::Payload(e.to_string())))?
        };
        Self::from_json(&text)
            .map_err(|e| ArtifactError::at(path, EnvelopeError::Payload(e.to_string())))
    }

    /// Structural fingerprint of this knowledge base (FNV-1a over the
    /// learned-component shapes and calibrated parameters).
    ///
    /// Stored inside stream checkpoints so a snapshot is never resumed
    /// against a *different* knowledge base — template/location/rule ids
    /// are dense indexes, and replaying them against another base would
    /// silently mis-group rather than fail.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.templates.len() as u64);
        mix(self.fallback_codes.len() as u64);
        mix(self.dict.len() as u64);
        mix(self.rules.len() as u64);
        mix(self.window_secs as u64);
        mix(self.temporal.alpha.to_bits());
        mix(self.temporal.beta.to_bits());
        mix(self.temporal.s_min as u64);
        mix(self.temporal.s_max as u64);
        mix(self.freq.len() as u64);
        h
    }

    /// Resolve a message's template: learned template if one matches, the
    /// per-code fallback if the code was seen in training, otherwise
    /// [`UNKNOWN_TEMPLATE`].
    pub fn resolve_template(&self, code: &ErrorCode, detail: &str) -> TemplateId {
        self.resolve_template_with(code, detail, &mut TokenScratch::new())
    }

    /// [`DomainKnowledge::resolve_template`] with a caller-provided token
    /// scratch, so batch loops resolve every message allocation-free.
    pub fn resolve_template_with(
        &self,
        code: &ErrorCode,
        detail: &str,
        scratch: &mut TokenScratch,
    ) -> TemplateId {
        if let Some(t) = self.templates.match_with(code, detail, scratch) {
            return t;
        }
        match self.fallback_codes.get(code.as_str()) {
            Some(i) => TemplateId(self.templates.len() as u32 + i),
            None => UNKNOWN_TEMPLATE,
        }
    }

    /// Human-readable signature of a template id (learned masked string,
    /// `code/*` for fallbacks, `?` for unknown).
    pub fn template_signature(&self, t: TemplateId) -> String {
        if t == UNKNOWN_TEMPLATE {
            return "?".to_owned();
        }
        let n = self.templates.len() as u32;
        if t.0 < n {
            self.templates.get(t).masked()
        } else {
            format!("{} *", self.fallback_codes.resolve(t.0 - n))
        }
    }

    /// Historical frequency `f_m` of template `t` on `router` (min 1).
    pub fn frequency(&self, router: RouterId, t: TemplateId) -> u64 {
        self.freq_map.get(&(router.0, t.0)).copied().unwrap_or(1)
    }

    /// Fold additional per-(router, template) observation counts into the
    /// frequency table (used by the weekly refresh as new history accrues).
    pub fn merge_frequencies(&mut self, items: impl IntoIterator<Item = ((u32, u32), u64)>) {
        for (key, n) in items {
            *self.freq_map.entry(key).or_insert(0) += n;
        }
        self.freq = self.freq_map.iter().map(|(&k, &v)| (k, v)).collect();
        self.freq.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_templates::{learn, LearnerConfig};

    fn tiny_knowledge() -> DomainKnowledge {
        let msgs: Vec<sd_model::RawMessage> = (0..30)
            .map(|i| {
                sd_model::RawMessage::new(
                    sd_model::Timestamp(i),
                    "r1",
                    ErrorCode::from("LINK-3-UPDOWN"),
                    format!("Interface Serial{i}/0, changed state to down"),
                )
            })
            .collect();
        let templates = learn(&msgs, &LearnerConfig::default());
        let mut fallback = Interner::new();
        fallback.intern("LINK-3-UPDOWN");
        fallback.intern("SYS-1-CPURISINGTHRESHOLD");
        let dict = LocationDictionary::build(&["hostname r1\n".to_owned()]);
        let mut freq = HashMap::new();
        freq.insert((0u32, 0u32), 30u64);
        DomainKnowledge::new(
            templates,
            fallback,
            dict,
            TemporalConfig::dataset_a(),
            RuleSet::default(),
            120,
            freq,
        )
    }

    #[test]
    fn resolve_prefers_learned_template() {
        let k = tiny_knowledge();
        let t = k.resolve_template(
            &ErrorCode::from("LINK-3-UPDOWN"),
            "Interface Serial9/0, changed state to down",
        );
        assert!(t.0 < k.templates.len() as u32);
        assert_eq!(
            k.template_signature(t),
            "LINK-3-UPDOWN Interface * changed state to down"
        );
    }

    #[test]
    fn resolve_falls_back_per_code() {
        let k = tiny_knowledge();
        // Known code, never-seen shape.
        let t = k.resolve_template(&ErrorCode::from("SYS-1-CPURISINGTHRESHOLD"), "whatever");
        assert_eq!(t.0, k.templates.len() as u32 + 1);
        assert_eq!(k.template_signature(t), "SYS-1-CPURISINGTHRESHOLD *");
        // Unknown code.
        let u = k.resolve_template(&ErrorCode::from("NEVER-1-SEEN"), "x");
        assert_eq!(u, UNKNOWN_TEMPLATE);
        assert_eq!(k.template_signature(u), "?");
    }

    #[test]
    fn frequency_defaults_to_one() {
        let k = tiny_knowledge();
        assert_eq!(k.frequency(RouterId(0), TemplateId(0)), 30);
        assert_eq!(k.frequency(RouterId(5), TemplateId(0)), 1);
    }

    #[test]
    fn merge_frequencies_accumulates_and_survives_serde() {
        let mut k = tiny_knowledge();
        assert_eq!(k.frequency(RouterId(0), TemplateId(0)), 30);
        k.merge_frequencies([((0u32, 0u32), 12u64), ((3, 9), 4)]);
        assert_eq!(k.frequency(RouterId(0), TemplateId(0)), 42);
        assert_eq!(k.frequency(RouterId(3), TemplateId(9)), 4);
        let back = DomainKnowledge::from_json(&k.to_json().unwrap()).unwrap();
        assert_eq!(back.frequency(RouterId(0), TemplateId(0)), 42);
    }

    #[test]
    fn enveloped_save_load_roundtrips_and_rejects_damage() {
        let dir = std::env::temp_dir().join("sd_knowledge_envelope_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("knowledge.bin");
        let k = tiny_knowledge();
        k.save(&path).unwrap();
        let back = DomainKnowledge::load(&path).unwrap();
        assert_eq!(back.fingerprint(), k.fingerprint());

        // Legacy raw-JSON files keep loading.
        let legacy = dir.join("knowledge.json");
        std::fs::write(&legacy, k.to_json().unwrap()).unwrap();
        let back = DomainKnowledge::load(&legacy).unwrap();
        assert_eq!(back.fingerprint(), k.fingerprint());

        // A flipped payload bit is a checksum mismatch, not a misdecode.
        let bytes = std::fs::read(&path).unwrap();
        let mut dam = bytes.clone();
        let last = dam.len() - 1;
        dam[last] ^= 0x04;
        std::fs::write(&path, &dam).unwrap();
        let err = DomainKnowledge::load(&path).unwrap_err();
        assert!(matches!(err.error, EnvelopeError::ChecksumMismatch { .. }));
        assert!(err.to_string().contains("knowledge.bin"));

        // Pointing at a checkpoint artifact is a kind mismatch.
        let ck = dir.join("not-knowledge.bin");
        std::fs::write(
            &ck,
            envelope::encode(ArtifactKind::CHECKPOINT, KNOWLEDGE_VERSION, b"{}"),
        )
        .unwrap();
        let err = DomainKnowledge::load(&ck).unwrap_err();
        assert!(matches!(err.error, EnvelopeError::KindMismatch { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_roundtrip_preserves_behavior() {
        let k = tiny_knowledge();
        let json = k.to_json().unwrap();
        let back = DomainKnowledge::from_json(&json).unwrap();
        let t = back.resolve_template(
            &ErrorCode::from("LINK-3-UPDOWN"),
            "Interface Serial3/0, changed state to down",
        );
        assert!(t.0 < back.templates.len() as u32);
        assert_eq!(back.frequency(RouterId(0), TemplateId(0)), 30);
        assert_eq!(back.window_secs, 120);
    }
}
