//! Network-health visualization data (§6.2, Figures 14–15): for a map
//! window, the per-router intensity one would draw as circles — once from
//! digested events, once from raw message counts. The contrast (the raw
//! view's skew toward chatty routers vs. the event view's few meaningful
//! circles) is the paper's point.

use crate::event::NetworkEvent;
use sd_model::{RawMessage, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-router snapshot row for one visualization window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterSnapshot {
    /// Router name.
    pub router: String,
    /// Raw syslog messages observed in the window (Figure 15 circles).
    pub n_messages: usize,
    /// Digested events active in the window (Figure 14 circles).
    pub n_events: usize,
    /// Highest event score touching this router in the window.
    pub top_score: f64,
    /// Label of that top event.
    pub top_label: String,
}

/// Build the snapshot for `[from, to)`.
///
/// `resolve` maps a router id to its name (pass
/// `|r| k.dict.routers.resolve(r.0)` from the caller).
pub fn snapshot<'a>(
    raw: &[RawMessage],
    events: &[NetworkEvent],
    from: Timestamp,
    to: Timestamp,
    mut resolve: impl FnMut(sd_model::RouterId) -> &'a str,
) -> Vec<RouterSnapshot> {
    let mut rows: HashMap<String, RouterSnapshot> = HashMap::new();
    for m in raw {
        if m.ts >= from && m.ts < to {
            let e = rows
                .entry(m.router.clone())
                .or_insert_with(|| RouterSnapshot {
                    router: m.router.clone(),
                    n_messages: 0,
                    n_events: 0,
                    top_score: 0.0,
                    top_label: String::new(),
                });
            e.n_messages += 1;
        }
    }
    for ev in events {
        if ev.start < to && ev.end >= from {
            for r in &ev.routers {
                let name = resolve(*r).to_owned();
                let e = rows.entry(name.clone()).or_insert_with(|| RouterSnapshot {
                    router: name,
                    n_messages: 0,
                    n_events: 0,
                    top_score: 0.0,
                    top_label: String::new(),
                });
                e.n_events += 1;
                if ev.score > e.top_score {
                    e.top_score = ev.score;
                    e.top_label = ev.label.clone();
                }
            }
        }
    }
    let mut out: Vec<RouterSnapshot> = rows.into_values().collect();
    out.sort_by(|a, b| {
        b.n_messages
            .cmp(&a.n_messages)
            .then(a.router.cmp(&b.router))
    });
    out
}

/// Gini coefficient of a count distribution — the skew statistic behind
/// "the distribution of events across routers is less skewed than that of
/// raw syslog messages" (Figure 13/15).
pub fn gini(counts: &[usize]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let sum: f64 = sorted.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * sum) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_model::{ErrorCode, RouterId};

    fn ev(start: i64, end: i64, router: u32, score: f64, label: &str) -> NetworkEvent {
        NetworkEvent {
            start: Timestamp(start),
            end: Timestamp(end),
            score,
            routers: vec![RouterId(router)],
            location_summary: String::new(),
            label: label.to_owned(),
            signatures: vec![],
            message_idxs: vec![],
            id: 0,
        }
    }

    #[test]
    fn snapshot_counts_messages_and_overlapping_events() {
        let raw = vec![
            RawMessage::new(Timestamp(10), "r0", ErrorCode::from("A-1-B"), "x"),
            RawMessage::new(Timestamp(20), "r0", ErrorCode::from("A-1-B"), "x"),
            RawMessage::new(Timestamp(999), "r0", ErrorCode::from("A-1-B"), "x"), // outside
            RawMessage::new(Timestamp(15), "r1", ErrorCode::from("A-1-B"), "x"),
        ];
        let events = vec![
            ev(5, 25, 0, 3.0, "link flap"),
            ev(90, 200, 0, 9.0, "late"), // outside window
            ev(0, 12, 1, 1.0, "cpu threshold"),
        ];
        let names = ["r0", "r1"];
        let rows = snapshot(&raw, &events, Timestamp(0), Timestamp(60), |r| {
            names[r.0 as usize]
        });
        assert_eq!(rows.len(), 2);
        let r0 = rows.iter().find(|r| r.router == "r0").unwrap();
        assert_eq!((r0.n_messages, r0.n_events), (2, 1));
        assert_eq!(r0.top_label, "link flap");
        let r1 = rows.iter().find(|r| r.router == "r1").unwrap();
        assert_eq!((r1.n_messages, r1.n_events), (1, 1));
    }

    #[test]
    fn gini_behaves() {
        assert_eq!(gini(&[]), 0.0);
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-9, "uniform is zero");
        let skewed = gini(&[0, 0, 0, 100]);
        assert!(skewed > 0.7, "skewed {skewed}");
        assert!(gini(&[1, 2, 3, 4]) > 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
    }
}
