//! Network events and their presentation (§4.2.4): one well-formatted
//! line per event — start/end timestamps, the most common highest-level
//! location per router, an informative event-type label, and the raw
//! message indices for drill-down.

use crate::knowledge::DomainKnowledge;
use sd_model::{LocationId, RouterId, SyslogPlus, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One digested network event.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkEvent {
    /// Stable event id: the 1-based presentation rank in a batch digest,
    /// or the emission sequence number in a stream (checkpointed, so ids
    /// never repeat across resume). 0 only on events built directly via
    /// [`build_event`]. `sdigest explain <id>` keys provenance on this.
    #[serde(default)]
    pub id: u64,
    /// Earliest member timestamp.
    pub start: Timestamp,
    /// Latest member timestamp.
    pub end: Timestamp,
    /// §4.2.4 priority score.
    pub score: f64,
    /// Involved routers (sorted by id).
    pub routers: Vec<RouterId>,
    /// Per-router presented location text, e.g. `r1 Interface Serial1/0…`.
    pub location_summary: String,
    /// Event-type label (auto-derived; a domain expert may rename).
    pub label: String,
    /// Distinct template signatures present.
    pub signatures: Vec<String>,
    /// Indices of the member messages in the *raw* input batch, for
    /// retrieval (the paper's "index field").
    pub message_idxs: Vec<usize>,
}

impl NetworkEvent {
    /// The paper's one-line presentation:
    /// `start|end|locations|label`.
    pub fn format_line(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.start, self.end, self.location_summary, self.label
        )
    }

    /// Number of raw messages folded into this event.
    pub fn size(&self) -> usize {
        self.message_idxs.len()
    }
}

/// Build an event from one group of batch indices.
pub fn build_event(
    k: &DomainKnowledge,
    batch: &[SyslogPlus],
    members: &[usize],
    score: f64,
) -> NetworkEvent {
    let mut start = Timestamp(i64::MAX);
    let mut end = Timestamp(i64::MIN);
    let mut routers: Vec<RouterId> = Vec::new();
    // Per router: location counts at the *highest* level present (lowest
    // depth) — "if the event contains one message on the router level and
    // another on the interface level, we only show the router".
    let mut best: HashMap<u32, (u8, HashMap<LocationId, usize>)> = HashMap::new();
    let mut signatures: Vec<String> = Vec::new();
    let mut message_idxs = Vec::with_capacity(members.len());

    for &i in members {
        let sp = &batch[i];
        start = start.min(sp.ts);
        end = end.max(sp.ts);
        message_idxs.push(sp.idx);
        if !routers.contains(&sp.router) {
            routers.push(sp.router);
        }
        if let Some(t) = sp.template {
            let sig = k.template_signature(t);
            if !signatures.contains(&sig) {
                signatures.push(sig);
            }
        }
        if let Some(loc) = sp.primary_location() {
            let depth = k.dict.info(loc).level.depth();
            let entry = best.entry(sp.router.0).or_insert((u8::MAX, HashMap::new()));
            if depth < entry.0 {
                entry.0 = depth;
                entry.1.clear();
            }
            if depth == entry.0 {
                *entry.1.entry(loc).or_insert(0) += 1;
            }
        }
    }
    routers.sort_unstable();
    message_idxs.sort_unstable();
    signatures.sort();

    let mut parts: Vec<String> = Vec::new();
    for r in &routers {
        let rname = k.dict.routers.resolve(r.0);
        match best.get(&r.0) {
            None => parts.push(rname.to_owned()),
            Some((_, counts)) => {
                let loc = counts
                    .iter()
                    .max_by_key(|(l, c)| (**c, std::cmp::Reverse(l.0)))
                    .map(|(l, _)| *l)
                    .expect("nonempty");
                parts.push(render_location(k, rname, loc));
            }
        }
    }

    NetworkEvent {
        id: 0,
        start,
        end,
        score,
        routers,
        location_summary: parts.join(" "),
        label: label_for(&signatures),
        signatures,
        message_idxs,
    }
}

/// Render one location with its router prefix, mirroring the paper's
/// `r1 Interface Serial1/0.10/10:0` style.
fn render_location(k: &DomainKnowledge, rname: &str, loc: LocationId) -> String {
    use sd_model::LocationLevel as L;
    let info = k.dict.info(loc);
    match info.level {
        L::Router => rname.to_owned(),
        L::Slot | L::Port => format!("{rname} {}", info.name),
        L::PhysInterface | L::LogInterface => format!("{rname} Interface {}", info.name),
        L::Bundle => format!("{rname} Bundle {}", info.name),
        L::Path => format!("{rname} Path {}", info.name),
    }
}

/// Derive an operator-facing event label from the member signatures.
/// Heuristic but vendor-neutral: driven by error-code facilities and the
/// state words surviving in the masked signatures.
pub fn label_for(signatures: &[String]) -> String {
    let mut labels: Vec<&str> = Vec::new();
    let has = |needle: &str| signatures.iter().any(|s| s.contains(needle));
    fn add<'a>(l: &'a str, labels: &mut Vec<&'a str>) {
        if !labels.contains(&l) {
            labels.push(l);
        }
    }
    if has("LINK-3-UPDOWN") && has("state to down") && has("state to up") {
        add("link flap", &mut labels);
    } else if has("LINK-3-UPDOWN") {
        add("link state change", &mut labels);
    }
    if has("LINEPROTO") && has("state to down") && has("state to up") {
        add("line protocol flap", &mut labels);
    }
    if has("CONTROLLER") {
        add("controller flap", &mut labels);
    }
    if has("SNMP-WARNING-linkDown") && has("SNMP-WARNING-linkup") {
        add("port flap", &mut labels);
    } else if has("SNMP-WARNING-linkDown") {
        add("port down", &mut labels);
    }
    if has("sapPortStateChange") {
        add("sap state change", &mut labels);
    }
    if has("BGP") {
        add("bgp adjacency change", &mut labels);
    }
    if has("OSPF") {
        add("ospf adjacency change", &mut labels);
    }
    if has("pimNeighbor") || has("PIM") {
        add("pim neighbor change", &mut labels);
    }
    if has("CPU") {
        add("cpu threshold", &mut labels);
    }
    if has("lsp") || has("frr") || has("LSP") {
        add("mpls path change", &mut labels);
    }
    if has("LCDOWN") || has("LCUP") || has("cardFailure") {
        add("linecard failure", &mut labels);
    }
    if has("LoginFailed") || has("loginFailed") || has("Login failed") || has("login failed") {
        add("login failures", &mut labels);
    }
    if has("ENVMON") || has("tempThreshold") || has("Temperature") {
        add("environmental alarm", &mut labels);
    }
    if has("CONFIG_I") || has("configModify") {
        add("configuration change", &mut labels);
    }
    if has("BADAUTH") || has("AUTHFAIL") || has("authenticationFailure") {
        add("authentication failures", &mut labels);
    }
    if has("svcStatusChanged") {
        add("service state change", &mut labels);
    }
    if labels.is_empty() {
        // Fall back to the facility of the first signature.
        let fac = signatures
            .first()
            .and_then(|s| s.split(['-', ' ']).next())
            .unwrap_or("unknown");
        return format!("{} events", fac.to_lowercase());
    }
    labels.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::augment_batch;
    use crate::grouping::{group, GroupingConfig};
    use crate::offline::{learn, OfflineConfig};
    use crate::priority::score_group;
    use sd_model::{ErrorCode, RawMessage};
    use sd_netsim::config::render_all;
    use sd_netsim::scenario::{toy_table2_messages, toy_topology};

    fn toy_event() -> NetworkEvent {
        let topo = toy_topology();
        let configs = render_all(&topo);
        let mut train = Vec::new();
        for i in 0..25 {
            for state in ["down", "up"] {
                train.push(RawMessage::new(
                    Timestamp(i * 40),
                    if i % 2 == 0 { "r1" } else { "r2" },
                    ErrorCode::from("LINK-3-UPDOWN"),
                    format!("Interface Serial9/{i}.10/1:0, changed state to {state}"),
                ));
                train.push(RawMessage::new(
                    Timestamp(i * 40 + 1),
                    if i % 2 == 0 { "r1" } else { "r2" },
                    ErrorCode::from("LINEPROTO-5-UPDOWN"),
                    format!(
                        "Line protocol on Interface Serial9/{i}.10/1:0, changed state to {state}"
                    ),
                ));
            }
        }
        sd_model::sort_batch(&mut train);
        let mut cfg = OfflineConfig::dataset_a();
        cfg.mine.sp_min = 0.0001;
        let k = learn(&configs, &train, &cfg);
        let raw = toy_table2_messages();
        let (batch, _) = augment_batch(&k, &raw);
        let res = group(&k, &batch, &GroupingConfig::default());
        assert_eq!(res.n_groups, 1);
        let members: Vec<usize> = (0..batch.len()).collect();
        let score = score_group(&k, &batch, &members);
        build_event(&k, &batch, &members, score)
    }

    /// The presentation of Table 2 per §3.2: both interfaces named, window
    /// 00:00:00 – 00:00:31, flap labels.
    #[test]
    fn toy_event_presents_like_the_paper() {
        let ev = toy_event();
        assert_eq!(ev.start.to_string(), "2010-01-10 00:00:00");
        assert_eq!(ev.end.to_string(), "2010-01-10 00:00:31");
        assert_eq!(ev.size(), 16);
        assert_eq!(ev.routers.len(), 2);
        assert!(
            ev.location_summary
                .contains("r1 Interface Serial1/0.10/10:0"),
            "summary: {}",
            ev.location_summary
        );
        assert!(
            ev.location_summary
                .contains("r2 Interface Serial1/0.20/20:0"),
            "summary: {}",
            ev.location_summary
        );
        assert!(ev.label.contains("link flap"), "label: {}", ev.label);
        assert!(
            ev.label.contains("line protocol flap"),
            "label: {}",
            ev.label
        );
        let line = ev.format_line();
        assert!(
            line.starts_with("2010-01-10 00:00:00|2010-01-10 00:00:31|"),
            "{line}"
        );
    }

    #[test]
    fn labels_cover_common_signatures() {
        assert_eq!(
            label_for(&[
                "SNMP-WARNING-linkDown Interface * is not operational".into(),
                "SNMP-WARNING-linkup Interface * is operational".into(),
            ]),
            "port flap"
        );
        assert!(
            label_for(&["BGP-5-ADJCHANGE neighbor * vpn vrf * Up".into()])
                .contains("bgp adjacency change")
        );
        assert_eq!(
            label_for(&["WEIRD-1-THING something".into()]),
            "weird events"
        );
        assert_eq!(label_for(&[]), "unknown events");
    }

    #[test]
    fn extended_labels() {
        assert_eq!(
            label_for(&[
                "ENVMON-2-TEMPHIGH Temperature sensor on slot * reading * C exceeds threshold"
                    .into()
            ]),
            "environmental alarm"
        );
        assert_eq!(
            label_for(&["SYS-5-CONFIG_I Configured from console by * on vty0 *".into()]),
            "configuration change"
        );
        assert_eq!(
            label_for(&["TCP-6-BADAUTH Invalid MD5 digest from * to *".into()]),
            "authentication failures"
        );
        assert_eq!(
            label_for(&[
                "SVCMGR-MAJOR-svcStatusChanged Status of service * changed to operState down"
                    .into()
            ]),
            "service state change"
        );
        assert!(label_for(&[
            "SECURITY-WARNING-ftpLoginFailed FTP login failed for user * from host *".into()
        ])
        .contains("login failures"));
    }
}
