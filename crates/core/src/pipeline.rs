//! The online SyslogDigest pipeline (right half of Figure 1): augment →
//! group (temporal, rule-based, cross-router) → prioritize → present.

use crate::augment::augment_batch_isolated;
use crate::event::{build_event, NetworkEvent};
use crate::grouping::{group, group_traced, GroupingConfig, GroupingResult};
use crate::knowledge::DomainKnowledge;
use crate::priority::score_group;
use crate::provenance::{build_provenance, CloseReason, EventProvenance};
use crate::quarantine::QuarantineRecord;
use sd_model::RawMessage;
use sd_telemetry::Telemetry;

/// The digest of one batch (typically one day or the whole online period).
#[derive(Debug, Clone)]
pub struct Digest {
    /// Events, highest priority first.
    pub events: Vec<NetworkEvent>,
    /// Raw grouping result (batch-index space).
    pub grouping: GroupingResult,
    /// Input messages.
    pub n_input: usize,
    /// Messages dropped because their router is unknown.
    pub n_dropped: usize,
    /// Messages quarantined because their augmentation shard panicked
    /// even on sequential retry (0 in a healthy run).
    pub n_quarantined: usize,
    /// Provenance for every quarantined message (JSONL sidecar fodder).
    pub quarantined: Vec<QuarantineRecord>,
}

impl Digest {
    /// Overall compression ratio: events / input messages.
    pub fn compression_ratio(&self) -> f64 {
        if self.n_input == 0 {
            return 0.0;
        }
        self.events.len() as f64 / self.n_input as f64
    }

    /// Top `n` events (already rank-ordered).
    pub fn top(&self, n: usize) -> &[NetworkEvent] {
        &self.events[..n.min(self.events.len())]
    }

    /// Render the digest as the paper presents it: one line per event.
    pub fn to_report(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.format_line());
            out.push('\n');
        }
        out
    }
}

/// Run the full online pipeline over time-sorted raw messages.
/// `cfg.par` parallelizes augmentation and the router-local grouping
/// stages; the digest is identical for every thread count.
pub fn digest(k: &DomainKnowledge, raw: &[RawMessage], cfg: &GroupingConfig) -> Digest {
    digest_instrumented(k, raw, cfg, &Telemetry::disabled(), false).0
}

/// [`digest`] with per-stage span timings and counters recorded into
/// `tel`, and (when `trace` is set) one [`EventProvenance`] per event,
/// parallel to `Digest::events`. The digest itself is byte-identical to
/// [`digest`] for every telemetry/trace combination — event ids are the
/// 1-based presentation rank either way.
pub fn digest_instrumented(
    k: &DomainKnowledge,
    raw: &[RawMessage],
    cfg: &GroupingConfig,
    tel: &Telemetry,
    trace: bool,
) -> (Digest, Option<Vec<EventProvenance>>) {
    let (batch, n_dropped, quarantined) = {
        let _g = tel.time("digest.augment");
        let iso = augment_batch_isolated(k, raw, cfg.par);
        let poisoned: std::collections::HashSet<usize> =
            iso.quarantined.iter().map(|&(i, _)| i).collect();
        let mut batch = Vec::with_capacity(raw.len());
        let mut n_dropped = 0usize;
        for (i, sp) in iso.augmented.into_iter().enumerate() {
            match sp {
                Some(sp) => batch.push(sp),
                None if poisoned.contains(&i) => {}
                None => n_dropped += 1,
            }
        }
        let quarantined: Vec<QuarantineRecord> = iso
            .quarantined
            .into_iter()
            .map(|(i, reason)| {
                QuarantineRecord::from_message(i as u64 + 1, &raw[i], "augment", &reason)
            })
            .collect();
        (batch, n_dropped, quarantined)
    };
    let (grouping, provs) = {
        let _g = tel.time("digest.group");
        if trace {
            group_traced(k, &batch, cfg)
        } else {
            (group(k, &batch, cfg), Vec::new())
        }
    };
    let members = grouping.members();
    let mut events: Vec<(usize, NetworkEvent)> = {
        let _g = tel.time("digest.events");
        members
            .iter()
            .enumerate()
            .map(|(gi, m)| {
                let score = score_group(k, &batch, m);
                (gi, build_event(k, &batch, m, score))
            })
            .collect()
    };
    events.sort_by(|a, b| {
        b.1.score
            .total_cmp(&a.1.score)
            .then(a.1.start.cmp(&b.1.start))
    });
    for (rank, (_, ev)) in events.iter_mut().enumerate() {
        ev.id = rank as u64 + 1;
    }
    let provenance = trace.then(|| {
        events
            .iter()
            .map(|(gi, ev)| {
                build_provenance(
                    k,
                    &batch,
                    &members[*gi],
                    provs[*gi].clone(),
                    ev.id,
                    CloseReason::Batch,
                    None,
                    None,
                )
            })
            .collect()
    });
    let events: Vec<NetworkEvent> = events.into_iter().map(|(_, ev)| ev).collect();
    tel.counter("digest.n_input").add(raw.len() as u64);
    tel.counter("digest.n_dropped").add(n_dropped as u64);
    tel.counter("digest.n_events").add(events.len() as u64);
    tel.counter("digest.n_quarantined")
        .add(quarantined.len() as u64);
    (
        Digest {
            events,
            grouping,
            n_input: raw.len(),
            n_dropped,
            n_quarantined: quarantined.len(),
            quarantined,
        },
        provenance,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{learn, OfflineConfig};
    use sd_netsim::{Dataset, DatasetSpec};

    fn small_digest() -> (Dataset, DomainKnowledge, Digest) {
        let d = Dataset::generate(DatasetSpec::preset_a().scaled(0.08));
        let k = learn(&d.configs, d.train(), &OfflineConfig::dataset_a());
        let dg = digest(&k, d.online(), &GroupingConfig::default());
        (d, k, dg)
    }

    #[test]
    fn digest_compresses_by_orders_of_magnitude() {
        let (_d, _k, dg) = small_digest();
        assert!(dg.n_input > 500, "n_input {}", dg.n_input);
        assert_eq!(dg.n_dropped, 0);
        let ratio = dg.compression_ratio();
        assert!(ratio < 0.15, "compression ratio {ratio}");
        assert_eq!(dg.events.len(), dg.grouping.n_groups);
    }

    #[test]
    fn events_are_rank_ordered_and_cover_all_messages() {
        let (_d, _k, dg) = small_digest();
        for w in dg.events.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        let total: usize = dg.events.iter().map(|e| e.size()).sum();
        assert_eq!(total, dg.n_input - dg.n_dropped);
        // Raw indices are unique across events.
        let mut seen = std::collections::HashSet::new();
        for e in &dg.events {
            for &i in &e.message_idxs {
                assert!(seen.insert(i), "raw index {i} in two events");
            }
        }
    }

    #[test]
    fn report_renders_one_line_per_event() {
        let (_d, _k, dg) = small_digest();
        let report = dg.to_report();
        assert_eq!(report.lines().count(), dg.events.len());
        let first = report.lines().next().unwrap();
        assert_eq!(first.split('|').count(), 4, "line: {first}");
    }

    /// §4.2.4's score is a per-message sum, so an event's score must equal
    /// the sum of its members' singleton scores — merging groups can only
    /// raise priority, never lower it.
    #[test]
    fn score_is_additive_over_members() {
        use crate::augment::augment_batch;
        use crate::priority::score_group;
        let (d, k, dg) = small_digest();
        let (batch, _) = augment_batch(&k, d.online());
        let members = dg.grouping.members();
        let biggest = members.iter().max_by_key(|m| m.len()).unwrap();
        let whole = score_group(&k, &batch, biggest);
        let parts: f64 = biggest.iter().map(|&i| score_group(&k, &batch, &[i])).sum();
        assert!(
            (whole - parts).abs() < 1e-6 * whole.max(1.0),
            "{whole} vs {parts}"
        );
    }
}
