//! The three grouping stages (§4.2.1–§4.2.3) over a Syslog+ batch,
//! fused through a union-find so the stage order cannot change the result.

use crate::knowledge::DomainKnowledge;
use crate::provenance::{GroupProv, MergeCause};
use crate::union_find::UnionFind;
use sd_model::{par_map, Parallelism, SyslogPlus, TemplateId};
use sd_temporal::EwmaTracker;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Which stages to run (Table 7 compares T, T+R, T+R+C).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GroupingConfig {
    /// Temporal grouping (same template + location + router).
    pub temporal: bool,
    /// Rule-based grouping (different templates, same router, spatial
    /// match, within W).
    pub rules: bool,
    /// Cross-router grouping (same template, connected locations, ~1 s).
    pub cross: bool,
    /// Cross-router simultaneity window in seconds (paper: 1 s).
    pub cross_window_secs: i64,
    /// Thread count for the router-sharded stages (the temporal and
    /// rule-based stages are per-router and shard perfectly; the
    /// cross-router stage is always sequential). Output is identical for
    /// every thread count.
    #[serde(default)]
    pub par: Parallelism,
}

impl Default for GroupingConfig {
    fn default() -> Self {
        GroupingConfig {
            temporal: true,
            rules: true,
            cross: true,
            cross_window_secs: 1,
            par: Parallelism::default(),
        }
    }
}

impl GroupingConfig {
    /// Temporal stage only.
    pub fn t_only() -> Self {
        GroupingConfig {
            rules: false,
            cross: false,
            ..Self::default()
        }
    }

    /// Temporal + rule-based.
    pub fn t_r() -> Self {
        GroupingConfig {
            cross: false,
            ..Self::default()
        }
    }
}

/// Result of grouping one batch.
#[derive(Debug, Clone)]
pub struct GroupingResult {
    /// Group index per batch element (dense, by first appearance).
    pub group_of: Vec<usize>,
    /// Number of groups.
    pub n_groups: usize,
    /// Undirected rule pairs that actually merged messages ("active
    /// rules", the third series of Figure 12).
    pub active_rules: HashSet<(u32, u32)>,
}

impl GroupingResult {
    /// Compression ratio: groups / messages (0 on an empty batch).
    pub fn compression_ratio(&self) -> f64 {
        if self.group_of.is_empty() {
            return 0.0;
        }
        self.n_groups as f64 / self.group_of.len() as f64
    }

    /// Member batch-indices per group.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.n_groups];
        for (i, &g) in self.group_of.iter().enumerate() {
            out[g].push(i);
        }
        out
    }
}

/// Union edges produced by the router-local stages over one router shard
/// (or, on the sequential path, the whole batch). Each edge carries the
/// stage (and, for rules, the template pair) that produced it — the
/// provenance layer consumes the causes; plain grouping ignores them.
struct RouterLocalOutcome {
    edges: Vec<(usize, usize, MergeCause)>,
}

/// Run the temporal and rule-based stages over the messages selected by
/// `idxs` (ascending batch indices). Both stages key all state by router,
/// so running them over one router's messages is *exactly* the sequential
/// traversal restricted to that router — sharding by router changes
/// nothing about the produced edge set.
fn router_local_stages(
    k: &DomainKnowledge,
    batch: &[SyslogPlus],
    cfg: &GroupingConfig,
    idxs: impl Iterator<Item = usize> + Clone,
) -> RouterLocalOutcome {
    let mut edges: Vec<(usize, usize, MergeCause)> = Vec::new();

    // ---- temporal stage -------------------------------------------------
    if cfg.temporal {
        let mut trackers: HashMap<(u32, u32, u32), (EwmaTracker, usize)> = HashMap::new();
        for i in idxs.clone() {
            let sp = &batch[i];
            let key = tkey(sp);
            match trackers.get_mut(&key) {
                None => {
                    let mut tr = EwmaTracker::new();
                    tr.observe(sp.ts, &k.temporal);
                    trackers.insert(key, (tr, i));
                }
                Some((tr, last)) => {
                    let new_group = tr.observe(sp.ts, &k.temporal);
                    if !new_group {
                        edges.push((*last, i, MergeCause::Temporal));
                    }
                    *last = i;
                }
            }
        }
    }

    // ---- rule-based stage ------------------------------------------------
    if cfg.rules {
        // Per router: a recent representative per (template, location).
        type Recent = HashMap<(u32, u32), (usize, sd_model::Timestamp)>;
        let mut recent: HashMap<u32, Recent> = HashMap::new();
        let w = k.window_secs;
        for j in idxs {
            let sp = &batch[j];
            let Some(tj) = sp.template else { continue };
            let loc_j = sp.primary_location();
            let rmap = recent.entry(sp.router.0).or_default();
            for (&(t2, loc2), &(i2, ts2)) in rmap.iter() {
                if sp.ts.seconds_since(ts2) > w {
                    continue;
                }
                if t2 == tj.0 {
                    continue;
                }
                if !k.rules.related(tj, TemplateId(t2)) {
                    continue;
                }
                let spatial = match loc_j {
                    Some(a) => k.dict.spatially_match(a, sd_model::LocationId(loc2)),
                    None => false,
                };
                if spatial {
                    edges.push((i2, j, MergeCause::Rule(tj.0.min(t2), tj.0.max(t2))));
                }
            }
            if let Some(loc) = loc_j {
                rmap.insert((tj.0, loc.0), (j, sp.ts));
            }
            // Prune stale representatives occasionally.
            if rmap.len() > 256 {
                let now = sp.ts;
                rmap.retain(|_, &mut (_, ts)| now.seconds_since(ts) <= w);
            }
        }
    }

    RouterLocalOutcome { edges }
}

/// All union edges of the configured stages, with their causes. The
/// router-local stages shard by router when parallel; the cross-router
/// stage is sequential (its state spans routers). Union-find partitions
/// do not depend on the order edges are applied, so the edge set fully
/// determines the grouping.
fn collect_edges(
    k: &DomainKnowledge,
    batch: &[SyslogPlus],
    cfg: &GroupingConfig,
) -> Vec<(usize, usize, MergeCause)> {
    let mut edges: Vec<(usize, usize, MergeCause)> = Vec::new();

    // ---- router-local stages (temporal + rules), sharded by router -------
    let outcomes: Vec<RouterLocalOutcome> = if cfg.par.is_sequential() {
        vec![router_local_stages(k, batch, cfg, 0..batch.len())]
    } else {
        // Shard batch indices by router, routers in ascending id order.
        let mut shards: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, sp) in batch.iter().enumerate() {
            shards.entry(sp.router.0).or_default().push(i);
        }
        let shards: Vec<Vec<usize>> = shards.into_values().collect();
        par_map(cfg.par, &shards, |_, shard| {
            router_local_stages(k, batch, cfg, shard.iter().copied())
        })
    };
    for outcome in outcomes {
        edges.extend(outcome.edges);
    }

    // ---- cross-router stage (sequential: state spans routers) ------------
    if cfg.cross {
        let cw = cfg.cross_window_secs;
        let mut recent: HashMap<u32, VecDeque<(usize, sd_model::Timestamp)>> = HashMap::new();
        for (j, sp) in batch.iter().enumerate() {
            let Some(tj) = sp.template else { continue };
            let q = recent.entry(tj.0).or_default();
            while let Some(&(_, ts)) = q.front() {
                if sp.ts.seconds_since(ts) > cw {
                    q.pop_front();
                } else {
                    break;
                }
            }
            for &(i2, _) in q.iter() {
                let other = &batch[i2];
                if other.router == sp.router {
                    continue;
                }
                if cross_related(k, sp, other) {
                    edges.push((i2, j, MergeCause::Cross));
                }
            }
            q.push_back((j, sp.ts));
            if q.len() > 1024 {
                q.pop_front();
            }
        }
    }

    edges
}

/// All union edges the configured stages produce over `batch`, with the
/// stage (and, for rules, the undirected template pair) that caused each.
///
/// This is the conformance seam: [`group`] is exactly a union-find fold of
/// this edge set, so a differential oracle that compares it against an
/// independently derived reference edge set can pinpoint the first
/// *decision* that differed (which two messages were linked, by which
/// stage) rather than only observing that two partitions disagree.
pub fn stage_edges(
    k: &DomainKnowledge,
    batch: &[SyslogPlus],
    cfg: &GroupingConfig,
) -> Vec<(usize, usize, MergeCause)> {
    collect_edges(k, batch, cfg)
}

fn result_from_edges(n: usize, edges: &[(usize, usize, MergeCause)]) -> GroupingResult {
    let mut uf = UnionFind::new(n);
    let mut active_rules: HashSet<(u32, u32)> = HashSet::new();
    for &(a, b, cause) in edges {
        uf.union(a, b);
        if let MergeCause::Rule(x, y) = cause {
            active_rules.insert((x, y));
        }
    }
    let (group_of, n_groups) = uf.groups();
    GroupingResult {
        group_of,
        n_groups,
        active_rules,
    }
}

/// Group a time-sorted augmented batch. The result is identical for every
/// `cfg.par.threads` value: the parallel path shards the router-local
/// stages by router, and union-find partitions do not depend on the order
/// edges are applied.
pub fn group(k: &DomainKnowledge, batch: &[SyslogPlus], cfg: &GroupingConfig) -> GroupingResult {
    result_from_edges(batch.len(), &collect_edges(k, batch, cfg))
}

/// [`group`] plus a per-group [`GroupProv`] link accumulator (indexed by
/// the result's group index). The grouping itself is *identical* to
/// [`group`] — the causes are replayed over the final partition after the
/// fact, never consulted while merging.
pub fn group_traced(
    k: &DomainKnowledge,
    batch: &[SyslogPlus],
    cfg: &GroupingConfig,
) -> (GroupingResult, Vec<GroupProv>) {
    let edges = collect_edges(k, batch, cfg);
    let result = result_from_edges(batch.len(), &edges);
    let mut provs = vec![GroupProv::default(); result.n_groups];
    for &(a, _, cause) in &edges {
        provs[result.group_of[a]].record(cause);
    }
    (result, provs)
}

fn tkey(sp: &SyslogPlus) -> (u32, u32, u32) {
    (
        sp.router.0,
        sp.template.map(|t| t.0).unwrap_or(u32::MAX),
        sp.primary_location().map(|l| l.0).unwrap_or(u32::MAX),
    )
}

/// §4.2.3 relatedness: the two messages reference the same location (a
/// shared LSP path or each other's elements) or locations that are the two
/// ends of one link.
fn cross_related(k: &DomainKnowledge, a: &SyslogPlus, b: &SyslogPlus) -> bool {
    for &x in &a.locations {
        for &y in &b.locations {
            if x == y || k.dict.cross_router_related(x, y) {
                return true;
            }
            // A remote reference (e.g. the neighbor's loopback behind an
            // IP) spatially matching the other side's own location.
            if k.dict.router_of(x) == k.dict.router_of(y) && k.dict.spatially_match(x, y) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::augment_batch;
    use crate::offline::{learn, OfflineConfig};
    use sd_model::{ErrorCode, RawMessage, Timestamp};
    use sd_netsim::config::render_all;
    use sd_netsim::scenario::{toy_table2_messages, toy_topology};

    /// Training data that teaches the four Table 2 templates with masked
    /// interfaces: the toy flaps replayed over many synthetic interfaces.
    fn toy_training() -> Vec<RawMessage> {
        let mut train = Vec::new();
        for i in 0..25 {
            for (code, detail, state) in [
                ("LINK-3-UPDOWN", "Interface", "down"),
                ("LINK-3-UPDOWN", "Interface", "up"),
            ] {
                train.push(RawMessage::new(
                    Timestamp(i * 40),
                    if i % 2 == 0 { "r1" } else { "r2" },
                    ErrorCode::from(code),
                    format!("{detail} Serial9/{i}.10/1:0, changed state to {state}"),
                ));
            }
            for state in ["down", "up"] {
                train.push(RawMessage::new(
                    Timestamp(i * 40 + 1),
                    if i % 2 == 0 { "r1" } else { "r2" },
                    ErrorCode::from("LINEPROTO-5-UPDOWN"),
                    format!(
                        "Line protocol on Interface Serial9/{i}.10/1:0, changed state to {state}"
                    ),
                ));
            }
        }
        sd_model::sort_batch(&mut train);
        train
    }

    fn toy_knowledge() -> DomainKnowledge {
        let topo = toy_topology();
        let configs = render_all(&topo);
        // Rule mining over the training flaps (LINK and LINEPROTO co-occur
        // within seconds).
        let mut cfg = OfflineConfig::dataset_a();
        cfg.mine.sp_min = 0.0001;
        learn(&configs, &toy_training(), &cfg)
    }

    /// The paper's running example: 16 messages; temporal grouping alone
    /// gives the four per-(template, location) groups, adding rules merges
    /// per router, adding cross-router yields the single network event.
    #[test]
    fn table2_toy_groups_exactly_as_paper_describes() {
        let k = toy_knowledge();
        let raw = toy_table2_messages();
        let (batch, dropped) = augment_batch(&k, &raw);
        assert_eq!(dropped, 0);
        assert_eq!(batch.len(), 16);

        let t = group(&k, &batch, &GroupingConfig::t_only());
        assert_eq!(t.n_groups, 8, "T: per (router, template, location)");

        let tr = group(&k, &batch, &GroupingConfig::t_r());
        assert_eq!(tr.n_groups, 2, "T+R: one group per router");
        assert!(!tr.active_rules.is_empty());

        let trc = group(&k, &batch, &GroupingConfig::default());
        assert_eq!(trc.n_groups, 1, "T+R+C: the single network event");
    }

    #[test]
    fn compression_improves_monotonically_with_stages() {
        let k = toy_knowledge();
        let raw = toy_table2_messages();
        let (batch, _) = augment_batch(&k, &raw);
        let rt = group(&k, &batch, &GroupingConfig::t_only()).compression_ratio();
        let rtr = group(&k, &batch, &GroupingConfig::t_r()).compression_ratio();
        let rtrc = group(&k, &batch, &GroupingConfig::default()).compression_ratio();
        assert!(rt >= rtr && rtr >= rtrc, "{rt} {rtr} {rtrc}");
    }

    #[test]
    fn unrelated_routers_stay_separate() {
        let k = toy_knowledge();
        // Two independent flaps on r1 and r2 hours apart: no cross-router
        // merge is possible.
        let g = Grammar::for_vendor(sd_model::Vendor::V1);
        let mk = |ts, r: &str, iface: &str, key: &str| {
            let t = g.get(key);
            RawMessage::new(
                Timestamp(ts),
                r,
                t.code.clone(),
                t.render(|_| iface.to_owned()),
            )
        };
        let raw = vec![
            mk(0, "r1", "Serial1/0.10/10:0", "LINK_DOWN"),
            mk(10_000, "r2", "Serial1/0.20/20:0", "LINK_DOWN"),
        ];
        let (batch, _) = augment_batch(&k, &raw);
        let r = group(&k, &batch, &GroupingConfig::default());
        assert_eq!(r.n_groups, 2);
    }

    use sd_netsim::Grammar;

    #[test]
    fn empty_batch() {
        let k = toy_knowledge();
        let r = group(&k, &[], &GroupingConfig::default());
        assert_eq!(r.n_groups, 0);
        assert_eq!(r.compression_ratio(), 0.0);
    }
}
