//! Quarantine of poison messages and the injected-panic hook.
//!
//! When a shard of the parallel augmentation fan-out panics
//! ([`crate::augment::augment_batch_isolated`]), the shard is retried
//! sequentially and the individual messages that still panic are
//! *quarantined*: excluded from the digest exactly as if they had never
//! been fed, counted under `n_quarantined`, and recorded as
//! [`QuarantineRecord`]s for the `--quarantine-out` JSONL sidecar. A
//! quarantined message is never assigned a sequence number, so the
//! surviving digest is byte-identical to a run over the same feed with
//! the poison messages removed.
//!
//! The *poison hook* is how tests and the fault-injection harness
//! manufacture a panic deep inside augmentation: arming
//! [`set_poison_marker`] makes [`poison_check`] panic on any message
//! whose detail contains the marker. Disarmed (the default, and the
//! only production state) the hook costs one relaxed atomic load per
//! message and changes no output — the PR 3 output-neutrality contract
//! holds.

use sd_model::RawMessage;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::RwLock;

/// One quarantined message with enough provenance to replay or debug
/// it: the wire-format line, where it sat in the feed, and why its
/// shard panicked. Serialized as one JSON object per line in the
/// `--quarantine-out` sidecar.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineRecord {
    /// 1-based position of the message in the input order (counts every
    /// pushed message, including dropped and quarantined ones).
    pub position: u64,
    /// The offending message, re-rendered in wire format.
    pub line: String,
    /// Originating router.
    pub router: String,
    /// Message timestamp (epoch seconds).
    pub ts: i64,
    /// Vendor error code.
    pub code: String,
    /// Pipeline stage whose shard panicked (currently `"augment"`).
    pub stage: String,
    /// Rendered panic payload.
    pub reason: String,
}

impl QuarantineRecord {
    /// Build a record for `m`, quarantined at input `position` by a
    /// panic in `stage` with the given rendered `reason`.
    pub fn from_message(position: u64, m: &RawMessage, stage: &str, reason: &str) -> Self {
        QuarantineRecord {
            position,
            line: m.to_line(),
            router: m.router.clone(),
            ts: m.ts.0,
            code: m.code.to_string(),
            stage: stage.to_string(),
            reason: reason.to_string(),
        }
    }

    /// One-line JSON rendering for the JSONL sidecar.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| String::from("{}"))
    }
}

static POISON_ENABLED: AtomicBool = AtomicBool::new(false);
static POISON_MARKER: RwLock<Option<String>> = RwLock::new(None);

/// Arm (`Some`) or disarm (`None`) the injected-panic hook: while
/// armed, augmenting any message whose detail contains `marker` panics
/// inside the shard doing the work. Process-global; used by the fault
/// harness and quarantine tests to simulate a latent grammar bug.
pub fn set_poison_marker(marker: Option<&str>) {
    let mut guard = POISON_MARKER.write().unwrap_or_else(|e| e.into_inner());
    *guard = marker.map(str::to_string);
    POISON_ENABLED.store(guard.is_some(), Ordering::Release);
}

/// Panic if the poison hook is armed and `detail` contains the marker.
/// The disarmed fast path is a single relaxed atomic load.
#[inline]
pub fn poison_check(detail: &str) {
    if !POISON_ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let guard = POISON_MARKER.read().unwrap_or_else(|e| e.into_inner());
    if let Some(marker) = guard.as_deref() {
        if detail.contains(marker) {
            panic!("injected poison panic: message detail contains {marker:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_model::{ErrorCode, Timestamp};

    fn msg(detail: &str) -> RawMessage {
        RawMessage::new(
            Timestamp(1000),
            "r1",
            ErrorCode::from("SYS-2-TESTFAIL"),
            detail,
        )
    }

    #[test]
    fn record_serializes_to_one_json_line() {
        let r = QuarantineRecord::from_message(7, &msg("interface down"), "augment", "boom");
        let json = r.to_json();
        assert!(!json.contains('\n'));
        let back: QuarantineRecord = serde_json::from_str(&json).expect("roundtrip");
        assert_eq!(back, r);
        assert_eq!(back.position, 7);
        assert_eq!(back.stage, "augment");
    }

    #[test]
    fn disarmed_hook_never_panics() {
        set_poison_marker(None);
        poison_check("anything at all");
    }
}
