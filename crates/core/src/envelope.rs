//! Self-describing envelope for every artifact the pipeline persists.
//!
//! A durable artifact (stream checkpoint, learned knowledge) is written
//! as a fixed 28-byte header followed by the payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic            b"SDAR"
//!      4     4  artifact kind    b"CKPT" / b"KNOW"
//!      8     4  schema version   u32, little-endian
//!     12     8  payload length   u64, little-endian
//!     20     8  payload checksum u64, little-endian, FNV-1a over payload
//!     28     n  payload          (JSON today; the envelope is agnostic)
//! ```
//!
//! Decoding verifies in order: magic → kind → version → length →
//! checksum, so the typed [`EnvelopeError`] pinpoints *how far* a
//! damaged file could be trusted. Any single-byte truncation or bit
//! flip is detected: truncation strictly shortens the declared length,
//! and a flip in the header breaks one of the tag/version/length
//! fields while a flip in the payload breaks the checksum.
//!
//! Writes are atomic: payload goes to a `<name>.tmp` sibling first and
//! is renamed over the destination, so a crash mid-write leaves either
//! the old artifact or a garbage temp file — never a half-new artifact
//! under the real name. Files that do not start with the magic are
//! handled by callers as legacy raw-JSON artifacts (pre-envelope
//! checkpoints and knowledge files keep loading).

use std::fmt;
use std::path::{Path, PathBuf};

/// Leading magic bytes of every enveloped artifact ("SyslogDigest ARtifact").
pub const ENVELOPE_MAGIC: [u8; 4] = *b"SDAR";

/// Total header size in bytes (magic + kind + version + length + checksum).
pub const HEADER_LEN: usize = 28;

/// Four-byte artifact-kind tag inside the envelope header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactKind(pub [u8; 4]);

impl ArtifactKind {
    /// Stream checkpoint ([`crate::checkpoint::StreamSnapshot`]).
    pub const CHECKPOINT: ArtifactKind = ArtifactKind(*b"CKPT");
    /// Learned domain knowledge ([`crate::knowledge::DomainKnowledge`]).
    pub const KNOWLEDGE: ArtifactKind = ArtifactKind(*b"KNOW");

    fn name(self) -> String {
        self.0.iter().map(|&b| b as char).collect()
    }
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Typed decode/encode failures, ordered by how early verification
/// stopped: the variants earlier in the enum mean less of the file
/// could be trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvelopeError {
    /// The file does not start with [`ENVELOPE_MAGIC`] (and is not
    /// recognizable as a legacy artifact either).
    BadMagic,
    /// The envelope is valid but holds a different artifact kind.
    KindMismatch {
        /// Kind the caller asked for.
        expected: String,
        /// Kind tag found in the header.
        found: String,
    },
    /// The schema version is not one this build can read.
    VersionUnsupported {
        /// Version found in the header.
        found: u32,
        /// Newest version this build understands.
        expected: u32,
    },
    /// The file ends before the header (or the declared payload) does —
    /// the classic torn-write signature.
    Truncated {
        /// Bytes the header (or header + declared payload) requires.
        needed: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The file is longer than header + declared payload.
    TrailingData {
        /// Surplus bytes past the declared payload.
        extra: usize,
    },
    /// The payload does not hash to the checksum in the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// FNV-1a of the payload as read.
        found: u64,
    },
    /// The envelope verified but the payload failed to decode (e.g.
    /// malformed JSON inside a checksummed body — a writer bug, not
    /// storage damage).
    Payload(String),
    /// Underlying I/O failure while reading or writing.
    Io(String),
}

impl fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvelopeError::BadMagic => {
                write!(f, "bad magic: not a recognized artifact")
            }
            EnvelopeError::KindMismatch { expected, found } => {
                write!(
                    f,
                    "artifact kind mismatch: expected {expected}, found {found}"
                )
            }
            EnvelopeError::VersionUnsupported { found, expected } => {
                write!(
                    f,
                    "unsupported schema version {found} (this build reads up to {expected})"
                )
            }
            EnvelopeError::Truncated { needed, found } => {
                write!(f, "truncated: need {needed} bytes, file has {found}")
            }
            EnvelopeError::TrailingData { extra } => {
                write!(f, "{extra} trailing bytes past the declared payload")
            }
            EnvelopeError::ChecksumMismatch { expected, found } => {
                write!(
                    f,
                    "checksum mismatch: header says {expected:#018x}, payload hashes to {found:#018x}"
                )
            }
            EnvelopeError::Payload(e) => write!(f, "payload invalid: {e}"),
            EnvelopeError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for EnvelopeError {}

/// An [`EnvelopeError`] annotated with *which* artifact failed: file
/// path and, for rotated checkpoints, the generation. This is the
/// context operators need to tell a corrupt `run.ckpt.1` from a
/// corrupt knowledge file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactError {
    /// Path of the artifact that failed.
    pub path: PathBuf,
    /// Checkpoint generation (0 = newest), when applicable.
    pub generation: Option<u32>,
    /// The underlying failure.
    pub error: EnvelopeError,
}

impl ArtifactError {
    /// Wrap `error` with the failing `path` (no generation).
    pub fn at(path: &Path, error: EnvelopeError) -> Self {
        ArtifactError {
            path: path.to_path_buf(),
            generation: None,
            error,
        }
    }

    /// Attach a checkpoint generation to this error.
    pub fn with_generation(mut self, generation: u32) -> Self {
        self.generation = Some(generation);
        self
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "artifact {}", self.path.display())?;
        if let Some(g) = self.generation {
            write!(f, " (generation {g})")?;
        }
        write!(f, ": {}", self.error)
    }
}

impl std::error::Error for ArtifactError {}

/// FNV-1a 64-bit hash — the workspace's standard content digest
/// (matches the fingerprint/digest hashing in knowledge and netsim).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Whether `bytes` begin with the envelope magic (used to route legacy
/// raw-JSON artifacts to their old parsers).
pub fn is_enveloped(bytes: &[u8]) -> bool {
    bytes.len() >= ENVELOPE_MAGIC.len() && bytes[..ENVELOPE_MAGIC.len()] == ENVELOPE_MAGIC
}

/// Serialize `payload` into a fully framed artifact image.
pub fn encode(kind: ArtifactKind, version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&ENVELOPE_MAGIC);
    out.extend_from_slice(&kind.0);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Verify the envelope around `bytes` and return the payload slice.
///
/// Verification order: magic → kind → version (must be exactly
/// `expected_version` — snapshots are not forward-compatible) →
/// declared length vs file size → checksum.
pub fn decode(
    bytes: &[u8],
    kind: ArtifactKind,
    expected_version: u32,
) -> Result<&[u8], EnvelopeError> {
    if bytes.len() >= ENVELOPE_MAGIC.len() && !is_enveloped(bytes) {
        return Err(EnvelopeError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(EnvelopeError::Truncated {
            needed: HEADER_LEN,
            found: bytes.len(),
        });
    }
    let found_kind = ArtifactKind([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if found_kind != kind {
        return Err(EnvelopeError::KindMismatch {
            expected: kind.name(),
            found: found_kind.name(),
        });
    }
    let version = le_u32(&bytes[8..12]);
    if version != expected_version {
        return Err(EnvelopeError::VersionUnsupported {
            found: version,
            expected: expected_version,
        });
    }
    let payload_len = le_u64(&bytes[12..20]) as usize;
    let needed = HEADER_LEN + payload_len;
    if bytes.len() < needed {
        return Err(EnvelopeError::Truncated {
            needed,
            found: bytes.len(),
        });
    }
    if bytes.len() > needed {
        return Err(EnvelopeError::TrailingData {
            extra: bytes.len() - needed,
        });
    }
    let payload = &bytes[HEADER_LEN..needed];
    let expected_sum = le_u64(&bytes[20..28]);
    let found_sum = fnv1a(payload);
    if found_sum != expected_sum {
        return Err(EnvelopeError::ChecksumMismatch {
            expected: expected_sum,
            found: found_sum,
        });
    }
    Ok(payload)
}

/// Atomically write an enveloped artifact: frame, write to a
/// `<file name>.tmp` sibling, rename over `path`.
pub fn save_atomic(
    path: &Path,
    kind: ArtifactKind,
    version: u32,
    payload: &[u8],
) -> Result<(), ArtifactError> {
    let framed = encode(kind, version, payload);
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    std::fs::write(&tmp, &framed)
        .map_err(|e| ArtifactError::at(&tmp, EnvelopeError::Io(e.to_string())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| ArtifactError::at(path, EnvelopeError::Io(e.to_string())))
}

/// Read an artifact's raw bytes, wrapping I/O failures with the path.
pub fn load_bytes(path: &Path) -> Result<Vec<u8>, ArtifactError> {
    std::fs::read(path).map_err(|e| ArtifactError::at(path, EnvelopeError::Io(e.to_string())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_payload() {
        let payload = br#"{"hello": "world"}"#;
        let framed = encode(ArtifactKind::CHECKPOINT, 3, payload);
        assert!(is_enveloped(&framed));
        assert_eq!(framed.len(), HEADER_LEN + payload.len());
        let back = decode(&framed, ArtifactKind::CHECKPOINT, 3).expect("decodes");
        assert_eq!(back, payload);
    }

    #[test]
    fn every_truncation_is_detected() {
        let framed = encode(ArtifactKind::KNOWLEDGE, 1, b"some payload bytes");
        for cut in 0..framed.len() {
            let err = decode(&framed[..cut], ArtifactKind::KNOWLEDGE, 1)
                .expect_err("truncated image must not decode");
            assert!(
                matches!(
                    err,
                    EnvelopeError::Truncated { .. } | EnvelopeError::BadMagic
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let framed = encode(ArtifactKind::CHECKPOINT, 2, b"payload under test");
        for byte in 0..framed.len() {
            for bit in 0..8u8 {
                let mut dam = framed.clone();
                dam[byte] ^= 1 << bit;
                assert!(
                    decode(&dam, ArtifactKind::CHECKPOINT, 2).is_err(),
                    "flip {byte}:{bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn kind_and_version_checks_fire_in_order() {
        let framed = encode(ArtifactKind::CHECKPOINT, 2, b"x");
        assert_eq!(
            decode(&framed, ArtifactKind::KNOWLEDGE, 2),
            Err(EnvelopeError::KindMismatch {
                expected: "KNOW".into(),
                found: "CKPT".into()
            })
        );
        assert_eq!(
            decode(&framed, ArtifactKind::CHECKPOINT, 9),
            Err(EnvelopeError::VersionUnsupported {
                found: 2,
                expected: 9
            })
        );
        assert_eq!(
            decode(b"not an artifact at all", ArtifactKind::CHECKPOINT, 2),
            Err(EnvelopeError::BadMagic)
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut framed = encode(ArtifactKind::CHECKPOINT, 1, b"abc");
        framed.push(0);
        assert_eq!(
            decode(&framed, ArtifactKind::CHECKPOINT, 1),
            Err(EnvelopeError::TrailingData { extra: 1 })
        );
    }

    #[test]
    fn save_atomic_roundtrips_and_cleans_tmp() {
        let dir = std::env::temp_dir().join("sd_envelope_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("artifact.bin");
        save_atomic(&path, ArtifactKind::KNOWLEDGE, 1, b"body").expect("save");
        assert!(!dir.join("artifact.bin.tmp").exists());
        let bytes = load_bytes(&path).expect("load");
        assert_eq!(
            decode(&bytes, ArtifactKind::KNOWLEDGE, 1).expect("decode"),
            b"body"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
