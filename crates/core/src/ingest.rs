//! Fault-tolerant ingest: the composition real deployments run.
//!
//! [`FaultTolerantIngest`] wires the full defensive stack in front of the
//! streaming digester:
//!
//! ```text
//! feed lines ──parse──► ReorderBuffer ──in-order──► StreamDigester ──► events
//!      │ malformed: count + sample       │ late/duplicate: count
//! ```
//!
//! * Lines that fail to parse are counted ([`IngestStats::n_malformed`])
//!   and the first few are kept with line numbers and reasons
//!   ([`FaultTolerantIngest::malformed_samples`]) so operators see *what*
//!   is wrong with a feed, not just that something is.
//! * Reordering within `max_skew_secs` is repaired, late arrivals and
//!   duplicates are counted and dropped (see [`crate::reorder`]).
//! * [`FaultTolerantIngest::checkpoint`] snapshots the digester *and* the
//!   reorder buffer together, so resume continues mid-skew-window without
//!   losing buffered messages.
//!
//! Within the configured bounds this layer is *exact*: a faulted feed
//! (bounded reordering, duplicates, corrupted lines) digests to the same
//! event partition as the clean feed — the fault-injection integration
//! tests assert exactly that, and that anything beyond the bounds only
//! moves counters, never panics.

use crate::checkpoint::{CheckpointError, IngestState, RecoveryReport, StreamSnapshot};
use crate::event::NetworkEvent;
use crate::grouping::GroupingConfig;
use crate::knowledge::DomainKnowledge;
use crate::provenance::EventProvenance;
use crate::reorder::ReorderBuffer;
use crate::stream::{StreamConfig, StreamDigester, StreamStats};
use sd_model::{ParseError, RawMessage};
use sd_telemetry::{Counter, Telemetry};

/// How many malformed lines to keep verbatim for diagnostics.
const MALFORMED_SAMPLES: usize = 5;

/// Combined counters of a fault-tolerant ingest run. Every way the layer
/// can degrade is observable here; a healthy feed keeps them all zero
/// except [`IngestStats::n_lines`] and [`StreamStats::n_input`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Feed lines consumed (including blank and malformed ones).
    pub n_lines: usize,
    /// Non-blank lines that failed to parse.
    pub n_malformed: usize,
    /// Messages dropped for arriving beyond the reorder tolerance.
    pub n_late: usize,
    /// Duplicate messages absorbed by the reorder buffer.
    pub n_duplicate: usize,
    /// Digester-level counters (`n_dropped`, `n_force_closed`, ...).
    pub digester: StreamStats,
}

/// Streaming digester wrapped with parsing, reorder repair, and
/// checkpointing over the whole composite (see the module docs).
pub struct FaultTolerantIngest<'k> {
    digester: StreamDigester<'k>,
    reorder: ReorderBuffer,
    n_lines: Counter,
    n_malformed: Counter,
    malformed_samples: Vec<(usize, String)>,
    /// Scratch for released messages, reused across pushes.
    released: Vec<RawMessage>,
}

impl<'k> FaultTolerantIngest<'k> {
    /// New ingest layer tolerating up to `max_skew_secs` of reordering.
    pub fn new(
        k: &'k DomainKnowledge,
        cfg: GroupingConfig,
        scfg: StreamConfig,
        max_skew_secs: i64,
    ) -> Self {
        Self::with_telemetry(k, cfg, scfg, max_skew_secs, &Telemetry::disabled())
    }

    /// [`new`](Self::new) with every stage counter and span registered in
    /// `tel` (`ingest.*` and `stream.*` names).
    pub fn with_telemetry(
        k: &'k DomainKnowledge,
        cfg: GroupingConfig,
        scfg: StreamConfig,
        max_skew_secs: i64,
        tel: &Telemetry,
    ) -> Self {
        FaultTolerantIngest {
            digester: StreamDigester::with_telemetry(k, cfg, scfg, tel),
            reorder: ReorderBuffer::with_telemetry(max_skew_secs, tel),
            n_lines: tel.counter("ingest.n_lines"),
            n_malformed: tel.counter("ingest.n_malformed"),
            malformed_samples: Vec::new(),
            released: Vec::new(),
        }
    }

    /// Enable or disable per-event provenance capture (see
    /// [`StreamDigester::set_trace`]).
    pub fn set_trace(&mut self, on: bool) {
        self.digester.set_trace(on);
    }

    /// Drain provenance records accumulated since the last call.
    pub fn take_provenance(&mut self) -> Vec<EventProvenance> {
        self.digester.take_provenance()
    }

    /// Feed one raw feed line: parse, repair ordering, digest. Blank
    /// lines are skipped silently; malformed ones are counted and
    /// sampled. Returns any events that became closable.
    pub fn push_line(&mut self, line: &str) -> Vec<NetworkEvent> {
        self.n_lines.inc();
        match RawMessage::parse_line(line) {
            Ok(m) => self.push_message(m),
            Err(ParseError::Blank) => Vec::new(),
            Err(e) => {
                self.n_malformed.inc();
                if self.malformed_samples.len() < MALFORMED_SAMPLES {
                    self.malformed_samples
                        .push((self.n_lines.get() as usize, e.to_string()));
                }
                Vec::new()
            }
        }
    }

    /// Feed one already-parsed message through the reorder buffer.
    pub fn push_message(&mut self, m: RawMessage) -> Vec<NetworkEvent> {
        self.released.clear();
        self.reorder.push(m, &mut self.released);
        self.digester.push_batch(&self.released)
    }

    /// Flush the reorder buffer and close every remaining group.
    pub fn finish(self) -> (Vec<NetworkEvent>, IngestStats) {
        let (events, stats, _) = self.finish_traced();
        (events, stats)
    }

    /// [`finish`](Self::finish), also returning the provenance records of
    /// every event closed during the final flush (empty unless tracing
    /// was enabled via [`set_trace`](Self::set_trace)).
    pub fn finish_traced(self) -> (Vec<NetworkEvent>, IngestStats, Vec<EventProvenance>) {
        let (events, stats, prov, _) = self.finish_full();
        (events, stats, prov)
    }

    /// [`finish_traced`](Self::finish_traced), also draining the
    /// quarantine records of messages whose augmentation panicked during
    /// the final reorder-buffer flush — the only records a caller that
    /// drains [`take_quarantined`](Self::take_quarantined) before
    /// finishing would otherwise lose.
    pub fn finish_full(
        mut self,
    ) -> (
        Vec<NetworkEvent>,
        IngestStats,
        Vec<EventProvenance>,
        Vec<crate::quarantine::QuarantineRecord>,
    ) {
        self.released.clear();
        self.reorder.flush(&mut self.released);
        let mut events = self.digester.push_batch(&self.released);
        let stats = self.stats();
        let quarantined = self.digester.take_quarantined();
        let (rest, prov) = self.digester.finish_traced();
        events.extend(rest);
        (events, stats, prov, quarantined)
    }

    /// Current counters (views over the registry-backed atomics).
    pub fn stats(&self) -> IngestStats {
        IngestStats {
            n_lines: self.n_lines.get() as usize,
            n_malformed: self.n_malformed.get() as usize,
            n_late: self.reorder.n_late.get() as usize,
            n_duplicate: self.reorder.n_duplicate.get() as usize,
            digester: self.digester.stats(),
        }
    }

    /// First few malformed lines as `(line number, reason)` — 1-based
    /// line numbers, reasons from [`ParseError`].
    pub fn malformed_samples(&self) -> &[(usize, String)] {
        &self.malformed_samples
    }

    /// Drain the quarantine records of messages whose augmentation shard
    /// panicked (see [`crate::quarantine`]); empty in a healthy run.
    pub fn take_quarantined(&mut self) -> Vec<crate::quarantine::QuarantineRecord> {
        self.digester.take_quarantined()
    }

    /// Messages currently held in the reorder buffer.
    pub fn buffered(&self) -> usize {
        self.reorder.buffered()
    }

    /// Snapshot digester *and* reorder-buffer state together.
    pub fn checkpoint(&self) -> StreamSnapshot {
        let mut buffered = Vec::new();
        self.reorder.export_buffered(&mut buffered);
        self.digester.checkpoint().with_ingest(IngestState {
            buffered,
            high: self.reorder.high_watermark_ts(),
            max_skew_secs: self.reorder.max_skew_secs(),
            n_lines: self.n_lines.get() as usize,
            n_malformed: self.n_malformed.get() as usize,
            n_late: self.reorder.n_late.get() as usize,
            n_duplicate: self.reorder.n_duplicate.get() as usize,
            malformed_samples: self.malformed_samples.clone(),
        })
    }

    /// Rebuild an ingest layer (digester + reorder buffer) from a
    /// snapshot taken by [`FaultTolerantIngest::checkpoint`].
    pub fn resume(
        k: &'k DomainKnowledge,
        snapshot: &StreamSnapshot,
    ) -> Result<Self, CheckpointError> {
        Self::resume_with_telemetry(k, snapshot, &Telemetry::disabled())
    }

    /// [`resume`](Self::resume) with counters and spans re-registered in
    /// `tel`; checkpointed counter values carry over.
    pub fn resume_with_telemetry(
        k: &'k DomainKnowledge,
        snapshot: &StreamSnapshot,
        tel: &Telemetry,
    ) -> Result<Self, CheckpointError> {
        let digester = StreamDigester::resume_with_telemetry(k, snapshot, tel)?;
        let Some(ing) = &snapshot.ingest else {
            return Err(CheckpointError::Corrupt(
                "snapshot carries no ingest-layer state".to_owned(),
            ));
        };
        let reorder = ReorderBuffer::restore_with(
            ing.max_skew_secs,
            ing.high,
            ing.buffered.iter().cloned(),
            ing.n_late,
            ing.n_duplicate,
            tel,
        );
        let n_lines = tel.counter("ingest.n_lines");
        n_lines.set(ing.n_lines as u64);
        let n_malformed = tel.counter("ingest.n_malformed");
        n_malformed.set(ing.n_malformed as u64);
        Ok(FaultTolerantIngest {
            digester,
            reorder,
            n_lines,
            n_malformed,
            malformed_samples: ing.malformed_samples.clone(),
            released: Vec::new(),
        })
    }

    /// Resume from the newest verifiable checkpoint generation of `path`
    /// (see [`StreamSnapshot::recover_last_good`]), without telemetry.
    pub fn recover(
        k: &'k DomainKnowledge,
        path: &std::path::Path,
        keep: usize,
    ) -> Result<Option<(Self, RecoveryReport)>, CheckpointError> {
        Self::recover_with_telemetry(k, path, keep, &Telemetry::disabled())
    }

    /// [`recover`](Self::recover) with telemetry: registers and updates
    /// the durability counters — `ckpt.n_corrupt` (generations that
    /// existed but failed verification) and `ckpt.n_fallback` (1 when an
    /// older generation had to be used). The counters are registered
    /// even when no checkpoint exists yet, so a checkpointing run always
    /// exports them (at 0 in the healthy case).
    pub fn recover_with_telemetry(
        k: &'k DomainKnowledge,
        path: &std::path::Path,
        keep: usize,
        tel: &Telemetry,
    ) -> Result<Option<(Self, RecoveryReport)>, CheckpointError> {
        let n_corrupt = tel.counter("ckpt.n_corrupt");
        let n_fallback = tel.counter("ckpt.n_fallback");
        match StreamSnapshot::recover_last_good(path, keep)? {
            None => Ok(None),
            Some((snapshot, report)) => {
                n_corrupt.add(report.n_corrupt as u64);
                if report.generation > 0 {
                    n_fallback.inc();
                }
                let ingest = Self::resume_with_telemetry(k, &snapshot, tel)?;
                Ok(Some((ingest, report)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{learn, OfflineConfig};
    use sd_netsim::{Dataset, DatasetSpec};

    fn setup() -> (Dataset, DomainKnowledge) {
        let d = Dataset::generate(DatasetSpec::preset_a().scaled(0.08));
        let k = learn(&d.configs, d.train(), &OfflineConfig::dataset_a());
        (d, k)
    }

    #[test]
    fn malformed_lines_are_counted_and_sampled_with_reasons() {
        let (_, k) = setup();
        let mut ing =
            FaultTolerantIngest::new(&k, GroupingConfig::default(), StreamConfig::default(), 30);
        ing.push_line("");
        ing.push_line("2010-01-10 00:00:15 r1"); // truncated
        ing.push_line("garbage line here entirely");
        let stats = ing.stats();
        assert_eq!(stats.n_lines, 3);
        assert_eq!(stats.n_malformed, 2); // blank is not malformed
        let samples = ing.malformed_samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].0, 2);
        assert_eq!(samples[0].1, "truncated line: missing code");
        assert_eq!(samples[1].0, 3);
        assert_eq!(samples[1].1, "malformed timestamp");
    }

    #[test]
    fn line_ingest_equals_message_ingest_on_a_clean_feed() {
        let (d, k) = setup();
        let online = d.online();
        let n = online.len().min(3000);

        let mut by_line =
            FaultTolerantIngest::new(&k, GroupingConfig::default(), StreamConfig::default(), 30);
        let mut e1 = Vec::new();
        for m in &online[..n] {
            e1.extend(by_line.push_line(&m.to_line()));
        }
        let (rest, stats) = by_line.finish();
        e1.extend(rest);
        assert_eq!(stats.n_malformed, 0);
        assert_eq!(stats.n_late, 0);

        let mut by_msg =
            FaultTolerantIngest::new(&k, GroupingConfig::default(), StreamConfig::default(), 30);
        let mut e2 = Vec::new();
        for m in &online[..n] {
            e2.extend(by_msg.push_message(m.clone()));
        }
        let (rest, _) = by_msg.finish();
        e2.extend(rest);

        let norm = |evs: &[NetworkEvent]| {
            let mut v: Vec<String> = evs
                .iter()
                .map(|e| format!("{:?}", e.message_idxs))
                .collect();
            v.sort();
            v
        };
        assert_eq!(norm(&e1), norm(&e2));
    }

    #[test]
    fn checkpoint_resume_through_the_ingest_layer_is_exact() {
        let (d, k) = setup();
        let online = d.online();
        let n = online.len().min(4000);
        let cut = n / 2;

        fn mk(k: &DomainKnowledge) -> FaultTolerantIngest<'_> {
            FaultTolerantIngest::new(k, GroupingConfig::default(), StreamConfig::default(), 30)
        }

        let mut whole = mk(&k);
        let mut e1 = Vec::new();
        for m in &online[..n] {
            e1.extend(whole.push_message(m.clone()));
        }
        let (rest, s1) = whole.finish();
        e1.extend(rest);

        let mut first = mk(&k);
        let mut e2 = Vec::new();
        for m in &online[..cut] {
            e2.extend(first.push_message(m.clone()));
        }
        let snap = first.checkpoint();
        drop(first);
        let json = snap.to_json().expect("snapshot serializes");
        let snap = StreamSnapshot::from_json(&json).expect("snapshot parses");
        let mut second = FaultTolerantIngest::resume(&k, &snap).expect("resume");
        for m in &online[cut..n] {
            e2.extend(second.push_message(m.clone()));
        }
        let (rest, s2) = second.finish();
        e2.extend(rest);

        let norm = |evs: &[NetworkEvent]| {
            let mut v: Vec<Vec<usize>> = evs.iter().map(|e| e.message_idxs.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&e1), norm(&e2));
        assert_eq!(s1.n_late, s2.n_late);
        assert_eq!(s1.digester.n_dropped, s2.digester.n_dropped);
    }

    #[test]
    fn resume_rejects_a_different_knowledge_base() {
        let (d, k) = setup();
        let ing =
            FaultTolerantIngest::new(&k, GroupingConfig::default(), StreamConfig::default(), 30);
        let snap = ing.checkpoint();
        let d2 = Dataset::generate(DatasetSpec::preset_a().scaled(0.04));
        let k2 = learn(&d2.configs, d2.train(), &OfflineConfig::dataset_a());
        assert!(matches!(
            FaultTolerantIngest::resume(&k2, &snap),
            Err(CheckpointError::KnowledgeMismatch)
        ));
        let _ = d;
    }
}
