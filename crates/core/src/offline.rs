//! The offline domain-knowledge learning pipeline (left half of Figure 1):
//! signature identification → location extraction → signature matching /
//! location parsing of the historical data → temporal mining → rule
//! mining, producing a [`DomainKnowledge`] base.

use crate::augment::{augment, augment_with};
use crate::knowledge::DomainKnowledge;
use sd_locations::LocationDictionary;
use sd_model::{par_chunks, Interner, Parallelism, RawMessage, Timestamp};
use sd_rules::{mine, CoOccurrence, MineConfig, StreamItem};
use sd_telemetry::Telemetry;
use sd_templates::{learn_par as learn_templates_par, LearnerConfig, TokenScratch};
use sd_temporal::{calibrate_par, SeriesSet, TemporalConfig};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Offline learning configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OfflineConfig {
    /// Template learner knobs.
    pub learner: LearnerConfig,
    /// Rule mining thresholds.
    pub mine: MineConfig,
    /// Transaction / rule-grouping window W in seconds.
    pub window_secs: i64,
    /// α grid for temporal calibration (Figure 10).
    pub alphas: Vec<f64>,
    /// β grid for temporal calibration (Figure 11).
    pub betas: Vec<f64>,
    /// Relative-improvement knee for β selection.
    pub knee: f64,
    /// Skip the α/β sweeps and use `fixed_temporal` instead (the online
    /// experiments re-learn weekly and don't want to pay for sweeps).
    pub fixed_temporal: Option<TemporalConfig>,
    /// Worker threads for the offline passes (template learning, history
    /// augmentation, calibration sweeps, transaction counting). `threads
    /// == 1` takes the exact sequential code path; every thread count
    /// learns identical knowledge.
    #[serde(default)]
    pub par: Parallelism,
}

impl OfflineConfig {
    /// Table 6 defaults for dataset A (W = 120 s).
    pub fn dataset_a() -> Self {
        OfflineConfig {
            learner: LearnerConfig::default(),
            mine: MineConfig::default(),
            window_secs: 120,
            alphas: vec![0.0, 0.025, 0.05, 0.075, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
            betas: vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
            knee: 0.03,
            fixed_temporal: Some(TemporalConfig::dataset_a()),
            par: Parallelism::default(),
        }
    }

    /// Table 6 defaults for dataset B (W = 40 s).
    pub fn dataset_b() -> Self {
        OfflineConfig {
            window_secs: 40,
            fixed_temporal: Some(TemporalConfig::dataset_b()),
            ..Self::dataset_a()
        }
    }

    /// Enable the calibration sweeps (slower; used by the Table 6
    /// experiment itself).
    #[must_use]
    pub fn with_calibration(mut self) -> Self {
        self.fixed_temporal = None;
        self
    }
}

/// Run offline learning over router configs and historical messages.
pub fn learn(configs: &[String], train: &[RawMessage], cfg: &OfflineConfig) -> DomainKnowledge {
    learn_instrumented(configs, train, cfg, &Telemetry::disabled())
}

/// [`learn`] with per-stage span timings and summary counters recorded
/// into `tel`. The learned knowledge is identical — telemetry is strictly
/// observational.
pub fn learn_instrumented(
    configs: &[String],
    train: &[RawMessage],
    cfg: &OfflineConfig,
    tel: &Telemetry,
) -> DomainKnowledge {
    // 1. Signature identification (parallel over per-code buckets).
    let templates = {
        let _g = tel.time("learn.templates");
        learn_templates_par(train, &cfg.learner, cfg.par)
    };

    // 2. Per-code fallbacks for online messages that match nothing.
    let mut fallback = Interner::new();
    for m in train {
        fallback.intern(m.code.as_str());
    }

    // 3. Location dictionary from configs.
    let dict = {
        let _g = tel.time("learn.locations");
        LocationDictionary::build(configs)
    };

    // Provisional knowledge for augmenting the historical data.
    let mut k = DomainKnowledge::new(
        templates,
        fallback,
        dict,
        cfg.fixed_temporal.unwrap_or_default(),
        sd_rules::RuleSet::default(),
        cfg.window_secs,
        HashMap::new(),
    );

    // 4. Augment history once (parallel over contiguous chunks); build the
    //    mining stream, the temporal series and the frequency table.
    let (stream, series, freq) = {
        let _g = tel.time("learn.history");
        history_pass(&k, train, cfg.par)
    };

    // 5. Temporal mining (Figures 10–11) unless fixed.
    let temporal = match cfg.fixed_temporal {
        Some(t) => t,
        None => {
            let _g = tel.time("learn.calibrate");
            let set: SeriesSet = series.into_values().collect();
            calibrate_par(&set, &cfg.alphas, &cfg.betas, cfg.knee, cfg.par)
        }
    };

    // 6. Rule mining (transaction counting parallel per router).
    let rules = {
        let _g = tel.time("learn.rules");
        let co = CoOccurrence::count_par(&stream, cfg.window_secs, cfg.par);
        mine(&co, &cfg.mine)
    };

    k.temporal = temporal;
    k.rules = rules;
    let templates = k.templates.clone();
    let fallback = k.fallback_codes.clone();
    let dict = k.dict.clone();
    tel.counter("learn.n_train").add(train.len() as u64);
    tel.counter("learn.n_templates").add(templates.len() as u64);
    tel.counter("learn.n_rules").add(k.rules.len() as u64);
    DomainKnowledge::new(
        templates,
        fallback,
        dict,
        temporal,
        k.rules,
        cfg.window_secs,
        freq,
    )
}

/// One augmented pass over time-sorted history: the mining stream, the
/// per-`(router, template, location)` timestamp series, and the
/// `(router, template)` frequency table.
///
/// Chunks are augmented independently (each with its own token scratch)
/// and merged in input order; the series map is a `BTreeMap` so that the
/// [`SeriesSet`] handed to calibration has a deterministic order (its
/// f64 ratio sums are order-sensitive). The result is identical for every
/// thread count.
#[allow(clippy::type_complexity)]
fn history_pass(
    k: &DomainKnowledge,
    msgs: &[RawMessage],
    par: Parallelism,
) -> (
    Vec<StreamItem>,
    BTreeMap<(u32, u32, u32), Vec<Timestamp>>,
    HashMap<(u32, u32), u64>,
) {
    let chunks = par_chunks(par, msgs, |start, chunk| {
        let mut stream: Vec<StreamItem> = Vec::with_capacity(chunk.len());
        let mut series: BTreeMap<(u32, u32, u32), Vec<Timestamp>> = BTreeMap::new();
        let mut freq: HashMap<(u32, u32), u64> = HashMap::new();
        let mut scratch = TokenScratch::new();
        for (off, m) in chunk.iter().enumerate() {
            let Some(sp) = augment_with(k, start + off, m, &mut scratch) else {
                continue;
            };
            let t = sp.template.expect("offline augmentation always assigns");
            stream.push((sp.ts, sp.router, t));
            *freq.entry((sp.router.0, t.0)).or_insert(0) += 1;
            let loc = sp.primary_location().map(|l| l.0).unwrap_or(u32::MAX);
            series
                .entry((sp.router.0, t.0, loc))
                .or_default()
                .push(sp.ts);
        }
        (stream, series, freq)
    });
    let mut stream: Vec<StreamItem> = Vec::with_capacity(msgs.len());
    let mut series: BTreeMap<(u32, u32, u32), Vec<Timestamp>> = BTreeMap::new();
    let mut freq: HashMap<(u32, u32), u64> = HashMap::new();
    for (cs, cser, cf) in chunks {
        stream.extend(cs);
        for (key, ts) in cser {
            series.entry(key).or_default().extend(ts);
        }
        for (key, n) in cf {
            *freq.entry(key).or_insert(0) += n;
        }
    }
    (stream, series, freq)
}

/// Build the `(ts, router, template)` mining stream from already-augmented
/// history — shared by the weekly-update experiments.
pub fn mining_stream(k: &DomainKnowledge, msgs: &[RawMessage]) -> Vec<StreamItem> {
    let mut stream = Vec::with_capacity(msgs.len());
    for (i, m) in msgs.iter().enumerate() {
        if let Some(sp) = augment(k, i, m) {
            stream.push((sp.ts, sp.router, sp.template.expect("assigned")));
        }
    }
    stream
}

/// Weekly knowledge refresh (§3.1: offline learning "will be periodically
/// run to incorporate the latest changes"): mine one new week of history
/// into the evolving rule base with the §4.1.4 conservative update, and
/// fold the week's signature frequencies into the scoring table, swapping
/// the refreshed rule set into the knowledge base.
pub fn refresh_weekly(
    k: &mut DomainKnowledge,
    base: &mut sd_rules::RuleBase,
    week: &[RawMessage],
    cfg: &MineConfig,
) -> sd_rules::UpdateStats {
    let stream = mining_stream(k, week);
    let mut freq: HashMap<(u32, u32), u64> = HashMap::new();
    for &(_, r, t) in &stream {
        *freq.entry((r.0, t.0)).or_insert(0) += 1;
    }
    k.merge_frequencies(freq);
    let co = CoOccurrence::count(&stream, k.window_secs);
    let stats = base.update(&co, cfg);
    k.rules = base.snapshot();
    stats
}

/// Build the per-`(router, template, location)` timestamp series the
/// temporal calibration sweeps over (Figures 10–11). Key-ordered, so the
/// returned [`SeriesSet`] is deterministic.
pub fn temporal_series(k: &DomainKnowledge, msgs: &[RawMessage]) -> SeriesSet {
    temporal_series_par(k, msgs, Parallelism::sequential())
}

/// [`temporal_series`] with augmentation parallel over chunks.
pub fn temporal_series_par(
    k: &DomainKnowledge,
    msgs: &[RawMessage],
    par: Parallelism,
) -> SeriesSet {
    history_pass(k, msgs, par).1.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_netsim::{Dataset, DatasetSpec};

    #[test]
    fn learn_builds_complete_knowledge() {
        let d = Dataset::generate(DatasetSpec::preset_a().scaled(0.1));
        let k = learn(&d.configs, d.train(), &OfflineConfig::dataset_a());
        assert!(k.templates.len() > 10, "templates {}", k.templates.len());
        assert!(!k.dict.is_empty());
        assert!(!k.rules.is_empty(), "expected some rules");
        assert_eq!(k.window_secs, 120);
        // Link flaps guarantee the LINK <-> LINEPROTO rule.
        let mut link = None;
        let mut proto = None;
        for (id, t) in k.templates.iter() {
            let m = t.masked();
            if m.starts_with("LINK-3-UPDOWN") && m.ends_with("down") {
                link = Some(id);
            }
            if m.starts_with("LINEPROTO-5-UPDOWN") && m.ends_with("down") {
                proto = Some(id);
            }
        }
        let (link, proto) = (link.expect("link template"), proto.expect("proto template"));
        assert!(
            k.rules.related(link, proto),
            "LINK<->LINEPROTO rule missing"
        );
    }

    #[test]
    fn weekly_refresh_updates_the_rule_base() {
        let d = Dataset::generate(DatasetSpec::preset_a().scaled(0.1));
        let mut k = learn(&d.configs, d.train(), &OfflineConfig::dataset_a());
        let mut base = sd_rules::RuleBase::new();
        let weeks = d.spec.train_days.div_ceil(7);
        let mut last_total = 0usize;
        for w in 0..weeks {
            let stats = refresh_weekly(
                &mut k,
                &mut base,
                d.train_week(w),
                &OfflineConfig::dataset_a().mine,
            );
            assert_eq!(stats.total, base.len());
            last_total = stats.total;
        }
        assert!(last_total > 0, "no rules after weekly refresh");
        assert_eq!(k.rules.len(), last_total, "snapshot swapped in");
    }

    #[test]
    fn calibration_mode_produces_plausible_parameters() {
        let d = Dataset::generate(DatasetSpec::preset_a().scaled(0.08));
        let mut cfg = OfflineConfig::dataset_a().with_calibration();
        cfg.alphas = vec![0.0, 0.05, 0.2, 0.5];
        cfg.betas = vec![2.0, 5.0, 7.0];
        let k = learn(&d.configs, d.train(), &cfg);
        assert!(k.temporal.alpha <= 0.5);
        assert!((2.0..=7.0).contains(&k.temporal.beta));
    }
}
