//! # syslogdigest
//!
//! A reproduction of **SyslogDigest** — *"What Happened in my Network?
//! Mining Network Events from Router Syslogs"* (Qiu, Ge, Pei, Wang, Xu —
//! IMC 2010): a system that transforms massive, minimally structured
//! router syslog streams into a small number of prioritized, meaningful
//! network events.
//!
//! The crate mirrors the paper's Figure 1 architecture:
//!
//! * **Offline domain-knowledge learning** ([`offline::learn`]): message
//!   template learning (`sd-templates`), location learning from router
//!   configs (`sd-locations`), temporal pattern calibration
//!   (`sd-temporal`) and association rule mining (`sd-rules`), packaged
//!   into a serializable [`DomainKnowledge`] base.
//! * **Online processing** ([`pipeline::digest`]): augment each raw
//!   message into Syslog+ form, group via the temporal, rule-based and
//!   cross-router stages (merged through a union-find so stage order is
//!   irrelevant), prioritize with the §4.2.4 score, and present one line
//!   per event.
//!
//! ```
//! use sd_netsim::{Dataset, DatasetSpec};
//! use syslogdigest::offline::{learn, OfflineConfig};
//! use syslogdigest::pipeline::digest;
//! use syslogdigest::grouping::GroupingConfig;
//!
//! let data = Dataset::generate(DatasetSpec::preset_a().scaled(0.05));
//! let knowledge = learn(&data.configs, data.train(), &OfflineConfig::dataset_a());
//! let report = digest(&knowledge, data.online(), &GroupingConfig::default());
//! assert!(report.compression_ratio() < 0.2);
//! println!("{}", report.to_report());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod baselines;
pub mod checkpoint;
pub mod envelope;
pub mod event;
pub mod grouping;
pub mod ingest;
pub mod knowledge;
pub mod metrics;
pub mod offline;
pub mod pipeline;
pub mod priority;
pub mod provenance;
pub mod quarantine;
pub mod reorder;
pub mod stream;
pub mod union_find;
pub mod viz;

pub use augment::{
    augment, augment_batch, augment_batch_isolated, augment_batch_with, augment_with,
    IsolatedAugment,
};
pub use checkpoint::{
    generation_path, CheckpointError, RecoveryReport, StreamSnapshot, SNAPSHOT_VERSION,
};
pub use envelope::{ArtifactError, ArtifactKind, EnvelopeError, ENVELOPE_MAGIC};
pub use event::{build_event, label_for, NetworkEvent};
pub use grouping::{group, group_traced, stage_edges, GroupingConfig, GroupingResult};
pub use ingest::{FaultTolerantIngest, IngestStats};
pub use knowledge::{DomainKnowledge, KNOWLEDGE_VERSION, UNKNOWN_TEMPLATE};
pub use metrics::{
    compression_table, evaluate_grouping, gt_quality, per_day_series, per_router_counts, DayStats,
    GtQuality,
};
pub use offline::{
    learn, learn_instrumented, mining_stream, temporal_series, temporal_series_par, OfflineConfig,
};
pub use pipeline::{digest, digest_instrumented, Digest};
pub use priority::score_group;
pub use provenance::{build_provenance, CloseReason, EventProvenance, GroupProv, MergeCause};
pub use quarantine::{set_poison_marker, QuarantineRecord};
pub use reorder::ReorderBuffer;
pub use stream::{StreamConfig, StreamDigester, StreamStats};
