//! Union-find over message indices.
//!
//! §4.2.3: "If any two messages in two different groups have been grouped
//! together, then these two groups will be merged. Thus the changes of
//! orders of these three parts have no impact on the final grouping
//! results." — a disjoint-set forest is exactly that merge semantics.

/// Disjoint-set forest with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// Merge the sets containing `a` and `b`; returns true if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        true
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Compact group labels: `(group index per element, group count)`,
    /// groups numbered by first appearance.
    pub fn groups(&mut self) -> (Vec<usize>, usize) {
        let n = self.len();
        let mut label = vec![usize::MAX; n];
        let mut out = Vec::with_capacity(n);
        let mut next = 0usize;
        for i in 0..n {
            let r = self.find(i);
            if label[r] == usize::MAX {
                label[r] = next;
                next += 1;
            }
            out.push(label[r]);
        }
        (out, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_merges_and_is_idempotent() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(1, 2));
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
        let (labels, n) = uf.groups();
        assert_eq!(n, 3);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], 1 + labels[0].min(1)); // distinct labels exist
    }

    #[test]
    fn merge_order_does_not_matter() {
        let pairs = [(0usize, 1usize), (2, 3), (1, 2), (4, 5), (5, 0)];
        let mut a = UnionFind::new(6);
        for &(x, y) in &pairs {
            a.union(x, y);
        }
        let mut b = UnionFind::new(6);
        for &(x, y) in pairs.iter().rev() {
            b.union(y, x);
        }
        let (ga, na) = a.groups();
        let (gb, nb) = b.groups();
        assert_eq!(na, nb);
        // Same partition (labels may differ, membership must not).
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(ga[i] == ga[j], gb[i] == gb[j], "{i},{j}");
            }
        }
    }

    #[test]
    fn empty_and_singletons() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.groups().1, 0);
        let mut one = UnionFind::new(1);
        assert_eq!(one.groups().1, 1);
    }
}
