//! Versioned checkpoint/restore for the streaming digester.
//!
//! A long-running `sdigest digest --stream` process must survive being
//! killed: on restart it should continue from where it stopped without
//! re-reading the whole feed and without losing or duplicating events.
//! This module defines the on-disk snapshot format:
//!
//! * [`StreamSnapshot`] — a self-describing JSON document carrying a
//!   **format version** ([`SNAPSHOT_VERSION`]), a **knowledge
//!   fingerprint** (see [`DomainKnowledge::fingerprint`]) and the complete
//!   mutable state of the digester (plus, when checkpointed through the
//!   ingest layer, the reorder buffer).
//! * [`StreamSnapshot::save`] writes atomically (temp file + rename), so
//!   a crash mid-write can never leave a truncated snapshot where a good
//!   one used to be.
//! * [`StreamSnapshot::from_json`] / [`StreamSnapshot::load`] check the
//!   version field *before* decoding the body, so a snapshot produced by
//!   a future incompatible build fails with
//!   [`CheckpointError::Version`] rather than a confusing parse error,
//!   and [`StreamSnapshot::verify`] refuses to resume against a different
//!   knowledge base ([`CheckpointError::KnowledgeMismatch`]) — dense ids
//!   would silently mis-group otherwise.
//!
//! Delivery semantics: events emitted between the last checkpoint and a
//! crash are emitted *again* after resume (at-least-once); exactly-once
//! holds at checkpoint boundaries. Consumers needing exactly-once should
//! checkpoint and persist emitted events in the same transaction, keyed
//! by [`StreamSnapshot::lines_consumed`].

use crate::grouping::GroupingConfig;
use crate::knowledge::DomainKnowledge;
use crate::stream::{OpenGroup, StreamConfig, StreamStats};
use sd_model::{RawMessage, SyslogPlus, Timestamp};
use sd_temporal::EwmaTracker;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Current snapshot format version. Bump on any incompatible change to
/// [`DigesterState`] / [`IngestState`]; old snapshots are then rejected
/// with [`CheckpointError::Version`] instead of being misdecoded.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Per-tracker-key EWMA state, flattened for serialization.
pub(crate) type TrackerTable = Vec<((u32, u32, u32), (EwmaTracker, u64))>;

/// Per-router rule-stage lookback, flattened for serialization.
pub(crate) type RulesLookback = Vec<(u32, Vec<((u32, u32), (u64, Timestamp))>)>;

/// Complete mutable state of a [`StreamDigester`](crate::StreamDigester).
///
/// Every map is stored as a sorted `Vec` of pairs so the same digester
/// state always serializes to the same bytes (hash-map iteration order
/// must not leak into snapshot files).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DigesterState {
    pub(crate) grouping: GroupingConfig,
    pub(crate) stream: StreamConfig,
    pub(crate) next_seq: u64,
    /// Next event id to assign (`default` so pre-provenance snapshots
    /// still load, restarting ids at 1).
    #[serde(default)]
    pub(crate) next_event_id: u64,
    pub(crate) clock: Timestamp,
    pub(crate) since_sweep: usize,
    pub(crate) stats: StreamStats,
    pub(crate) open: Vec<(u64, SyslogPlus)>,
    pub(crate) raw: Vec<(u64, RawMessage)>,
    pub(crate) parent: Vec<(u64, u64)>,
    pub(crate) groups: Vec<(u64, OpenGroup)>,
    pub(crate) trackers: TrackerTable,
    pub(crate) recent_rules: RulesLookback,
    pub(crate) recent_cross: Vec<(u32, Vec<(u64, Timestamp)>)>,
}

/// State of the fault-tolerant ingest wrapper (reorder buffer contents
/// and ingest counters), present when the snapshot was taken through
/// [`FaultTolerantIngest`](crate::ingest::FaultTolerantIngest).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestState {
    /// Buffered (accepted, not yet released) messages in release order.
    pub(crate) buffered: Vec<RawMessage>,
    /// Highest timestamp observed (drives the watermark).
    pub(crate) high: Option<Timestamp>,
    /// Reorder tolerance in seconds.
    pub(crate) max_skew_secs: i64,
    /// Ingest-level counters.
    pub(crate) n_lines: usize,
    pub(crate) n_malformed: usize,
    pub(crate) n_late: usize,
    pub(crate) n_duplicate: usize,
    /// First few malformed lines, as (line number, reason).
    pub(crate) malformed_samples: Vec<(usize, String)>,
}

/// A versioned, self-describing snapshot of a streaming digestion run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamSnapshot {
    /// Snapshot format version ([`SNAPSHOT_VERSION`] at write time).
    pub version: u32,
    /// Fingerprint of the knowledge base the digester ran against.
    pub knowledge_fp: u64,
    /// Digester state proper.
    pub(crate) digester: DigesterState,
    /// Ingest-layer state, when checkpointed through the ingest wrapper.
    pub(crate) ingest: Option<IngestState>,
}

/// Why a snapshot could not be written, read, or resumed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The snapshot carries an unsupported format version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The snapshot was taken against a different knowledge base.
    KnowledgeMismatch,
    /// The snapshot file does not decode as a snapshot.
    Corrupt(String),
    /// Filesystem failure while reading or writing.
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Version { found, expected } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads {expected})"
            ),
            CheckpointError::KnowledgeMismatch => write!(
                f,
                "snapshot was taken against a different knowledge base; \
                 re-learn or use the original knowledge file"
            ),
            CheckpointError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
            CheckpointError::Io(why) => write!(f, "snapshot i/o failed: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl StreamSnapshot {
    /// Assemble a snapshot for a bare digester (no ingest layer).
    pub(crate) fn for_digester(k: &DomainKnowledge, digester: DigesterState) -> Self {
        StreamSnapshot {
            version: SNAPSHOT_VERSION,
            knowledge_fp: k.fingerprint(),
            digester,
            ingest: None,
        }
    }

    /// Attach ingest-layer state (builder style).
    pub(crate) fn with_ingest(mut self, ingest: IngestState) -> Self {
        self.ingest = Some(ingest);
        self
    }

    /// Check that this snapshot can be resumed against `k` by this build.
    pub fn verify(&self, k: &DomainKnowledge) -> Result<(), CheckpointError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(CheckpointError::Version {
                found: self.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        if self.knowledge_fp != k.fingerprint() {
            return Err(CheckpointError::KnowledgeMismatch);
        }
        Ok(())
    }

    /// Total feed lines consumed up to this snapshot (accepted + dropped +
    /// malformed when ingest state is present) — the offset a resuming
    /// process should skip to in the feed.
    pub fn lines_consumed(&self) -> usize {
        match &self.ingest {
            Some(ing) => ing.n_lines,
            None => self.digester.stats.n_input,
        }
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> Result<String, CheckpointError> {
        serde_json::to_string(self).map_err(|e| CheckpointError::Corrupt(e.to_string()))
    }

    /// Parse from JSON, checking the format version *before* decoding the
    /// body so incompatible snapshots fail with a clear error.
    pub fn from_json(text: &str) -> Result<Self, CheckpointError> {
        let tree = serde_json::parse(text).map_err(|e| CheckpointError::Corrupt(e.to_string()))?;
        let version = match tree.get_field("version") {
            Some(serde::Value::I64(v)) => *v as u64,
            Some(serde::Value::U64(v)) => *v,
            _ => return Err(CheckpointError::Corrupt("missing version field".to_owned())),
        };
        if version != SNAPSHOT_VERSION as u64 {
            return Err(CheckpointError::Version {
                found: version as u32,
                expected: SNAPSHOT_VERSION,
            });
        }
        serde_json::from_str(text).map_err(|e| CheckpointError::Corrupt(e.to_string()))
    }

    /// Write atomically to `path`: the snapshot is written to a sibling
    /// temp file and renamed into place, so a crash mid-write leaves any
    /// previous good snapshot untouched.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let json = self.to_json()?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &json).map_err(|e| CheckpointError::Io(e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| CheckpointError::Io(e.to_string()))
    }

    /// Read a snapshot written by [`StreamSnapshot::save`].
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_state() -> DigesterState {
        DigesterState {
            grouping: GroupingConfig::default(),
            stream: StreamConfig::default(),
            next_seq: 7,
            next_event_id: 0,
            clock: Timestamp(1234),
            since_sweep: 3,
            stats: StreamStats {
                n_input: 9,
                n_dropped: 2,
                n_force_closed: 0,
                n_inconsistent: 0,
            },
            open: Vec::new(),
            raw: Vec::new(),
            parent: vec![(0, 0), (1, 0)],
            groups: Vec::new(),
            trackers: Vec::new(),
            recent_rules: Vec::new(),
            recent_cross: Vec::new(),
        }
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let snap = StreamSnapshot {
            version: SNAPSHOT_VERSION,
            knowledge_fp: 42,
            digester: tiny_state(),
            ingest: None,
        };
        let json = snap.to_json().unwrap();
        let back = StreamSnapshot::from_json(&json).unwrap();
        assert_eq!(back.version, SNAPSHOT_VERSION);
        assert_eq!(back.knowledge_fp, 42);
        assert_eq!(back.digester.next_seq, 7);
        assert_eq!(back.digester.stats.n_dropped, 2);
        assert_eq!(back.lines_consumed(), 9);
    }

    #[test]
    fn future_version_is_rejected_with_a_clear_error() {
        let snap = StreamSnapshot {
            version: SNAPSHOT_VERSION + 1,
            knowledge_fp: 0,
            digester: tiny_state(),
            ingest: None,
        };
        let json = snap.to_json().unwrap();
        match StreamSnapshot::from_json(&json) {
            Err(CheckpointError::Version { found, expected }) => {
                assert_eq!(found, SNAPSHOT_VERSION + 1);
                assert_eq!(expected, SNAPSHOT_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_corrupt_not_panic() {
        assert!(matches!(
            StreamSnapshot::from_json("{\"not\": \"a snapshot\"}"),
            Err(CheckpointError::Corrupt(_))
        ));
        assert!(matches!(
            StreamSnapshot::from_json("!!!"),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn save_load_roundtrip_is_atomic() {
        let dir = std::env::temp_dir().join("sd_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let snap = StreamSnapshot {
            version: SNAPSHOT_VERSION,
            knowledge_fp: 7,
            digester: tiny_state(),
            ingest: None,
        };
        snap.save(&path).unwrap();
        // No temp file left behind.
        assert!(!path.with_extension("tmp").exists());
        let back = StreamSnapshot::load(&path).unwrap();
        assert_eq!(back.knowledge_fp, 7);
        std::fs::remove_file(&path).ok();
    }
}
