//! Versioned checkpoint/restore for the streaming digester.
//!
//! A long-running `sdigest digest --stream` process must survive being
//! killed: on restart it should continue from where it stopped without
//! re-reading the whole feed and without losing or duplicating events.
//! This module defines the on-disk snapshot format:
//!
//! * [`StreamSnapshot`] — a self-describing JSON document carrying a
//!   **format version** ([`SNAPSHOT_VERSION`]), a **knowledge
//!   fingerprint** (see [`DomainKnowledge::fingerprint`]) and the complete
//!   mutable state of the digester (plus, when checkpointed through the
//!   ingest layer, the reorder buffer).
//! * [`StreamSnapshot::save`] wraps the JSON in the checksummed
//!   [`envelope`](crate::envelope) and writes atomically (temp file +
//!   rename), so a crash mid-write can never leave a truncated snapshot
//!   where a good one used to be — and any truncation or bit flip that
//!   slips through is caught at load time as a typed
//!   [`EnvelopeError`] rather than a panic or silent misdecode.
//! * [`StreamSnapshot::save_rotated`] keeps the last `keep` generations
//!   (`run.ckpt` → `run.ckpt.1` → …) and
//!   [`StreamSnapshot::recover_last_good`] scans them newest-first on
//!   resume, falling back past damaged generations and reporting how far
//!   it rolled back in a [`RecoveryReport`]. With checkpoints taken
//!   every *N* lines, a kill at any byte of any write loses at most one
//!   checkpoint interval.
//! * [`StreamSnapshot::from_json`] / [`StreamSnapshot::load`] check the
//!   version field *before* decoding the body, so a snapshot produced by
//!   a future incompatible build fails with
//!   [`CheckpointError::Version`] rather than a confusing parse error,
//!   and [`StreamSnapshot::verify`] refuses to resume against a different
//!   knowledge base ([`CheckpointError::KnowledgeMismatch`]) — dense ids
//!   would silently mis-group otherwise. Pre-envelope snapshot files
//!   (raw JSON, PR 2 era) still load via a legacy fallback.
//!
//! Delivery semantics: events emitted between the last checkpoint and a
//! crash are emitted *again* after resume (at-least-once); exactly-once
//! holds at checkpoint boundaries. Consumers needing exactly-once should
//! checkpoint and persist emitted events in the same transaction, keyed
//! by [`StreamSnapshot::lines_consumed`].

use crate::envelope::{self, ArtifactError, ArtifactKind, EnvelopeError};
use crate::grouping::GroupingConfig;
use crate::knowledge::DomainKnowledge;
use crate::stream::{OpenGroup, StreamConfig, StreamStats};
use sd_model::{RawMessage, SyslogPlus, Timestamp};
use sd_temporal::EwmaTracker;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// Current snapshot format version. Bump on any incompatible change to
/// [`DigesterState`] / [`IngestState`]; old snapshots are then rejected
/// with [`CheckpointError::Version`] instead of being misdecoded.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Per-tracker-key EWMA state, flattened for serialization.
pub(crate) type TrackerTable = Vec<((u32, u32, u32), (EwmaTracker, u64))>;

/// Per-router rule-stage lookback, flattened for serialization.
pub(crate) type RulesLookback = Vec<(u32, Vec<((u32, u32), (u64, Timestamp))>)>;

/// Complete mutable state of a [`StreamDigester`](crate::StreamDigester).
///
/// Every map is stored as a sorted `Vec` of pairs so the same digester
/// state always serializes to the same bytes (hash-map iteration order
/// must not leak into snapshot files).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DigesterState {
    pub(crate) grouping: GroupingConfig,
    pub(crate) stream: StreamConfig,
    pub(crate) next_seq: u64,
    /// Next event id to assign (`default` so pre-provenance snapshots
    /// still load, restarting ids at 1).
    #[serde(default)]
    pub(crate) next_event_id: u64,
    pub(crate) clock: Timestamp,
    pub(crate) since_sweep: usize,
    pub(crate) stats: StreamStats,
    pub(crate) open: Vec<(u64, SyslogPlus)>,
    pub(crate) raw: Vec<(u64, RawMessage)>,
    pub(crate) parent: Vec<(u64, u64)>,
    pub(crate) groups: Vec<(u64, OpenGroup)>,
    pub(crate) trackers: TrackerTable,
    pub(crate) recent_rules: RulesLookback,
    pub(crate) recent_cross: Vec<(u32, Vec<(u64, Timestamp)>)>,
}

/// State of the fault-tolerant ingest wrapper (reorder buffer contents
/// and ingest counters), present when the snapshot was taken through
/// [`FaultTolerantIngest`](crate::ingest::FaultTolerantIngest).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestState {
    /// Buffered (accepted, not yet released) messages in release order.
    pub(crate) buffered: Vec<RawMessage>,
    /// Highest timestamp observed (drives the watermark).
    pub(crate) high: Option<Timestamp>,
    /// Reorder tolerance in seconds.
    pub(crate) max_skew_secs: i64,
    /// Ingest-level counters.
    pub(crate) n_lines: usize,
    pub(crate) n_malformed: usize,
    pub(crate) n_late: usize,
    pub(crate) n_duplicate: usize,
    /// First few malformed lines, as (line number, reason).
    pub(crate) malformed_samples: Vec<(usize, String)>,
}

/// A versioned, self-describing snapshot of a streaming digestion run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamSnapshot {
    /// Snapshot format version ([`SNAPSHOT_VERSION`] at write time).
    pub version: u32,
    /// Fingerprint of the knowledge base the digester ran against.
    pub knowledge_fp: u64,
    /// Digester state proper.
    pub(crate) digester: DigesterState,
    /// Ingest-layer state, when checkpointed through the ingest wrapper.
    pub(crate) ingest: Option<IngestState>,
}

/// Why a snapshot could not be written, read, or resumed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The snapshot carries an unsupported format version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The snapshot was taken against a different knowledge base.
    KnowledgeMismatch,
    /// The snapshot file does not decode as a snapshot.
    Corrupt(String),
    /// Filesystem failure while reading or writing.
    Io(String),
    /// The artifact envelope failed to verify (bad magic, truncation,
    /// checksum mismatch, …) — carries the failing path and generation.
    Artifact(ArtifactError),
    /// Checkpoint files exist but *every* generation failed to verify;
    /// nothing safe to resume from. Carries each `(path, why)` tried.
    NoUsableSnapshot {
        /// Base checkpoint path whose generations were scanned.
        path: String,
        /// Every generation tried, with the reason it was rejected.
        tried: Vec<(String, String)>,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Version { found, expected } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads {expected})"
            ),
            CheckpointError::KnowledgeMismatch => write!(
                f,
                "snapshot was taken against a different knowledge base; \
                 re-learn or use the original knowledge file"
            ),
            CheckpointError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
            CheckpointError::Io(why) => write!(f, "snapshot i/o failed: {why}"),
            CheckpointError::Artifact(e) => write!(f, "{e}"),
            CheckpointError::NoUsableSnapshot { path, tried } => {
                write!(
                    f,
                    "no usable snapshot: all {} generation(s) of {path} failed to verify: ",
                    tried.len()
                )?;
                for (i, (p, why)) in tried.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{p}: {why}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<ArtifactError> for CheckpointError {
    fn from(e: ArtifactError) -> Self {
        CheckpointError::Artifact(e)
    }
}

/// How a [`StreamSnapshot::recover_last_good`] scan concluded: which
/// generation was resumed from and what had to be skipped to get there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Generation resumed from (0 = the newest file, `path` itself).
    pub generation: u32,
    /// Generations that existed but failed verification.
    pub n_corrupt: usize,
    /// Feed lines already consumed by the recovered snapshot.
    pub lines_consumed: usize,
    /// Every skipped generation as `(path, why)`.
    pub skipped: Vec<(String, String)>,
}

/// On-disk path of checkpoint generation `g` for base `path`
/// (generation 0 is `path` itself, generation 1 is `path.1`, …).
/// The suffix is appended to the whole file name so `run.ckpt`
/// rotates to `run.ckpt.1`, not `run.1`.
pub fn generation_path(path: &Path, generation: u32) -> PathBuf {
    if generation == 0 {
        return path.to_path_buf();
    }
    let mut name = path.as_os_str().to_os_string();
    name.push(format!(".{generation}"));
    PathBuf::from(name)
}

impl StreamSnapshot {
    /// Assemble a snapshot for a bare digester (no ingest layer).
    pub(crate) fn for_digester(k: &DomainKnowledge, digester: DigesterState) -> Self {
        StreamSnapshot {
            version: SNAPSHOT_VERSION,
            knowledge_fp: k.fingerprint(),
            digester,
            ingest: None,
        }
    }

    /// Attach ingest-layer state (builder style).
    pub(crate) fn with_ingest(mut self, ingest: IngestState) -> Self {
        self.ingest = Some(ingest);
        self
    }

    /// Check that this snapshot can be resumed against `k` by this build.
    pub fn verify(&self, k: &DomainKnowledge) -> Result<(), CheckpointError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(CheckpointError::Version {
                found: self.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        if self.knowledge_fp != k.fingerprint() {
            return Err(CheckpointError::KnowledgeMismatch);
        }
        Ok(())
    }

    /// Total feed lines consumed up to this snapshot (accepted + dropped +
    /// malformed when ingest state is present) — the offset a resuming
    /// process should skip to in the feed.
    pub fn lines_consumed(&self) -> usize {
        match &self.ingest {
            Some(ing) => ing.n_lines,
            None => self.digester.stats.n_input,
        }
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> Result<String, CheckpointError> {
        serde_json::to_string(self).map_err(|e| CheckpointError::Corrupt(e.to_string()))
    }

    /// Parse from JSON, checking the format version *before* decoding the
    /// body so incompatible snapshots fail with a clear error.
    pub fn from_json(text: &str) -> Result<Self, CheckpointError> {
        let tree = serde_json::parse(text).map_err(|e| CheckpointError::Corrupt(e.to_string()))?;
        let version = match tree.get_field("version") {
            Some(serde::Value::I64(v)) => *v as u64,
            Some(serde::Value::U64(v)) => *v,
            _ => return Err(CheckpointError::Corrupt("missing version field".to_owned())),
        };
        if version != SNAPSHOT_VERSION as u64 {
            return Err(CheckpointError::Version {
                found: version as u32,
                expected: SNAPSHOT_VERSION,
            });
        }
        serde_json::from_str(text).map_err(|e| CheckpointError::Corrupt(e.to_string()))
    }

    /// Write atomically to `path`, framed in the checksummed artifact
    /// envelope: the image is written to a sibling temp file and renamed
    /// into place, so a crash mid-write leaves any previous good
    /// snapshot untouched, and any damage to the bytes that do land is
    /// detected at load time.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let json = self.to_json()?;
        envelope::save_atomic(
            path,
            ArtifactKind::CHECKPOINT,
            SNAPSHOT_VERSION,
            json.as_bytes(),
        )
        .map_err(CheckpointError::Artifact)
    }

    /// Save with last-good rotation: existing generations shift up
    /// (`path` → `path.1` → … → `path.keep`, the oldest dropped) before
    /// the new snapshot is written atomically as generation 0. `keep` is
    /// the number of *previous* generations retained alongside the
    /// newest; `keep == 0` degrades to a plain [`StreamSnapshot::save`].
    pub fn save_rotated(&self, path: &Path, keep: usize) -> Result<(), CheckpointError> {
        for g in (0..keep as u32).rev() {
            let from = generation_path(path, g);
            let to = generation_path(path, g + 1);
            if from.exists() {
                std::fs::rename(&from, &to).map_err(|e| {
                    CheckpointError::Io(format!(
                        "rotating {} -> {}: {e}",
                        from.display(),
                        to.display()
                    ))
                })?;
            }
        }
        self.save(path)
    }

    /// Read a snapshot written by [`StreamSnapshot::save`], or a legacy
    /// pre-envelope raw-JSON snapshot. Failures carry the file path (and
    /// generation, when scanned via
    /// [`StreamSnapshot::recover_last_good`]).
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        Self::load_generation(path, None)
    }

    fn load_generation(path: &Path, generation: Option<u32>) -> Result<Self, CheckpointError> {
        let ctx = |e: ArtifactError| match generation {
            Some(g) => CheckpointError::Artifact(e.with_generation(g)),
            None => CheckpointError::Artifact(e),
        };
        let bytes = envelope::load_bytes(path).map_err(&ctx)?;
        let text = if envelope::is_enveloped(&bytes) {
            let payload = envelope::decode(&bytes, ArtifactKind::CHECKPOINT, SNAPSHOT_VERSION)
                .map_err(|e| ctx(ArtifactError::at(path, e)))?;
            std::str::from_utf8(payload)
                .map_err(|e| {
                    ctx(ArtifactError::at(
                        path,
                        EnvelopeError::Payload(e.to_string()),
                    ))
                })?
                .to_string()
        } else {
            // Legacy pre-envelope snapshot: the file is the JSON itself.
            String::from_utf8(bytes).map_err(|e| {
                ctx(ArtifactError::at(
                    path,
                    EnvelopeError::Payload(e.to_string()),
                ))
            })?
        };
        Self::from_json(&text).map_err(|e| match e {
            // Attach the failing path to body decode errors; version and
            // knowledge errors are already self-explanatory.
            CheckpointError::Corrupt(why) => {
                CheckpointError::Corrupt(format!("{}: {why}", path.display()))
            }
            other => other,
        })
    }

    /// Scan checkpoint generations newest-first and load the first one
    /// that verifies.
    ///
    /// * `Ok(None)` — no generation exists at all: a fresh start, not a
    ///   failure.
    /// * `Ok(Some((snapshot, report)))` — resumed; the report says which
    ///   generation won and which damaged ones were skipped.
    /// * `Err(NoUsableSnapshot)` — files exist but none verified;
    ///   resuming silently from nothing would violate the at-most-one-
    ///   interval loss guarantee, so this is surfaced to the operator.
    pub fn recover_last_good(
        path: &Path,
        keep: usize,
    ) -> Result<Option<(Self, RecoveryReport)>, CheckpointError> {
        let mut skipped: Vec<(String, String)> = Vec::new();
        for g in 0..=(keep as u32) {
            let p = generation_path(path, g);
            if !p.exists() {
                continue;
            }
            match Self::load_generation(&p, Some(g)) {
                Ok(snap) => {
                    let lines_consumed = snap.lines_consumed();
                    return Ok(Some((
                        snap,
                        RecoveryReport {
                            generation: g,
                            n_corrupt: skipped.len(),
                            lines_consumed,
                            skipped,
                        },
                    )));
                }
                Err(e) => skipped.push((p.display().to_string(), e.to_string())),
            }
        }
        if skipped.is_empty() {
            Ok(None)
        } else {
            Err(CheckpointError::NoUsableSnapshot {
                path: path.display().to_string(),
                tried: skipped,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_state() -> DigesterState {
        DigesterState {
            grouping: GroupingConfig::default(),
            stream: StreamConfig::default(),
            next_seq: 7,
            next_event_id: 0,
            clock: Timestamp(1234),
            since_sweep: 3,
            stats: StreamStats {
                n_input: 9,
                n_dropped: 2,
                n_force_closed: 0,
                n_inconsistent: 0,
                n_quarantined: 0,
            },
            open: Vec::new(),
            raw: Vec::new(),
            parent: vec![(0, 0), (1, 0)],
            groups: Vec::new(),
            trackers: Vec::new(),
            recent_rules: Vec::new(),
            recent_cross: Vec::new(),
        }
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let snap = StreamSnapshot {
            version: SNAPSHOT_VERSION,
            knowledge_fp: 42,
            digester: tiny_state(),
            ingest: None,
        };
        let json = snap.to_json().unwrap();
        let back = StreamSnapshot::from_json(&json).unwrap();
        assert_eq!(back.version, SNAPSHOT_VERSION);
        assert_eq!(back.knowledge_fp, 42);
        assert_eq!(back.digester.next_seq, 7);
        assert_eq!(back.digester.stats.n_dropped, 2);
        assert_eq!(back.lines_consumed(), 9);
    }

    #[test]
    fn future_version_is_rejected_with_a_clear_error() {
        let snap = StreamSnapshot {
            version: SNAPSHOT_VERSION + 1,
            knowledge_fp: 0,
            digester: tiny_state(),
            ingest: None,
        };
        let json = snap.to_json().unwrap();
        match StreamSnapshot::from_json(&json) {
            Err(CheckpointError::Version { found, expected }) => {
                assert_eq!(found, SNAPSHOT_VERSION + 1);
                assert_eq!(expected, SNAPSHOT_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_corrupt_not_panic() {
        assert!(matches!(
            StreamSnapshot::from_json("{\"not\": \"a snapshot\"}"),
            Err(CheckpointError::Corrupt(_))
        ));
        assert!(matches!(
            StreamSnapshot::from_json("!!!"),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn save_load_roundtrip_is_atomic() {
        let dir = std::env::temp_dir().join("sd_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let snap = StreamSnapshot {
            version: SNAPSHOT_VERSION,
            knowledge_fp: 7,
            digester: tiny_state(),
            ingest: None,
        };
        snap.save(&path).unwrap();
        // No temp file left behind.
        assert!(!path.with_extension("tmp").exists());
        assert!(!dir.join("snap.json.tmp").exists());
        let back = StreamSnapshot::load(&path).unwrap();
        assert_eq!(back.knowledge_fp, 7);
        std::fs::remove_file(&path).ok();
    }

    fn snap_with_fp(fp: u64) -> StreamSnapshot {
        StreamSnapshot {
            version: SNAPSHOT_VERSION,
            knowledge_fp: fp,
            digester: tiny_state(),
            ingest: None,
        }
    }

    #[test]
    fn legacy_raw_json_snapshots_still_load() {
        let dir = std::env::temp_dir().join("sd_checkpoint_legacy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("old.ckpt");
        // A PR 2-era snapshot: raw JSON, no envelope.
        std::fs::write(&path, snap_with_fp(11).to_json().unwrap()).unwrap();
        let back = StreamSnapshot::load(&path).unwrap();
        assert_eq!(back.knowledge_fp, 11);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_keeps_generations_and_recovery_prefers_newest() {
        let dir = std::env::temp_dir().join("sd_checkpoint_rotate_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        for fp in [1u64, 2, 3, 4] {
            snap_with_fp(fp).save_rotated(&path, 2).unwrap();
        }
        // Newest at the base path, two older generations behind it, the
        // oldest (fp 1) rotated away.
        assert_eq!(StreamSnapshot::load(&path).unwrap().knowledge_fp, 4);
        assert_eq!(
            StreamSnapshot::load(&generation_path(&path, 1))
                .unwrap()
                .knowledge_fp,
            3
        );
        assert_eq!(
            StreamSnapshot::load(&generation_path(&path, 2))
                .unwrap()
                .knowledge_fp,
            2
        );
        assert!(!generation_path(&path, 3).exists());

        let (snap, report) = StreamSnapshot::recover_last_good(&path, 2)
            .unwrap()
            .expect("generations exist");
        assert_eq!(snap.knowledge_fp, 4);
        assert_eq!(report.generation, 0);
        assert_eq!(report.n_corrupt, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_falls_back_past_damaged_generations() {
        let dir = std::env::temp_dir().join("sd_checkpoint_fallback_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        snap_with_fp(1).save_rotated(&path, 2).unwrap();
        snap_with_fp(2).save_rotated(&path, 2).unwrap();
        // Torn write: generation 0 loses its tail.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let (snap, report) = StreamSnapshot::recover_last_good(&path, 2)
            .unwrap()
            .expect("an older generation survives");
        assert_eq!(snap.knowledge_fp, 1);
        assert_eq!(report.generation, 1);
        assert_eq!(report.n_corrupt, 1);
        assert_eq!(report.skipped.len(), 1);
        assert!(report.skipped[0].1.contains("truncated"));

        // Damage the survivor too: now nothing is usable, and that is an
        // error, not a silent fresh start.
        let p1 = generation_path(&path, 1);
        let bytes = std::fs::read(&p1).unwrap();
        let mut flipped = bytes.clone();
        flipped[bytes.len() - 3] ^= 0x10;
        std::fs::write(&p1, &flipped).unwrap();
        match StreamSnapshot::recover_last_good(&path, 2) {
            Err(CheckpointError::NoUsableSnapshot { tried, .. }) => {
                assert_eq!(tried.len(), 2)
            }
            other => panic!("expected NoUsableSnapshot, got {other:?}"),
        }

        // No generations at all: a fresh start.
        let empty = dir.join("never-written.ckpt");
        assert!(StreamSnapshot::recover_last_good(&empty, 2)
            .unwrap()
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
