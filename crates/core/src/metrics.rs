//! Evaluation metrics: compression ratios per stage combination (Table 7),
//! per-day series (Figure 12), per-router counts (Figure 13), and — beyond
//! the paper — quantitative grouping quality against the simulator's
//! ground-truth event tags.

use crate::augment::augment_batch;
use crate::grouping::{group, GroupingConfig, GroupingResult};
use crate::knowledge::DomainKnowledge;
use crate::pipeline::digest;
use sd_model::{GroundTruthId, RawMessage, Timestamp, DAY};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Compression ratios for T, T+R and T+R+C (the three Table 7 rows).
pub fn compression_table(k: &DomainKnowledge, raw: &[RawMessage]) -> Vec<(String, f64)> {
    let (batch, _) = augment_batch(k, raw);
    [
        ("T", GroupingConfig::t_only()),
        ("T+R", GroupingConfig::t_r()),
        ("T+R+C", GroupingConfig::default()),
    ]
    .into_iter()
    .map(|(name, cfg)| (name.to_owned(), group(k, &batch, &cfg).compression_ratio()))
    .collect()
}

/// One day of the Figure 12 series.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DayStats {
    /// Day index relative to the batch's first day.
    pub day: i64,
    /// Raw messages that day.
    pub n_messages: usize,
    /// Digested events that day.
    pub n_events: usize,
    /// Association rules that actually merged messages that day.
    pub n_active_rules: usize,
}

/// Digest each civil day independently (the paper's operational mode —
/// "it generally takes less than one hour to digest one day's syslog")
/// and report the per-day counts.
pub fn per_day_series(
    k: &DomainKnowledge,
    raw: &[RawMessage],
    cfg: &GroupingConfig,
) -> Vec<DayStats> {
    if raw.is_empty() {
        return Vec::new();
    }
    let epoch = raw[0].ts.start_of_day();
    let mut out = Vec::new();
    let mut lo = 0usize;
    while lo < raw.len() {
        let day = raw[lo].ts.day_index(epoch);
        let day_end = Timestamp(epoch.0 + (day + 1) * DAY);
        let hi = lo + raw[lo..].partition_point(|m| m.ts < day_end);
        let dg = digest(k, &raw[lo..hi], cfg);
        out.push(DayStats {
            day,
            n_messages: hi - lo,
            n_events: dg.events.len(),
            n_active_rules: dg.grouping.active_rules.len(),
        });
        lo = hi;
    }
    out
}

/// Per-router `(messages, events)` counts over one digested batch
/// (Figure 13); an event involving several routers counts once per router.
pub fn per_router_counts(
    k: &DomainKnowledge,
    raw: &[RawMessage],
    cfg: &GroupingConfig,
) -> Vec<(String, usize, usize)> {
    let dg = digest(k, raw, cfg);
    let mut msgs: HashMap<String, usize> = HashMap::new();
    for m in raw {
        *msgs.entry(m.router.clone()).or_insert(0) += 1;
    }
    let mut events: HashMap<String, usize> = HashMap::new();
    for e in &dg.events {
        for r in &e.routers {
            *events
                .entry(k.dict.routers.resolve(r.0).to_owned())
                .or_insert(0) += 1;
        }
    }
    let mut out: Vec<(String, usize, usize)> = msgs
        .into_iter()
        .map(|(r, m)| {
            let e = events.get(&r).copied().unwrap_or(0);
            (r, m, e)
        })
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Grouping quality against the simulator's ground truth.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GtQuality {
    /// Of message pairs grouped together, the fraction truly co-event.
    pub pair_precision: f64,
    /// Of truly co-event pairs, the fraction grouped together.
    pub pair_recall: f64,
    /// Mean number of digest groups each ground-truth event was split
    /// into (1.0 = perfect reassembly).
    pub fragmentation: f64,
    /// Mean (message-weighted) purity of groups: the largest same-event
    /// share of each group.
    pub purity: f64,
}

/// Compare a grouping against ground-truth tags (only tagged messages are
/// considered; background noise has no ground truth to violate).
pub fn gt_quality(raw: &[RawMessage], batch_raw_idx: &[usize], g: &GroupingResult) -> GtQuality {
    // Contingency counts over (gt event, group).
    let mut cont: HashMap<(GroundTruthId, usize), u64> = HashMap::new();
    let mut per_gt: HashMap<GroundTruthId, u64> = HashMap::new();
    let mut per_group: HashMap<usize, u64> = HashMap::new();
    for (bi, &ri) in batch_raw_idx.iter().enumerate() {
        if let Some(gt) = raw[ri].gt_event {
            let grp = g.group_of[bi];
            *cont.entry((gt, grp)).or_insert(0) += 1;
            *per_gt.entry(gt).or_insert(0) += 1;
            *per_group.entry(grp).or_insert(0) += 1;
        }
    }
    let pairs = |n: u64| n.saturating_mul(n.saturating_sub(1)) / 2;
    let together_true: u64 = cont.values().map(|&c| pairs(c)).sum();
    let together_all: u64 = per_group.values().map(|&c| pairs(c)).sum();
    let true_all: u64 = per_gt.values().map(|&c| pairs(c)).sum();

    let mut frags: HashMap<GroundTruthId, u64> = HashMap::new();
    for &(gt, _) in cont.keys() {
        *frags.entry(gt).or_insert(0) += 1;
    }
    let fragmentation = if frags.is_empty() {
        0.0
    } else {
        frags.values().sum::<u64>() as f64 / frags.len() as f64
    };

    // Purity: per group, max single-event share, weighted by group size.
    let mut max_per_group: HashMap<usize, u64> = HashMap::new();
    for (&(_, grp), &c) in &cont {
        let e = max_per_group.entry(grp).or_insert(0);
        *e = (*e).max(c);
    }
    let total: u64 = per_group.values().sum();
    let purity = if total == 0 {
        0.0
    } else {
        max_per_group.values().sum::<u64>() as f64 / total as f64
    };

    GtQuality {
        pair_precision: if together_all == 0 {
            1.0
        } else {
            together_true as f64 / together_all as f64
        },
        pair_recall: if true_all == 0 {
            1.0
        } else {
            together_true as f64 / true_all as f64
        },
        fragmentation,
        purity,
    }
}

/// Convenience: augment + group + score quality in one call.
pub fn evaluate_grouping(
    k: &DomainKnowledge,
    raw: &[RawMessage],
    cfg: &GroupingConfig,
) -> GtQuality {
    let (batch, _) = augment_batch(k, raw);
    let g = group(k, &batch, cfg);
    let idxs: Vec<usize> = batch.iter().map(|sp| sp.idx).collect();
    gt_quality(raw, &idxs, &g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{learn, OfflineConfig};
    use sd_netsim::{Dataset, DatasetSpec};

    fn setup() -> (Dataset, DomainKnowledge) {
        // 0.12 rather than 0.08: at the smaller scale this seed's online
        // window contains two simultaneous ground-truth events whose
        // messages interleave within the temporal windows, which merges
        // them and makes pair-precision meaningless as a quality signal.
        let d = Dataset::generate(DatasetSpec::preset_a().scaled(0.12));
        let k = learn(&d.configs, d.train(), &OfflineConfig::dataset_a());
        (d, k)
    }

    #[test]
    fn table7_ordering_holds() {
        let (d, k) = setup();
        let table = compression_table(&k, d.online());
        assert_eq!(table.len(), 3);
        assert!(table[0].1 >= table[1].1, "{table:?}");
        assert!(table[1].1 >= table[2].1, "{table:?}");
        assert!(table[2].1 < 0.2, "{table:?}");
    }

    #[test]
    fn per_day_series_counts_every_message() {
        let (d, k) = setup();
        let series = per_day_series(&k, d.online(), &GroupingConfig::default());
        assert!(!series.is_empty());
        let total: usize = series.iter().map(|s| s.n_messages).sum();
        assert_eq!(total, d.online().len());
        for s in &series {
            assert!(s.n_events <= s.n_messages);
        }
    }

    #[test]
    fn per_router_counts_are_less_skewed_for_events() {
        let (d, k) = setup();
        let rows = per_router_counts(&k, d.online(), &GroupingConfig::default());
        assert!(rows.len() >= 4);
        // Figure 13: routers with many messages get better compression —
        // the top-message router's event/message ratio is below the
        // bottom-message router's.
        let top = &rows[0];
        let bottom = rows.iter().rev().find(|r| r.1 > 0 && r.2 > 0).unwrap();
        let top_ratio = top.2 as f64 / top.1 as f64;
        let bottom_ratio = bottom.2 as f64 / bottom.1 as f64;
        assert!(
            top_ratio <= bottom_ratio,
            "top {top:?} ratio {top_ratio} vs bottom {bottom:?} ratio {bottom_ratio}"
        );
    }

    #[test]
    fn grouping_quality_against_ground_truth_is_high() {
        let (d, k) = setup();
        let q = evaluate_grouping(&k, d.online(), &GroupingConfig::default());
        assert!(q.pair_precision > 0.7, "precision {}", q.pair_precision);
        assert!(q.purity > 0.8, "purity {}", q.purity);
        assert!(q.pair_recall > 0.3, "recall {}", q.pair_recall);
        assert!(q.fragmentation < 20.0, "fragmentation {}", q.fragmentation);
    }

    #[test]
    fn stages_improve_recall_without_wrecking_precision() {
        let (d, k) = setup();
        let t = evaluate_grouping(&k, d.online(), &GroupingConfig::t_only());
        let trc = evaluate_grouping(&k, d.online(), &GroupingConfig::default());
        assert!(trc.pair_recall >= t.pair_recall, "t {t:?} trc {trc:?}");
        assert!(trc.fragmentation <= t.fragmentation, "t {t:?} trc {trc:?}");
    }
}
