//! Online message augmentation: raw message → Syslog+ (template id +
//! verified locations), the first step of both the offline learner's
//! historical pass and the online pipeline.

use crate::knowledge::DomainKnowledge;
use sd_locations::extract;
use sd_model::{catch_panic, par_chunks, par_chunks_isolated, Parallelism, RawMessage, SyslogPlus};
use sd_templates::TokenScratch;

/// Augment one raw message. Returns `None` when the originating router is
/// unknown to the location dictionary (such messages are counted and
/// skipped by the pipeline — there is nothing to anchor them to).
pub fn augment(k: &DomainKnowledge, idx: usize, m: &RawMessage) -> Option<SyslogPlus> {
    augment_with(k, idx, m, &mut TokenScratch::new())
}

/// [`augment`] with a caller-provided token scratch: the template-matching
/// hot path performs no allocation, so one scratch serves a whole batch.
pub fn augment_with(
    k: &DomainKnowledge,
    idx: usize,
    m: &RawMessage,
    scratch: &mut TokenScratch,
) -> Option<SyslogPlus> {
    crate::quarantine::poison_check(&m.detail);
    let ex = extract(&k.dict, m)?;
    let template = k.resolve_template_with(&m.code, &m.detail, scratch);
    Some(SyslogPlus {
        idx,
        ts: m.ts,
        router: ex.router,
        template: Some(template),
        locations: ex.locations,
    })
}

/// Augment a whole batch, dropping unknown-router messages; returns the
/// augmented messages and the number dropped.
pub fn augment_batch(k: &DomainKnowledge, batch: &[RawMessage]) -> (Vec<SyslogPlus>, usize) {
    augment_batch_with(k, batch, Parallelism::sequential())
}

/// [`augment_batch`] over `par.threads` scoped threads. Augmentation is
/// per-message pure, so chunks are processed independently (each with its
/// own token scratch) and concatenated in input order — the output is
/// identical for every thread count.
pub fn augment_batch_with(
    k: &DomainKnowledge,
    batch: &[RawMessage],
    par: Parallelism,
) -> (Vec<SyslogPlus>, usize) {
    let chunk_results = par_chunks(par, batch, |start, chunk| {
        let mut out = Vec::with_capacity(chunk.len());
        let mut dropped = 0usize;
        let mut scratch = TokenScratch::new();
        for (off, m) in chunk.iter().enumerate() {
            match augment_with(k, start + off, m, &mut scratch) {
                Some(sp) => out.push(sp),
                None => dropped += 1,
            }
        }
        (out, dropped)
    });
    let mut out = Vec::with_capacity(batch.len());
    let mut dropped = 0usize;
    for (chunk_out, chunk_dropped) in chunk_results {
        out.extend(chunk_out);
        dropped += chunk_dropped;
    }
    (out, dropped)
}

/// Result of a panic-isolated batch augmentation
/// ([`augment_batch_isolated`]).
pub struct IsolatedAugment {
    /// Aligned 1:1 with the input batch: `Some` for augmented messages,
    /// `None` for unknown-router drops *and* quarantined messages (use
    /// `quarantined` to tell them apart).
    pub augmented: Vec<Option<SyslogPlus>>,
    /// `(batch offset, rendered panic payload)` for every message whose
    /// augmentation panicked — even after its shard was retried
    /// sequentially, one message at a time.
    pub quarantined: Vec<(usize, String)>,
}

/// Augment a batch with each shard of the `par` fan-out running under
/// `catch_unwind`: a panicking shard does not abort the run. The
/// poisoned shard is retried sequentially message-by-message (with a
/// fresh scratch — the panicked one may hold torn state) so only the
/// truly offending messages are quarantined; every healthy message in
/// the shard still augments. The output is deterministic and identical
/// for every thread count, and with no panics it is exactly
/// [`augment_batch_with`]'s.
pub fn augment_batch_isolated(
    k: &DomainKnowledge,
    batch: &[RawMessage],
    par: Parallelism,
) -> IsolatedAugment {
    let shards = par_chunks_isolated(par, batch, |start, chunk| {
        let mut out = Vec::with_capacity(chunk.len());
        let mut scratch = TokenScratch::new();
        for (off, m) in chunk.iter().enumerate() {
            out.push(augment_with(k, start + off, m, &mut scratch));
        }
        out
    });
    let starts: Vec<usize> = shards.iter().map(|(s, _)| *s).collect();
    let mut augmented: Vec<Option<SyslogPlus>> = Vec::with_capacity(batch.len());
    let mut quarantined: Vec<(usize, String)> = Vec::new();
    for (si, (start, res)) in shards.into_iter().enumerate() {
        match res {
            Ok(chunk_out) => augmented.extend(chunk_out),
            Err(_) => {
                // Poisoned shard: retry each message alone.
                let end = starts.get(si + 1).copied().unwrap_or(batch.len());
                for (off, m) in batch[start..end].iter().enumerate() {
                    let idx = start + off;
                    match catch_panic(|| augment_with(k, idx, m, &mut TokenScratch::new())) {
                        Ok(sp) => augmented.push(sp),
                        Err(reason) => {
                            augmented.push(None);
                            quarantined.push((idx, reason));
                        }
                    }
                }
            }
        }
    }
    IsolatedAugment {
        augmented,
        quarantined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::UNKNOWN_TEMPLATE;
    use sd_locations::LocationDictionary;
    use sd_model::{ErrorCode, Interner, Timestamp};
    use sd_rules::RuleSet;
    use sd_templates::{learn, LearnerConfig};
    use sd_temporal::TemporalConfig;

    fn knowledge() -> DomainKnowledge {
        let train: Vec<RawMessage> = (0..30)
            .map(|i| {
                RawMessage::new(
                    Timestamp(i),
                    "r1",
                    ErrorCode::from("LINK-3-UPDOWN"),
                    format!("Interface Serial1/{}, changed state to down", i % 20),
                )
            })
            .collect();
        let templates = learn(&train, &LearnerConfig::default());
        let mut fallback = Interner::new();
        fallback.intern("LINK-3-UPDOWN");
        let cfg = "\
hostname r1
!
interface Serial1/5
 ip address 10.0.0.1 255.255.255.252
";
        let dict = LocationDictionary::build(&[cfg.to_owned()]);
        DomainKnowledge::new(
            templates,
            fallback,
            dict,
            TemporalConfig::dataset_a(),
            RuleSet::default(),
            120,
            Default::default(),
        )
    }

    #[test]
    fn augment_attaches_template_and_location() {
        let k = knowledge();
        let m = RawMessage::new(
            Timestamp(99),
            "r1",
            ErrorCode::from("LINK-3-UPDOWN"),
            "Interface Serial1/5, changed state to down",
        );
        let sp = augment(&k, 7, &m).unwrap();
        assert_eq!(sp.idx, 7);
        assert_eq!(sp.ts, Timestamp(99));
        let t = sp.template.unwrap();
        assert!(t.0 < k.templates.len() as u32);
        let rid = k.dict.router_id("r1").unwrap();
        assert_eq!(sp.primary_location(), k.dict.by_name(rid, "Serial1/5"));
    }

    #[test]
    fn unknown_router_is_dropped_by_batch() {
        let k = knowledge();
        let batch = vec![
            RawMessage::new(Timestamp(0), "r1", ErrorCode::from("LINK-3-UPDOWN"), "x y"),
            RawMessage::new(
                Timestamp(1),
                "ghost",
                ErrorCode::from("LINK-3-UPDOWN"),
                "x y",
            ),
        ];
        let (out, dropped) = augment_batch(&k, &batch);
        assert_eq!(out.len(), 1);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn isolated_batch_quarantines_only_the_poison_message() {
        let k = knowledge();
        let mut batch: Vec<RawMessage> = (0..50)
            .map(|i| {
                RawMessage::new(
                    Timestamp(i),
                    "r1",
                    ErrorCode::from("LINK-3-UPDOWN"),
                    format!("Interface Serial1/{}, changed state to down", i % 20),
                )
            })
            .collect();
        batch[23].detail = "detail with AUGTESTPOISON inside".to_string();
        crate::quarantine::set_poison_marker(Some("AUGTESTPOISON"));
        for threads in [1usize, 4] {
            let iso = augment_batch_isolated(&k, &batch, Parallelism::with_threads(threads));
            assert_eq!(iso.augmented.len(), batch.len());
            assert_eq!(iso.quarantined.len(), 1, "threads={threads}");
            assert_eq!(iso.quarantined[0].0, 23);
            assert!(iso.quarantined[0].1.contains("AUGTESTPOISON"));
            assert!(iso.augmented[23].is_none());
            // Every other message still augmented despite sharing a shard
            // with the poison message.
            for (i, sp) in iso.augmented.iter().enumerate() {
                if i != 23 {
                    assert!(sp.is_some(), "message {i} lost (threads={threads})");
                    assert_eq!(sp.as_ref().unwrap().idx, i);
                }
            }
        }
        crate::quarantine::set_poison_marker(None);
        // Disarmed: identical to the plain batch path.
        let iso = augment_batch_isolated(&k, &batch, Parallelism::with_threads(4));
        assert!(iso.quarantined.is_empty());
        assert!(iso.augmented.iter().all(Option::is_some));
    }

    #[test]
    fn unknown_code_still_augments_with_unknown_template() {
        let k = knowledge();
        let m = RawMessage::new(
            Timestamp(0),
            "r1",
            ErrorCode::from("ALIEN-9-THING"),
            "stuff",
        );
        let sp = augment(&k, 0, &m).unwrap();
        assert_eq!(sp.template, Some(UNKNOWN_TEMPLATE));
    }
}
