//! Bounded reorder buffer with watermarking.
//!
//! Real syslog feeds are *almost* time-ordered: messages from different
//! routers interleave with bounded network jitter, relays retransmit, and
//! bursts arrive in arbitrary intra-second order. The
//! [`StreamDigester`](crate::StreamDigester) requires non-decreasing
//! timestamps; this buffer sits in front of it and repairs any reordering
//! up to a configured bound.
//!
//! # Watermark semantics
//!
//! Let `high` be the highest timestamp observed so far. The **watermark**
//! is `high − max_skew_secs`. Invariants:
//!
//! * An arriving message with `ts < watermark` is **late**: it is counted
//!   ([`ReorderBuffer::n_late`]) and dropped — releasing it would hand the
//!   digester a timestamp older than ones already released.
//! * Everything else is buffered, and messages are **released** (in full
//!   `(ts, router, code, detail)` order) exactly when their timestamp
//!   falls below the watermark, i.e. once no on-time arrival can precede
//!   them.
//!
//! If every message is delayed by at most `J` seconds relative to
//! generation order, then at any arrival the highest timestamp seen
//! exceeds the arriving one by at most `J`; with `max_skew_secs ≥ J` no
//! message is ever late, and the released sequence equals the sorted clean
//! feed (the proptest in `tests/` asserts byte-identical digests).
//!
//! # Duplicates
//!
//! A retransmitted copy either arrives while the original is still
//! buffered — the identical `(ts, router, code, detail)` key collides and
//! the copy is absorbed ([`ReorderBuffer::n_duplicate`]) — or after the
//! original was released, in which case its timestamp is already below
//! the watermark and it is dropped as late. Either way a duplicate can
//! never reach the digester twice.

use sd_model::{ErrorCode, RawMessage, Timestamp};
use sd_telemetry::{Counter, Telemetry};
use std::collections::BTreeMap;

/// Full-identity release key: total order even for same-second bursts, so
/// a given message multiset always releases in exactly one order.
type Key = (Timestamp, String, ErrorCode, String);

/// Buffers out-of-order messages and releases them in timestamp order
/// (see the module docs for the watermark contract).
#[derive(Debug, Default)]
pub struct ReorderBuffer {
    buf: BTreeMap<Key, RawMessage>,
    high: Option<Timestamp>,
    max_skew: i64,
    /// Messages dropped because they arrived more than `max_skew_secs`
    /// behind the newest message seen. Registry-backed (`ingest.n_late`)
    /// when built via [`ReorderBuffer::with_telemetry`], a detached atomic
    /// otherwise — it counts either way.
    pub n_late: Counter,
    /// Duplicate messages absorbed while the original was still buffered
    /// (`ingest.n_duplicate` when registered).
    pub n_duplicate: Counter,
}

impl ReorderBuffer {
    /// New buffer tolerating up to `max_skew_secs` of reordering.
    pub fn new(max_skew_secs: i64) -> Self {
        ReorderBuffer {
            max_skew: max_skew_secs.max(0),
            ..ReorderBuffer::default()
        }
    }

    /// [`new`](Self::new) with the late/duplicate counters registered in
    /// `tel` as `ingest.n_late` / `ingest.n_duplicate`.
    pub fn with_telemetry(max_skew_secs: i64, tel: &Telemetry) -> Self {
        ReorderBuffer {
            max_skew: max_skew_secs.max(0),
            n_late: tel.counter("ingest.n_late"),
            n_duplicate: tel.counter("ingest.n_duplicate"),
            ..ReorderBuffer::default()
        }
    }

    /// The reorder tolerance in seconds.
    pub fn max_skew_secs(&self) -> i64 {
        self.max_skew
    }

    /// Number of currently buffered messages.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Current watermark: releases happen strictly below it, arrivals
    /// strictly below it are late. `None` until the first message.
    pub fn watermark(&self) -> Option<Timestamp> {
        // Saturating: extreme parsed timestamps must not overflow.
        self.high
            .map(|h| Timestamp(h.0.saturating_sub(self.max_skew)))
    }

    /// Accept one message; any messages whose release became safe are
    /// appended to `out` in timestamp order. Returns `false` when the
    /// message was dropped as late or absorbed as a duplicate.
    pub fn push(&mut self, m: RawMessage, out: &mut Vec<RawMessage>) -> bool {
        if let Some(w) = self.watermark() {
            if m.ts < w {
                self.n_late.inc();
                return false;
            }
        }
        self.high = Some(self.high.map_or(m.ts, |h| h.max(m.ts)));
        let key: Key = (m.ts, m.router.clone(), m.code.clone(), m.detail.clone());
        let dup = self.buf.insert(key, m).is_some();
        if dup {
            self.n_duplicate.inc();
        }
        self.drain(out);
        !dup
    }

    /// Release everything below the current watermark.
    fn drain(&mut self, out: &mut Vec<RawMessage>) {
        let Some(w) = self.watermark() else { return };
        while let Some((key, _)) = self.buf.first_key_value() {
            if key.0 >= w {
                break;
            }
            if let Some((_, m)) = self.buf.pop_first() {
                out.push(m);
            }
        }
    }

    /// Release every buffered message (end of the feed), in order.
    pub fn flush(&mut self, out: &mut Vec<RawMessage>) {
        while let Some((_, m)) = self.buf.pop_first() {
            out.push(m);
        }
    }

    // ------------------------------------------------- checkpoint support --

    /// Copy the buffered messages, in release order, without draining
    /// (checkpointing must not disturb the live buffer).
    pub fn export_buffered(&self, out: &mut Vec<RawMessage>) {
        out.extend(self.buf.values().cloned());
    }

    /// Highest timestamp observed so far (`None` before any message).
    pub fn high_watermark_ts(&self) -> Option<Timestamp> {
        self.high
    }

    /// Rebuild a buffer from checkpointed state: tolerance, observed
    /// high timestamp, buffered messages, and counters.
    pub fn restore(
        max_skew_secs: i64,
        high: Option<Timestamp>,
        buffered: impl IntoIterator<Item = RawMessage>,
        n_late: usize,
        n_duplicate: usize,
    ) -> Self {
        Self::restore_with(
            max_skew_secs,
            high,
            buffered,
            n_late,
            n_duplicate,
            &Telemetry::disabled(),
        )
    }

    /// [`restore`](Self::restore) with counters re-registered in `tel`
    /// and set to their checkpointed values.
    pub fn restore_with(
        max_skew_secs: i64,
        high: Option<Timestamp>,
        buffered: impl IntoIterator<Item = RawMessage>,
        n_late: usize,
        n_duplicate: usize,
        tel: &Telemetry,
    ) -> Self {
        let mut rb = ReorderBuffer::with_telemetry(max_skew_secs, tel);
        rb.high = high;
        rb.n_late.set(n_late as u64);
        rb.n_duplicate.set(n_duplicate as u64);
        for m in buffered {
            let key: Key = (m.ts, m.router.clone(), m.code.clone(), m.detail.clone());
            rb.buf.insert(key, m);
        }
        rb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(ts: i64, router: &str, detail: &str) -> RawMessage {
        RawMessage::new(Timestamp(ts), router, ErrorCode::from("A-1-X"), detail)
    }

    fn release_all(skew: i64, feed: Vec<RawMessage>) -> (Vec<RawMessage>, ReorderBuffer) {
        let mut rb = ReorderBuffer::new(skew);
        let mut out = Vec::new();
        for m in feed {
            rb.push(m, &mut out);
        }
        rb.flush(&mut out);
        (out, rb)
    }

    #[test]
    fn reordering_within_skew_is_repaired() {
        let feed = vec![msg(10, "r1", "a"), msg(5, "r2", "b"), msg(20, "r1", "c")];
        let (out, rb) = release_all(30, feed);
        let ts: Vec<i64> = out.iter().map(|m| m.ts.0).collect();
        assert_eq!(ts, vec![5, 10, 20]);
        assert_eq!(rb.n_late.get(), 0);
    }

    #[test]
    fn late_messages_are_counted_and_dropped() {
        let mut rb = ReorderBuffer::new(10);
        let mut out = Vec::new();
        assert!(rb.push(msg(100, "r1", "a"), &mut out));
        // 85 < 100 - 10 = 90: beyond the tolerance.
        assert!(!rb.push(msg(85, "r2", "b"), &mut out));
        assert_eq!(rb.n_late.get(), 1);
        // 95 is within tolerance and released in order.
        assert!(rb.push(msg(95, "r2", "c"), &mut out));
        rb.flush(&mut out);
        let ts: Vec<i64> = out.iter().map(|m| m.ts.0).collect();
        assert_eq!(ts, vec![95, 100]);
    }

    #[test]
    fn duplicates_are_absorbed_whether_buffered_or_released() {
        // Copy arrives while the original is buffered.
        let (out, rb) = release_all(30, vec![msg(10, "r1", "a"), msg(10, "r1", "a")]);
        assert_eq!(out.len(), 1);
        assert_eq!(rb.n_duplicate.get(), 1);

        // Copy arrives after the original was released → late-dropped.
        let mut rb = ReorderBuffer::new(5);
        let mut out = Vec::new();
        rb.push(msg(10, "r1", "a"), &mut out);
        rb.push(msg(100, "r1", "b"), &mut out); // releases ts=10
        assert_eq!(out.len(), 1);
        assert!(!rb.push(msg(10, "r1", "a"), &mut out));
        assert_eq!(rb.n_late.get(), 1);
    }

    #[test]
    fn released_sequence_is_always_nondecreasing() {
        let feed = vec![
            msg(50, "r1", "a"),
            msg(48, "r2", "b"),
            msg(60, "r3", "c"),
            msg(41, "r4", "d"), // late for skew=10 once 60 is seen (w=50)
            msg(55, "r5", "e"),
            msg(90, "r6", "f"),
        ];
        let (out, _) = release_all(10, feed);
        for pair in out.windows(2) {
            assert!(pair[0].ts <= pair[1].ts);
        }
    }

    #[test]
    fn same_second_bursts_release_in_total_order() {
        let feed = vec![msg(10, "r2", "b"), msg(10, "r1", "z"), msg(10, "r1", "a")];
        let (out, _) = release_all(5, feed);
        let ids: Vec<(&str, &str)> = out
            .iter()
            .map(|m| (m.router.as_str(), m.detail.as_str()))
            .collect();
        assert_eq!(ids, vec![("r1", "a"), ("r1", "z"), ("r2", "b")]);
    }

    #[test]
    fn zero_skew_degenerates_to_passthrough_of_sorted_feeds() {
        let feed: Vec<RawMessage> = (0..20).map(|i| msg(i, "r1", &format!("m{i}"))).collect();
        let (out, rb) = release_all(0, feed.clone());
        assert_eq!(out, feed);
        assert_eq!(rb.n_late.get(), 0);
    }
}
