//! Per-event provenance: which templates matched the member messages,
//! which grouping stage (and which mined rule) linked each pair of
//! sub-events, and which temporal decision closed the group.
//!
//! Provenance is *observational*: it is accumulated alongside grouping
//! (cheaply enough to stay always-on in the streaming path, where it
//! rides inside checkpoints) but never feeds back into any grouping,
//! scoring, or presentation decision — the telemetry-neutrality tests
//! assert digest output is byte-identical with tracing on and off.

use crate::knowledge::DomainKnowledge;
use sd_model::{SyslogPlus, TemplateId};
use sd_telemetry::Json;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Which grouping stage merged two sub-events (§4.2.1–§4.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergeCause {
    /// Temporal grouping: same (router, template, location), inter-arrival
    /// accepted by the calibrated EWMA tracker.
    Temporal,
    /// Rule-based grouping: the undirected template pair of the mined
    /// association rule that fired.
    Rule(u32, u32),
    /// Cross-router grouping: same template on connected locations within
    /// the simultaneity window.
    Cross,
}

/// Why a group stopped accepting messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CloseReason {
    /// Batch digest: groups close when the batch ends.
    Batch,
    /// Streaming idle close: the α/β-calibrated idle horizon elapsed with
    /// no new member.
    Idle,
    /// Streaming memory bound: evicted as the oldest open group.
    ForceClosed,
    /// Stream finish flushed all remaining open groups.
    Finish,
}

impl CloseReason {
    /// Lowercase name used in traces and `sdigest explain`.
    pub fn as_str(self) -> &'static str {
        match self {
            CloseReason::Batch => "batch",
            CloseReason::Idle => "idle",
            CloseReason::ForceClosed => "force_closed",
            CloseReason::Finish => "finish",
        }
    }
}

/// Link counts accumulated while a group is open. Maintained per open
/// group in the streaming digester (and serialized inside checkpoints so
/// provenance survives resume) and per final group in batch grouping.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupProv {
    /// Links contributed by the temporal stage.
    pub n_temporal: u64,
    /// Links contributed by the cross-router stage.
    pub n_cross: u64,
    /// Rule firings: `((lo_template, hi_template), times_fired)`, sorted
    /// by pair.
    pub rules: Vec<((u32, u32), u64)>,
}

impl GroupProv {
    /// Record one merge link.
    pub fn record(&mut self, cause: MergeCause) {
        match cause {
            MergeCause::Temporal => self.n_temporal += 1,
            MergeCause::Cross => self.n_cross += 1,
            MergeCause::Rule(a, b) => {
                let key = (a.min(b), a.max(b));
                match self.rules.binary_search_by_key(&key, |(k, _)| *k) {
                    Ok(i) => self.rules[i].1 += 1,
                    Err(i) => self.rules.insert(i, (key, 1)),
                }
            }
        }
    }

    /// Fold another accumulator in (used when two open groups union).
    pub fn absorb(&mut self, other: &GroupProv) {
        self.n_temporal += other.n_temporal;
        self.n_cross += other.n_cross;
        for &(key, n) in &other.rules {
            match self.rules.binary_search_by_key(&key, |(k, _)| *k) {
                Ok(i) => self.rules[i].1 += n,
                Err(i) => self.rules.insert(i, (key, n)),
            }
        }
    }

    /// Total rule-stage links.
    pub fn n_rule(&self) -> u64 {
        self.rules.iter().map(|(_, n)| n).sum()
    }
}

/// Full provenance of one emitted event, reconstructable from its id via
/// `sdigest explain` and streamed as one JSONL record via `--trace`.
#[derive(Debug, Clone)]
pub struct EventProvenance {
    /// The event id this record explains (matches `NetworkEvent::id`).
    pub event_id: u64,
    /// Member message count.
    pub n_messages: usize,
    /// Involved router names (sorted).
    pub routers: Vec<String>,
    /// `(template_id, signature, members_matched)` for every template that
    /// matched at least one member, sorted by id.
    pub templates: Vec<(u32, String, u64)>,
    /// Link counts per grouping stage and per fired rule.
    pub links: GroupProv,
    /// Signatures of the templates in each fired rule, aligned with
    /// `links.rules`.
    pub rule_signatures: Vec<(String, String)>,
    /// The decision that closed the group.
    pub closed_by: CloseReason,
    /// For [`CloseReason::Idle`]: the observed quiet gap in seconds.
    pub idle_gap_secs: Option<i64>,
    /// For streaming closes: the configured idle horizon in seconds.
    pub idle_close_secs: Option<i64>,
}

impl EventProvenance {
    /// One JSONL trace record.
    pub fn to_json(&self) -> Json {
        let templates: Vec<Json> = self
            .templates
            .iter()
            .map(|(id, sig, n)| {
                Json::obj()
                    .field("id", *id)
                    .field("signature", sig.as_str())
                    .field("members", *n)
            })
            .collect();
        let rules: Vec<Json> = self
            .links
            .rules
            .iter()
            .zip(&self.rule_signatures)
            .map(|(&((a, b), fired), (sa, sb))| {
                Json::obj()
                    .field("templates", vec![Json::U64(a.into()), Json::U64(b.into())])
                    .field(
                        "signatures",
                        vec![Json::Str(sa.clone()), Json::Str(sb.clone())],
                    )
                    .field("fired", fired)
            })
            .collect();
        let routers: Vec<Json> = self.routers.iter().map(|r| Json::Str(r.clone())).collect();
        Json::obj()
            .field("event_id", self.event_id)
            .field("n_messages", self.n_messages)
            .field("routers", routers)
            .field("templates", templates)
            .field(
                "links",
                Json::obj()
                    .field("temporal", self.links.n_temporal)
                    .field("rule", self.links.n_rule())
                    .field("cross", self.links.n_cross),
            )
            .field("rules", rules)
            .field("closed_by", self.closed_by.as_str())
            .field("idle_gap_secs", self.idle_gap_secs)
            .field("idle_close_secs", self.idle_close_secs)
    }

    /// Multi-line human rendering for `sdigest explain`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "event {}: {} messages on {}",
            self.event_id,
            self.n_messages,
            self.routers.join(", ")
        );
        let _ = writeln!(out, "  templates matched:");
        for (id, sig, n) in &self.templates {
            let _ = writeln!(out, "    [{id}] x{n}  {sig}");
        }
        let _ = writeln!(
            out,
            "  links: {} temporal, {} rule, {} cross-router",
            self.links.n_temporal,
            self.links.n_rule(),
            self.links.n_cross
        );
        if !self.links.rules.is_empty() {
            let _ = writeln!(out, "  rules fired:");
            for (&((a, b), fired), (sa, sb)) in self.links.rules.iter().zip(&self.rule_signatures) {
                let _ = writeln!(out, "    ({a},{b}) x{fired}: {sa}  <->  {sb}");
            }
        }
        match (self.closed_by, self.idle_gap_secs, self.idle_close_secs) {
            (CloseReason::Idle, Some(gap), Some(h)) => {
                let _ = writeln!(out, "  closed by: idle (quiet {gap} s > horizon {h} s)");
            }
            (reason, _, _) => {
                let _ = writeln!(out, "  closed by: {}", reason.as_str());
            }
        }
        out
    }
}

/// Assemble the provenance record for one emitted event from its member
/// messages and the link accumulator its group carried.
#[allow(clippy::too_many_arguments)]
pub fn build_provenance(
    k: &DomainKnowledge,
    batch: &[SyslogPlus],
    members: &[usize],
    links: GroupProv,
    event_id: u64,
    closed_by: CloseReason,
    idle_gap_secs: Option<i64>,
    idle_close_secs: Option<i64>,
) -> EventProvenance {
    let mut routers: Vec<String> = Vec::new();
    let mut per_template: BTreeMap<u32, u64> = BTreeMap::new();
    for &i in members {
        let sp = &batch[i];
        let rname = k.dict.routers.resolve(sp.router.0).to_owned();
        if let Err(pos) = routers.binary_search(&rname) {
            routers.insert(pos, rname);
        }
        if let Some(t) = sp.template {
            *per_template.entry(t.0).or_insert(0) += 1;
        }
    }
    let templates: Vec<(u32, String, u64)> = per_template
        .into_iter()
        .map(|(id, n)| (id, k.template_signature(TemplateId(id)), n))
        .collect();
    let rule_signatures: Vec<(String, String)> = links
        .rules
        .iter()
        .map(|&((a, b), _)| {
            (
                k.template_signature(TemplateId(a)),
                k.template_signature(TemplateId(b)),
            )
        })
        .collect();
    EventProvenance {
        event_id,
        n_messages: members.len(),
        routers,
        templates,
        links,
        rule_signatures,
        closed_by,
        idle_gap_secs,
        idle_close_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_absorb_accumulate() {
        let mut a = GroupProv::default();
        a.record(MergeCause::Temporal);
        a.record(MergeCause::Rule(3, 1));
        a.record(MergeCause::Rule(1, 3));
        let mut b = GroupProv::default();
        b.record(MergeCause::Cross);
        b.record(MergeCause::Rule(1, 3));
        b.record(MergeCause::Rule(0, 2));
        a.absorb(&b);
        assert_eq!(a.n_temporal, 1);
        assert_eq!(a.n_cross, 1);
        assert_eq!(a.rules, vec![((0, 2), 1), ((1, 3), 3)]);
        assert_eq!(a.n_rule(), 4);
    }

    /// Every `MergeCause` variant survives a JSONL encode → decode cycle
    /// (merge causes ride inside streaming checkpoints; a variant that
    /// fails to roundtrip would corrupt provenance across resume).
    #[test]
    fn merge_cause_roundtrips_through_json() {
        for cause in [
            MergeCause::Temporal,
            MergeCause::Rule(0, 0),
            MergeCause::Rule(3, 9),
            MergeCause::Rule(u32::MAX, 1),
            MergeCause::Cross,
        ] {
            let line = serde_json::to_string(&cause).expect("encodes");
            assert!(!line.contains('\n'), "JSONL must stay one line: {line}");
            let back: MergeCause = serde_json::from_str(&line).expect("decodes");
            assert_eq!(back, cause, "via {line}");
        }
    }

    /// Every `CloseReason` variant survives the same cycle, and the
    /// variants stay distinguishable after encoding.
    #[test]
    fn close_reason_roundtrips_through_json() {
        let all = [
            CloseReason::Batch,
            CloseReason::Idle,
            CloseReason::ForceClosed,
            CloseReason::Finish,
        ];
        let mut encodings = Vec::new();
        for reason in all {
            let line = serde_json::to_string(&reason).expect("encodes");
            let back: CloseReason = serde_json::from_str(&line).expect("decodes");
            assert_eq!(back, reason, "via {line}");
            encodings.push(line);
        }
        encodings.sort();
        encodings.dedup();
        assert_eq!(encodings.len(), all.len(), "encodings must be distinct");
    }

    /// `GroupProv` (the accumulator checkpoints serialize per open group)
    /// roundtrips with rule pairs and counts intact.
    #[test]
    fn group_prov_roundtrips_through_json() {
        let mut links = GroupProv::default();
        links.record(MergeCause::Temporal);
        links.record(MergeCause::Cross);
        links.record(MergeCause::Rule(5, 2));
        links.record(MergeCause::Rule(2, 5));
        links.record(MergeCause::Rule(7, 8));
        let line = serde_json::to_string(&links).expect("encodes");
        let back: GroupProv = serde_json::from_str(&line).expect("decodes");
        assert_eq!(back, links);
        assert_eq!(back.n_rule(), 3);
    }

    #[test]
    fn json_record_is_well_formed() {
        let mut links = GroupProv::default();
        links.record(MergeCause::Temporal);
        links.record(MergeCause::Rule(0, 1));
        let p = EventProvenance {
            event_id: 7,
            n_messages: 4,
            routers: vec!["r1".into()],
            templates: vec![(0, "LINK *".into(), 3), (1, "PROTO *".into(), 1)],
            links,
            rule_signatures: vec![("LINK *".into(), "PROTO *".into())],
            closed_by: CloseReason::Idle,
            idle_gap_secs: Some(301),
            idle_close_secs: Some(300),
        };
        let s = p.to_json().render();
        assert!(s.contains("\"event_id\":7"), "{s}");
        assert!(s.contains("\"closed_by\":\"idle\""), "{s}");
        assert!(s.contains("\"idle_gap_secs\":301"), "{s}");
        assert!(s.contains("\"fired\":1"), "{s}");
        let text = p.render_text();
        assert!(text.contains("event 7: 4 messages on r1"), "{text}");
        assert!(text.contains("quiet 301 s > horizon 300 s"), "{text}");
    }
}
