//! Streaming online digestion.
//!
//! [`pipeline::digest`](crate::pipeline::digest) processes a finished
//! batch; real deployments consume the syslog feed continuously. The
//! [`StreamDigester`] accepts one message at a time, maintains exactly the
//! batch pipeline's grouping state incrementally, and *closes* a group —
//! emitting its [`NetworkEvent`] — once the group has been idle longer
//! than every mechanism that could still grow it:
//!
//! * temporal grouping never bridges a gap above `Smax`,
//! * rule-based grouping looks back at most `W`,
//! * cross-router grouping looks back ~1 s,
//!
//! so with `idle_close ≥ max(Smax, W)` the streaming partition is
//! **identical** to the batch partition of the same input (a property the
//! integration tests assert).

use crate::augment::augment_with;
use crate::event::{build_event, NetworkEvent};
use crate::grouping::GroupingConfig;
use crate::knowledge::DomainKnowledge;
use crate::priority::score_group;
use sd_model::{par_chunks, LocationId, RawMessage, SyslogPlus, TemplateId, Timestamp};
use sd_templates::TokenScratch;
use sd_temporal::EwmaTracker;
use std::collections::{HashMap, VecDeque};

/// Per router: the recent representative per `(template, location)` the
/// rule-based stage looks back at.
type RecentRules = HashMap<u32, HashMap<(u32, u32), (u64, Timestamp)>>;

/// One open (not yet emitted) group.
#[derive(Debug, Default)]
struct OpenGroup {
    /// Member sequence numbers.
    members: Vec<u64>,
    /// Latest member timestamp (drives closure).
    last_ts: Timestamp,
}

/// Incremental digester over a time-ordered syslog feed.
pub struct StreamDigester<'k> {
    k: &'k DomainKnowledge,
    cfg: GroupingConfig,
    /// Idle horizon after which a group can no longer grow.
    idle_close: i64,

    next_seq: u64,
    /// Open messages by sequence number.
    open: HashMap<u64, SyslogPlus>,
    /// Raw copies of open messages (events own their text on emission).
    raw: HashMap<u64, RawMessage>,
    /// Union-find over open sequence numbers.
    parent: HashMap<u64, u64>,
    /// Group state, keyed by current root.
    groups: HashMap<u64, OpenGroup>,

    // Stage state (mirrors `grouping::group`).
    trackers: HashMap<(u32, u32, u32), (EwmaTracker, u64)>,
    recent_rules: RecentRules,
    recent_cross: HashMap<u32, VecDeque<(u64, Timestamp)>>,

    /// Messages dropped (unknown router).
    pub n_dropped: usize,
    /// Messages accepted.
    pub n_input: usize,
    clock: Timestamp,
    since_sweep: usize,
}

impl<'k> StreamDigester<'k> {
    /// New digester. `idle_close` is clamped up to
    /// `max(Smax, W, cross window)` so closure can never split a group the
    /// batch pipeline would have joined.
    pub fn new(k: &'k DomainKnowledge, cfg: GroupingConfig, idle_close: i64) -> Self {
        let floor = k
            .temporal
            .s_max
            .max(k.window_secs)
            .max(cfg.cross_window_secs);
        StreamDigester {
            k,
            cfg,
            idle_close: idle_close.max(floor),
            next_seq: 0,
            open: HashMap::new(),
            raw: HashMap::new(),
            parent: HashMap::new(),
            groups: HashMap::new(),
            trackers: HashMap::new(),
            recent_rules: HashMap::new(),
            recent_cross: HashMap::new(),
            n_dropped: 0,
            n_input: 0,
            clock: Timestamp(i64::MIN),
            since_sweep: 0,
        }
    }

    /// The effective idle-closure horizon in seconds.
    pub fn idle_close_secs(&self) -> i64 {
        self.idle_close
    }

    /// Number of currently open groups.
    pub fn open_groups(&self) -> usize {
        self.groups.len()
    }

    fn find(&mut self, mut x: u64) -> u64 {
        // Path compression over the hash-based forest.
        let mut path = Vec::new();
        while self.parent[&x] != x {
            path.push(x);
            x = self.parent[&x];
        }
        for p in path {
            self.parent.insert(p, x);
        }
        x
    }

    fn union(&mut self, a: u64, b: u64) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let ga = self.groups.remove(&ra).expect("root has state");
        let gb = self.groups.remove(&rb).expect("root has state");
        // Attach the smaller under the larger.
        let (root, child, mut groot, gchild) = if ga.members.len() >= gb.members.len() {
            (ra, rb, ga, gb)
        } else {
            (rb, ra, gb, ga)
        };
        self.parent.insert(child, root);
        groot.members.extend(gchild.members);
        groot.last_ts = groot.last_ts.max(gchild.last_ts);
        self.groups.insert(root, groot);
    }

    /// Feed one message (must be non-decreasing in time); returns any
    /// events that became closable.
    pub fn push(&mut self, m: &RawMessage) -> Vec<NetworkEvent> {
        let sp = crate::augment::augment(self.k, self.next_seq as usize, m);
        self.push_augmented(m, sp)
    }

    /// Feed a slice of messages, augmenting them on `cfg.par` threads
    /// before the (inherently sequential) incremental grouping stages.
    /// Emits exactly what the equivalent sequence of [`push`] calls would:
    /// augmentation is per-message pure, so only the stages that carry
    /// state stay on the calling thread.
    ///
    /// [`push`]: StreamDigester::push
    pub fn push_batch(&mut self, msgs: &[RawMessage]) -> Vec<NetworkEvent> {
        let k = self.k;
        // Placeholder idx 0 here; the real sequence number is assigned in
        // `push_augmented` (exactly as `push` would have).
        let augmented = par_chunks(self.cfg.par, msgs, |_, chunk| {
            let mut scratch = TokenScratch::new();
            chunk
                .iter()
                .map(|m| augment_with(k, 0, m, &mut scratch))
                .collect::<Vec<Option<SyslogPlus>>>()
        });
        let mut events = Vec::new();
        for (m, sp) in msgs.iter().zip(augmented.into_iter().flatten()) {
            events.extend(self.push_augmented(m, sp));
        }
        events
    }

    fn push_augmented(&mut self, m: &RawMessage, sp: Option<SyslogPlus>) -> Vec<NetworkEvent> {
        self.n_input += 1;
        self.clock = self.clock.max(m.ts);
        let seq = self.next_seq;
        let Some(mut sp) = sp else {
            self.n_dropped += 1;
            return self.maybe_sweep();
        };
        sp.idx = seq as usize;
        self.next_seq += 1;
        self.parent.insert(seq, seq);
        self.groups.insert(
            seq,
            OpenGroup {
                members: vec![seq],
                last_ts: sp.ts,
            },
        );

        // --- temporal stage ---
        if self.cfg.temporal {
            let key = (
                sp.router.0,
                sp.template.map(|t| t.0).unwrap_or(u32::MAX),
                sp.primary_location().map(|l| l.0).unwrap_or(u32::MAX),
            );
            match self.trackers.get_mut(&key) {
                None => {
                    let mut tr = EwmaTracker::new();
                    tr.observe(sp.ts, &self.k.temporal);
                    self.trackers.insert(key, (tr, seq));
                }
                Some((tr, last)) => {
                    let new_group = tr.observe(sp.ts, &self.k.temporal);
                    let last_seq = *last;
                    *last = seq;
                    if !new_group && self.open.contains_key(&last_seq) {
                        self.union(last_seq, seq);
                    }
                }
            }
        }

        // --- rule-based stage ---
        if self.cfg.rules {
            let w = self.k.window_secs;
            if let Some(tj) = sp.template {
                let loc_j = sp.primary_location();
                let unions: Vec<u64> = {
                    let rmap = self.recent_rules.entry(sp.router.0).or_default();
                    let mut hits = Vec::new();
                    for (&(t2, loc2), &(i2, ts2)) in rmap.iter() {
                        if sp.ts.seconds_since(ts2) > w || t2 == tj.0 {
                            continue;
                        }
                        if !self.k.rules.related(tj, TemplateId(t2)) {
                            continue;
                        }
                        let spatial =
                            loc_j.is_some_and(|a| self.k.dict.spatially_match(a, LocationId(loc2)));
                        if spatial {
                            hits.push(i2);
                        }
                    }
                    if let Some(loc) = loc_j {
                        rmap.insert((tj.0, loc.0), (seq, sp.ts));
                    }
                    if rmap.len() > 256 {
                        let now = sp.ts;
                        rmap.retain(|_, &mut (_, ts)| now.seconds_since(ts) <= w);
                    }
                    hits
                };
                for i2 in unions {
                    if self.open.contains_key(&i2) {
                        self.union(i2, seq);
                    }
                }
            }
        }

        // --- cross-router stage ---
        if self.cfg.cross {
            let cw = self.cfg.cross_window_secs;
            if let Some(tj) = sp.template {
                let unions: Vec<u64> = {
                    let q = self.recent_cross.entry(tj.0).or_default();
                    while let Some(&(_, ts)) = q.front() {
                        if sp.ts.seconds_since(ts) > cw {
                            q.pop_front();
                        } else {
                            break;
                        }
                    }
                    q.iter().map(|&(i, _)| i).collect()
                };
                for i2 in unions {
                    let Some(other) = self.open.get(&i2) else {
                        continue;
                    };
                    if other.router != sp.router && cross_related(self.k, &sp, other) {
                        self.union(i2, seq);
                    }
                }
                let q = self.recent_cross.entry(tj.0).or_default();
                q.push_back((seq, sp.ts));
                if q.len() > 1024 {
                    q.pop_front();
                }
            }
        }

        self.open.insert(seq, sp);
        self.raw.insert(seq, m.clone());
        self.maybe_sweep()
    }

    fn maybe_sweep(&mut self) -> Vec<NetworkEvent> {
        self.since_sweep += 1;
        if self.since_sweep < 256 {
            return Vec::new();
        }
        self.since_sweep = 0;
        self.sweep(false)
    }

    fn sweep(&mut self, close_all: bool) -> Vec<NetworkEvent> {
        let horizon = self.clock.plus(-self.idle_close);
        let closable: Vec<u64> = self
            .groups
            .iter()
            .filter(|(_, g)| close_all || g.last_ts < horizon)
            .map(|(&root, _)| root)
            .collect();
        let mut events = Vec::with_capacity(closable.len());
        for root in closable {
            let g = self.groups.remove(&root).expect("closable root");
            // Materialize a mini-batch preserving SyslogPlus order by seq.
            let mut members = g.members;
            members.sort_unstable();
            let batch: Vec<SyslogPlus> = members
                .iter()
                .map(|s| {
                    let mut sp = self.open.remove(s).expect("open member");
                    sp.idx = *s as usize; // global sequence number
                    self.raw.remove(s);
                    self.parent.remove(s);
                    sp
                })
                .collect();
            let idxs: Vec<usize> = (0..batch.len()).collect();
            let score = score_group(self.k, &batch, &idxs);
            events.push(build_event(self.k, &batch, &idxs, score));
        }
        events.sort_by_key(|a| a.start);
        events
    }

    /// Close and emit every remaining group (end of the feed).
    pub fn finish(mut self) -> Vec<NetworkEvent> {
        self.sweep(true)
    }
}

/// Same predicate as the batch cross-router stage.
fn cross_related(k: &DomainKnowledge, a: &SyslogPlus, b: &SyslogPlus) -> bool {
    for &x in &a.locations {
        for &y in &b.locations {
            if x == y || k.dict.cross_router_related(x, y) {
                return true;
            }
            if k.dict.router_of(x) == k.dict.router_of(y) && k.dict.spatially_match(x, y) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{learn, OfflineConfig};
    use crate::pipeline::digest;
    use sd_netsim::{Dataset, DatasetSpec};

    fn setup() -> (Dataset, DomainKnowledge) {
        let d = Dataset::generate(DatasetSpec::preset_a().scaled(0.08));
        let k = learn(&d.configs, d.train(), &OfflineConfig::dataset_a());
        (d, k)
    }

    /// The keystone property: streaming with a safe idle horizon produces
    /// exactly the batch partition.
    #[test]
    fn streaming_partition_matches_batch() {
        let (d, k) = setup();
        let online = d.online();
        let cfg = GroupingConfig::default();

        let batch_digest = digest(&k, online, &cfg);

        let mut sd = StreamDigester::new(&k, cfg, 0);
        let mut events = Vec::new();
        for m in online {
            events.extend(sd.push(m));
        }
        events.extend(sd.finish());

        assert_eq!(events.len(), batch_digest.events.len());
        // Same partition: compare sorted member-idx sets.
        let norm = |evs: &[NetworkEvent]| {
            let mut v: Vec<Vec<usize>> = evs.iter().map(|e| e.message_idxs.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&events), norm(&batch_digest.events));
        let total: usize = events.iter().map(|e| e.size()).sum();
        assert_eq!(total, sd_total(online.len(), batch_digest.n_dropped));
    }

    fn sd_total(input: usize, dropped: usize) -> usize {
        input - dropped
    }

    /// Events are emitted progressively, not all at the end.
    #[test]
    fn events_are_emitted_before_the_feed_ends() {
        let (d, k) = setup();
        let online = d.online();
        let mut sd = StreamDigester::new(&k, GroupingConfig::default(), 0);
        let mut early = 0usize;
        for m in &online[..online.len() * 3 / 4] {
            early += sd.push(m).len();
        }
        assert!(early > 0, "no events emitted in the first three quarters");
        let rest = sd.finish();
        assert!(!rest.is_empty());
    }

    /// Open-state size stays bounded by the idle horizon, not the feed
    /// length (the operational reason to stream at all).
    #[test]
    fn open_state_is_bounded() {
        let (d, k) = setup();
        let online = d.online();
        let mut sd = StreamDigester::new(&k, GroupingConfig::default(), 0);
        let mut max_open = 0usize;
        for m in online {
            sd.push(m);
            max_open = max_open.max(sd.open_groups());
        }
        assert!(
            max_open < online.len() / 2,
            "open groups peaked at {max_open} for {} messages",
            online.len()
        );
    }

    #[test]
    fn idle_close_is_clamped_to_safety_floor() {
        let (_, k) = setup();
        let sd = StreamDigester::new(&k, GroupingConfig::default(), 1);
        assert!(sd.idle_close_secs() >= k.temporal.s_max);
        assert!(sd.idle_close_secs() >= k.window_secs);
    }

    /// `push_batch` (parallel augmentation) emits exactly what the same
    /// messages pushed one at a time do.
    #[test]
    fn push_batch_matches_push_loop() {
        let (d, k) = setup();
        let online = d.online();

        let mut one = StreamDigester::new(&k, GroupingConfig::default(), 0);
        let mut e1 = Vec::new();
        for m in online {
            e1.extend(one.push(m));
        }
        e1.extend(one.finish());

        let cfg = GroupingConfig {
            par: sd_model::Parallelism::with_threads(4),
            ..GroupingConfig::default()
        };
        let mut batched = StreamDigester::new(&k, cfg, 0);
        let mut e2 = batched.push_batch(online);
        e2.extend(batched.finish());

        let norm = |evs: &[NetworkEvent]| {
            let mut v: Vec<Vec<usize>> = evs.iter().map(|e| e.message_idxs.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&e1), norm(&e2));
    }

    #[test]
    fn unknown_routers_are_counted_not_grouped() {
        let (_, k) = setup();
        let mut sd = StreamDigester::new(&k, GroupingConfig::default(), 0);
        let m = RawMessage::new(
            Timestamp(0),
            "ghost",
            sd_model::ErrorCode::from("X-1-Y"),
            "whatever",
        );
        sd.push(&m);
        assert_eq!(sd.n_dropped, 1);
        assert_eq!(sd.finish().len(), 0);
    }
}
