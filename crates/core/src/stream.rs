//! Streaming online digestion.
//!
//! [`pipeline::digest`](crate::pipeline::digest) processes a finished
//! batch; real deployments consume the syslog feed continuously. The
//! [`StreamDigester`] accepts one message at a time, maintains exactly the
//! batch pipeline's grouping state incrementally, and *closes* a group —
//! emitting its [`NetworkEvent`] — once the group has been idle longer
//! than every mechanism that could still grow it:
//!
//! * temporal grouping never bridges a gap above `Smax`,
//! * rule-based grouping looks back at most `W`,
//! * cross-router grouping looks back ~1 s,
//!
//! so with `idle_close ≥ max(Smax, W)` the streaming partition is
//! **identical** to the batch partition of the same input (a property the
//! integration tests assert).
//!
//! # Robustness guarantees
//!
//! A digester that runs for months against a live feed must never abort:
//!
//! * **No panics on any input.** Out-of-order timestamps, unknown
//!   routers and internal invariant violations are *counted* (see
//!   [`StreamStats`]) and tolerated, never `panic!`ed on. Feeds that
//!   reorder beyond what the digester handles natively should go through
//!   the [`reorder`](crate::reorder) buffer / [`ingest`](crate::ingest)
//!   layer first.
//! * **Bounded memory.** [`StreamConfig::max_open_messages`] force-closes
//!   the oldest open groups when a stuck or skewed clock keeps the idle
//!   sweep from firing; each forced closure increments
//!   [`StreamStats::n_force_closed`] so degradation is observable.
//! * **Checkpoint/restore.** [`StreamDigester::checkpoint`] serializes the
//!   complete mutable state (open groups, union-find forest, EWMA
//!   trackers, rule/cross lookback, counters) into a versioned
//!   [`StreamSnapshot`]; [`StreamDigester::resume`] rebuilds an identical
//!   digester from it, so a killed process continues exactly where it
//!   stopped (asserted by the kill/resume integration tests).

use crate::augment::augment_batch_isolated;
use crate::checkpoint::{CheckpointError, DigesterState, StreamSnapshot};
use crate::event::{build_event, NetworkEvent};
use crate::grouping::GroupingConfig;
use crate::knowledge::DomainKnowledge;
use crate::priority::score_group;
use crate::provenance::{build_provenance, CloseReason, EventProvenance, GroupProv, MergeCause};
use crate::quarantine::QuarantineRecord;
use sd_model::{LocationId, RawMessage, SyslogPlus, TemplateId, Timestamp};
use sd_telemetry::{Counter, SpanHandle, Telemetry};
use sd_temporal::EwmaTracker;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Per router: the recent representative per `(template, location)` the
/// rule-based stage looks back at.
type RecentRules = HashMap<u32, HashMap<(u32, u32), (u64, Timestamp)>>;

/// One open (not yet emitted) group.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub(crate) struct OpenGroup {
    /// Member sequence numbers.
    pub(crate) members: Vec<u64>,
    /// Latest member timestamp (drives closure).
    pub(crate) last_ts: Timestamp,
    /// Per-stage link accumulator (provenance; checkpointed so traces
    /// survive resume, `default` so pre-provenance snapshots still load).
    #[serde(default)]
    pub(crate) prov: GroupProv,
}

/// Operational knobs of the streaming digester beyond the grouping
/// configuration itself.
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Idle horizon (seconds) after which a group can no longer grow.
    /// Clamped up to `max(Smax, W, cross window)` so closure can never
    /// split a group the batch pipeline would have joined.
    pub idle_close: i64,
    /// Upper bound on concurrently open (buffered, not yet emitted)
    /// messages; `0` means unbounded. When exceeded, the *oldest* open
    /// groups are force-closed — counted in
    /// [`StreamStats::n_force_closed`] — instead of letting `open`/`raw`/
    /// `groups` grow without limit when a stuck or skewed clock stops the
    /// idle sweep from firing.
    pub max_open_messages: usize,
}

/// Drop / degradation counters of one digester run. Every hostile input
/// condition increments a counter here instead of corrupting state or
/// panicking; operators alert on these.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Messages accepted (fed into augmentation).
    pub n_input: usize,
    /// Messages dropped because the originating router is unknown to the
    /// location dictionary.
    pub n_dropped: usize,
    /// Groups force-closed by the [`StreamConfig::max_open_messages`]
    /// memory guard before their idle horizon expired.
    pub n_force_closed: usize,
    /// Internal invariant violations tolerated (union-find entry missing,
    /// open member absent). Always 0 in a healthy run; nonzero values
    /// indicate a bug worth filing, but never abort the process.
    pub n_inconsistent: usize,
    /// Messages quarantined because their augmentation shard panicked
    /// even on sequential retry (see [`crate::quarantine`]). They are
    /// excluded from the digest exactly as if never fed; records drain
    /// via [`StreamDigester::take_quarantined`]. `serde(default)` keeps
    /// pre-quarantine snapshots loading.
    #[serde(default)]
    pub n_quarantined: usize,
}

/// Registry-backed counters of one digester. Detached atomics when the
/// digester runs without telemetry (they still count — [`StreamStats`] is
/// a view over them either way), registered under `stream.*` names when a
/// [`Telemetry`] handle is attached.
struct StreamCounters {
    n_input: Counter,
    n_dropped: Counter,
    n_force_closed: Counter,
    n_inconsistent: Counter,
    n_quarantined: Counter,
    groups_opened: Counter,
    groups_closed: Counter,
    n_events: Counter,
    links_temporal: Counter,
    links_rule: Counter,
    links_cross: Counter,
}

impl StreamCounters {
    fn new(tel: &Telemetry) -> Self {
        StreamCounters {
            n_input: tel.counter("stream.n_input"),
            n_dropped: tel.counter("stream.n_dropped"),
            n_force_closed: tel.counter("stream.n_force_closed"),
            n_inconsistent: tel.counter("stream.n_inconsistent"),
            n_quarantined: tel.counter("stream.n_quarantined"),
            groups_opened: tel.counter("stream.groups_opened"),
            groups_closed: tel.counter("stream.groups_closed"),
            n_events: tel.counter("stream.n_events"),
            links_temporal: tel.counter("stream.links_temporal"),
            links_rule: tel.counter("stream.links_rule"),
            links_cross: tel.counter("stream.links_cross"),
        }
    }
}

/// Incremental digester over a time-ordered syslog feed.
pub struct StreamDigester<'k> {
    k: &'k DomainKnowledge,
    cfg: GroupingConfig,
    scfg: StreamConfig,

    next_seq: u64,
    /// Open messages by sequence number.
    open: HashMap<u64, SyslogPlus>,
    /// Raw copies of open messages (events own their text on emission).
    raw: HashMap<u64, RawMessage>,
    /// Union-find over open sequence numbers.
    parent: HashMap<u64, u64>,
    /// Group state, keyed by current root.
    groups: HashMap<u64, OpenGroup>,

    // Stage state (mirrors `grouping::group`).
    trackers: HashMap<(u32, u32, u32), (EwmaTracker, u64)>,
    recent_rules: RecentRules,
    recent_cross: HashMap<u32, VecDeque<(u64, Timestamp)>>,

    /// Drop / degradation / throughput counters ([`StreamStats`] is a
    /// view over these; with telemetry attached they are also exported).
    counters: StreamCounters,
    clock: Timestamp,
    since_sweep: usize,

    /// Next event id to assign (1-based emission order, checkpointed so
    /// ids never repeat across resume).
    next_event_id: u64,
    /// Emit one [`EventProvenance`] per event (drained via
    /// [`StreamDigester::take_provenance`]).
    trace: bool,
    /// Provenance built at close time, keyed by the group's smallest
    /// member sequence number until [`finalize`](Self::finalize) learns
    /// the event id.
    pending_prov: HashMap<u64, EventProvenance>,
    trace_out: Vec<EventProvenance>,
    /// Quarantined-message records pending drain
    /// ([`StreamDigester::take_quarantined`]). Not checkpointed —
    /// records are sidecar output, only the counter survives resume.
    quarantined: Vec<QuarantineRecord>,

    // Cached span handles (cheap no-ops without telemetry).
    sp_push: SpanHandle,
    sp_augment: SpanHandle,
    sp_sweep: SpanHandle,
}

impl<'k> StreamDigester<'k> {
    /// New digester with default operational limits. `idle_close` is
    /// clamped up to `max(Smax, W, cross window)` so closure can never
    /// split a group the batch pipeline would have joined.
    pub fn new(k: &'k DomainKnowledge, cfg: GroupingConfig, idle_close: i64) -> Self {
        Self::with_config(
            k,
            cfg,
            StreamConfig {
                idle_close,
                max_open_messages: 0,
            },
        )
    }

    /// New digester with explicit operational limits (see [`StreamConfig`]).
    pub fn with_config(k: &'k DomainKnowledge, cfg: GroupingConfig, scfg: StreamConfig) -> Self {
        Self::with_telemetry(k, cfg, scfg, &Telemetry::disabled())
    }

    /// [`with_config`](Self::with_config) with counters and span timers
    /// registered in `tel` (under `stream.*`). Telemetry never changes
    /// what the digester emits — only what it reports.
    pub fn with_telemetry(
        k: &'k DomainKnowledge,
        cfg: GroupingConfig,
        scfg: StreamConfig,
        tel: &Telemetry,
    ) -> Self {
        let floor = k
            .temporal
            .s_max
            .max(k.window_secs)
            .max(cfg.cross_window_secs);
        StreamDigester {
            k,
            cfg,
            scfg: StreamConfig {
                idle_close: scfg.idle_close.max(floor),
                max_open_messages: scfg.max_open_messages,
            },
            next_seq: 0,
            open: HashMap::new(),
            raw: HashMap::new(),
            parent: HashMap::new(),
            groups: HashMap::new(),
            trackers: HashMap::new(),
            recent_rules: HashMap::new(),
            recent_cross: HashMap::new(),
            counters: StreamCounters::new(tel),
            clock: Timestamp(i64::MIN),
            since_sweep: 0,
            next_event_id: 0,
            trace: false,
            pending_prov: HashMap::new(),
            trace_out: Vec::new(),
            quarantined: Vec::new(),
            sp_push: tel.span("stream.push"),
            sp_augment: tel.span("stream.augment"),
            sp_sweep: tel.span("stream.sweep"),
        }
    }

    /// Current counters as a plain [`StreamStats`] value (the legacy
    /// stats struct is now a view over the registry-backed counters).
    pub fn stats(&self) -> StreamStats {
        StreamStats {
            n_input: self.counters.n_input.get() as usize,
            n_dropped: self.counters.n_dropped.get() as usize,
            n_force_closed: self.counters.n_force_closed.get() as usize,
            n_inconsistent: self.counters.n_inconsistent.get() as usize,
            n_quarantined: self.counters.n_quarantined.get() as usize,
        }
    }

    /// Drain the [`QuarantineRecord`]s of messages quarantined since the
    /// last drain (empty in a healthy run).
    pub fn take_quarantined(&mut self) -> Vec<QuarantineRecord> {
        std::mem::take(&mut self.quarantined)
    }

    /// Toggle per-event provenance tracing (drain records with
    /// [`take_provenance`](Self::take_provenance)). Tracing never changes
    /// emitted events.
    pub fn set_trace(&mut self, trace: bool) {
        self.trace = trace;
    }

    /// Drain the provenance records of events emitted since the last
    /// drain (empty unless [`set_trace`](Self::set_trace) is on).
    pub fn take_provenance(&mut self) -> Vec<EventProvenance> {
        std::mem::take(&mut self.trace_out)
    }

    /// The effective idle-closure horizon in seconds.
    pub fn idle_close_secs(&self) -> i64 {
        self.scfg.idle_close
    }

    /// Number of currently open groups.
    pub fn open_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of currently open (buffered) messages.
    pub fn open_messages(&self) -> usize {
        self.open.len()
    }

    /// Find the union-find root of `x`, or `None` (counted as an internal
    /// inconsistency) when `x` is not in the forest — a long-running
    /// process must degrade by skipping a merge, not abort.
    fn find(&mut self, mut x: u64) -> Option<u64> {
        // Path compression over the hash-based forest.
        let mut path = Vec::new();
        loop {
            let Some(&p) = self.parent.get(&x) else {
                self.counters.n_inconsistent.inc();
                return None;
            };
            if p == x {
                break;
            }
            path.push(x);
            x = p;
        }
        for p in path {
            self.parent.insert(p, x);
        }
        Some(x)
    }

    fn union(&mut self, a: u64, b: u64, cause: MergeCause) {
        let (Some(ra), Some(rb)) = (self.find(a), self.find(b)) else {
            return; // inconsistency already counted by `find`
        };
        match cause {
            MergeCause::Temporal => self.counters.links_temporal.inc(),
            MergeCause::Rule(_, _) => self.counters.links_rule.inc(),
            MergeCause::Cross => self.counters.links_cross.inc(),
        }
        if ra == rb {
            // Already one group: the link still happened (the batch path
            // records every edge too), so it still counts as provenance.
            if let Some(g) = self.groups.get_mut(&ra) {
                g.prov.record(cause);
            }
            return;
        }
        let Some(ga) = self.groups.remove(&ra) else {
            self.counters.n_inconsistent.inc();
            return;
        };
        let Some(gb) = self.groups.remove(&rb) else {
            self.counters.n_inconsistent.inc();
            self.groups.insert(ra, ga);
            return;
        };
        // Attach the smaller under the larger.
        let (root, child, mut groot, gchild) = if ga.members.len() >= gb.members.len() {
            (ra, rb, ga, gb)
        } else {
            (rb, ra, gb, ga)
        };
        self.parent.insert(child, root);
        groot.members.extend(gchild.members);
        groot.last_ts = groot.last_ts.max(gchild.last_ts);
        groot.prov.absorb(&gchild.prov);
        groot.prov.record(cause);
        self.groups.insert(root, groot);
    }

    /// Feed one message (must be non-decreasing in time — route unordered
    /// feeds through [`ReorderBuffer`](crate::reorder::ReorderBuffer)
    /// first); returns any events that became closable. A panic inside
    /// augmentation is caught and the message quarantined instead of
    /// aborting the run.
    pub fn push(&mut self, m: &RawMessage) -> Vec<NetworkEvent> {
        let k = self.k;
        let idx = self.next_seq as usize;
        match sd_model::catch_panic(|| crate::augment::augment(k, idx, m)) {
            Ok(sp) => self.push_augmented(m, sp),
            Err(reason) => {
                self.quarantine_message(m, &reason);
                Vec::new()
            }
        }
    }

    /// Record `m` as quarantined: counted as input, excluded from the
    /// digest exactly as if it had never been fed (no sequence number,
    /// no clock advance, no sweep tick), so the surviving output is
    /// byte-identical to a feed without the poison message.
    fn quarantine_message(&mut self, m: &RawMessage, reason: &str) {
        self.counters.n_input.inc();
        self.counters.n_quarantined.inc();
        self.quarantined.push(QuarantineRecord::from_message(
            self.counters.n_input.get(),
            m,
            "augment",
            reason,
        ));
    }

    /// Feed a slice of messages, augmenting them on `cfg.par` threads
    /// before the (inherently sequential) incremental grouping stages.
    /// Emits exactly what the equivalent sequence of [`push`] calls would:
    /// augmentation is per-message pure, so only the stages that carry
    /// state stay on the calling thread. Each augmentation shard runs
    /// under `catch_unwind`: a poisoned shard is retried sequentially and
    /// only the offending messages are quarantined
    /// ([`take_quarantined`](Self::take_quarantined)).
    ///
    /// [`push`]: StreamDigester::push
    pub fn push_batch(&mut self, msgs: &[RawMessage]) -> Vec<NetworkEvent> {
        let _g = self.sp_push.start();
        let k = self.k;
        // The batch offset passed as idx is a placeholder; the real
        // sequence number is assigned in `push_augmented` (exactly as
        // `push` would have).
        let iso = {
            let _g = self.sp_augment.start();
            augment_batch_isolated(k, msgs, self.cfg.par)
        };
        let poisoned: HashMap<usize, String> = iso.quarantined.into_iter().collect();
        let mut events = Vec::new();
        for (i, (m, sp)) in msgs.iter().zip(iso.augmented).enumerate() {
            if let Some(reason) = poisoned.get(&i) {
                self.quarantine_message(m, reason);
                continue;
            }
            events.extend(self.push_augmented(m, sp));
        }
        events
    }

    fn push_augmented(&mut self, m: &RawMessage, sp: Option<SyslogPlus>) -> Vec<NetworkEvent> {
        self.counters.n_input.inc();
        self.clock = self.clock.max(m.ts);
        let seq = self.next_seq;
        let Some(mut sp) = sp else {
            self.counters.n_dropped.inc();
            let mut events = self.maybe_sweep();
            self.finalize(&mut events);
            return events;
        };
        sp.idx = seq as usize;
        self.next_seq += 1;
        self.parent.insert(seq, seq);
        self.counters.groups_opened.inc();
        self.groups.insert(
            seq,
            OpenGroup {
                members: vec![seq],
                last_ts: sp.ts,
                prov: GroupProv::default(),
            },
        );

        // --- temporal stage ---
        if self.cfg.temporal {
            let key = (
                sp.router.0,
                sp.template.map(|t| t.0).unwrap_or(u32::MAX),
                sp.primary_location().map(|l| l.0).unwrap_or(u32::MAX),
            );
            match self.trackers.get_mut(&key) {
                None => {
                    let mut tr = EwmaTracker::new();
                    tr.observe(sp.ts, &self.k.temporal);
                    self.trackers.insert(key, (tr, seq));
                }
                Some((tr, last)) => {
                    let new_group = tr.observe(sp.ts, &self.k.temporal);
                    let last_seq = *last;
                    *last = seq;
                    if !new_group && self.open.contains_key(&last_seq) {
                        self.union(last_seq, seq, MergeCause::Temporal);
                    }
                }
            }
        }

        // --- rule-based stage ---
        if self.cfg.rules {
            let w = self.k.window_secs;
            if let Some(tj) = sp.template {
                let loc_j = sp.primary_location();
                let unions: Vec<(u64, u32)> = {
                    let rmap = self.recent_rules.entry(sp.router.0).or_default();
                    let mut hits = Vec::new();
                    for (&(t2, loc2), &(i2, ts2)) in rmap.iter() {
                        if sp.ts.seconds_since(ts2) > w || t2 == tj.0 {
                            continue;
                        }
                        if !self.k.rules.related(tj, TemplateId(t2)) {
                            continue;
                        }
                        let spatial =
                            loc_j.is_some_and(|a| self.k.dict.spatially_match(a, LocationId(loc2)));
                        if spatial {
                            hits.push((i2, t2));
                        }
                    }
                    if let Some(loc) = loc_j {
                        rmap.insert((tj.0, loc.0), (seq, sp.ts));
                    }
                    if rmap.len() > 256 {
                        let now = sp.ts;
                        rmap.retain(|_, &mut (_, ts)| now.seconds_since(ts) <= w);
                    }
                    hits
                };
                for (i2, t2) in unions {
                    if self.open.contains_key(&i2) {
                        self.union(i2, seq, MergeCause::Rule(tj.0.min(t2), tj.0.max(t2)));
                    }
                }
            }
        }

        // --- cross-router stage ---
        if self.cfg.cross {
            let cw = self.cfg.cross_window_secs;
            if let Some(tj) = sp.template {
                let unions: Vec<u64> = {
                    let q = self.recent_cross.entry(tj.0).or_default();
                    while let Some(&(_, ts)) = q.front() {
                        if sp.ts.seconds_since(ts) > cw {
                            q.pop_front();
                        } else {
                            break;
                        }
                    }
                    q.iter().map(|&(i, _)| i).collect()
                };
                for i2 in unions {
                    let Some(other) = self.open.get(&i2) else {
                        continue;
                    };
                    if other.router != sp.router && cross_related(self.k, &sp, other) {
                        self.union(i2, seq, MergeCause::Cross);
                    }
                }
                let q = self.recent_cross.entry(tj.0).or_default();
                q.push_back((seq, sp.ts));
                if q.len() > 1024 {
                    q.pop_front();
                }
            }
        }

        self.open.insert(seq, sp);
        self.raw.insert(seq, m.clone());
        let mut events = self.maybe_sweep();
        self.enforce_open_bound(&mut events);
        self.finalize(&mut events);
        events
    }

    /// Assign emission-order event ids (and resolve pending provenance
    /// records to them). Runs on every emission path, unconditionally —
    /// ids must not depend on telemetry or tracing being attached.
    fn finalize(&mut self, events: &mut [NetworkEvent]) {
        for ev in events.iter_mut() {
            self.next_event_id += 1;
            ev.id = self.next_event_id;
            self.counters.n_events.inc();
            if self.trace {
                let key = ev.message_idxs.first().map(|&i| i as u64).unwrap_or(0);
                if let Some(mut p) = self.pending_prov.remove(&key) {
                    p.event_id = ev.id;
                    self.trace_out.push(p);
                }
            }
        }
        if !self.trace {
            self.pending_prov.clear();
        }
    }

    fn maybe_sweep(&mut self) -> Vec<NetworkEvent> {
        self.since_sweep += 1;
        if self.since_sweep < 256 {
            return Vec::new();
        }
        self.since_sweep = 0;
        self.sweep(false)
    }

    /// Close and emit one group by root. Returns `None` (with the
    /// inconsistency counted) if the root has no state or no live members.
    fn close_root(&mut self, root: u64, reason: CloseReason) -> Option<NetworkEvent> {
        let g = self.groups.remove(&root)?;
        let idle_gap = match reason {
            CloseReason::Idle => Some(self.clock.seconds_since(g.last_ts)),
            _ => None,
        };
        // Materialize a mini-batch preserving SyslogPlus order by seq.
        let mut members = g.members;
        members.sort_unstable();
        let mut batch: Vec<SyslogPlus> = Vec::with_capacity(members.len());
        for s in &members {
            let Some(mut sp) = self.open.remove(s) else {
                self.counters.n_inconsistent.inc();
                continue;
            };
            sp.idx = *s as usize; // global sequence number
            self.raw.remove(s);
            self.parent.remove(s);
            batch.push(sp);
        }
        if batch.is_empty() {
            self.counters.n_inconsistent.inc();
            return None;
        }
        let idxs: Vec<usize> = (0..batch.len()).collect();
        let score = score_group(self.k, &batch, &idxs);
        let ev = build_event(self.k, &batch, &idxs, score);
        self.counters.groups_closed.inc();
        if self.trace {
            // Keyed by the smallest member seq until `finalize` knows the
            // event id (event ids are assigned in emission order, after
            // the per-sweep sort).
            let key = ev.message_idxs.first().map(|&i| i as u64).unwrap_or(0);
            let p = build_provenance(
                self.k,
                &batch,
                &idxs,
                g.prov,
                0,
                reason,
                idle_gap,
                Some(self.scfg.idle_close),
            );
            self.pending_prov.insert(key, p);
        }
        Some(ev)
    }

    fn sweep(&mut self, close_all: bool) -> Vec<NetworkEvent> {
        let _g = self.sp_sweep.start();
        // Saturating: `clock` is i64::MIN until the first accepted
        // message, and extreme parsed timestamps must not overflow.
        let horizon = Timestamp(self.clock.0.saturating_sub(self.scfg.idle_close));
        let closable: Vec<u64> = self
            .groups
            .iter()
            .filter(|(_, g)| close_all || g.last_ts < horizon)
            .map(|(&root, _)| root)
            .collect();
        let reason = if close_all {
            CloseReason::Finish
        } else {
            CloseReason::Idle
        };
        let mut events: Vec<NetworkEvent> = closable
            .into_iter()
            .filter_map(|root| self.close_root(root, reason))
            .collect();
        // Total order: `start` alone ties when two groups begin the same
        // second, and a stable sort would then keep HashMap iteration
        // order — nondeterministic across digester instances. The lowest
        // member sequence number breaks ties reproducibly.
        events.sort_by_key(|a| (a.start, a.message_idxs.first().copied()));
        events
    }

    /// Memory-pressure guard: when more than `max_open_messages` messages
    /// are buffered, force-close the *least recently active* groups until
    /// back under the bound, appending their (possibly premature) events.
    fn enforce_open_bound(&mut self, events: &mut Vec<NetworkEvent>) {
        let max = self.scfg.max_open_messages;
        if max == 0 || self.open.len() <= max {
            return;
        }
        let mut roots: Vec<(Timestamp, u64)> = self
            .groups
            .iter()
            .map(|(&root, g)| (g.last_ts, root))
            .collect();
        roots.sort_unstable();
        let mut forced: Vec<NetworkEvent> = Vec::new();
        for (_, root) in roots {
            if self.open.len() <= max {
                break;
            }
            if let Some(ev) = self.close_root(root, CloseReason::ForceClosed) {
                forced.push(ev);
            }
            self.counters.n_force_closed.inc();
        }
        forced.sort_by_key(|a| a.start);
        events.extend(forced);
    }

    /// Close and emit every remaining group (end of the feed).
    pub fn finish(self) -> Vec<NetworkEvent> {
        self.finish_traced().0
    }

    /// [`finish`](Self::finish), also returning the provenance records of
    /// the final flush (plus any not yet drained). Empty unless tracing
    /// is on.
    pub fn finish_traced(mut self) -> (Vec<NetworkEvent>, Vec<EventProvenance>) {
        let mut events = self.sweep(true);
        self.finalize(&mut events);
        (events, std::mem::take(&mut self.trace_out))
    }

    // ------------------------------------------------- checkpoint/restore --

    /// Snapshot the complete mutable state into a versioned
    /// [`StreamSnapshot`] (see [`crate::checkpoint`] for the file format).
    pub fn checkpoint(&self) -> StreamSnapshot {
        StreamSnapshot::for_digester(self.k, self.export_state())
    }

    /// Rebuild a digester from a snapshot taken by
    /// [`checkpoint`](StreamDigester::checkpoint). Fails if the snapshot
    /// was produced by an incompatible version or against a different
    /// knowledge base.
    pub fn resume(
        k: &'k DomainKnowledge,
        snapshot: &StreamSnapshot,
    ) -> Result<Self, CheckpointError> {
        Self::resume_with_telemetry(k, snapshot, &Telemetry::disabled())
    }

    /// [`resume`](Self::resume) with counters re-registered in `tel` and
    /// restored to their checkpointed values.
    pub fn resume_with_telemetry(
        k: &'k DomainKnowledge,
        snapshot: &StreamSnapshot,
        tel: &Telemetry,
    ) -> Result<Self, CheckpointError> {
        snapshot.verify(k)?;
        Ok(Self::from_state_with(k, snapshot.digester.clone(), tel))
    }

    pub(crate) fn export_state(&self) -> DigesterState {
        fn sorted<K: Ord + Copy, V: Clone>(m: &HashMap<K, V>) -> Vec<(K, V)> {
            let mut v: Vec<(K, V)> = m.iter().map(|(&k, val)| (k, val.clone())).collect();
            v.sort_by_key(|&(k, _)| k);
            v
        }
        DigesterState {
            grouping: self.cfg,
            stream: self.scfg,
            next_seq: self.next_seq,
            next_event_id: self.next_event_id,
            clock: self.clock,
            since_sweep: self.since_sweep,
            stats: self.stats(),
            open: sorted(&self.open),
            raw: sorted(&self.raw),
            parent: sorted(&self.parent),
            groups: sorted(&self.groups),
            trackers: sorted(&self.trackers),
            recent_rules: {
                let mut outer: crate::checkpoint::RulesLookback = self
                    .recent_rules
                    .iter()
                    .map(|(&r, inner)| (r, sorted(inner)))
                    .collect();
                outer.sort_by_key(|&(r, _)| r);
                outer
            },
            recent_cross: {
                let mut outer: Vec<(u32, Vec<(u64, Timestamp)>)> = self
                    .recent_cross
                    .iter()
                    .map(|(&t, q)| (t, q.iter().copied().collect()))
                    .collect();
                outer.sort_by_key(|&(t, _)| t);
                outer
            },
        }
    }

    pub(crate) fn from_state_with(
        k: &'k DomainKnowledge,
        st: DigesterState,
        tel: &Telemetry,
    ) -> Self {
        let counters = StreamCounters::new(tel);
        counters.n_input.set(st.stats.n_input as u64);
        counters.n_dropped.set(st.stats.n_dropped as u64);
        counters.n_force_closed.set(st.stats.n_force_closed as u64);
        counters.n_inconsistent.set(st.stats.n_inconsistent as u64);
        counters.n_quarantined.set(st.stats.n_quarantined as u64);
        counters.n_events.set(st.next_event_id);
        StreamDigester {
            k,
            cfg: st.grouping,
            scfg: st.stream,
            next_seq: st.next_seq,
            open: st.open.into_iter().collect(),
            raw: st.raw.into_iter().collect(),
            parent: st.parent.into_iter().collect(),
            groups: st.groups.into_iter().collect(),
            trackers: st.trackers.into_iter().collect(),
            recent_rules: st
                .recent_rules
                .into_iter()
                .map(|(r, inner)| (r, inner.into_iter().collect()))
                .collect(),
            recent_cross: st
                .recent_cross
                .into_iter()
                .map(|(t, q)| (t, q.into_iter().collect()))
                .collect(),
            counters,
            clock: st.clock,
            since_sweep: st.since_sweep,
            next_event_id: st.next_event_id,
            trace: false,
            pending_prov: HashMap::new(),
            trace_out: Vec::new(),
            quarantined: Vec::new(),
            sp_push: tel.span("stream.push"),
            sp_augment: tel.span("stream.augment"),
            sp_sweep: tel.span("stream.sweep"),
        }
    }
}

/// Same predicate as the batch cross-router stage.
fn cross_related(k: &DomainKnowledge, a: &SyslogPlus, b: &SyslogPlus) -> bool {
    for &x in &a.locations {
        for &y in &b.locations {
            if x == y || k.dict.cross_router_related(x, y) {
                return true;
            }
            if k.dict.router_of(x) == k.dict.router_of(y) && k.dict.spatially_match(x, y) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{learn, OfflineConfig};
    use crate::pipeline::digest;
    use sd_netsim::{Dataset, DatasetSpec};

    fn setup() -> (Dataset, DomainKnowledge) {
        let d = Dataset::generate(DatasetSpec::preset_a().scaled(0.08));
        let k = learn(&d.configs, d.train(), &OfflineConfig::dataset_a());
        (d, k)
    }

    /// The keystone property: streaming with a safe idle horizon produces
    /// exactly the batch partition.
    #[test]
    fn streaming_partition_matches_batch() {
        let (d, k) = setup();
        let online = d.online();
        let cfg = GroupingConfig::default();

        let batch_digest = digest(&k, online, &cfg);

        let mut sd = StreamDigester::new(&k, cfg, 0);
        let mut events = Vec::new();
        for m in online {
            events.extend(sd.push(m));
        }
        events.extend(sd.finish());

        assert_eq!(events.len(), batch_digest.events.len());
        // Same partition: compare sorted member-idx sets.
        let norm = |evs: &[NetworkEvent]| {
            let mut v: Vec<Vec<usize>> = evs.iter().map(|e| e.message_idxs.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&events), norm(&batch_digest.events));
        let total: usize = events.iter().map(|e| e.size()).sum();
        assert_eq!(total, sd_total(online.len(), batch_digest.n_dropped));
    }

    fn sd_total(input: usize, dropped: usize) -> usize {
        input - dropped
    }

    /// Events are emitted progressively, not all at the end.
    #[test]
    fn events_are_emitted_before_the_feed_ends() {
        let (d, k) = setup();
        let online = d.online();
        let mut sd = StreamDigester::new(&k, GroupingConfig::default(), 0);
        let mut early = 0usize;
        for m in &online[..online.len() * 3 / 4] {
            early += sd.push(m).len();
        }
        assert!(early > 0, "no events emitted in the first three quarters");
        let rest = sd.finish();
        assert!(!rest.is_empty());
    }

    /// Open-state size stays bounded by the idle horizon, not the feed
    /// length (the operational reason to stream at all).
    #[test]
    fn open_state_is_bounded() {
        let (d, k) = setup();
        let online = d.online();
        let mut sd = StreamDigester::new(&k, GroupingConfig::default(), 0);
        let mut max_open = 0usize;
        for m in online {
            sd.push(m);
            max_open = max_open.max(sd.open_groups());
        }
        assert!(
            max_open < online.len() / 2,
            "open groups peaked at {max_open} for {} messages",
            online.len()
        );
    }

    #[test]
    fn idle_close_is_clamped_to_safety_floor() {
        let (_, k) = setup();
        let sd = StreamDigester::new(&k, GroupingConfig::default(), 1);
        assert!(sd.idle_close_secs() >= k.temporal.s_max);
        assert!(sd.idle_close_secs() >= k.window_secs);
    }

    /// `push_batch` (parallel augmentation) emits exactly what the same
    /// messages pushed one at a time do.
    #[test]
    fn push_batch_matches_push_loop() {
        let (d, k) = setup();
        let online = d.online();

        let mut one = StreamDigester::new(&k, GroupingConfig::default(), 0);
        let mut e1 = Vec::new();
        for m in online {
            e1.extend(one.push(m));
        }
        e1.extend(one.finish());

        let cfg = GroupingConfig {
            par: sd_model::Parallelism::with_threads(4),
            ..GroupingConfig::default()
        };
        let mut batched = StreamDigester::new(&k, cfg, 0);
        let mut e2 = batched.push_batch(online);
        e2.extend(batched.finish());

        let norm = |evs: &[NetworkEvent]| {
            let mut v: Vec<Vec<usize>> = evs.iter().map(|e| e.message_idxs.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&e1), norm(&e2));
    }

    #[test]
    fn unknown_routers_are_counted_not_grouped() {
        let (_, k) = setup();
        let mut sd = StreamDigester::new(&k, GroupingConfig::default(), 0);
        let m = RawMessage::new(
            Timestamp(0),
            "ghost",
            sd_model::ErrorCode::from("X-1-Y"),
            "whatever",
        );
        sd.push(&m);
        assert_eq!(sd.stats().n_dropped, 1);
        assert_eq!(sd.finish().len(), 0);
    }

    /// Wildly out-of-order pushes (which violate the documented
    /// non-decreasing contract) must degrade, never panic.
    #[test]
    fn out_of_order_pushes_never_panic() {
        let (d, k) = setup();
        let online = d.online();
        let mut sd = StreamDigester::new(&k, GroupingConfig::default(), 0);
        let n = online.len().min(2000);
        // Feed a prefix backwards, then forwards again.
        for m in online[..n].iter().rev() {
            sd.push(m);
        }
        for m in &online[..n] {
            sd.push(m);
        }
        let events = sd.finish();
        assert!(!events.is_empty());
    }

    /// The memory guard force-closes the oldest groups and counts them.
    #[test]
    fn max_open_messages_bounds_memory_under_a_stuck_clock() {
        let (d, k) = setup();
        let online = d.online();
        let scfg = StreamConfig {
            idle_close: 0,
            max_open_messages: 64,
        };
        let mut sd = StreamDigester::with_config(&k, GroupingConfig::default(), scfg);
        // Freeze the clock: replay a window of messages all at one instant,
        // so the idle sweep can never fire.
        let frozen = online[0].ts;
        let mut peak = 0usize;
        for m in online.iter().take(3000) {
            let mut m = m.clone();
            m.ts = frozen;
            sd.push(&m);
            peak = peak.max(sd.open_messages());
        }
        assert!(
            peak <= 64 + 1,
            "open messages peaked at {peak} despite max_open_messages=64"
        );
        assert!(
            sd.stats().n_force_closed > 0,
            "guard never fired: {:?}",
            sd.stats()
        );
        assert_eq!(sd.stats().n_inconsistent, 0);
    }

    /// checkpoint() → resume() roundtrips the full digester state: the
    /// resumed digester emits exactly what the original would have.
    #[test]
    fn checkpoint_resume_is_exact() {
        let (d, k) = setup();
        let online = d.online();
        let cut = online.len() / 2;

        let mut uninterrupted = StreamDigester::new(&k, GroupingConfig::default(), 0);
        let mut e1 = Vec::new();
        for m in online {
            e1.extend(uninterrupted.push(m));
        }
        e1.extend(uninterrupted.finish());

        let mut first = StreamDigester::new(&k, GroupingConfig::default(), 0);
        let mut e2 = Vec::new();
        for m in &online[..cut] {
            e2.extend(first.push(m));
        }
        let snap = first.checkpoint();
        drop(first); // the "kill"
        let json = snap.to_json().expect("snapshot serializes");
        let snap = StreamSnapshot::from_json(&json).expect("snapshot parses");
        let mut second = StreamDigester::resume(&k, &snap).expect("resume");
        for m in &online[cut..] {
            e2.extend(second.push(m));
        }
        e2.extend(second.finish());

        let norm = |evs: &[NetworkEvent]| {
            let mut v: Vec<Vec<usize>> = evs.iter().map(|e| e.message_idxs.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&e1), norm(&e2));
    }
}
