//! Event prioritization (§4.2.4): `score = Σ_m l_m / log(f_m)` where `l_m`
//! is the hierarchy-level weight of the message's location (×10 per level,
//! router highest) and `f_m` the historical frequency of the message's
//! signature on its router (rarer ⇒ more interesting; the logarithm keeps
//! rare-signature events from dominating outright).

use crate::knowledge::DomainKnowledge;
use sd_model::SyslogPlus;

/// Frequency floor for the `1 / log(f_m)` damping. The paper takes the
/// logarithm precisely "to prevent rare events with tiny f_m values from
/// dominating the top of the ranked list" and notes operators may adjust
/// weights; a signature with almost no history has an unreliable
/// frequency estimate, so the denominator is floored as if it had been
/// seen at least this often.
pub const FREQ_FLOOR: f64 = 8.0;

/// Score one group of messages (batch indices into `batch`) with the
/// default [`FREQ_FLOOR`].
pub fn score_group(k: &DomainKnowledge, batch: &[SyslogPlus], members: &[usize]) -> f64 {
    score_group_with_floor(k, batch, members, FREQ_FLOOR)
}

/// Score with an explicit frequency floor (the ablation benches sweep it;
/// floor 2 reproduces the raw paper formula up to the division-by-zero
/// guard at f = 1).
pub fn score_group_with_floor(
    k: &DomainKnowledge,
    batch: &[SyslogPlus],
    members: &[usize],
    floor: f64,
) -> f64 {
    members
        .iter()
        .map(|&i| {
            let sp = &batch[i];
            let l = match sp.primary_location() {
                Some(loc) => k.dict.info(loc).level.weight(),
                None => 1.0,
            };
            let f = match sp.template {
                Some(t) => k.frequency(sp.router, t) as f64,
                None => 1.0,
            };
            l / f.max(floor.max(2.0)).ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_locations::LocationDictionary;
    use sd_model::{Interner, LocationId, RouterId, SyslogPlus, TemplateId, Timestamp};
    use sd_rules::RuleSet;
    use sd_templates::TemplateSet;
    use sd_temporal::TemporalConfig;
    use std::collections::HashMap;

    fn knowledge(freqs: &[((u32, u32), u64)]) -> DomainKnowledge {
        let cfg = "\
hostname r1
!
interface Serial1/0
 ip address 10.0.0.1 255.255.255.252
";
        let dict = LocationDictionary::build(&[cfg.to_owned()]);
        let freq: HashMap<(u32, u32), u64> = freqs.iter().copied().collect();
        DomainKnowledge::new(
            TemplateSet::default(),
            Interner::new(),
            dict,
            TemporalConfig::dataset_a(),
            RuleSet::default(),
            120,
            freq,
        )
    }

    fn sp(router: u32, template: u32, loc: Option<LocationId>) -> SyslogPlus {
        SyslogPlus {
            idx: 0,
            ts: Timestamp(0),
            router: RouterId(router),
            template: Some(TemplateId(template)),
            locations: loc.into_iter().collect(),
        }
    }

    #[test]
    fn rarer_signatures_score_higher() {
        let k = knowledge(&[((0, 0), 10_000), ((0, 1), 3)]);
        let r1 = k.dict.router_id("r1").unwrap();
        let loc = k.dict.by_name(r1, "Serial1/0");
        let batch = vec![sp(0, 0, loc), sp(0, 1, loc)];
        let common = score_group(&k, &batch, &[0]);
        let rare = score_group(&k, &batch, &[1]);
        assert!(rare > common, "rare {rare} vs common {common}");
    }

    #[test]
    fn router_level_outweighs_interface_level() {
        let k = knowledge(&[((0, 0), 100)]);
        let r1 = k.dict.router_id("r1").unwrap();
        let iface = k.dict.by_name(r1, "Serial1/0");
        let router = Some(k.dict.router_location(r1));
        let batch = vec![sp(0, 0, iface), sp(0, 0, router)];
        assert!(score_group(&k, &batch, &[1]) > score_group(&k, &batch, &[0]));
    }

    #[test]
    fn more_messages_score_higher() {
        let k = knowledge(&[((0, 0), 100)]);
        let r1 = k.dict.router_id("r1").unwrap();
        let loc = k.dict.by_name(r1, "Serial1/0");
        let batch: Vec<SyslogPlus> = (0..5).map(|_| sp(0, 0, loc)).collect();
        let small = score_group(&k, &batch, &[0, 1]);
        let big = score_group(&k, &batch, &[0, 1, 2, 3, 4]);
        assert!(big > small);
    }

    #[test]
    fn unseen_signature_does_not_blow_up() {
        let k = knowledge(&[]);
        let r1 = k.dict.router_id("r1").unwrap();
        let loc = k.dict.by_name(r1, "Serial1/0");
        let batch = vec![sp(0, 9, loc)];
        let s = score_group(&k, &batch, &[0]);
        assert!(s.is_finite() && s > 0.0);
    }
}
