//! Structured operator logging with a human text rendering and a JSONL
//! rendering (`--log-format {text,json}`).

use crate::json::Json;
use std::io::{self, Write};
use std::str::FromStr;
use std::sync::Mutex;

/// Log severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogLevel {
    /// Informational progress.
    Info,
    /// Degradation worth an operator's attention (malformed lines, …).
    Warn,
    /// A failed operation.
    Error,
}

impl LogLevel {
    /// Lowercase name as rendered in both formats.
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }
}

/// Output format of a [`Logger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// `level: message (key=value, …)` lines for humans.
    #[default]
    Text,
    /// One JSON object per line for log shippers.
    Json,
}

impl FromStr for LogFormat {
    type Err = String;
    fn from_str(s: &str) -> Result<LogFormat, String> {
        match s {
            "text" => Ok(LogFormat::Text),
            "json" => Ok(LogFormat::Json),
            other => Err(format!("unknown log format {other:?} (use text or json)")),
        }
    }
}

/// A structured log sink. Every record has a level, a free-text message,
/// and optional key/value fields; the format decides the rendering only —
/// callers never format differently per format.
pub struct Logger {
    format: LogFormat,
    w: Mutex<Box<dyn Write + Send>>,
}

impl Logger {
    /// Log to standard error in the given format (the CLI default).
    pub fn stderr(format: LogFormat) -> Logger {
        Logger::to_writer(format, Box::new(io::stderr()))
    }

    /// Log to an arbitrary writer (tests capture records this way).
    pub fn to_writer(format: LogFormat, w: Box<dyn Write + Send>) -> Logger {
        Logger {
            format,
            w: Mutex::new(w),
        }
    }

    /// The configured format.
    pub fn format(&self) -> LogFormat {
        self.format
    }

    /// Emit one record.
    pub fn log(&self, level: LogLevel, message: &str, fields: &[(&str, Json)]) {
        let mut line = String::new();
        match self.format {
            LogFormat::Text => {
                line.push_str(level.as_str());
                line.push_str(": ");
                line.push_str(message);
                if !fields.is_empty() {
                    line.push_str(" (");
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            line.push_str(", ");
                        }
                        line.push_str(k);
                        line.push('=');
                        match v {
                            Json::Str(s) => line.push_str(s),
                            other => line.push_str(&other.render()),
                        }
                    }
                    line.push(')');
                }
            }
            LogFormat::Json => {
                let mut obj = Json::obj()
                    .field("level", level.as_str())
                    .field("message", message);
                for (k, v) in fields {
                    obj = obj.field(k, v.clone());
                }
                line = obj.render();
            }
        }
        line.push('\n');
        let mut w = self.w.lock().expect("logger poisoned");
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    }

    /// [`LogLevel::Info`] record.
    pub fn info(&self, message: &str, fields: &[(&str, Json)]) {
        self.log(LogLevel::Info, message, fields);
    }

    /// [`LogLevel::Warn`] record.
    pub fn warn(&self, message: &str, fields: &[(&str, Json)]) {
        self.log(LogLevel::Warn, message, fields);
    }

    /// [`LogLevel::Error`] record.
    pub fn error(&self, message: &str, fields: &[(&str, Json)]) {
        self.log(LogLevel::Error, message, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    #[derive(Clone, Default)]
    struct Capture(Arc<StdMutex<Vec<u8>>>);
    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn captured(format: LogFormat) -> (Logger, Capture) {
        let cap = Capture::default();
        (Logger::to_writer(format, Box::new(cap.clone())), cap)
    }

    #[test]
    fn text_format_is_human_readable() {
        let (log, cap) = captured(LogFormat::Text);
        log.warn(
            "malformed line",
            &[("line", Json::U64(3)), ("reason", "bad timestamp".into())],
        );
        let out = String::from_utf8(cap.0.lock().unwrap().clone()).unwrap();
        assert_eq!(out, "warn: malformed line (line=3, reason=bad timestamp)\n");
    }

    #[test]
    fn json_format_is_one_object_per_line() {
        let (log, cap) = captured(LogFormat::Json);
        log.error("boom", &[("code", Json::U64(2))]);
        let out = String::from_utf8(cap.0.lock().unwrap().clone()).unwrap();
        assert_eq!(
            out,
            "{\"level\":\"error\",\"message\":\"boom\",\"code\":2}\n"
        );
    }

    #[test]
    fn format_parses() {
        assert_eq!("text".parse::<LogFormat>().unwrap(), LogFormat::Text);
        assert_eq!("json".parse::<LogFormat>().unwrap(), LogFormat::Json);
        assert!("yaml".parse::<LogFormat>().is_err());
    }
}
