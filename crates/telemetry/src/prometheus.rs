//! Prometheus text exposition (format version 0.0.4) rendering of a
//! [`Snapshot`], plus the line-format validator CI runs over emitted
//! files.

use crate::registry::Snapshot;
use std::fmt::Write as _;

/// Prefix of every exported metric name.
const PREFIX: &str = "sd_";

/// Map a dotted registry name to a legal Prometheus metric name.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(PREFIX.len() + name.len());
    out.push_str(PREFIX);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || (c == ':' && i > 0) {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

impl Snapshot {
    /// Render every counter and span in the Prometheus text exposition
    /// format. Counters export as `sd_<name>` (dots become underscores);
    /// spans export as two labelled families, `sd_span_seconds_total` and
    /// `sd_span_calls_total`, one sample per span path.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let metric = sanitize(name);
            let _ = writeln!(out, "# HELP {metric} Registry counter {name:?}.");
            let _ = writeln!(out, "# TYPE {metric} counter");
            let _ = writeln!(out, "{metric} {value}");
        }
        if !self.spans.is_empty() {
            let _ = writeln!(
                out,
                "# HELP sd_span_seconds_total Total wall-clock seconds inside each span."
            );
            let _ = writeln!(out, "# TYPE sd_span_seconds_total counter");
            for (path, stat) in &self.spans {
                let _ = writeln!(
                    out,
                    "sd_span_seconds_total{{span=\"{path}\"}} {}",
                    stat.secs()
                );
            }
            let _ = writeln!(
                out,
                "# HELP sd_span_calls_total Completed timed calls of each span."
            );
            let _ = writeln!(out, "# TYPE sd_span_calls_total counter");
            for (path, stat) in &self.spans {
                let _ = writeln!(out, "sd_span_calls_total{{span=\"{path}\"}} {}", stat.calls);
            }
        }
        out
    }
}

/// Validate a Prometheus text exposition: every line must be a comment
/// (`# HELP` / `# TYPE` with a legal metric name), blank, or a sample of
/// the form `name[{label="value",…}] <float>`. Returns the number of
/// sample lines, or a description of the first offending line.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (no, line) in text.lines().enumerate() {
        let err = |why: &str| Err(format!("line {}: {why}: {line:?}", no + 1));
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            let Some((kind, body)) = rest.split_once(' ') else {
                return err("bare comment (expected HELP or TYPE)");
            };
            if kind != "HELP" && kind != "TYPE" {
                return err("comment is neither HELP nor TYPE");
            }
            let name = body.split_whitespace().next().unwrap_or("");
            if !valid_metric_name(name) {
                return err("invalid metric name in comment");
            }
            if kind == "TYPE" {
                let ty = body.split_whitespace().nth(1).unwrap_or("");
                if !matches!(
                    ty,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return err("unknown metric type");
                }
            }
            continue;
        }
        // Sample: name{labels} value  |  name value
        let (name_part, value_part) = match line.find('}') {
            Some(close) => {
                let (head, tail) = line.split_at(close + 1);
                let Some(open) = head.find('{') else {
                    return err("'}' without '{'");
                };
                if !valid_labels(&head[open + 1..head.len() - 1]) {
                    return err("malformed label set");
                }
                (&head[..open], tail)
            }
            None => match line.split_once(' ') {
                Some((n, v)) => (n, v),
                None => return err("sample has no value"),
            },
        };
        if !valid_metric_name(name_part.trim_end()) {
            return err("invalid metric name");
        }
        let value = value_part.trim();
        if value.is_empty() || value.split_whitespace().count() > 2 {
            return err("expected '<value> [timestamp]'");
        }
        for field in value.split_whitespace() {
            if field.parse::<f64>().is_err()
                && !matches!(field, "+Inf" | "-Inf" | "NaN" | "Nan" | "nan")
            {
                return err("value is not a float");
            }
        }
        samples += 1;
    }
    Ok(samples)
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_labels(body: &str) -> bool {
    if body.trim().is_empty() {
        return true;
    }
    // label="value", … — values may contain escaped quotes.
    let mut rest = body;
    loop {
        let Some(eq) = rest.find('=') else {
            return false;
        };
        if !valid_metric_name(rest[..eq].trim()) {
            return false;
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return false;
        }
        let mut end = None;
        let mut escaped = false;
        for (i, c) in after.char_indices().skip(1) {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => {
                    end = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let Some(end) = end else {
            return false;
        };
        rest = after[end + 1..].trim_start();
        if rest.is_empty() {
            return true;
        }
        let Some(comma) = rest.strip_prefix(',') else {
            return false;
        };
        rest = comma.trim_start();
        if rest.is_empty() {
            return true; // trailing comma tolerated
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Telemetry;

    #[test]
    fn snapshot_renders_and_validates() {
        let t = Telemetry::new();
        t.counter("stream.n_input").add(42);
        t.counter("ingest.n_late").add(3);
        {
            let _g = t.time("learn.templates");
        }
        let text = t.snapshot().to_prometheus();
        assert!(text.contains("sd_stream_n_input 42"), "{text}");
        assert!(text.contains("sd_ingest_n_late 3"), "{text}");
        assert!(
            text.contains("sd_span_calls_total{span=\"learn.templates\"} 1"),
            "{text}"
        );
        let samples = validate_exposition(&text).expect("valid exposition");
        assert_eq!(samples, 4, "{text}");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_exposition("sd_ok 1\n").is_ok());
        assert!(validate_exposition("9bad_name 1\n").is_err());
        assert!(validate_exposition("sd_ok notafloat\n").is_err());
        assert!(validate_exposition("sd_ok{label=\"x\"} 1\n").is_ok());
        assert!(validate_exposition("sd_ok{label=x} 1\n").is_err());
        assert!(validate_exposition("# FOO sd_ok counter\n").is_err());
        assert!(validate_exposition("# TYPE sd_ok rainbow\n").is_err());
        assert!(validate_exposition("sd_ok\n").is_err());
    }

    #[test]
    fn sanitize_maps_dots_and_dashes() {
        assert_eq!(sanitize("stream.n_input"), "sd_stream_n_input");
        assert_eq!(sanitize("a-b.c"), "sd_a_b_c");
    }

    #[test]
    fn escaped_quotes_in_labels_are_accepted() {
        assert!(validate_exposition("sd_ok{l=\"a\\\"b\"} 1\n").is_ok());
        assert!(validate_exposition("sd_ok{l=\"unterminated} 1\n").is_err());
    }
}
