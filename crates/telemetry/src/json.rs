//! A minimal JSON value builder and a JSONL (one object per line) sink.
//!
//! The telemetry crate is dependency-free, so it carries its own tiny
//! JSON *writer* (no parser): enough to render structured log records and
//! provenance traces with correct string escaping and `null`-safe floats.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// A JSON value under construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values render as `null`, as JSON has no NaN).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Start an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Builder-style field append (no-op on non-objects).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Obj(fields) = &mut self {
            fields.push((key.to_owned(), value.into()));
        }
        self
    }

    /// Render into `out`.
    pub fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Render to a fresh string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(u64::from(v))
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

/// Escape `s` as a JSON string (with quotes) into `out`.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A thread-safe sink writing one JSON object per line (JSONL), flushed
/// per record so `tail -f` on a live trace file always sees whole lines.
pub struct JsonlSink {
    w: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Create (truncate) a JSONL file at `path`.
    pub fn create(path: &Path) -> io::Result<JsonlSink> {
        Ok(JsonlSink::from_writer(Box::new(BufWriter::new(
            File::create(path)?,
        ))))
    }

    /// Wrap an arbitrary writer (used by tests to capture records).
    pub fn from_writer(w: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink { w: Mutex::new(w) }
    }

    /// Append one record as a single line.
    pub fn write(&self, record: &Json) -> io::Result<()> {
        let mut line = record.render();
        line.push('\n');
        let mut w = self.w.lock().expect("jsonl sink poisoned");
        w.write_all(line.as_bytes())?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let j = Json::obj()
            .field("id", 7u64)
            .field("name", "a \"b\"\nc")
            .field("ok", true)
            .field("ratio", 0.5)
            .field("none", Json::Null)
            .field("xs", vec![Json::U64(1), Json::U64(2)]);
        assert_eq!(
            j.render(),
            r#"{"id":7,"name":"a \"b\"\nc","ok":true,"ratio":0.5,"none":null,"xs":[1,2]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(Json::Str("a\u{1}b".into()).render(), "\"a\\u0001b\"");
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let dir = std::env::temp_dir().join(format!("sd-tele-jsonl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.write(&Json::obj().field("a", 1u64)).unwrap();
        sink.write(&Json::obj().field("b", 2u64)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
