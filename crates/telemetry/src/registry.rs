//! The counter registry, span timers, and the [`Telemetry`] handle that
//! bundles them.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A monotonically increasing atomic counter.
///
/// Handles are cheap to clone (an `Arc` bump) and safe to increment from
/// any thread. A counter is either *registered* — obtained from
/// [`Telemetry::counter`], visible in snapshots — or *detached*
/// ([`Counter::detached`]): it still counts, it just belongs to no
/// registry. Detached counters are what a [`Telemetry::disabled`] handle
/// hands out, so stats structs backed by counters keep working with
/// telemetry off.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter registered nowhere (see the type docs).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite the value (checkpoint restore only — counters are
    /// otherwise monotone).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// Aggregated timing of one span path: how many times it ran and the
/// total wall-clock time spent inside it.
#[derive(Debug, Default)]
struct SpanCell {
    calls: AtomicU64,
    nanos: AtomicU64,
}

/// A resolved handle to one span path, cached by instrumented code so the
/// per-use cost is two `Instant` reads and two relaxed atomic adds.
///
/// Span paths are dotted (`learn.templates`, `stream.push`), which is how
/// the hierarchy is expressed: a parent span simply encloses its
/// children's paths lexically, and the exposition writer emits them in
/// sorted order so the tree reads top-down.
#[derive(Clone, Debug)]
pub struct SpanHandle {
    cell: Arc<SpanCell>,
    enabled: bool,
}

impl SpanHandle {
    /// A handle that records nothing (what disabled telemetry hands out).
    pub fn detached() -> Self {
        SpanHandle {
            cell: Arc::new(SpanCell::default()),
            enabled: false,
        }
    }

    /// Start timing; the returned guard records the duration on drop.
    /// On a disabled handle this is a no-op (no clock read).
    #[inline]
    pub fn start(&self) -> SpanGuard {
        SpanGuard {
            active: self
                .enabled
                .then(|| (Arc::clone(&self.cell), Instant::now())),
        }
    }
}

/// RAII guard returned by [`SpanHandle::start`]; records one timed call
/// into its span when dropped.
#[must_use = "a span guard times until it is dropped"]
pub struct SpanGuard {
    active: Option<(Arc<SpanCell>, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((cell, start)) = self.active.take() {
            cell.calls.fetch_add(1, Ordering::Relaxed);
            cell.nanos
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

/// Aggregated statistics of one span path in a [`Snapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanStat {
    /// Number of completed timed calls.
    pub calls: u64,
    /// Total wall-clock nanoseconds across all calls.
    pub nanos: u64,
}

impl SpanStat {
    /// Total seconds across all calls.
    pub fn secs(&self) -> f64 {
        self.nanos as f64 / 1e9
    }
}

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    spans: Mutex<BTreeMap<String, Arc<SpanCell>>>,
}

/// The injectable telemetry handle (see the crate docs).
///
/// Cloning shares the underlying registry. Every constructor-injected
/// component of the pipeline takes one; the CLI creates a single enabled
/// handle when `--metrics-out` is given and threads it everywhere, while
/// library defaults use [`Telemetry::disabled`].
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Telemetry({})",
            if self.inner.is_some() {
                "enabled"
            } else {
                "disabled"
            }
        )
    }
}

impl Telemetry {
    /// A fresh enabled handle with its own empty registry.
    pub fn new() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// The no-op handle: spans don't time, counters are detached.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The counter registered under `name` (dotted, e.g.
    /// `stream.n_input`), creating it at zero on first use. All handles
    /// cloned from the same telemetry share the same counter.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::detached();
        };
        let mut map = inner.counters.lock().expect("counter registry poisoned");
        map.entry(name.to_owned()).or_default().clone()
    }

    /// The span timer registered under the dotted `path`, creating it on
    /// first use. Cache the handle; see [`SpanHandle`].
    pub fn span(&self, path: &str) -> SpanHandle {
        let Some(inner) = &self.inner else {
            return SpanHandle::detached();
        };
        let mut map = inner.spans.lock().expect("span registry poisoned");
        let cell = map.entry(path.to_owned()).or_default();
        SpanHandle {
            cell: Arc::clone(cell),
            enabled: true,
        }
    }

    /// One-shot convenience: start timing `path` right away (for coarse
    /// stage spans where caching the handle buys nothing).
    pub fn time(&self, path: &str) -> SpanGuard {
        self.span(path).start()
    }

    /// Point-in-time dump of every registered counter and span, sorted by
    /// name so snapshots are deterministic.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let spans = inner
            .spans
            .lock()
            .expect("span registry poisoned")
            .iter()
            .map(|(path, cell)| {
                (
                    path.clone(),
                    SpanStat {
                        calls: cell.calls.load(Ordering::Relaxed),
                        nanos: cell.nanos.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        Snapshot { counters, spans }
    }
}

/// A deterministic, name-sorted dump of one registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(path, stat)` for every registered span.
    pub spans: Vec<(String, SpanStat)>,
}

impl Snapshot {
    /// Value of the counter registered under `name`, if any.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Stats of the span registered under `path`, if any.
    pub fn span(&self, path: &str) -> Option<SpanStat> {
        self.spans
            .binary_search_by(|(p, _)| p.as_str().cmp(path))
            .ok()
            .map(|i| self.spans[i].1)
    }
}

/// The process-wide telemetry handle, for binaries that don't thread
/// their own. Created enabled on first use.
pub fn global() -> Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(Telemetry::new).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_and_share() {
        let t = Telemetry::new();
        let a = t.counter("x.hits");
        let b = t.counter("x.hits");
        a.inc();
        b.add(2);
        assert_eq!(t.counter("x.hits").get(), 3);
        let snap = t.snapshot();
        assert_eq!(snap.counter("x.hits"), Some(3));
        assert_eq!(snap.counter("nope"), None);
    }

    #[test]
    fn disabled_counters_still_count_but_export_nothing() {
        let t = Telemetry::disabled();
        let c = t.counter("x");
        c.inc();
        c.inc();
        assert_eq!(c.get(), 2);
        assert!(t.snapshot().counters.is_empty());
        // Two requests for the same name are *independent* when disabled.
        assert_eq!(t.counter("x").get(), 0);
    }

    #[test]
    fn spans_time_and_count() {
        let t = Telemetry::new();
        let h = t.span("stage.a");
        for _ in 0..3 {
            let _g = h.start();
        }
        let snap = t.snapshot();
        let s = snap.span("stage.a").unwrap();
        assert_eq!(s.calls, 3);
        assert!(s.secs() >= 0.0);
        // Disabled handles record nothing.
        let d = Telemetry::disabled();
        let _g = d.time("x");
        drop(_g);
        assert!(d.snapshot().spans.is_empty());
    }

    #[test]
    fn snapshots_are_sorted_and_deterministic() {
        let t = Telemetry::new();
        t.counter("b");
        t.counter("a");
        t.span("z.s");
        t.span("a.s");
        let snap = t.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        let paths: Vec<&str> = snap.spans.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["a.s", "z.s"]);
    }

    #[test]
    fn global_is_shared() {
        global().counter("global.test").inc();
        assert!(global().snapshot().counter("global.test").unwrap_or(0) >= 1);
    }
}
