//! # sd-telemetry
//!
//! The unified observability layer of SyslogDigest: the digester is an
//! operator-facing system (§6 of the paper deploys it on two tier-1
//! networks), so the pipeline itself must be inspectable. This crate is
//! deliberately **dependency-free** (std only) and provides four pieces,
//! all cheap enough to leave compiled into the hot path:
//!
//! * [`Telemetry`] — a cloneable handle bundling an atomic
//!   [`Counter`] registry and hierarchical [`SpanHandle`] timers.
//!   It is *global-but-injectable*: library code takes a handle (or
//!   constructs a disabled one), binaries either create their own or use
//!   [`global()`]. A [`Telemetry::disabled`] handle costs nothing — span
//!   timing is skipped entirely and counters degrade to detached atomics
//!   (they still count, so stats views stay correct; they just are not
//!   exported).
//! * [`Snapshot`] / [`Snapshot::to_prometheus`] — a point-in-time dump
//!   of every registered counter and span, and its rendering in the
//!   Prometheus text exposition format (`--metrics-out`).
//!   [`validate_exposition`] is the line-format checker CI runs against
//!   emitted files.
//! * [`Json`] / [`JsonlSink`] — a minimal JSON value builder and a
//!   line-per-record sink used for `--trace` provenance streams.
//! * [`Logger`] — structured operator logging with a text and a JSON
//!   rendering (`--log-format {text,json}`), replacing ad-hoc
//!   `eprintln!` reporting.
//!
//! Telemetry is strictly *observational*: attaching a handle, enabling
//! tracing, or changing thread counts never changes any digest output —
//! the workspace's neutrality tests assert byte-identical results with
//! telemetry on and off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod log;
mod prometheus;
mod registry;

pub use json::{Json, JsonlSink};
pub use log::{LogFormat, LogLevel, Logger};
pub use prometheus::validate_exposition;
pub use registry::{global, Counter, Snapshot, SpanGuard, SpanHandle, SpanStat, Telemetry};
