//! The location learner against full generated configs and real message
//! streams from the netsim substrate.

use sd_locations::{extract, LocationDictionary};
use sd_model::LocationLevel;
use sd_netsim::{Dataset, DatasetSpec};

fn check(spec: DatasetSpec) {
    let name = spec.name.clone();
    let d = Dataset::generate(spec.scaled(0.12));
    let dict = LocationDictionary::build(&d.configs);

    // Every topology router is known, with its state code.
    for r in &d.topology.routers {
        let rid = dict
            .router_id(&r.name)
            .unwrap_or_else(|| panic!("{} unknown", r.name));
        assert_eq!(dict.state_of(rid), r.state, "state of {}", r.name);
    }
    // Every link's two interfaces are dictionary peers.
    for l in &d.topology.links {
        let (ra, ia) = d.topology.endpoint(l.a);
        let (rb, ib) = d.topology.endpoint(l.b);
        let la = dict
            .by_name(dict.router_id(&ra.name).unwrap(), &ia.name)
            .unwrap();
        let lb = dict
            .by_name(dict.router_id(&rb.name).unwrap(), &ib.name)
            .unwrap();
        assert_eq!(
            dict.link_peer(la),
            Some(lb),
            "link {} <-> {}",
            ia.name,
            ib.name
        );
    }

    // Extraction succeeds for every message, and interface-bearing messages
    // resolve below router level.
    let mut total = 0usize;
    let mut sub_router = 0usize;
    for m in d.messages.iter().step_by(11) {
        let e = extract(&dict, m).unwrap_or_else(|| panic!("router {} unknown", m.router));
        assert!(!e.locations.is_empty());
        total += 1;
        if dict.info(e.locations[0]).level != LocationLevel::Router {
            sub_router += 1;
        }
    }
    let frac = sub_router as f64 / total as f64;
    assert!(
        frac > 0.5,
        "dataset {name}: only {frac:.2} of messages resolve below router level"
    );
}

#[test]
fn dataset_a_locations_resolve() {
    check(DatasetSpec::preset_a());
}

#[test]
fn dataset_b_locations_resolve() {
    check(DatasetSpec::preset_b());
}

#[test]
fn iptv_paths_resolve() {
    let d = Dataset::generate(DatasetSpec::preset_b().scaled(0.12));
    let dict = LocationDictionary::build(&d.configs);
    for p in &d.topology.paths {
        let loc = dict
            .path(&p.name)
            .unwrap_or_else(|| panic!("path {} unknown", p.name));
        let routers = dict.path_routers(loc).expect("members recorded");
        assert!(!routers.is_empty());
    }
}
