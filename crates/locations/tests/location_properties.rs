//! Property tests: parsers never panic on junk, and spatial matching is a
//! well-behaved relation.

use proptest::prelude::*;
use sd_locations::names::{parse_iface_name, parse_ip_token};
use sd_locations::{extract, parse_config, LocationDictionary};
use sd_model::{ErrorCode, LocationId, RawMessage, Timestamp};

proptest! {
    /// Name/IP classifiers accept arbitrary input without panicking.
    #[test]
    fn name_parsers_are_total(s in "[ -~]{0,40}") {
        let _ = parse_iface_name(&s);
        let _ = parse_ip_token(&s);
    }

    /// Config parsing accepts arbitrary text without panicking.
    #[test]
    fn config_parser_is_total(s in "[ -~\n]{0,500}") {
        let _ = parse_config(&s);
    }

    /// Extraction accepts arbitrary detail text without panicking and
    /// always returns at least the router location.
    #[test]
    fn extraction_is_total(detail in "[ -~]{0,120}") {
        let cfg = "\
hostname r1
!
interface Serial1/0
 ip address 10.0.0.1 255.255.255.252
";
        let d = LocationDictionary::build(&[cfg.to_owned()]);
        let m = RawMessage::new(Timestamp(0), "r1", ErrorCode::from("X-1-Y"), detail);
        let e = extract(&d, &m).expect("known router");
        prop_assert!(!e.locations.is_empty());
    }
}

#[test]
fn spatial_matching_is_reflexive_and_symmetric() {
    let cfg_a = "\
hostname r1
!
controller T3 1/0/0
!
interface Loopback0
 ip address 10.255.0.1 255.255.255.255
!
interface Serial1/0
 no ip address
!
interface Serial1/0.10/10:0
 ip address 10.0.0.1 255.255.255.252
!
interface GigabitEthernet2/1
 ip address 10.0.0.5 255.255.255.252
!
interface Multilink1
 multilink-group member Serial1/0
!
";
    let d = LocationDictionary::build(&[cfg_a.to_owned()]);
    let locs: Vec<LocationId> = (0..d.len() as u32).map(LocationId).collect();
    for &a in &locs {
        assert!(d.spatially_match(a, a), "reflexive at {a}");
        for &b in &locs {
            assert_eq!(
                d.spatially_match(a, b),
                d.spatially_match(b, a),
                "symmetric at {a},{b}"
            );
        }
    }
    // Ancestors always spatially match descendants.
    for &a in &locs {
        for anc in d.ancestors(a) {
            assert!(d.spatially_match(a, anc));
        }
    }
}
