//! Router-config parsing (the "Location Extraction" box of Figure 1).
//!
//! The paper's insight: "a router almost always writes to syslog only the
//! location information it knows, i.e. those configured in the router" —
//! so the location dictionary is built from configs, never from vendor
//! manuals. This module turns one config text into a [`ParsedConfig`];
//! `dict` assembles the cross-router dictionary from all of them.

/// One `interface`/`port` stanza.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedIface {
    /// Interface name.
    pub name: String,
    /// Configured address (dotted quad, mask/prefix dropped).
    pub ip: Option<String>,
    /// `link to <router> <iface>` description target, if present.
    pub link_to: Option<(String, String)>,
}

/// Everything location-relevant in one router config.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedConfig {
    /// `hostname` / `system name`.
    pub hostname: String,
    /// Site code, if present.
    pub site: Option<String>,
    /// State code, if present (ticket-matching granularity).
    pub state: Option<String>,
    /// All interface stanzas.
    pub interfaces: Vec<ParsedIface>,
    /// Controller names (e.g. `T3 1/0/0`).
    pub controllers: Vec<String>,
    /// Multilink bundles: `(bundle name, member interface names)`.
    pub bundles: Vec<(String, Vec<String>)>,
    /// BGP neighbor addresses with optional VRF.
    pub bgp_neighbors: Vec<(String, Option<String>)>,
    /// LSP stanzas: `(lsp name, router names along the path)`.
    pub lsps: Vec<(String, Vec<String>)>,
    /// PIM stanzas: `(peer router, local iface, secondary lsp name)`.
    pub pim: Vec<(String, String, String)>,
}

/// Parse one config text (either vendor's format).
pub fn parse_config(text: &str) -> ParsedConfig {
    let mut cfg = ParsedConfig::default();
    let mut cur_iface: Option<usize> = None;
    let mut cur_bundle: Option<usize> = None;
    let mut cur_vrf: Option<String> = None;

    for raw in text.lines() {
        let line = raw.trim_end();
        let indented = line.starts_with(' ');
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.is_empty() || toks[0] == "!" || toks[0] == "#" {
            continue;
        }
        if !indented {
            cur_iface = None;
            cur_bundle = None;
            cur_vrf = None;
        }
        match (indented, toks.as_slice()) {
            (false, ["hostname", name]) => cfg.hostname = (*name).to_owned(),
            (false, ["system", "name", name]) => cfg.hostname = (*name).to_owned(),
            (false, ["site", site, "state", state]) => {
                cfg.site = Some((*site).to_owned());
                cfg.state = Some((*state).to_owned());
            }
            (false, ["system", "location", site, state]) => {
                cfg.site = Some((*site).to_owned());
                cfg.state = Some((*state).to_owned());
            }
            (false, ["controller", rest @ ..]) => {
                cfg.controllers.push(rest.join(" "));
            }
            (false, ["interface", "system"]) => {
                cfg.interfaces.push(ParsedIface {
                    name: "system".to_owned(),
                    ip: None,
                    link_to: None,
                });
                cur_iface = Some(cfg.interfaces.len() - 1);
            }
            (false, ["interface", name]) => {
                if name.starts_with("Multilink") {
                    cfg.bundles.push(((*name).to_owned(), Vec::new()));
                    cur_bundle = Some(cfg.bundles.len() - 1);
                } else {
                    cfg.interfaces.push(ParsedIface {
                        name: (*name).to_owned(),
                        ip: None,
                        link_to: None,
                    });
                    cur_iface = Some(cfg.interfaces.len() - 1);
                }
            }
            (false, ["port", name]) => {
                cfg.interfaces.push(ParsedIface {
                    name: (*name).to_owned(),
                    ip: None,
                    link_to: None,
                });
                cur_iface = Some(cfg.interfaces.len() - 1);
            }
            (false, ["router", ..]) => { /* bgp block follows, neighbors indented */ }
            (false, ["mpls", "lsp", name, "to", _to, "path", routers @ ..]) => {
                cfg.lsps.push((
                    (*name).to_owned(),
                    routers.iter().map(|r| (*r).to_owned()).collect(),
                ));
            }
            (false, ["pim", "neighbor", peer, "primary", iface, "secondary-lsp", lsp]) => {
                cfg.pim
                    .push(((*peer).to_owned(), (*iface).to_owned(), (*lsp).to_owned()));
            }
            (true, ["ip", "address", addr, _mask]) => {
                if let Some(i) = cur_iface {
                    cfg.interfaces[i].ip = Some((*addr).to_owned());
                } else if let Some(b) = cur_bundle {
                    let _ = b; // bundle addresses are not locations of their own
                }
            }
            (true, ["address", addr]) => {
                if let Some(i) = cur_iface {
                    let bare = addr.split('/').next().unwrap_or(addr);
                    cfg.interfaces[i].ip = Some(bare.to_owned());
                }
            }
            (true, ["no", "ip", "address"]) => {}
            (true, ["description", rest @ ..]) => {
                if let Some(i) = cur_iface {
                    let joined = rest.join(" ");
                    let cleaned = joined.trim_matches('"');
                    if let Some(tail) = cleaned.strip_prefix("link to ") {
                        if let Some((r, ifn)) = tail.split_once(' ') {
                            cfg.interfaces[i].link_to = Some((r.to_owned(), ifn.to_owned()));
                        }
                    }
                }
            }
            (true, ["multilink-group", "member", name]) => {
                if let Some(b) = cur_bundle {
                    cfg.bundles[b].1.push((*name).to_owned());
                }
            }
            (true, ["neighbor", addr, ..]) => {
                cfg.bgp_neighbors
                    .push(((*addr).to_owned(), cur_vrf.clone()));
            }
            (true, ["address-family", "ipv4", "vrf", vrf]) => {
                cur_vrf = Some((*vrf).to_owned());
            }
            (true, ["vrf", vrf, "neighbor", addr]) => {
                cfg.bgp_neighbors
                    .push(((*addr).to_owned(), Some((*vrf).to_owned())));
            }
            _ => {}
        }
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    const V1_SAMPLE: &str = "\
hostname cr1.nyc
site nyc state NY
!
controller T3 1/0/0
!
interface Loopback0
 ip address 10.255.0.1 255.255.255.255
!
interface Serial1/0
 no ip address
!
interface Serial1/0.10/10:0
 ip address 10.0.0.1 255.255.255.252
 description link to cr2.chi Serial1/0.20/20:0
!
interface Multilink1
 ip address 10.9.0.1 255.255.255.252
 multilink-group member Serial1/0
 multilink-group member Serial1/1
!
router bgp 65000
 neighbor 10.255.0.2 remote-as 65000
 address-family ipv4 vrf 1000:1001
  neighbor 10.0.0.2 remote-as 65001
!
mpls lsp LSP-a-b-sec to cr2.chi path cr1.nyc cr3.dal cr2.chi
pim neighbor cr2.chi primary Serial1/0.10/10:0 secondary-lsp LSP-a-b-sec
";

    #[test]
    fn v1_config_parses_fully() {
        let c = parse_config(V1_SAMPLE);
        assert_eq!(c.hostname, "cr1.nyc");
        assert_eq!(c.state.as_deref(), Some("NY"));
        assert_eq!(c.controllers, vec!["T3 1/0/0"]);
        assert_eq!(c.interfaces.len(), 3);
        assert_eq!(c.interfaces[0].name, "Loopback0");
        assert_eq!(c.interfaces[0].ip.as_deref(), Some("10.255.0.1"));
        assert_eq!(c.interfaces[1].ip, None);
        assert_eq!(
            c.interfaces[2].link_to,
            Some(("cr2.chi".to_owned(), "Serial1/0.20/20:0".to_owned()))
        );
        assert_eq!(c.bundles.len(), 1);
        assert_eq!(c.bundles[0].1, vec!["Serial1/0", "Serial1/1"]);
        assert_eq!(c.bgp_neighbors.len(), 2);
        assert_eq!(c.bgp_neighbors[0], ("10.255.0.2".to_owned(), None));
        assert_eq!(
            c.bgp_neighbors[1],
            ("10.0.0.2".to_owned(), Some("1000:1001".to_owned()))
        );
        assert_eq!(c.lsps.len(), 1);
        assert_eq!(c.lsps[0].1, vec!["cr1.nyc", "cr3.dal", "cr2.chi"]);
        assert_eq!(c.pim.len(), 1);
    }

    const V2_SAMPLE: &str = "\
system name ra.nyc
system location nyc NY
#
interface system
 address 10.255.0.9/32
#
port 1/1/1
 address 10.0.0.5/30
 description \"link to rb.chi 0/1/2\"
#
router bgp
 neighbor 10.255.0.10
 vrf 1000:1002 neighbor 10.0.0.6
#
";

    #[test]
    fn v2_config_parses_fully() {
        let c = parse_config(V2_SAMPLE);
        assert_eq!(c.hostname, "ra.nyc");
        assert_eq!(c.interfaces.len(), 2);
        assert_eq!(c.interfaces[0].name, "system");
        assert_eq!(c.interfaces[0].ip.as_deref(), Some("10.255.0.9"));
        assert_eq!(c.interfaces[1].name, "1/1/1");
        assert_eq!(c.interfaces[1].ip.as_deref(), Some("10.0.0.5"));
        assert_eq!(
            c.interfaces[1].link_to,
            Some(("rb.chi".to_owned(), "0/1/2".to_owned()))
        );
        assert_eq!(c.bgp_neighbors.len(), 2);
        assert_eq!(
            c.bgp_neighbors[1],
            ("10.0.0.6".to_owned(), Some("1000:1002".to_owned()))
        );
    }

    #[test]
    fn empty_and_garbage_configs_do_not_panic() {
        assert_eq!(parse_config("").hostname, "");
        let c = parse_config("random junk\n  more junk\n!!!\n");
        assert_eq!(c.interfaces.len(), 0);
    }
}
