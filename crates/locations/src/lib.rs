//! # sd-locations
//!
//! Location knowledge for SyslogDigest (§4.1.2): parse router configs into
//! a [`LocationDictionary`] holding the Figure 3 hierarchy (router → slot →
//! port → physical interface → logical interface, plus bundles and LSP
//! paths), interface↔IP mappings and cross-router link/session
//! relationships; then [`extract`] verified locations from live messages
//! and answer the §4.2 *spatial matching* and cross-router relatedness
//! queries the grouping stages rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dict;
pub mod extract;
pub mod names;
pub mod parse;

pub use dict::{LocationDictionary, LocationInfo};
pub use extract::{extract, Extracted};
pub use parse::{parse_config, ParsedConfig};
