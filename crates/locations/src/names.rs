//! Interface-name structure parsing.
//!
//! Location names embed their own place in the Figure 3 hierarchy:
//! `Serial1/0.10/10:0` is a logical channel on port 0 of slot 1,
//! `GigabitEthernet2/1` is a physical port interface, `1/1/2` is a V2
//! port channel. This module decodes those shapes; the dictionary uses
//! them to attach every interface under its slot and port nodes.

/// Decoded structure of an interface/port name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IfaceStruct {
    /// V1 channelized serial: `Serial<slot>/<port>` with optional
    /// `.<sub>/<chan>:0` logical tail.
    V1Serial {
        /// Slot index.
        slot: u8,
        /// Port index.
        port: u8,
        /// Whether the name carries a logical channel tail.
        logical: bool,
    },
    /// V1 ethernet: `GigabitEthernet<slot>/<port>` with optional `.<vlan>`.
    V1Ethernet {
        /// Slot index.
        slot: u8,
        /// Port index.
        port: u8,
        /// Whether the name is a dot1q sub-interface.
        logical: bool,
    },
    /// V2 port: `<slot>/<port>/<chan>`.
    V2Port {
        /// Slot index.
        slot: u8,
        /// Port index.
        port: u8,
    },
    /// `Loopback<N>`.
    Loopback,
    /// `Multilink<N>` bundle interface.
    Multilink,
    /// Anything else.
    Other,
}

/// Decode an interface name. Returns [`IfaceStruct::Other`] for names that
/// do not follow a known convention (never panics on message-derived junk).
pub fn parse_iface_name(name: &str) -> IfaceStruct {
    if let Some(rest) = name.strip_prefix("Serial") {
        if let Some((slot, port, logical)) = slot_port(rest) {
            return IfaceStruct::V1Serial {
                slot,
                port,
                logical,
            };
        }
        return IfaceStruct::Other;
    }
    if let Some(rest) = name.strip_prefix("GigabitEthernet") {
        if let Some((slot, port, logical)) = slot_port(rest) {
            return IfaceStruct::V1Ethernet {
                slot,
                port,
                logical,
            };
        }
        return IfaceStruct::Other;
    }
    if name.starts_with("Loopback") {
        return IfaceStruct::Loopback;
    }
    if name.starts_with("Multilink") {
        return IfaceStruct::Multilink;
    }
    // V2 `s/p/c`: exactly three small integers.
    let parts: Vec<&str> = name.split('/').collect();
    if parts.len() == 3 {
        if let (Ok(slot), Ok(port), Ok(_chan)) = (
            parts[0].parse::<u8>(),
            parts[1].parse::<u8>(),
            parts[2].parse::<u16>(),
        ) {
            return IfaceStruct::V2Port { slot, port };
        }
    }
    IfaceStruct::Other
}

/// Parse `<slot>/<port>[.<...>]` returning `(slot, port, has_logical_tail)`.
fn slot_port(rest: &str) -> Option<(u8, u8, bool)> {
    let (sp, tail) = match rest.find('.') {
        Some(i) => (&rest[..i], true),
        None => (rest, false),
    };
    let (s, p) = sp.split_once('/')?;
    Some((s.parse().ok()?, p.parse().ok()?, tail))
}

/// Whether a token looks like a dotted-quad IPv4 address; returns the
/// normalized address text.
pub fn parse_ip_token(tok: &str) -> Option<String> {
    let mut n = 0;
    for part in tok.split('.') {
        let v: u32 = part.parse().ok()?;
        if v > 255 || part.is_empty() || part.len() > 3 {
            return None;
        }
        n += 1;
    }
    (n == 4).then(|| tok.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_names_decode() {
        assert_eq!(
            parse_iface_name("Serial1/0.10/10:0"),
            IfaceStruct::V1Serial {
                slot: 1,
                port: 0,
                logical: true
            }
        );
        assert_eq!(
            parse_iface_name("Serial13/2"),
            IfaceStruct::V1Serial {
                slot: 13,
                port: 2,
                logical: false
            }
        );
        assert_eq!(parse_iface_name("Serialx/y"), IfaceStruct::Other);
    }

    #[test]
    fn ethernet_names_decode() {
        assert_eq!(
            parse_iface_name("GigabitEthernet2/1"),
            IfaceStruct::V1Ethernet {
                slot: 2,
                port: 1,
                logical: false
            }
        );
        assert_eq!(
            parse_iface_name("GigabitEthernet2/1.100"),
            IfaceStruct::V1Ethernet {
                slot: 2,
                port: 1,
                logical: true
            }
        );
    }

    #[test]
    fn v2_ports_decode() {
        assert_eq!(
            parse_iface_name("1/1/2"),
            IfaceStruct::V2Port { slot: 1, port: 1 }
        );
        assert_eq!(parse_iface_name("1/1"), IfaceStruct::Other);
        assert_eq!(parse_iface_name("1/1/2/3"), IfaceStruct::Other);
        assert_eq!(parse_iface_name("900/1/2"), IfaceStruct::Other);
    }

    #[test]
    fn special_names_decode() {
        assert_eq!(parse_iface_name("Loopback0"), IfaceStruct::Loopback);
        assert_eq!(parse_iface_name("Multilink1"), IfaceStruct::Multilink);
        assert_eq!(parse_iface_name("Tunnel9"), IfaceStruct::Other);
    }

    #[test]
    fn ip_tokens_validate() {
        assert_eq!(
            parse_ip_token("192.168.32.42"),
            Some("192.168.32.42".to_owned())
        );
        assert_eq!(parse_ip_token("192.168.32"), None);
        assert_eq!(parse_ip_token("192.168.32.256"), None);
        assert_eq!(parse_ip_token("a.b.c.d"), None);
        assert_eq!(parse_ip_token("1.2.3.4.5"), None);
    }
}
