//! Online location parsing: map each raw syslog message to verified
//! dictionary locations (the "Location Parsing" box of Figure 1).
//!
//! Pattern matching alone is insufficient — a message can contain several
//! IPs and interface-like tokens (local, neighbor, remote, or even scanner
//! junk). Every candidate is therefore *verified against the dictionary*:
//! only locations the configuration actually knows are returned, split
//! into the message's own router's locations (finest first) and remote
//! references (the neighbor's interface behind an IP, a shared LSP name).

use crate::dict::LocationDictionary;
use crate::names::parse_ip_token;
use sd_model::{LocationId, RawMessage, RouterId};

/// Locations extracted from one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extracted {
    /// The originating router.
    pub router: RouterId,
    /// Verified locations: local ones first (deepest first), then remote
    /// references. Never empty — falls back to the router's own location.
    pub locations: Vec<LocationId>,
}

/// Extract and verify the locations of `m`. Returns `None` when the
/// originating router is not in the dictionary at all.
pub fn extract(dict: &LocationDictionary, m: &RawMessage) -> Option<Extracted> {
    let rid = dict.router_id(&m.router)?;
    let mut locals: Vec<LocationId> = Vec::new();
    let mut remotes: Vec<LocationId> = Vec::new();

    let push = |loc: LocationId, locals: &mut Vec<LocationId>, remotes: &mut Vec<LocationId>| {
        if dict.router_of(loc) == rid {
            if !locals.contains(&loc) {
                locals.push(loc);
            }
        } else if !remotes.contains(&loc) {
            remotes.push(loc);
        }
    };

    let toks: Vec<&str> = m.detail.split_whitespace().collect();
    for (i, raw) in toks.iter().enumerate() {
        let tok = strip(raw);
        if tok.is_empty() {
            continue;
        }
        // Two-token forms: `T3 1/0/0` controllers and `slot 3`.
        if tok == "T3" {
            if let Some(next) = toks.get(i + 1) {
                let name = format!("T3 {}", strip(next));
                if let Some(loc) = dict.by_name(rid, &name) {
                    push(loc, &mut locals, &mut remotes);
                }
            }
            continue;
        }
        if tok == "slot" {
            if let Some(next) = toks.get(i + 1) {
                if let Ok(s) = strip(next).parse::<u8>() {
                    if let Some(loc) = dict.slot(rid, s) {
                        push(loc, &mut locals, &mut remotes);
                    }
                }
            }
            continue;
        }
        // Interface / port names (verified against this router's config).
        if let Some(loc) = dict.by_name(rid, tok) {
            push(loc, &mut locals, &mut remotes);
            continue;
        }
        // LSP names are globally unique.
        if tok.starts_with("LSP-") {
            if let Some(loc) = dict.path(tok) {
                push(loc, &mut locals, &mut remotes);
            }
            continue;
        }
        // IPs, optionally with a `:port` tail. Unverifiable IPs (scanners,
        // remote hosts) are dropped — the dictionary is the arbiter.
        let ip_part = match tok.split_once(':') {
            Some((l, r)) if r.chars().all(|c| c.is_ascii_digit()) => l,
            _ => tok,
        };
        if let Some(ip) = parse_ip_token(ip_part) {
            if let Some(loc) = dict.by_ip(&ip) {
                push(loc, &mut locals, &mut remotes);
            }
        }
    }

    // Deepest local location first; fall back to the router node.
    locals.sort_by_key(|l| std::cmp::Reverse(dict.info(*l).level.depth()));
    if locals.is_empty() {
        locals.push(dict.router_location(rid));
    }
    locals.extend(remotes);
    Some(Extracted {
        router: rid,
        locations: locals,
    })
}

/// Trim message punctuation that glues to location tokens.
fn strip(tok: &str) -> &str {
    tok.trim_start_matches(['(', '"', '['])
        .trim_end_matches([',', '.', ')', '"', ';', ']'])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_model::{ErrorCode, LocationLevel, Timestamp};

    fn dict() -> LocationDictionary {
        let cfg_a = "\
hostname r1
site nyc state NY
!
controller T3 1/0/0
!
interface Loopback0
 ip address 10.255.0.1 255.255.255.255
!
interface Serial1/0
 no ip address
!
interface Serial1/0.10/10:0
 ip address 10.0.0.1 255.255.255.252
 description link to r2 Serial1/0.20/20:0
!
mpls lsp LSP-r1-r2-sec to r2 path r1 r2
";
        let cfg_b = "\
hostname r2
site chi state IL
!
interface Loopback0
 ip address 10.255.0.2 255.255.255.255
!
interface Serial1/0.20/20:0
 ip address 10.0.0.2 255.255.255.252
 description link to r1 Serial1/0.10/10:0
!
";
        LocationDictionary::build(&[cfg_a.to_owned(), cfg_b.to_owned()])
    }

    fn msg(router: &str, detail: &str) -> RawMessage {
        RawMessage::new(Timestamp(0), router, ErrorCode::from("X-1-Y"), detail)
    }

    #[test]
    fn interface_with_punctuation_is_found() {
        let d = dict();
        let e = extract(
            &d,
            &msg("r1", "Interface Serial1/0.10/10:0, changed state to down"),
        )
        .unwrap();
        let r1 = d.router_id("r1").unwrap();
        assert_eq!(e.locations[0], d.by_name(r1, "Serial1/0.10/10:0").unwrap());
    }

    #[test]
    fn controller_two_token_form() {
        let d = dict();
        let e = extract(&d, &msg("r1", "Controller T3 1/0/0, changed state to down")).unwrap();
        let r1 = d.router_id("r1").unwrap();
        assert_eq!(e.locations[0], d.by_name(r1, "T3 1/0/0").unwrap());
        assert_eq!(d.info(e.locations[0]).level, LocationLevel::Port);
    }

    #[test]
    fn slot_two_token_form() {
        let d = dict();
        let e = extract(&d, &msg("r1", "Linecard in slot 1 failed, resetting")).unwrap();
        let r1 = d.router_id("r1").unwrap();
        assert_eq!(e.locations[0], d.slot(r1, 1).unwrap());
    }

    #[test]
    fn neighbor_ip_resolves_to_remote_location_after_local() {
        let d = dict();
        let e = extract(
            &d,
            &msg(
                "r1",
                "Nbr 10.255.0.2 on Serial1/0.10/10:0 from FULL to DOWN",
            ),
        )
        .unwrap();
        let r1 = d.router_id("r1").unwrap();
        let r2 = d.router_id("r2").unwrap();
        assert_eq!(e.locations[0], d.by_name(r1, "Serial1/0.10/10:0").unwrap());
        assert!(e.locations.contains(&d.by_name(r2, "Loopback0").unwrap()));
    }

    #[test]
    fn unverifiable_ips_are_dropped() {
        let d = dict();
        let e = extract(
            &d,
            &msg(
                "r1",
                "Invalid MD5 digest from 172.16.9.9:1234 to 10.255.0.1:179",
            ),
        )
        .unwrap();
        let r1 = d.router_id("r1").unwrap();
        // Scanner address ignored; local loopback verified.
        assert_eq!(e.locations, vec![d.by_name(r1, "Loopback0").unwrap()]);
    }

    #[test]
    fn router_fallback_when_nothing_matches() {
        let d = dict();
        let e = extract(
            &d,
            &msg(
                "r1",
                "Configured from console by jsmith on vty0 (192.168.1.1)",
            ),
        )
        .unwrap();
        let r1 = d.router_id("r1").unwrap();
        assert_eq!(e.locations, vec![d.router_location(r1)]);
    }

    #[test]
    fn unknown_router_returns_none() {
        let d = dict();
        assert!(extract(
            &d,
            &msg("ghost", "Interface Serial1/0, changed state to down")
        )
        .is_none());
    }

    #[test]
    fn lsp_names_resolve_globally() {
        let d = dict();
        let e = extract(
            &d,
            &msg(
                "r2",
                "FRR protection switch for LSP LSP-r1-r2-sec to secondary path",
            ),
        )
        .unwrap();
        let p = d.path("LSP-r1-r2-sec").unwrap();
        assert!(e.locations.contains(&p));
    }

    #[test]
    fn local_locations_ordered_deepest_first() {
        let d = dict();
        let e = extract(&d, &msg("r1", "slot 1 alarm on Serial1/0.10/10:0 raised")).unwrap();
        let r1 = d.router_id("r1").unwrap();
        assert_eq!(e.locations[0], d.by_name(r1, "Serial1/0.10/10:0").unwrap());
        assert_eq!(e.locations[1], d.slot(r1, 1).unwrap());
    }
}
