//! The location dictionary: every location each router knows, arranged in
//! the Figure 3 hierarchy, plus cross-router relationships (links, BGP
//! sessions, LSP paths) — all learned **only** from router configs.

use crate::names::{parse_iface_name, IfaceStruct};
use crate::parse::{parse_config, ParsedConfig};
use sd_model::{Interner, LocationId, LocationLevel, RouterId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Metadata of one location.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocationInfo {
    /// Owning router.
    pub router: RouterId,
    /// Hierarchy level.
    pub level: LocationLevel,
    /// Canonical name (`Serial1/0.10/10:0`, `slot 3`, `T3 1/0/0`, an LSP
    /// name, or the router name itself for the top node).
    pub name: String,
}

/// The learned dictionary. Canonical data is Vec-based (serde-friendly);
/// lookup maps are rebuilt via [`LocationDictionary::rebuild_index`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LocationDictionary {
    /// Router-name interner; `RouterId(i)` indexes it.
    pub routers: Interner,
    infos: Vec<LocationInfo>,
    parent: Vec<Option<u32>>,
    /// Bundle location -> member physical-interface locations.
    bundle_members: Vec<(u32, Vec<u32>)>,
    /// Symmetric link peers: pairs of interface locations.
    peers: Vec<(u32, u32)>,
    /// BGP sessions: (local router, neighbor address, optional vrf).
    sessions: Vec<(u32, String, Option<String>)>,
    /// Path location -> router ids along the path.
    path_members: Vec<(u32, Vec<u32>)>,
    /// Per-router state code (ticket matching granularity).
    states: Vec<String>,
    /// Per-router top location.
    router_loc: Vec<u32>,
    /// Interface address -> interface location.
    ip_entries: Vec<(String, u32)>,

    #[serde(skip)]
    by_name: Vec<HashMap<String, u32>>,
    #[serde(skip)]
    by_ip: HashMap<String, u32>,
    #[serde(skip)]
    by_slot: HashMap<(u32, u8), u32>,
    #[serde(skip)]
    by_path: HashMap<String, u32>,
    #[serde(skip)]
    peer_map: HashMap<u32, u32>,
    #[serde(skip)]
    bundle_map: HashMap<u32, Vec<u32>>,
    #[serde(skip)]
    adjacent: std::collections::HashSet<(u32, u32)>,
}

/// Normalized unordered router-pair key.
fn key_pair(a: u32, b: u32) -> (u32, u32) {
    (a.min(b), a.max(b))
}

impl LocationDictionary {
    /// Build the dictionary from all router configs (two passes: per-router
    /// hierarchy first, then cross-router resolution).
    pub fn build(configs: &[String]) -> LocationDictionary {
        let parsed: Vec<ParsedConfig> = configs.iter().map(|c| parse_config(c)).collect();
        let mut d = LocationDictionary::default();

        // Pass 0: intern every hostname first so router ids are dense and
        // independent of cross-references (LSP paths may name routers whose
        // configs appear later).
        for cfg in &parsed {
            if !cfg.hostname.is_empty() {
                let rid = d.routers.intern(&cfg.hostname);
                let rloc = d.add(rid, LocationLevel::Router, cfg.hostname.clone(), None);
                debug_assert_eq!(d.router_loc.len(), rid as usize);
                d.router_loc.push(rloc);
                d.states.push(cfg.state.clone().unwrap_or_default());
            }
        }

        // Pass 1: per-router locations.
        let mut pending_links: Vec<(u32, String, String)> = Vec::new(); // (local loc, peer router, peer iface)
        for cfg in &parsed {
            if cfg.hostname.is_empty() {
                continue;
            }
            let rid = d.routers.intern(&cfg.hostname);
            let rloc = d.router_loc[rid as usize];

            for c in &cfg.controllers {
                // `T3 <slot>/<port>/<chan>`
                let Some(tail) = c.strip_prefix("T3 ") else {
                    continue;
                };
                let mut it = tail.split('/');
                let (Some(s), Some(p)) = (it.next(), it.next()) else {
                    continue;
                };
                let (Ok(slot), Ok(port)) = (s.parse::<u8>(), p.parse::<u8>()) else {
                    continue;
                };
                let slot_loc = d.slot_node(rid, rloc, slot);
                let port_loc = d.port_node(rid, slot_loc, slot, port);
                let loc = d.add(rid, LocationLevel::Port, c.clone(), Some(port_loc));
                d.by_name[rid as usize].insert(c.clone(), loc);
            }

            // Physical interfaces first (so logicals can find parents).
            for pass in 0..2 {
                for ifc in &cfg.interfaces {
                    let shape = parse_iface_name(&ifc.name);
                    let logical = matches!(
                        shape,
                        IfaceStruct::V1Serial { logical: true, .. }
                            | IfaceStruct::V1Ethernet { logical: true, .. }
                    ) || matches!(shape, IfaceStruct::Loopback)
                        || ifc.name == "system";
                    if (pass == 0) == logical {
                        continue;
                    }
                    let loc = match shape {
                        IfaceStruct::V1Serial {
                            slot,
                            port,
                            logical,
                        }
                        | IfaceStruct::V1Ethernet {
                            slot,
                            port,
                            logical,
                        } => {
                            let slot_loc = d.slot_node(rid, rloc, slot);
                            let port_loc = d.port_node(rid, slot_loc, slot, port);
                            if logical {
                                // Parent: the physical interface if
                                // configured, else the port node.
                                let phys_name = physical_prefix(&ifc.name);
                                let parent = d.by_name[rid as usize]
                                    .get(phys_name)
                                    .copied()
                                    .unwrap_or(port_loc);
                                d.add(
                                    rid,
                                    LocationLevel::LogInterface,
                                    ifc.name.clone(),
                                    Some(parent),
                                )
                            } else {
                                d.add(
                                    rid,
                                    LocationLevel::PhysInterface,
                                    ifc.name.clone(),
                                    Some(port_loc),
                                )
                            }
                        }
                        IfaceStruct::V2Port { slot, port } => {
                            let slot_loc = d.slot_node(rid, rloc, slot);
                            let port_loc = d.port_node(rid, slot_loc, slot, port);
                            d.add(
                                rid,
                                LocationLevel::PhysInterface,
                                ifc.name.clone(),
                                Some(port_loc),
                            )
                        }
                        IfaceStruct::Loopback => d.add(
                            rid,
                            LocationLevel::LogInterface,
                            ifc.name.clone(),
                            Some(rloc),
                        ),
                        IfaceStruct::Multilink => {
                            // Bundles arrive via cfg.bundles; skip here.
                            continue;
                        }
                        IfaceStruct::Other => {
                            if ifc.name == "system" {
                                d.add(
                                    rid,
                                    LocationLevel::LogInterface,
                                    "system".to_owned(),
                                    Some(rloc),
                                )
                            } else {
                                d.add(
                                    rid,
                                    LocationLevel::LogInterface,
                                    ifc.name.clone(),
                                    Some(rloc),
                                )
                            }
                        }
                    };
                    // `system` is too common a word to match in free text.
                    if ifc.name != "system" {
                        d.by_name[rid as usize].insert(ifc.name.clone(), loc);
                    }
                    if let Some(ip) = &ifc.ip {
                        d.ip_entries.push((ip.clone(), loc));
                    }
                    if let Some((pr, pi)) = &ifc.link_to {
                        pending_links.push((loc, pr.clone(), pi.clone()));
                    }
                }
            }

            for (bname, members) in &cfg.bundles {
                let bloc = d.add(rid, LocationLevel::Bundle, bname.clone(), Some(rloc));
                d.by_name[rid as usize].insert(bname.clone(), bloc);
                let member_locs: Vec<u32> = members
                    .iter()
                    .filter_map(|m| d.by_name[rid as usize].get(m).copied())
                    .collect();
                d.bundle_members.push((bloc, member_locs));
            }

            for (addr, vrf) in &cfg.bgp_neighbors {
                d.sessions.push((rid, addr.clone(), vrf.clone()));
            }

            for (name, routers) in &cfg.lsps {
                let ploc = d.add(rid, LocationLevel::Path, name.clone(), Some(rloc));
                let members: Vec<u32> = routers.iter().map(|r| d.routers.intern(r)).collect();
                // Note: intern may mint ids for routers whose configs come
                // later; router_loc/states grow in their own pass, so only
                // reference members by RouterId here.
                d.path_members.push((ploc, members));
            }
        }

        // Pass 2: resolve links (requires every router's by_name).
        for (loc, pr, pi) in pending_links {
            let Some(prid) = d.routers.get(&pr) else {
                continue;
            };
            let Some(&peer_loc) = d.by_name.get(prid as usize).and_then(|m| m.get(&pi)) else {
                continue;
            };
            if loc < peer_loc {
                d.peers.push((loc, peer_loc));
            }
        }
        // Guard: interning LSP member routers must not have outgrown the
        // per-router tables (configs should cover every named router).
        while d.router_loc.len() < d.routers.len() {
            // A router referenced but never configured: synthesize a bare
            // router-level location so lookups stay total.
            let rid = d.router_loc.len() as u32;
            let name = d.routers.resolve(rid).to_owned();
            let rloc = d.add(rid, LocationLevel::Router, name, None);
            d.router_loc.push(rloc);
            d.states.push(String::new());
        }
        d.rebuild_index();
        d
    }

    fn add(&mut self, router: u32, level: LocationLevel, name: String, parent: Option<u32>) -> u32 {
        let id = self.infos.len() as u32;
        self.infos.push(LocationInfo {
            router: RouterId(router),
            level,
            name,
        });
        self.parent.push(parent);
        while self.by_name.len() <= router as usize {
            self.by_name.push(HashMap::new());
        }
        id
    }

    fn slot_node(&mut self, rid: u32, rloc: u32, slot: u8) -> u32 {
        if let Some(&l) = self.by_slot.get(&(rid, slot)) {
            return l;
        }
        let l = self.add(rid, LocationLevel::Slot, format!("slot {slot}"), Some(rloc));
        self.by_slot.insert((rid, slot), l);
        l
    }

    fn port_node(&mut self, rid: u32, slot_loc: u32, slot: u8, port: u8) -> u32 {
        let name = format!("port {slot}/{port}");
        if let Some(&l) = self.by_name[rid as usize].get(&name) {
            return l;
        }
        let l = self.add(rid, LocationLevel::Port, name.clone(), Some(slot_loc));
        self.by_name[rid as usize].insert(name, l);
        l
    }

    /// Rebuild all lookup maps (after deserialization).
    pub fn rebuild_index(&mut self) {
        self.routers.rebuild_index();
        self.by_ip = self.ip_entries.iter().cloned().collect();
        self.by_path = self
            .infos
            .iter()
            .enumerate()
            .filter(|(_, i)| i.level == LocationLevel::Path)
            .map(|(id, i)| (i.name.clone(), id as u32))
            .collect();
        self.peer_map = self
            .peers
            .iter()
            .flat_map(|&(a, b)| [(a, b), (b, a)])
            .collect();
        self.bundle_map = self.bundle_members.iter().cloned().collect();
        self.adjacent = self
            .peers
            .iter()
            .map(|&(x, y)| {
                key_pair(
                    self.infos[x as usize].router.0,
                    self.infos[y as usize].router.0,
                )
            })
            .collect();
        // by_name / by_slot:
        self.by_name = vec![HashMap::new(); self.routers.len()];
        self.by_slot = HashMap::new();
        for (id, info) in self.infos.iter().enumerate() {
            let rid = info.router.0;
            match info.level {
                LocationLevel::Slot => {
                    if let Some(n) = info.name.strip_prefix("slot ") {
                        if let Ok(s) = n.parse::<u8>() {
                            self.by_slot.insert((rid, s), id as u32);
                        }
                    }
                }
                LocationLevel::Router => {}
                _ => {
                    if info.name != "system" {
                        self.by_name[rid as usize].insert(info.name.clone(), id as u32);
                    }
                }
            }
        }
    }

    // ---- queries ------------------------------------------------------

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Info for a location.
    pub fn info(&self, loc: LocationId) -> &LocationInfo {
        &self.infos[loc.0 as usize]
    }

    /// The owning router of a location.
    pub fn router_of(&self, loc: LocationId) -> RouterId {
        self.infos[loc.0 as usize].router
    }

    /// The router-level location of a router.
    pub fn router_location(&self, r: RouterId) -> LocationId {
        LocationId(self.router_loc[r.0 as usize])
    }

    /// The state code of a router (empty when unknown).
    pub fn state_of(&self, r: RouterId) -> &str {
        &self.states[r.0 as usize]
    }

    /// Look up a router by name.
    pub fn router_id(&self, name: &str) -> Option<RouterId> {
        self.routers.get(name).map(RouterId)
    }

    /// Look up a location by `(router, name)`.
    pub fn by_name(&self, r: RouterId, name: &str) -> Option<LocationId> {
        self.by_name
            .get(r.0 as usize)?
            .get(name)
            .copied()
            .map(LocationId)
    }

    /// Look up a slot node.
    pub fn slot(&self, r: RouterId, slot: u8) -> Option<LocationId> {
        self.by_slot.get(&(r.0, slot)).copied().map(LocationId)
    }

    /// Look up the interface that owns an address.
    pub fn by_ip(&self, ip: &str) -> Option<LocationId> {
        self.by_ip.get(ip).copied().map(LocationId)
    }

    /// Look up an LSP path location by name.
    pub fn path(&self, name: &str) -> Option<LocationId> {
        self.by_path.get(name).copied().map(LocationId)
    }

    /// The far-end interface of a link, if `loc` terminates one.
    pub fn link_peer(&self, loc: LocationId) -> Option<LocationId> {
        self.peer_map.get(&loc.0).copied().map(LocationId)
    }

    /// Routers along a path location.
    pub fn path_routers(&self, loc: LocationId) -> Option<&[u32]> {
        self.path_members
            .iter()
            .find(|(p, _)| *p == loc.0)
            .map(|(_, m)| m.as_slice())
    }

    /// BGP sessions as `(local router, neighbor address, vrf)`.
    pub fn sessions(&self) -> &[(u32, String, Option<String>)] {
        &self.sessions
    }

    /// Walk `loc` and its ancestors up to the router node (inclusive).
    pub fn ancestors(&self, loc: LocationId) -> Vec<LocationId> {
        let mut out = vec![loc];
        let mut cur = loc.0;
        while let Some(Some(p)) = self.parent.get(cur as usize) {
            out.push(LocationId(*p));
            cur = *p;
        }
        out
    }

    /// §4.2 spatial matching: true when one location maps up the hierarchy
    /// to the other (equality included). A bundle additionally contains its
    /// member interfaces and their children.
    pub fn spatially_match(&self, a: LocationId, b: LocationId) -> bool {
        if a == b {
            return true;
        }
        if self.router_of(a) != self.router_of(b) {
            return false;
        }
        let anc_a = self.ancestors(a);
        if anc_a.contains(&b) {
            return true;
        }
        let anc_b = self.ancestors(b);
        if anc_b.contains(&a) {
            return true;
        }
        // Bundle containment: bundle matches anything that maps up to a
        // member physical interface.
        for (bundle, members) in [(a, &anc_b), (b, &anc_a)] {
            if let Some(ms) = self.bundle_map.get(&bundle.0) {
                if members.iter().any(|x| ms.contains(&x.0)) {
                    return true;
                }
            }
        }
        false
    }

    /// Cross-router relatedness (§4.2.3): equal locations (shared path or
    /// remote reference), link-peer interfaces (or descendants thereof),
    /// or two router-level locations whose routers share a link/session —
    /// the paper's "two ends of one link, two ends of one BGP session".
    pub fn cross_router_related(&self, a: LocationId, b: LocationId) -> bool {
        if a == b {
            return true;
        }
        // Link peers, including children of the linked interfaces.
        let anc_b = self.ancestors(b);
        for x in self.ancestors(a) {
            if let Some(p) = self.link_peer(x) {
                if anc_b.contains(&p) {
                    return true;
                }
            }
        }
        // Router-scoped messages (service/chassis level) relate when the
        // two routers are directly connected.
        if self.info(a).level == LocationLevel::Router
            && self.info(b).level == LocationLevel::Router
        {
            return self.routers_adjacent(self.router_of(a), self.router_of(b));
        }
        false
    }

    /// Whether two routers terminate a common link.
    pub fn routers_adjacent(&self, a: RouterId, b: RouterId) -> bool {
        self.adjacent.contains(&key_pair(a.0, b.0))
    }
}

/// `Serial1/0.10/10:0` → `Serial1/0`; `GigabitEthernet2/1.100` →
/// `GigabitEthernet2/1`.
fn physical_prefix(name: &str) -> &str {
    match name.find('.') {
        Some(i) => &name[..i],
        None => name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dict() -> LocationDictionary {
        let cfg_a = "\
hostname r1
site nyc state NY
!
controller T3 1/0/0
!
interface Loopback0
 ip address 10.255.0.1 255.255.255.255
!
interface Serial1/0
 no ip address
!
interface Serial1/0.10/10:0
 ip address 10.0.0.1 255.255.255.252
 description link to r2 Serial1/0.20/20:0
!
interface Multilink1
 multilink-group member Serial1/0
!
router bgp 65000
 neighbor 10.255.0.2 remote-as 65000
!
mpls lsp LSP-r1-r2-sec to r2 path r1 r3 r2
";
        let cfg_b = "\
hostname r2
site chi state IL
!
interface Loopback0
 ip address 10.255.0.2 255.255.255.255
!
interface Serial1/0
 no ip address
!
interface Serial1/0.20/20:0
 ip address 10.0.0.2 255.255.255.252
 description link to r1 Serial1/0.10/10:0
!
";
        LocationDictionary::build(&[cfg_a.to_owned(), cfg_b.to_owned()])
    }

    #[test]
    fn hierarchy_is_built() {
        let d = sample_dict();
        let r1 = d.router_id("r1").unwrap();
        let sub = d.by_name(r1, "Serial1/0.10/10:0").unwrap();
        assert_eq!(d.info(sub).level, LocationLevel::LogInterface);
        let chain: Vec<LocationLevel> = d.ancestors(sub).iter().map(|l| d.info(*l).level).collect();
        assert_eq!(
            chain,
            vec![
                LocationLevel::LogInterface,
                LocationLevel::PhysInterface,
                LocationLevel::Port,
                LocationLevel::Slot,
                LocationLevel::Router,
            ]
        );
    }

    #[test]
    fn spatial_matching_follows_paper_example() {
        let d = sample_dict();
        let r1 = d.router_id("r1").unwrap();
        // "one message on slot 1 and another on interface Serial1/0.10/10:0
        // are spatially matched" (paper's slot-2 example, adapted).
        let slot = d.slot(r1, 1).unwrap();
        let sub = d.by_name(r1, "Serial1/0.10/10:0").unwrap();
        assert!(d.spatially_match(slot, sub));
        assert!(d.spatially_match(sub, slot));
        // Router node matches everything on the router.
        assert!(d.spatially_match(d.router_location(r1), sub));
        // Different routers never spatially match.
        let r2 = d.router_id("r2").unwrap();
        let sub2 = d.by_name(r2, "Serial1/0.20/20:0").unwrap();
        assert!(!d.spatially_match(sub, sub2));
    }

    #[test]
    fn bundles_contain_members() {
        let d = sample_dict();
        let r1 = d.router_id("r1").unwrap();
        let bundle = d.by_name(r1, "Multilink1").unwrap();
        let phys = d.by_name(r1, "Serial1/0").unwrap();
        let sub = d.by_name(r1, "Serial1/0.10/10:0").unwrap();
        assert_eq!(d.info(bundle).level, LocationLevel::Bundle);
        assert!(d.spatially_match(bundle, phys));
        assert!(
            d.spatially_match(sub, bundle),
            "bundle contains member's children"
        );
    }

    #[test]
    fn links_connect_both_ends() {
        let d = sample_dict();
        let r1 = d.router_id("r1").unwrap();
        let r2 = d.router_id("r2").unwrap();
        let a = d.by_name(r1, "Serial1/0.10/10:0").unwrap();
        let b = d.by_name(r2, "Serial1/0.20/20:0").unwrap();
        assert_eq!(d.link_peer(a), Some(b));
        assert_eq!(d.link_peer(b), Some(a));
        assert!(d.cross_router_related(a, b));
        assert!(!d.cross_router_related(a, d.by_name(r2, "Loopback0").unwrap()));
    }

    #[test]
    fn ip_lookup_resolves_remote_interfaces() {
        let d = sample_dict();
        let r2 = d.router_id("r2").unwrap();
        let lb2 = d.by_name(r2, "Loopback0").unwrap();
        assert_eq!(d.by_ip("10.255.0.2"), Some(lb2));
        assert_eq!(d.by_ip("8.8.8.8"), None);
    }

    #[test]
    fn paths_know_their_routers() {
        let d = sample_dict();
        let p = d.path("LSP-r1-r2-sec").unwrap();
        assert_eq!(d.info(p).level, LocationLevel::Path);
        let members = d.path_routers(p).unwrap();
        assert_eq!(members.len(), 3);
        // r3 was never configured but must still resolve to a router.
        let r3 = d.router_id("r3").unwrap();
        assert!(members.contains(&r3.0));
        assert_eq!(d.info(d.router_location(r3)).level, LocationLevel::Router);
    }

    #[test]
    fn states_are_recorded() {
        let d = sample_dict();
        assert_eq!(d.state_of(d.router_id("r1").unwrap()), "NY");
        assert_eq!(d.state_of(d.router_id("r2").unwrap()), "IL");
    }

    #[test]
    fn serde_roundtrip_preserves_lookups() {
        let d = sample_dict();
        let json = serde_json::to_string(&d).unwrap();
        let mut back: LocationDictionary = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        let r1 = back.router_id("r1").unwrap();
        let sub = back.by_name(r1, "Serial1/0.10/10:0").unwrap();
        assert_eq!(back.info(sub).level, LocationLevel::LogInterface);
        assert!(back.link_peer(sub).is_some());
        assert_eq!(back.by_ip("10.255.0.1"), back.by_name(r1, "Loopback0"));
    }
}
