//! The EWMA interarrival model (§4.1.3) and cluster splitting (§4.2.1).
//!
//! For each `(router, template, location)` series, the predicted
//! interarrival is `Ŝt = α·S(t−1) + (1−α)·Ŝ(t−1)`; an arrival continues
//! its cluster iff its real gap `St ≤ β·Ŝt`, clamped by `Smin` (gaps at or
//! under it always group — 1 s, the data's time granularity) and `Smax`
//! (gaps above it always split — 3 h, a domain-knowledge cap, also the
//! convergence guard the paper discusses: without it `Ŝ` can grow without
//! bound and never split again).

use sd_model::Timestamp;
use serde::{Deserialize, Serialize};

/// Parameters of the temporal model (Table 6 defaults: α per dataset,
/// β = 5, Smin = 1 s, Smax = 3 h).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemporalConfig {
    /// EWMA weight of the newest observation.
    pub alpha: f64,
    /// Split threshold multiplier (≥ 1).
    pub beta: f64,
    /// Gaps ≤ this many seconds always stay in the group.
    pub s_min: i64,
    /// Gaps > this many seconds always start a new group.
    pub s_max: i64,
}

impl TemporalConfig {
    /// Table 6 defaults for dataset A.
    pub fn dataset_a() -> Self {
        TemporalConfig {
            alpha: 0.05,
            beta: 5.0,
            s_min: 1,
            s_max: 3 * 3600,
        }
    }

    /// Table 6 defaults for dataset B.
    pub fn dataset_b() -> Self {
        TemporalConfig {
            alpha: 0.075,
            beta: 5.0,
            s_min: 1,
            s_max: 3 * 3600,
        }
    }
}

impl Default for TemporalConfig {
    fn default() -> Self {
        Self::dataset_a()
    }
}

/// Streaming EWMA tracker for one message series.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EwmaTracker {
    last: Option<Timestamp>,
    pred: Option<f64>,
}

impl EwmaTracker {
    /// A fresh tracker (first observation always opens a group).
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe an arrival; returns `true` when it *starts a new group*.
    ///
    /// The EWMA is maintained across group boundaries, exactly as the
    /// paper computes it over the full interarrival sequence; with small α
    /// an occasional between-group gap barely moves the prediction.
    pub fn observe(&mut self, ts: Timestamp, cfg: &TemporalConfig) -> bool {
        let new_group = match self.last {
            None => true,
            Some(prev) => {
                let gap = ts.seconds_since(prev).max(0);
                let decision = if gap <= cfg.s_min {
                    false
                } else if gap > cfg.s_max {
                    true
                } else {
                    match self.pred {
                        // No prediction yet (second message overall):
                        // adopt the gap as the first estimate; a gap under
                        // Smax with nothing to compare against groups.
                        None => false,
                        Some(p) => (gap as f64) > cfg.beta * p.max(cfg.s_min as f64),
                    }
                };
                self.pred = Some(match self.pred {
                    None => gap as f64,
                    Some(p) => cfg.alpha * gap as f64 + (1.0 - cfg.alpha) * p,
                });
                decision
            }
        };
        self.last = Some(ts);
        new_group
    }

    /// Current predicted interarrival, if any gap has been observed.
    pub fn prediction(&self) -> Option<f64> {
        self.pred
    }
}

/// Split a sorted timestamp series into clusters; returns the 0-based
/// group index of each element.
pub fn group_series(ts: &[Timestamp], cfg: &TemporalConfig) -> Vec<usize> {
    let mut tracker = EwmaTracker::new();
    let mut group = 0usize;
    let mut out = Vec::with_capacity(ts.len());
    for (i, &t) in ts.iter().enumerate() {
        if tracker.observe(t, cfg) && i > 0 {
            group += 1;
        }
        out.push(group);
    }
    out
}

/// Number of clusters `group_series` would produce.
pub fn count_groups(ts: &[Timestamp], cfg: &TemporalConfig) -> usize {
    match group_series(ts, cfg).last() {
        Some(&g) => g + 1,
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: i64) -> Timestamp {
        Timestamp(secs)
    }

    fn cfg(alpha: f64, beta: f64) -> TemporalConfig {
        TemporalConfig {
            alpha,
            beta,
            s_min: 1,
            s_max: 3 * 3600,
        }
    }

    #[test]
    fn periodic_series_forms_one_group() {
        let ts: Vec<Timestamp> = (0..50).map(|i| t(i * 300)).collect();
        assert_eq!(count_groups(&ts, &cfg(0.05, 2.0)), 1);
    }

    #[test]
    fn clusters_split_on_large_gaps() {
        // Two bursts of 10 messages 5 s apart, separated by 2 hours.
        let mut ts = Vec::new();
        for b in 0..2 {
            for i in 0..10 {
                ts.push(t(b * 7200 + i * 5));
            }
        }
        let groups = group_series(&ts, &cfg(0.05, 5.0));
        assert_eq!(groups[9], groups[0]);
        assert_eq!(groups[10], groups[9] + 1);
        assert_eq!(count_groups(&ts, &cfg(0.05, 5.0)), 2);
    }

    #[test]
    fn smin_always_groups_smax_always_splits() {
        let c = cfg(0.5, 1.0);
        // 1-second gaps group regardless of prediction.
        let ts: Vec<Timestamp> = (0..20).map(t).collect();
        assert_eq!(count_groups(&ts, &c), 1);
        // A gap beyond 3 h always splits, even with huge beta.
        let c2 = cfg(0.5, 1000.0);
        let ts2 = vec![t(0), t(5), t(10), t(10 + 4 * 3600)];
        assert_eq!(count_groups(&ts2, &c2), 2);
    }

    #[test]
    fn larger_beta_never_increases_group_count() {
        let mut ts = Vec::new();
        let mut cur = 0i64;
        for i in 0..200 {
            cur += 5 + (i % 17) * 7;
            ts.push(t(cur));
        }
        let mut prev = usize::MAX;
        for beta in [2.0, 3.0, 5.0, 7.0] {
            let n = count_groups(&ts, &cfg(0.05, beta));
            assert!(n <= prev, "beta {beta}: {n} > {prev}");
            prev = n;
        }
    }

    #[test]
    fn empty_and_singleton_series() {
        assert_eq!(count_groups(&[], &cfg(0.05, 2.0)), 0);
        assert_eq!(count_groups(&[t(42)], &cfg(0.05, 2.0)), 1);
    }

    #[test]
    fn ewma_prediction_converges_to_period() {
        let c = cfg(0.2, 2.0);
        let mut tr = EwmaTracker::new();
        for i in 0..100 {
            tr.observe(t(i * 60), &c);
        }
        let p = tr.prediction().unwrap();
        assert!((p - 60.0).abs() < 1.0, "prediction {p}");
    }

    #[test]
    fn jitter_spike_with_large_alpha_causes_splits() {
        // A short gap right before a normal one: with alpha near 1 the
        // prediction collapses to the short gap and the next normal gap
        // splits; with small alpha it doesn't. This is the Figure 10
        // mechanism (compression degrades as alpha grows).
        let ts = vec![t(0), t(100), t(200), t(210), t(310), t(410)];
        let jumpy = count_groups(&ts, &cfg(0.95, 2.0));
        let calm = count_groups(&ts, &cfg(0.05, 2.0));
        assert!(jumpy > calm, "jumpy {jumpy} calm {calm}");
    }

    #[test]
    fn out_of_order_timestamps_do_not_panic() {
        let ts = vec![t(100), t(50), t(150)];
        let n = count_groups(&ts, &cfg(0.05, 2.0));
        assert!(n >= 1);
    }
}
