//! Offline α/β calibration (§4.1.3, Figures 10–11).
//!
//! The offline learner sweeps α (at β = 2) and then β (at the chosen α)
//! over the historical per-series timestamp collections, measuring the
//! *temporal-grouping compression ratio* (#groups / #messages); the
//! parameters that stabilize/minimize the ratio become the Table 6
//! defaults used online.

use crate::ewma::{count_groups, TemporalConfig};
use sd_model::{par_map, Parallelism, Timestamp};

/// A collection of per-key timestamp series (one per
/// `(router, template, location)` in the driver).
pub type SeriesSet = Vec<Vec<Timestamp>>;

/// Temporal compression ratio of grouping every series with `cfg`.
pub fn compression_ratio(series: &SeriesSet, cfg: &TemporalConfig) -> f64 {
    let mut groups = 0usize;
    let mut msgs = 0usize;
    for s in series {
        groups += count_groups(s, cfg);
        msgs += s.len();
    }
    if msgs == 0 {
        return 0.0;
    }
    groups as f64 / msgs as f64
}

/// Sweep α at fixed β, returning `(alpha, ratio)` pairs (Figure 10).
pub fn sweep_alpha(series: &SeriesSet, alphas: &[f64], beta: f64) -> Vec<(f64, f64)> {
    sweep_alpha_par(series, alphas, beta, Parallelism::sequential())
}

/// [`sweep_alpha`] with the grid points evaluated on `par.threads` scoped
/// threads. Every point is an independent pass over `series`, so results
/// are identical for every thread count.
pub fn sweep_alpha_par(
    series: &SeriesSet,
    alphas: &[f64],
    beta: f64,
    par: Parallelism,
) -> Vec<(f64, f64)> {
    par_map(par, alphas, |_, &alpha| {
        let cfg = TemporalConfig {
            alpha,
            beta,
            ..TemporalConfig::default()
        };
        (alpha, compression_ratio(series, &cfg))
    })
}

/// Sweep β at fixed α, returning `(beta, ratio)` pairs (Figure 11).
pub fn sweep_beta(series: &SeriesSet, betas: &[f64], alpha: f64) -> Vec<(f64, f64)> {
    sweep_beta_par(series, betas, alpha, Parallelism::sequential())
}

/// [`sweep_beta`] with the grid points evaluated on `par.threads` scoped
/// threads; see [`sweep_alpha_par`].
pub fn sweep_beta_par(
    series: &SeriesSet,
    betas: &[f64],
    alpha: f64,
    par: Parallelism,
) -> Vec<(f64, f64)> {
    par_map(par, betas, |_, &beta| {
        let cfg = TemporalConfig {
            alpha,
            beta,
            ..TemporalConfig::default()
        };
        (beta, compression_ratio(series, &cfg))
    })
}

/// Full calibration: pick the α minimizing the ratio at β = 2, then the
/// smallest β (from `betas`) whose further increase improves the ratio by
/// less than `knee` relatively — the paper's "improvement of compression
/// diminishes" rule that selected β = 5.
pub fn calibrate(series: &SeriesSet, alphas: &[f64], betas: &[f64], knee: f64) -> TemporalConfig {
    calibrate_par(series, alphas, betas, knee, Parallelism::sequential())
}

/// [`calibrate`] with both sweeps parallelized over their grid points.
/// The α sweep and the β sweep stay sequential relative to each other
/// (β's grid depends on the chosen α), and the picked parameters are
/// identical for every thread count.
pub fn calibrate_par(
    series: &SeriesSet,
    alphas: &[f64],
    betas: &[f64],
    knee: f64,
    par: Parallelism,
) -> TemporalConfig {
    let by_alpha = sweep_alpha_par(series, alphas, 2.0, par);
    let alpha = by_alpha
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(a, _)| a)
        .unwrap_or(0.05);
    let by_beta = sweep_beta_par(series, betas, alpha, par);
    let mut beta = by_beta.last().map(|(b, _)| *b).unwrap_or(5.0);
    for w in by_beta.windows(2) {
        let (b0, r0) = w[0];
        let (_, r1) = w[1];
        if r0 <= 0.0 || (r0 - r1) / r0 < knee {
            beta = b0;
            break;
        }
    }
    TemporalConfig {
        alpha,
        beta,
        ..TemporalConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: i64) -> Timestamp {
        Timestamp(secs)
    }

    /// Series with slow drift + occasional jitter spikes: small alpha must
    /// beat large alpha (Figure 10 shape).
    fn jittery_series(n_series: usize) -> SeriesSet {
        let mut out = Vec::new();
        for s in 0..n_series {
            let mut ts = Vec::new();
            let mut cur = 0i64;
            let mut gap = 30.0 + s as f64;
            for i in 0..300 {
                let g = if i % 13 == 0 { gap * 0.1 } else { gap };
                cur += g as i64;
                ts.push(t(cur));
                gap *= if i % 2 == 0 { 1.03 } else { 0.98 };
            }
            out.push(ts);
        }
        out
    }

    #[test]
    fn small_alpha_beats_large_alpha_on_jitter() {
        let series = jittery_series(5);
        let swept = sweep_alpha(&series, &[0.05, 0.6], 2.0);
        assert!(
            swept[0].1 < swept[1].1,
            "alpha 0.05 ratio {} should beat alpha 0.6 ratio {}",
            swept[0].1,
            swept[1].1
        );
    }

    #[test]
    fn ratio_monotone_in_beta() {
        let series = jittery_series(4);
        let swept = sweep_beta(&series, &[2.0, 3.0, 4.0, 5.0, 6.0, 7.0], 0.05);
        for w in swept.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-12,
                "beta sweep not monotone: {swept:?}"
            );
        }
    }

    #[test]
    fn calibrate_returns_sensible_parameters() {
        let series = jittery_series(6);
        let cfg = calibrate(
            &series,
            &[0.0, 0.05, 0.1, 0.2, 0.4, 0.6],
            &[2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
            0.02,
        );
        assert!(cfg.alpha <= 0.2, "alpha {}", cfg.alpha);
        assert!((2.0..=7.0).contains(&cfg.beta), "beta {}", cfg.beta);
    }

    #[test]
    fn empty_series_set_is_zero_ratio() {
        assert_eq!(
            compression_ratio(&Vec::new(), &TemporalConfig::default()),
            0.0
        );
        let cfg = calibrate(&Vec::new(), &[0.05], &[2.0, 5.0], 0.02);
        assert_eq!(cfg.alpha, 0.05);
    }

    #[test]
    fn perfect_periodic_series_compress_fully() {
        let series: SeriesSet = (0..3)
            .map(|_| (0..100).map(|i| t(i * 120)).collect())
            .collect();
        let r = compression_ratio(&series, &TemporalConfig::default());
        assert!((r - 3.0 / 300.0).abs() < 1e-9, "ratio {r}");
    }
}
