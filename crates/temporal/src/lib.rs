//! # sd-temporal
//!
//! Temporal pattern mining for SyslogDigest: the per-series EWMA
//! interarrival model with `Smin`/`Smax` clamps (§4.1.3 / §4.2.1) and the
//! offline α/β calibration sweeps behind Figures 10–11 and Table 6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod ewma;

pub use calibrate::{
    calibrate, calibrate_par, compression_ratio, sweep_alpha, sweep_alpha_par, sweep_beta,
    sweep_beta_par, SeriesSet,
};
pub use ewma::{count_groups, group_series, EwmaTracker, TemporalConfig};
