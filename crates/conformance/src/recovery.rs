//! Recovery conformance: crash, corrupt, recover, replay — and demand
//! the digest a fresh uninterrupted run would have produced.
//!
//! The durability layer's contract has two halves:
//!
//! 1. **Bounded loss** — a crash (even mid-checkpoint-write) loses at
//!    most one checkpoint interval of progress: the newest *complete*
//!    generation is never more than `ckpt_every` lines behind the kill
//!    point.
//! 2. **Exact resumption** — replaying the rest of the feed on top of
//!    the recovered snapshot yields the *same event partition* as a run
//!    that was never interrupted.
//!
//! [`verify_recovery`] checks both, for every storage-fault kind, by
//! streaming a prefix of the feed with rotated checkpoints, damaging the
//! newest generation with [`sd_netsim::iofaults`], recovering through
//! [`FaultTolerantIngest::recover`], and comparing
//! [`partition_digest`](crate::golden::partition_digest)s.

use crate::golden::{partition_digest, run_feed};
use sd_netsim::{apply_fault, StorageFault};
use std::fmt;
use std::path::Path;
use syslogdigest::{
    generation_path, DomainKnowledge, FaultTolerantIngest, GroupingConfig, NetworkEvent,
    StreamConfig,
};

/// The storage-fault kinds every recovery conformance run must survive.
/// (`short-write` leaves the same on-disk image as `truncate`, so the
/// matrix covers the three distinct damage shapes.)
pub const RECOVERY_FAULT_KINDS: [&str; 3] = ["truncate", "bitflip", "disk-full"];

/// What one fault scenario recovered to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Fault kind injected into the newest generation (`"none"` for the
    /// pristine control scenario).
    pub fault: String,
    /// Generation the recovery settled on (0 = newest).
    pub generation: u32,
    /// Generations skipped as corrupt on the way there.
    pub n_corrupt: usize,
    /// Feed lines replayed after the recovered snapshot.
    pub lines_replayed: usize,
}

impl fmt::Display for RecoveryOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault {:<10} -> generation {} ({} corrupt skipped, {} lines replayed)",
            self.fault, self.generation, self.n_corrupt, self.lines_replayed
        )
    }
}

/// Stream `lines` with rotated checkpoints, crash at a checkpoint
/// boundary, inject every storage fault into the newest generation (plus
/// one pristine control), recover, replay, and verify both halves of the
/// durability contract. Checkpoint files are written under `dir` (one
/// subdirectory per scenario); the caller owns cleanup.
///
/// Returns one [`RecoveryOutcome`] per scenario, or a description of the
/// first violated guarantee.
pub fn verify_recovery(
    k: &DomainKnowledge,
    lines: &[String],
    max_skew_secs: i64,
    ckpt_every: usize,
    keep: usize,
    seed: u64,
    dir: &Path,
) -> Result<Vec<RecoveryOutcome>, String> {
    // The kill point sits exactly at a checkpoint boundary, modelling a
    // crash during the write of generation 0: the torn file is the one
    // being written, and the previous complete generation is exactly one
    // interval behind.
    let cut = (lines.len() * 2 / 3) / ckpt_every * ckpt_every;
    if cut < 2 * ckpt_every || keep == 0 {
        return Err(format!(
            "feed too short for recovery conformance: {} lines, cut {cut}, \
             interval {ckpt_every} (need at least two intervals before the cut)",
            lines.len()
        ));
    }

    // Oracle: the uninterrupted run.
    let (baseline_events, _) = run_feed(k, lines, max_skew_secs);
    let baseline = partition_digest(&baseline_events);

    // Stream the prefix, checkpointing with rotation. Remember, at each
    // save point, how many lines were consumed and how many events had
    // been emitted so far — a recovery that lands on that save resumes
    // *from* it, so the pre-save events combine with the replayed ones.
    let ckpt = dir.join("ref.ckpt");
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let mut ing = FaultTolerantIngest::new(
        k,
        GroupingConfig::default(),
        StreamConfig::default(),
        max_skew_secs,
    );
    let mut prefix_events: Vec<NetworkEvent> = Vec::new();
    let mut saves: Vec<(usize, usize)> = Vec::new(); // (lines consumed, events emitted)
    for (i, line) in lines[..cut].iter().enumerate() {
        prefix_events.extend(ing.push_line(line));
        if (i + 1) % ckpt_every == 0 {
            ing.checkpoint()
                .save_rotated(&ckpt, keep)
                .map_err(|e| format!("saving rotated checkpoint: {e}"))?;
            saves.push((i + 1, prefix_events.len()));
        }
    }
    drop(ing);

    let scenarios: Vec<Option<&str>> = std::iter::once(None)
        .chain(RECOVERY_FAULT_KINDS.iter().map(|&f| Some(f)))
        .collect();
    let mut outcomes = Vec::new();
    for fault_kind in scenarios {
        let name = fault_kind.unwrap_or("none");
        let fault_dir = dir.join(name);
        std::fs::create_dir_all(&fault_dir)
            .map_err(|e| format!("creating {}: {e}", fault_dir.display()))?;
        let fault_ckpt = fault_dir.join("ref.ckpt");
        for g in 0..=keep as u32 {
            let src = generation_path(&ckpt, g);
            if src.exists() {
                std::fs::copy(&src, generation_path(&fault_ckpt, g))
                    .map_err(|e| format!("copying generation {g}: {e}"))?;
            }
        }
        if let Some(kind) = fault_kind {
            let bytes = std::fs::read(&fault_ckpt)
                .map_err(|e| format!("reading checkpoint for {kind}: {e}"))?;
            let fault = StorageFault::from_seed(kind, seed, bytes.len())
                .ok_or_else(|| format!("unknown storage fault kind {kind:?}"))?;
            std::fs::write(&fault_ckpt, apply_fault(&bytes, &fault))
                .map_err(|e| format!("writing damaged checkpoint: {e}"))?;
        }

        let (mut resumed, report) = FaultTolerantIngest::recover(k, &fault_ckpt, keep)
            .map_err(|e| format!("fault {name}: recovery failed entirely: {e}"))?
            .ok_or_else(|| format!("fault {name}: recovery found no snapshot at all"))?;
        let consumed = report.lines_consumed;

        // Guarantee 1: bounded loss.
        if cut - consumed > ckpt_every {
            return Err(format!(
                "fault {name}: recovered snapshot is {} lines behind the crash \
                 point — more than one checkpoint interval ({ckpt_every})",
                cut - consumed
            ));
        }
        let &(_, events_at_save) =
            saves.iter().find(|&&(n, _)| n == consumed).ok_or_else(|| {
                format!("fault {name}: recovered to {consumed} lines, not a save point")
            })?;

        // Guarantee 2: exact resumption.
        let mut events: Vec<NetworkEvent> = prefix_events[..events_at_save].to_vec();
        for line in &lines[consumed..] {
            events.extend(resumed.push_line(line));
        }
        let (rest, _stats) = resumed.finish();
        events.extend(rest);
        let digest = partition_digest(&events);
        if digest != baseline {
            return Err(format!(
                "fault {name}: recovered replay diverged from the uninterrupted \
                 run (partition {digest} != baseline {baseline}, resumed from \
                 generation {} at line {consumed})",
                report.generation
            ));
        }

        outcomes.push(RecoveryOutcome {
            fault: name.to_owned(),
            generation: report.generation,
            n_corrupt: report.n_corrupt,
            lines_replayed: lines.len() - consumed,
        });
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_netsim::{inject, Dataset, DatasetSpec, FaultSpec};
    use syslogdigest::offline::{learn, OfflineConfig};

    #[test]
    fn every_storage_fault_recovers_to_the_baseline_partition() {
        let d = Dataset::generate(DatasetSpec::preset_a().scaled(0.05));
        let k = learn(&d.configs, d.train(), &OfflineConfig::dataset_a());
        let (lines, _) = inject(d.online(), &FaultSpec::bounded(11));
        let every = lines.len() / 5;
        let dir = std::env::temp_dir().join(format!("sd-recovery-conf-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let outcomes =
            verify_recovery(&k, &lines, 30, every, 2, 11, &dir).expect("recovery conformance");
        assert_eq!(outcomes.len(), 1 + RECOVERY_FAULT_KINDS.len());

        // Control: pristine checkpoints recover the newest generation.
        assert_eq!(outcomes[0].fault, "none");
        assert_eq!(outcomes[0].generation, 0);
        assert_eq!(outcomes[0].n_corrupt, 0);

        // Every injected fault fell back past the damaged newest
        // generation (the seeded offsets never leave a loadable prefix).
        for o in &outcomes[1..] {
            assert_eq!(o.generation, 1, "{o}");
            assert_eq!(o.n_corrupt, 1, "{o}");
            assert!(o.lines_replayed > 0, "{o}");
        }

        let _ = std::fs::remove_dir_all(&dir);
    }
}
