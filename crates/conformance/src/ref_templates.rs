//! Reference template learning and matching (§4.1.1), written as a plain
//! recursive tree construction over owned strings — no span indexes, no
//! per-bucket threading, no borrowed-key maps.
//!
//! §4.1.1 builds, per message type, a *sub-type tree* over the
//! whitespace-tokenized detail texts: repeatedly pick the most frequent
//! word at the most discriminating position; if fixing it would create
//! more than `k` children the position is a variable field and is masked
//! (the paper's pruning rule, k = 10); each root→leaf path is one
//! template.
//!
//! Semantics pinned here (asserted against `sd_templates::learn` by the
//! differential suite):
//!
//! * messages are bucketed by `(code, token count)` — sub-types of one
//!   code with different token counts are distinct templates;
//! * the split position is the one with the strictly greatest top-word
//!   count; the **earliest** position wins ties;
//! * a position with more than `k` distinct words is masked, with exactly
//!   `k` distinct words it is split (the `k`/`k+1` boundary);
//! * a position with one distinct word is fixed as a constant;
//! * child subtrees are expanded in sorted word order;
//! * codes above `max_per_code` training messages are stride-sampled per
//!   bucket with the same arithmetic the production learner uses (the
//!   sample *is* part of the learning contract — a different sample could
//!   legitimately learn different templates).

use sd_model::{ErrorCode, RawMessage, TemplateId};
use sd_templates::{LearnerConfig, TemplateSet};
use std::collections::BTreeMap;

/// One position of a partially built template path.
#[derive(Clone)]
enum Field {
    /// Not yet decided.
    Open,
    /// Declared a variable field (more than `k` distinct words).
    Mask,
    /// Fixed to a literal word on this path.
    Word(String),
}

/// Learn templates from historical messages; returns the sorted,
/// deduplicated masked strings (`<code> w1 * w3 …`), the canonical form
/// [`TemplateSet`] also exposes via `masked()`.
pub fn ref_learn(messages: &[RawMessage], cfg: &LearnerConfig) -> Vec<String> {
    // Bucket detail token-vectors by (code, token count); count per code.
    let mut buckets: BTreeMap<(ErrorCode, usize), Vec<Vec<String>>> = BTreeMap::new();
    let mut counts: BTreeMap<ErrorCode, usize> = BTreeMap::new();
    for m in messages {
        let toks: Vec<String> = m.detail.split_whitespace().map(str::to_owned).collect();
        *counts.entry(m.code.clone()).or_insert(0) += 1;
        buckets
            .entry((m.code.clone(), toks.len()))
            .or_default()
            .push(toks);
    }

    let mut out = Vec::new();
    for ((code, width), mut rows) in buckets {
        let total_for_code = counts[&code];
        if total_for_code > cfg.max_per_code {
            // Same stride-sampling arithmetic as the production learner:
            // the sample is part of the contract.
            let keep = (cfg.max_per_code * rows.len() / total_for_code).max(64);
            if rows.len() > keep {
                let stride = rows.len() / keep;
                rows = rows.into_iter().step_by(stride.max(1)).collect();
            }
        }
        let members: Vec<usize> = (0..rows.len()).collect();
        build(
            &code,
            &rows,
            members,
            vec![Field::Open; width],
            cfg.k,
            &mut out,
        );
    }
    out.sort();
    out.dedup();
    out
}

/// Refine one tree node until it either emits a leaf or fans out.
fn build(
    code: &ErrorCode,
    rows: &[Vec<String>],
    members: Vec<usize>,
    mut fields: Vec<Field>,
    k: usize,
    out: &mut Vec<String>,
) {
    loop {
        // Word frequencies at every open position.
        let mut best: Option<(usize, usize, usize)> = None; // (pos, top, distinct)
        for (p, f) in fields.iter().enumerate() {
            if !matches!(f, Field::Open) {
                continue;
            }
            let mut freq: BTreeMap<&str, usize> = BTreeMap::new();
            for &mi in &members {
                *freq.entry(rows[mi][p].as_str()).or_insert(0) += 1;
            }
            let top = freq.values().copied().max().unwrap_or(0);
            // Strictly greater only: the earliest position wins ties.
            if best.is_none_or(|(_, bt, _)| top > bt) {
                best = Some((p, top, freq.len()));
            }
        }
        let Some((pos, _, distinct)) = best else {
            out.push(render(code, &fields));
            return;
        };
        if distinct > k {
            fields[pos] = Field::Mask;
        } else if distinct == 1 {
            fields[pos] = Field::Word(rows[members[0]][pos].clone());
        } else {
            // 2..=k distinct words: one child per word, sorted order.
            let mut groups: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
            for &mi in &members {
                groups.entry(rows[mi][pos].as_str()).or_default().push(mi);
            }
            for (word, child_members) in groups {
                let mut child = fields.clone();
                child[pos] = Field::Word(word.to_owned());
                build(code, rows, child_members, child, k, out);
            }
            return;
        }
    }
}

fn render(code: &ErrorCode, fields: &[Field]) -> String {
    let mut s = String::from(code.as_str());
    for f in fields {
        s.push(' ');
        match f {
            Field::Word(w) => s.push_str(w),
            Field::Open | Field::Mask => s.push('*'),
        }
    }
    s
}

/// Match one message against a learned [`TemplateSet`] by scanning every
/// template: among matches of the right code, the **most specific** (most
/// fixed words) wins, and the lowest id breaks specificity ties — the
/// tie-break the production index's stable specificity sort implements.
pub fn ref_match(set: &TemplateSet, code: &ErrorCode, detail: &str) -> Option<TemplateId> {
    let toks: Vec<&str> = detail.split_whitespace().collect();
    let mut best: Option<(usize, TemplateId)> = None;
    for (id, t) in set.iter() {
        if &t.code != code || !t.matches(&toks) {
            continue;
        }
        let spec = t.specificity();
        // Strictly greater only: earlier (lower) ids win ties.
        if best.is_none_or(|(bs, _)| spec > bs) {
            best = Some((spec, id));
        }
    }
    best.map(|(_, id)| id)
}

/// Resolve a template id the way `DomainKnowledge::resolve_template` does,
/// but through [`ref_match`]: learned template, else the per-code fallback
/// pseudo-template, else `UNKNOWN_TEMPLATE`.
pub fn ref_resolve(
    k: &syslogdigest::DomainKnowledge,
    code: &ErrorCode,
    detail: &str,
) -> TemplateId {
    if let Some(t) = ref_match(&k.templates, code, detail) {
        return t;
    }
    match k.fallback_codes.get(code.as_str()) {
        Some(i) => TemplateId(k.templates.len() as u32 + i),
        None => syslogdigest::UNKNOWN_TEMPLATE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_model::Timestamp;

    fn msg(code: &str, detail: &str) -> RawMessage {
        RawMessage::new(Timestamp(0), "r1", ErrorCode::from(code), detail)
    }

    #[test]
    fn learns_the_link_updown_subtypes() {
        let mut msgs = Vec::new();
        for i in 0..30 {
            for state in ["down", "up"] {
                msgs.push(msg(
                    "LINK-3-UPDOWN",
                    &format!("Interface Serial{i}/0, changed state to {state}"),
                ));
            }
        }
        let learned = ref_learn(&msgs, &LearnerConfig::default());
        assert_eq!(
            learned,
            vec![
                "LINK-3-UPDOWN Interface * changed state to down".to_owned(),
                "LINK-3-UPDOWN Interface * changed state to up".to_owned(),
            ]
        );
    }

    #[test]
    fn scan_matcher_prefers_specific_then_low_id() {
        use sd_templates::{MaskTok, Template};
        let t = |pat: &str| Template {
            code: ErrorCode::from("C-1-M"),
            toks: pat
                .split_whitespace()
                .map(|w| {
                    if w == "*" {
                        MaskTok::Star
                    } else {
                        MaskTok::Word(w.to_owned())
                    }
                })
                .collect(),
        };
        let set = TemplateSet::from_templates(vec![t("a * c"), t("a b c"), t("* b c")]);
        let code = ErrorCode::from("C-1-M");
        let hit = ref_match(&set, &code, "a b c").unwrap();
        assert_eq!(set.get(hit).masked(), "C-1-M a b c");
        // Two 2-specific candidates match "a x c" → only "a * c" does.
        let hit = ref_match(&set, &code, "a x c").unwrap();
        assert_eq!(set.get(hit).masked(), "C-1-M a * c");
    }
}
