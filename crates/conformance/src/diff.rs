//! The differential driver: run every reference oracle against the
//! optimized pipeline on one netsim-generated corpus and report the
//! **first divergence with full provenance** — which message (by batch
//! seq), which template ids, and which decision differed.
//!
//! Stage order is chosen so the earliest-failing oracle points closest to
//! the root cause: learned template sets first (everything downstream
//! keys off template ids), then per-message matching, temporal clustering,
//! co-occurrence counts and mined rules, the grouping edge sets, and
//! finally the partitions themselves plus thread-count determinism.

use crate::ref_grouping::{ref_components, ref_edges};
use crate::ref_rules::{ref_count, ref_mine};
use crate::ref_templates::{ref_learn, ref_resolve};
use crate::ref_temporal::ref_group_series;
use sd_model::{Parallelism, Timestamp};
use sd_netsim::Dataset;
use sd_rules::CoOccurrence;
use sd_temporal::group_series;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use syslogdigest::offline::{learn, mining_stream, OfflineConfig};
use syslogdigest::provenance::MergeCause;
use syslogdigest::{augment_batch, group, stage_edges, DomainKnowledge, GroupingConfig};

/// Which oracle observed the divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Learned template sets differ (reference learner vs optimized).
    Templates,
    /// A message resolved to different templates.
    Matching,
    /// An EWMA series clustered differently.
    Temporal,
    /// Co-occurrence counts or the mined rule sets differ.
    Rules,
    /// The grouping edge sets or partitions differ.
    Grouping,
    /// The optimized pipeline disagreed with itself across thread counts.
    Determinism,
}

impl Stage {
    /// Short stage name for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Templates => "templates",
            Stage::Matching => "matching",
            Stage::Temporal => "temporal",
            Stage::Rules => "rules",
            Stage::Grouping => "grouping",
            Stage::Determinism => "determinism",
        }
    }
}

/// The first observed difference between reference and optimized.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The oracle that caught it.
    pub stage: Stage,
    /// Full provenance of the differing decision.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.stage.as_str(), self.detail)
    }
}

/// What a fully conformant run looked like (sizes for the report).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConformanceSummary {
    /// Training messages.
    pub n_train: usize,
    /// Online messages.
    pub n_online: usize,
    /// Learned templates (identical in both implementations).
    pub n_templates: usize,
    /// Mined rules (identical in both implementations).
    pub n_rules: usize,
    /// Grouping edges (identical edge sets).
    pub n_edges: usize,
    /// Final event groups (identical partitions).
    pub n_groups: usize,
}

fn diverge(stage: Stage, detail: String) -> Divergence {
    Divergence { stage, detail }
}

/// Run the full differential suite over one dataset. `threads` is the
/// parallel lane compared against the sequential one (the determinism
/// oracle); every reference comparison runs against the sequential lane.
pub fn verify_dataset(
    d: &Dataset,
    ocfg: &OfflineConfig,
    gcfg: &GroupingConfig,
    threads: usize,
) -> Result<ConformanceSummary, Divergence> {
    let mut seq = ocfg.clone();
    seq.par = Parallelism::sequential();
    let k = learn(&d.configs, d.train(), &seq);

    // ---- determinism: knowledge learned at threads=N is identical -------
    let mut par = ocfg.clone();
    par.par = Parallelism::with_threads(threads);
    let kn = learn(&d.configs, d.train(), &par);
    check_knowledge_determinism(&k, &kn, threads)?;
    drop(kn);

    // ---- template learning oracle ---------------------------------------
    let reference = ref_learn(d.train(), &ocfg.learner);
    let mut optimized: Vec<String> = k.templates.iter().map(|(_, t)| t.masked()).collect();
    optimized.sort();
    if reference != optimized {
        return Err(first_list_diff(Stage::Templates, &reference, &optimized));
    }

    // ---- template matching oracle ----------------------------------------
    for (i, m) in d.online().iter().enumerate() {
        let opt = k.resolve_template(&m.code, &m.detail);
        let refv = ref_resolve(&k, &m.code, &m.detail);
        if opt != refv {
            return Err(diverge(
                Stage::Matching,
                format!(
                    "message seq {i} ts {} router {} code {} detail {:?}: \
                     optimized -> t{} ({}), reference -> t{} ({})",
                    m.ts.0,
                    m.router,
                    m.code.as_str(),
                    m.detail,
                    opt.0,
                    k.template_signature(opt),
                    refv.0,
                    k.template_signature(refv)
                ),
            ));
        }
    }

    // ---- grouping stage oracles over the augmented online batch ----------
    let (batch, _) = augment_batch(&k, d.online());
    let mut g1 = *gcfg;
    g1.par = Parallelism::sequential();

    // Temporal clustering, series by series.
    let mut series: BTreeMap<(u32, u32, u32), Vec<usize>> = BTreeMap::new();
    for (i, sp) in batch.iter().enumerate() {
        let key = (
            sp.router.0,
            sp.template.map(|t| t.0).unwrap_or(u32::MAX),
            sp.primary_location().map(|l| l.0).unwrap_or(u32::MAX),
        );
        series.entry(key).or_default().push(i);
    }
    for (key, idxs) in &series {
        let ts: Vec<Timestamp> = idxs.iter().map(|&i| batch[i].ts).collect();
        let opt = group_series(&ts, &k.temporal);
        let refv = ref_group_series(&ts, &k.temporal);
        if opt != refv {
            let at = opt.iter().zip(&refv).position(|(a, b)| a != b).unwrap_or(0);
            return Err(diverge(
                Stage::Temporal,
                format!(
                    "series (router {}, template {}, location {}): element {} \
                     (message seq {}, ts {}): optimized group {}, reference group {}",
                    key.0, key.1, key.2, at, idxs[at], ts[at].0, opt[at], refv[at]
                ),
            ));
        }
    }

    // Co-occurrence counts and mined rules over the training stream.
    let stream = mining_stream(&k, d.train());
    let ref_co = ref_count(&stream, ocfg.window_secs);
    let opt_co = CoOccurrence::count(&stream, ocfg.window_secs);
    if let Some(msg) = count_diff(&ref_co, &opt_co) {
        return Err(diverge(Stage::Rules, msg));
    }
    let ref_rules = ref_mine(&ref_co, &ocfg.mine);
    let opt_rules = k.rules.rules();
    if ref_rules.len() != opt_rules.len()
        || ref_rules.iter().zip(opt_rules).any(|(r, o)| {
            (r.x, r.y) != (o.x.0, o.y.0)
                || r.support.to_bits() != o.support.to_bits()
                || r.confidence.to_bits() != o.confidence.to_bits()
        })
    {
        return Err(diverge(
            Stage::Rules,
            format!(
                "mined rule sets differ: reference {:?}, optimized {:?}",
                ref_rules.iter().map(|r| (r.x, r.y)).collect::<Vec<_>>(),
                opt_rules.iter().map(|r| (r.x.0, r.y.0)).collect::<Vec<_>>()
            ),
        ));
    }

    // Edge sets: the per-decision comparison.
    let opt_edges = stage_edges(&k, &batch, &g1);
    let reference_edges = ref_edges(&k, &batch, &g1);
    let opt_set: BTreeSet<EdgeKey> = opt_edges.iter().map(edge_key).collect();
    let ref_set: BTreeSet<EdgeKey> = reference_edges.iter().map(edge_key).collect();
    if let Some(&e) = opt_set.difference(&ref_set).next() {
        return Err(diverge(
            Stage::Grouping,
            edge_report(&k, &batch, e, "optimized linked, reference did not"),
        ));
    }
    if let Some(&e) = ref_set.difference(&opt_set).next() {
        return Err(diverge(
            Stage::Grouping,
            edge_report(&k, &batch, e, "reference linked, optimized did not"),
        ));
    }

    // Partitions (follows from the edges, asserted end to end anyway).
    let opt_grouping = group(&k, &batch, &g1);
    let (ref_labels, ref_n) = ref_components(batch.len(), &reference_edges);
    if opt_grouping.group_of != ref_labels {
        let at = opt_grouping
            .group_of
            .iter()
            .zip(&ref_labels)
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        return Err(diverge(
            Stage::Grouping,
            format!(
                "partitions differ first at message seq {at}: optimized group {}, \
                 reference group {} ({} vs {} groups)",
                opt_grouping.group_of[at], ref_labels[at], opt_grouping.n_groups, ref_n
            ),
        ));
    }

    // ---- determinism: grouping at threads=N is identical ------------------
    let mut gn = *gcfg;
    gn.par = Parallelism::with_threads(threads);
    let par_grouping = group(&k, &batch, &gn);
    if par_grouping.group_of != opt_grouping.group_of {
        let at = par_grouping
            .group_of
            .iter()
            .zip(&opt_grouping.group_of)
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        return Err(diverge(
            Stage::Determinism,
            format!(
                "grouping differs between threads=1 and threads={threads} \
                 first at message seq {at}"
            ),
        ));
    }

    Ok(ConformanceSummary {
        n_train: d.train().len(),
        n_online: d.online().len(),
        n_templates: k.templates.len(),
        n_rules: k.rules.len(),
        n_edges: opt_edges.len(),
        n_groups: opt_grouping.n_groups,
    })
}

/// Sortable edge identity: `(a, b, stage tag, rule pair)`.
type EdgeKey = (usize, usize, u8, u32, u32);

fn edge_key(e: &(usize, usize, MergeCause)) -> EdgeKey {
    match e.2 {
        MergeCause::Temporal => (e.0, e.1, 0, 0, 0),
        MergeCause::Rule(x, y) => (e.0, e.1, 1, x, y),
        MergeCause::Cross => (e.0, e.1, 2, 0, 0),
    }
}

fn edge_report(
    k: &DomainKnowledge,
    batch: &[sd_model::SyslogPlus],
    e: EdgeKey,
    verdict: &str,
) -> String {
    let (a, b, tag, x, y) = e;
    let stage = match tag {
        0 => "temporal".to_owned(),
        1 => format!("rule ({x},{y})"),
        _ => "cross-router".to_owned(),
    };
    let describe = |i: usize| {
        let sp = &batch[i];
        format!(
            "seq {i} ts {} router {} template {}",
            sp.ts.0,
            k.dict.routers.resolve(sp.router.0),
            sp.template
                .map(|t| format!("t{} ({})", t.0, k.template_signature(t)))
                .unwrap_or_else(|| "-".to_owned()),
        )
    };
    format!(
        "{stage} edge between [{}] and [{}]: {verdict}",
        describe(a),
        describe(b)
    )
}

fn check_knowledge_determinism(
    k: &DomainKnowledge,
    kn: &DomainKnowledge,
    threads: usize,
) -> Result<(), Divergence> {
    let masked = |k: &DomainKnowledge| -> Vec<String> {
        k.templates.iter().map(|(_, t)| t.masked()).collect()
    };
    if masked(k) != masked(kn) {
        return Err(diverge(
            Stage::Determinism,
            format!("template sets differ between threads=1 and threads={threads}"),
        ));
    }
    let rules = |k: &DomainKnowledge| -> Vec<(u32, u32, u64, u64)> {
        k.rules
            .rules()
            .iter()
            .map(|r| (r.x.0, r.y.0, r.support.to_bits(), r.confidence.to_bits()))
            .collect()
    };
    if rules(k) != rules(kn) {
        return Err(diverge(
            Stage::Determinism,
            format!("rule sets differ between threads=1 and threads={threads}"),
        ));
    }
    if k.temporal != kn.temporal {
        return Err(diverge(
            Stage::Determinism,
            format!("temporal parameters differ between threads=1 and threads={threads}"),
        ));
    }
    Ok(())
}

fn first_list_diff(stage: Stage, reference: &[String], optimized: &[String]) -> Divergence {
    let n = reference.len().max(optimized.len());
    for i in 0..n {
        let r = reference.get(i).map(String::as_str);
        let o = optimized.get(i).map(String::as_str);
        if r != o {
            return diverge(
                stage,
                format!(
                    "entry {i}: reference {:?}, optimized {:?} \
                     ({} reference vs {} optimized entries)",
                    r,
                    o,
                    reference.len(),
                    optimized.len()
                ),
            );
        }
    }
    diverge(
        stage,
        "lists differ but no differing entry found".to_owned(),
    )
}

fn count_diff(r: &crate::ref_rules::RefCoOccurrence, o: &CoOccurrence) -> Option<String> {
    if r.n_transactions != o.n_transactions {
        return Some(format!(
            "transaction counts differ: reference {}, optimized {}",
            r.n_transactions, o.n_transactions
        ));
    }
    let o_items: BTreeMap<u32, u64> = o.item_counts.iter().map(|(&k, &v)| (k, v)).collect();
    if r.item_counts != o_items {
        let keys: BTreeSet<u32> = r
            .item_counts
            .keys()
            .chain(o_items.keys())
            .copied()
            .collect();
        let key = keys
            .into_iter()
            .find(|k| r.item_counts.get(k) != o_items.get(k));
        return Some(format!(
            "item counts differ first at template {key:?}: reference {:?}, optimized {:?}",
            key.and_then(|k| r.item_counts.get(&k)),
            key.and_then(|k| o_items.get(&k))
        ));
    }
    let o_pairs: BTreeMap<(u32, u32), u64> = o.pair_counts.iter().map(|(&k, &v)| (k, v)).collect();
    if r.pair_counts != o_pairs {
        let keys: BTreeSet<(u32, u32)> = r
            .pair_counts
            .keys()
            .chain(o_pairs.keys())
            .copied()
            .collect();
        let key = keys
            .into_iter()
            .find(|k| r.pair_counts.get(k) != o_pairs.get(k));
        return Some(format!(
            "pair counts differ first at {key:?}: reference {:?}, optimized {:?}",
            key.and_then(|k| r.pair_counts.get(&k)),
            key.and_then(|k| o_pairs.get(&k))
        ));
    }
    None
}
