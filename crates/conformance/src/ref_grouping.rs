//! Reference grouping (§4.2.1–§4.2.3): the three stages' union edges
//! derived by naive backward scans over the batch, plus naive connected
//! components by label propagation — no per-key trackers, no
//! representative maps, no queues, no union-find.
//!
//! The production grouper and this reference must produce the **same edge
//! set** (up to ordering), and therefore the same partition. Documented
//! deliberate difference: the production cross-router stage caps its
//! per-template recency queue at 1024 entries as a memory guard; the
//! reference has no cap, so a burst of > 1024 same-template messages
//! inside the 1-second simultaneity window could legitimately diverge.
//! No netsim corpus comes near that density; the differential driver
//! would report it as a cross-stage divergence if one ever did.

use sd_model::{LocationId, SyslogPlus};
use std::collections::{BTreeMap, BTreeSet};
use syslogdigest::provenance::MergeCause;
use syslogdigest::{DomainKnowledge, GroupingConfig};

/// All union edges the configured stages produce over a time-sorted batch,
/// each with the stage (and rule pair) that caused it.
pub fn ref_edges(
    k: &DomainKnowledge,
    batch: &[SyslogPlus],
    cfg: &GroupingConfig,
) -> Vec<(usize, usize, MergeCause)> {
    let mut edges = Vec::new();

    // ---- §4.2.1 temporal: per (router, template, location) series, link
    // consecutive arrivals the EWMA keeps in one cluster.
    if cfg.temporal {
        let mut series: BTreeMap<(u32, u32, u32), Vec<usize>> = BTreeMap::new();
        for (i, sp) in batch.iter().enumerate() {
            let key = (
                sp.router.0,
                sp.template.map(|t| t.0).unwrap_or(u32::MAX),
                sp.primary_location().map(|l| l.0).unwrap_or(u32::MAX),
            );
            series.entry(key).or_default().push(i);
        }
        for idxs in series.values() {
            let ts: Vec<_> = idxs.iter().map(|&i| batch[i].ts).collect();
            let labels = crate::ref_temporal::ref_group_series(&ts, &k.temporal);
            for m in 1..idxs.len() {
                if labels[m] == labels[m - 1] {
                    edges.push((idxs[m - 1], idxs[m], MergeCause::Temporal));
                }
            }
        }
    }

    // ---- §4.2.2 rules: link each message to the *latest* prior
    // same-router occurrence of every other template/location within W,
    // when a mined rule relates the templates and the locations spatially
    // match. Scanning backward, the first occurrence of each
    // (template, location) key is that key's representative; older
    // occurrences are shadowed even when the representative itself fails
    // the window or spatial test.
    if cfg.rules {
        let w = k.window_secs;
        for (j, sp) in batch.iter().enumerate() {
            let Some(tj) = sp.template else { continue };
            let loc_j = sp.primary_location();
            let mut seen: BTreeSet<(u32, u32)> = BTreeSet::new();
            for i in (0..j).rev() {
                let other = &batch[i];
                if sp.ts.seconds_since(other.ts) > w {
                    break; // time-sorted: everything earlier is older still
                }
                if other.router != sp.router {
                    continue;
                }
                let (Some(ti), Some(loc_i)) = (other.template, other.primary_location()) else {
                    continue; // never a representative
                };
                if !seen.insert((ti.0, loc_i.0)) {
                    continue; // shadowed by a later occurrence of the key
                }
                if ti == tj || !k.rules.related(tj, ti) {
                    continue;
                }
                let spatial = match loc_j {
                    Some(a) => k.dict.spatially_match(a, loc_i),
                    None => false,
                };
                if spatial {
                    edges.push((i, j, MergeCause::Rule(tj.0.min(ti.0), tj.0.max(ti.0))));
                }
            }
        }
    }

    // ---- §4.2.3 cross-router: same template on two routers within the
    // simultaneity window, at related locations.
    if cfg.cross {
        let cw = cfg.cross_window_secs;
        for (j, sp) in batch.iter().enumerate() {
            let Some(tj) = sp.template else { continue };
            for i in (0..j).rev() {
                let other = &batch[i];
                if sp.ts.seconds_since(other.ts) > cw {
                    break;
                }
                if other.template != Some(tj) || other.router == sp.router {
                    continue;
                }
                if ref_cross_related(k, sp, other) {
                    edges.push((i, j, MergeCause::Cross));
                }
            }
        }
    }

    edges
}

/// §4.2.3 relatedness, re-derived: two messages are related when they
/// reference the same location, locations that are the two ends of one
/// link (or one LSP path), or when one side's remote reference (say, the
/// neighbor's loopback behind an IP) spatially matches the other side's
/// own location.
fn ref_cross_related(k: &DomainKnowledge, a: &SyslogPlus, b: &SyslogPlus) -> bool {
    let related = |x: LocationId, y: LocationId| {
        x == y
            || k.dict.cross_router_related(x, y)
            || (k.dict.router_of(x) == k.dict.router_of(y) && k.dict.spatially_match(x, y))
    };
    a.locations
        .iter()
        .any(|&x| b.locations.iter().any(|&y| related(x, y)))
}

/// Naive connected components over `n` nodes: propagate the minimum label
/// along edges until a fixpoint, then relabel densely by first appearance
/// — the same canonical form `UnionFind::groups()` returns.
pub fn ref_components(n: usize, edges: &[(usize, usize, MergeCause)]) -> (Vec<usize>, usize) {
    let mut label: Vec<usize> = (0..n).collect();
    loop {
        let mut changed = false;
        for &(a, b, _) in edges {
            let m = label[a].min(label[b]);
            if label[a] != m {
                label[a] = m;
                changed = true;
            }
            if label[b] != m {
                label[b] = m;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Dense relabel by first appearance.
    let mut dense: BTreeMap<usize, usize> = BTreeMap::new();
    let mut next = 0usize;
    let mut out = Vec::with_capacity(n);
    for &l in &label {
        let id = *dense.entry(l).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        out.push(id);
    }
    (out, next)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_of_a_chain_and_an_isolate() {
        let edges = vec![(0, 1, MergeCause::Temporal), (1, 2, MergeCause::Cross)];
        let (labels, n) = ref_components(4, &edges);
        assert_eq!(labels, vec![0, 0, 0, 1]);
        assert_eq!(n, 2);
    }

    #[test]
    fn components_match_union_find() {
        use syslogdigest::union_find::UnionFind;
        let edges = vec![
            (3, 1, MergeCause::Temporal),
            (4, 5, MergeCause::Cross),
            (1, 4, MergeCause::Temporal),
            (0, 6, MergeCause::Cross),
        ];
        let (labels, n) = ref_components(7, &edges);
        let mut uf = UnionFind::new(7);
        for &(a, b, _) in &edges {
            uf.union(a, b);
        }
        let (ulabels, un) = uf.groups();
        assert_eq!(labels, ulabels);
        assert_eq!(n, un);
    }
}
