//! Reference windowed pairwise rule mining (§4.1.4), enumerated one
//! transaction at a time — no run compression, no sharding, no incremental
//! multiset maintenance.
//!
//! "We use a sliding window W. It starts with the first message and slides
//! message by message. Each time there is one transaction" whose items are
//! the **distinct templates** of the messages inside `[t, t + W]` on the
//! same router (association is only meaningful between messages close in
//! time at related locations, so windows never span routers). A rule
//! `x ⇒ y` (`|X| = |Y| = 1`) survives iff both items clear `SPmin` and the
//! rule clears `Confmin` — both thresholds **inclusive** (`≥`).

use sd_model::Timestamp;
use sd_rules::{MineConfig, StreamItem};
use std::collections::{BTreeMap, BTreeSet};

/// Co-occurrence counts from one naive pass (deterministically ordered).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefCoOccurrence {
    /// Number of transactions — one per message.
    pub n_transactions: u64,
    /// Transactions containing each template.
    pub item_counts: BTreeMap<u32, u64>,
    /// Transactions containing each unordered pair, keyed `(min, max)`.
    pub pair_counts: BTreeMap<(u32, u32), u64>,
}

/// Count transactions over a **time-sorted** stream: for every message
/// (the anchor), one transaction holding the distinct templates of the
/// same-router messages with `ts − ts_anchor ≤ W`, looking forward only.
pub fn ref_count(stream: &[StreamItem], w_secs: i64) -> RefCoOccurrence {
    // Split per router, preserving time order.
    let mut per_router: BTreeMap<u32, Vec<(Timestamp, u32)>> = BTreeMap::new();
    for &(ts, r, t) in stream {
        per_router.entry(r.0).or_default().push((ts, t.0));
    }
    let mut co = RefCoOccurrence::default();
    for msgs in per_router.values() {
        for (left, &(t_left, _)) in msgs.iter().enumerate() {
            let mut items: BTreeSet<u32> = BTreeSet::new();
            for &(ts, t) in &msgs[left..] {
                if ts.seconds_since(t_left) > w_secs {
                    break;
                }
                items.insert(t);
            }
            co.n_transactions += 1;
            let items: Vec<u32> = items.into_iter().collect();
            for (i, &a) in items.iter().enumerate() {
                *co.item_counts.entry(a).or_insert(0) += 1;
                for &b in &items[i + 1..] {
                    *co.pair_counts.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
    }
    co
}

/// A mined directed rule, with the statistics the production miner stores.
#[derive(Debug, Clone, PartialEq)]
pub struct RefRule {
    /// Antecedent template.
    pub x: u32,
    /// Consequent template.
    pub y: u32,
    /// `supp(x)` at mining time.
    pub support: f64,
    /// `conf(x ⇒ y)` at mining time.
    pub confidence: f64,
}

/// Extract every rule clearing the thresholds, sorted by `(x, y)`.
///
/// Eligibility and confidence are both inclusive (`≥`), and the fractions
/// are computed with the same integer operands and division order as the
/// production miner, so the stored statistics compare bit-for-bit.
pub fn ref_mine(co: &RefCoOccurrence, cfg: &MineConfig) -> Vec<RefRule> {
    let n = co.n_transactions;
    if n == 0 {
        return Vec::new();
    }
    let supp = |t: u32| *co.item_counts.get(&t).unwrap_or(&0) as f64 / n as f64;
    let eligible = |t: u32| supp(t) >= cfg.sp_min;
    let mut rules = Vec::new();
    for (&(a, b), &n_ab) in &co.pair_counts {
        if !eligible(a) || !eligible(b) {
            continue;
        }
        for (x, y) in [(a, b), (b, a)] {
            let n_x = *co.item_counts.get(&x).unwrap_or(&0);
            if n_x == 0 {
                continue;
            }
            let conf = n_ab as f64 / n_x as f64;
            if conf >= cfg.conf_min {
                rules.push(RefRule {
                    x,
                    y,
                    support: supp(x),
                    confidence: conf,
                });
            }
        }
    }
    rules.sort_by_key(|r| (r.x, r.y));
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_model::{RouterId, TemplateId};

    fn s(ts: i64, r: u32, t: u32) -> StreamItem {
        (Timestamp(ts), RouterId(r), TemplateId(t))
    }

    #[test]
    fn counts_one_transaction_per_message() {
        let stream = vec![s(0, 0, 1), s(5, 0, 2), s(1000, 0, 1)];
        let co = ref_count(&stream, 10);
        assert_eq!(co.n_transactions, 3);
        assert_eq!(co.pair_counts[&(1, 2)], 1);
        assert_eq!(co.item_counts[&1], 2);
    }

    #[test]
    fn windows_never_span_routers() {
        let stream = vec![s(0, 0, 1), s(1, 1, 2)];
        let co = ref_count(&stream, 100);
        assert!(co.pair_counts.is_empty());
    }

    #[test]
    fn mine_keeps_inclusive_boundaries() {
        let mut co = RefCoOccurrence {
            n_transactions: 10_000,
            ..Default::default()
        };
        co.item_counts.insert(1, 10);
        co.item_counts.insert(2, 5); // exactly SPmin = 0.0005
        co.pair_counts.insert((1, 2), 8); // conf(1 ⇒ 2) = 0.8 exactly
        let rules = ref_mine(&co, &MineConfig::default());
        assert_eq!(rules.len(), 2, "{rules:?}");
        assert_eq!((rules[0].x, rules[0].y), (1, 2));
        assert_eq!((rules[1].x, rules[1].y), (2, 1));
    }
}
