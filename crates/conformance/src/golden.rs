//! The golden-corpus regression gate: snapshot digests of streaming
//! digest runs over netsim corpora (~6 seeds × clean/bounded/hostile
//! fault presets), checked into `crates/conformance/golden/corpus.json`.
//!
//! Each entry pins an FNV-1a digest of the run's canonical event
//! partition (groups relabeled by their smallest member sequence), the
//! learned template set, and the mined rule set, plus the headline ingest
//! counters. Any behavioral change to learning, matching, grouping, the
//! reorder buffer, or fault handling moves at least one digest and fails
//! `validate_conformance` in CI; intentional changes are re-pinned with
//! `validate_conformance --bless`, whose diff the reviewer sees as a
//! one-file change alongside the code that caused it.

use sd_netsim::{inject, FaultSpec};
use serde::{Deserialize, Serialize};
use syslogdigest::ingest::{FaultTolerantIngest, IngestStats};
use syslogdigest::stream::StreamConfig;
use syslogdigest::{DomainKnowledge, GroupingConfig, NetworkEvent};

/// Format version of the golden file.
pub const GOLDEN_VERSION: u32 = 1;

/// Fault variants pinned per seed, in file order.
pub const VARIANTS: [&str; 3] = ["clean", "bounded", "hostile"];

/// One pinned corpus run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenEntry {
    /// Dataset seed.
    pub seed: u64,
    /// Fault preset: `clean`, `bounded`, or `hostile`.
    pub variant: String,
    /// Feed lines after fault injection.
    pub n_lines: usize,
    /// Events the streaming digest emitted.
    pub n_events: usize,
    /// Late-dropped messages.
    pub n_late: usize,
    /// Absorbed duplicate messages.
    pub n_duplicate: usize,
    /// Unparseable lines skipped.
    pub n_malformed: usize,
    /// FNV-1a of the canonical event partition, hex.
    pub partition: String,
    /// FNV-1a of the learned template set (masked strings), hex.
    pub templates: String,
    /// FNV-1a of the mined rule set (ids + statistic bits), hex.
    pub rules: String,
}

/// The checked-in golden file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenFile {
    /// [`GOLDEN_VERSION`] at bless time.
    pub version: u32,
    /// Dataset scale factor the corpora were generated at.
    pub scale: f64,
    /// Reorder tolerance every run used.
    pub max_skew_secs: i64,
    /// All pinned runs, ordered by (seed, variant).
    pub entries: Vec<GoldenEntry>,
}

impl GoldenFile {
    /// Parse a golden file.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let f: GoldenFile = serde_json::from_str(text).map_err(|e| e.0)?;
        if f.version != GOLDEN_VERSION {
            return Err(format!(
                "golden file version {} but this binary expects {}",
                f.version, GOLDEN_VERSION
            ));
        }
        Ok(f)
    }

    /// Serialize for check-in.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("golden file serializes")
    }

    /// Find the pinned entry for `(seed, variant)`.
    pub fn find(&self, seed: u64, variant: &str) -> Option<&GoldenEntry> {
        self.entries
            .iter()
            .find(|e| e.seed == seed && e.variant == variant)
    }
}

/// Default on-disk location of the golden corpus (inside this crate).
pub fn default_golden_path() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/golden/corpus.json").to_owned()
}

/// FNV-1a over a byte stream.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv {
    /// Fold bytes in.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Fold one u64 in (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far, as the hex string stored in golden files.
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Canonical partition digest: each event's member sequence ids sorted,
/// groups sorted by smallest member, separators between groups. Two runs
/// digest equal iff they emitted the same partition of the same accepted
/// messages (sequence ids are assigned by the ingest layer in arrival
/// order, so they line up across runs of the same feed).
pub fn partition_digest(events: &[NetworkEvent]) -> String {
    let mut groups: Vec<Vec<usize>> = events
        .iter()
        .map(|e| {
            let mut m = e.message_idxs.clone();
            m.sort_unstable();
            m
        })
        .collect();
    groups.sort();
    let mut h = Fnv::default();
    for g in &groups {
        h.write_u64(g.len() as u64);
        for &i in g {
            h.write_u64(i as u64);
        }
        h.write(b"/");
    }
    h.hex()
}

/// Digest of the learned template set: the sorted masked strings.
pub fn template_digest(k: &DomainKnowledge) -> String {
    let mut masked: Vec<String> = k.templates.iter().map(|(_, t)| t.masked()).collect();
    masked.sort();
    let mut h = Fnv::default();
    for m in &masked {
        h.write(m.as_bytes());
        h.write(b"\n");
    }
    h.hex()
}

/// Digest of the mined rule set: directed ids plus the exact statistic
/// bits (support and confidence are deterministic integer divisions).
pub fn rule_digest(k: &DomainKnowledge) -> String {
    let mut h = Fnv::default();
    for r in k.rules.rules() {
        h.write_u64(r.x.0 as u64);
        h.write_u64(r.y.0 as u64);
        h.write_u64(r.support.to_bits());
        h.write_u64(r.confidence.to_bits());
    }
    h.hex()
}

/// Stream a feed through the fault-tolerant ingest layer.
pub fn run_feed(
    k: &DomainKnowledge,
    lines: &[String],
    max_skew_secs: i64,
) -> (Vec<NetworkEvent>, IngestStats) {
    let mut ing = FaultTolerantIngest::new(
        k,
        GroupingConfig::default(),
        StreamConfig::default(),
        max_skew_secs,
    );
    let mut events = Vec::new();
    for line in lines {
        events.extend(ing.push_line(line));
    }
    let (rest, stats) = ing.finish();
    events.extend(rest);
    (events, stats)
}

/// The [`FaultSpec`] preset for a golden variant name.
pub fn variant_spec(variant: &str, seed: u64) -> FaultSpec {
    match variant {
        "clean" => FaultSpec::clean(seed),
        "bounded" => FaultSpec::bounded(seed),
        "hostile" => FaultSpec::hostile(seed),
        other => panic!("unknown golden variant {other:?}"),
    }
}

/// Compute the golden entry for one `(seed, variant)` corpus run.
pub fn compute_entry(
    k: &DomainKnowledge,
    online: &[sd_model::RawMessage],
    seed: u64,
    variant: &str,
    max_skew_secs: i64,
) -> GoldenEntry {
    let (lines, _report) = inject(online, &variant_spec(variant, seed));
    let (events, stats) = run_feed(k, &lines, max_skew_secs);
    GoldenEntry {
        seed,
        variant: variant.to_owned(),
        n_lines: lines.len(),
        n_events: events.len(),
        n_late: stats.n_late,
        n_duplicate: stats.n_duplicate,
        n_malformed: stats.n_malformed,
        partition: partition_digest(&events),
        templates: template_digest(k),
        rules: rule_digest(k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        let mut a = Fnv::default();
        a.write(b"ab");
        let mut b = Fnv::default();
        b.write(b"ba");
        assert_ne!(a.hex(), b.hex());
        let mut c = Fnv::default();
        c.write(b"ab");
        assert_eq!(a.hex(), c.hex());
    }

    #[test]
    fn golden_file_roundtrips() {
        let f = GoldenFile {
            version: GOLDEN_VERSION,
            scale: 0.05,
            max_skew_secs: 30,
            entries: vec![GoldenEntry {
                seed: 1,
                variant: "clean".into(),
                n_lines: 10,
                n_events: 2,
                n_late: 0,
                n_duplicate: 0,
                n_malformed: 0,
                partition: "00ff".into(),
                templates: "aa".into(),
                rules: "bb".into(),
            }],
        };
        let back = GoldenFile::from_json(&f.to_json()).unwrap();
        assert_eq!(back, f);
        assert!(back.find(1, "clean").is_some());
        assert!(back.find(1, "hostile").is_none());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let f = GoldenFile {
            version: GOLDEN_VERSION + 1,
            scale: 0.05,
            max_skew_secs: 30,
            entries: Vec::new(),
        };
        assert!(GoldenFile::from_json(&f.to_json()).is_err());
    }
}
