//! # sd-conformance
//!
//! Reference oracles and the differential conformance harness for the
//! SyslogDigest reproduction.
//!
//! Every optimized path in the workspace — the indexed zero-allocation
//! template matcher, the sharded learner, the run-compressed transaction
//! counter, the union-find grouping — is only ever tested against itself
//! elsewhere. This crate holds small, deliberately naive implementations
//! of each pipeline stage written straight from the paper's equations
//! (§4.1.1 sub-type trees, §4.1.3 EWMA interarrival clustering, §4.1.4
//! windowed pairwise rule mining, §4.2.1–§4.2.3 grouping), with none of
//! the production code's indexes, sharding, or incremental state:
//!
//! * [`ref_templates`] — recursive sub-type tree construction and a
//!   scan-every-template matcher;
//! * [`ref_temporal`] — the EWMA recurrence, re-derived;
//! * [`ref_rules`] — per-anchor window enumeration and threshold checks;
//! * [`ref_grouping`] — the three stage edge sets plus naive
//!   label-propagation connected components.
//!
//! [`diff::verify_dataset`] runs reference and optimized side by side on a
//! netsim-generated corpus and reports the **first divergence with full
//! provenance** (message seq, template ids, the decision that differed).
//! [`golden`] pins snapshot digests of ~6 seeds × clean/bounded/hostile
//! corpora, regenerated via `validate_conformance --bless`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod golden;
pub mod recovery;
pub mod ref_grouping;
pub mod ref_rules;
pub mod ref_templates;
pub mod ref_temporal;

pub use diff::{verify_dataset, ConformanceSummary, Divergence, Stage};
pub use golden::{GoldenEntry, GoldenFile, GOLDEN_VERSION};
pub use recovery::{verify_recovery, RecoveryOutcome, RECOVERY_FAULT_KINDS};
