//! Reference EWMA temporal clustering, written straight from §4.1.3's
//! equations with no shared state or library reuse.
//!
//! The predicted interarrival after observing gap `S(t−1)` is
//!
//! ```text
//! Ŝt = α·S(t−1) + (1−α)·Ŝ(t−1)
//! ```
//!
//! and arrival `t` *continues* its cluster iff `St ≤ β·Ŝt`, subject to the
//! paper's clamps: a gap at or under `Smin` (the data's 1-second time
//! granularity) always groups, a gap above `Smax` (3 h) always splits, and
//! the prediction is floored at `Smin` inside the comparison so a
//! burst-collapsed `Ŝ` cannot make every subsequent arrival split.

use sd_model::Timestamp;
use sd_temporal::TemporalConfig;

/// Cluster a time-sorted series: the 0-based group label per element.
///
/// Semantics pinned here (and asserted against the optimized tracker by
/// the differential suite):
///
/// * the first arrival opens group 0;
/// * a gap `≤ s_min` groups unconditionally;
/// * a gap `> s_max` splits unconditionally;
/// * with no prediction yet (the second arrival), a gap within the clamps
///   groups and is adopted as the first estimate `Ŝ`;
/// * otherwise the split test is **strict**: `St > β·max(Ŝ, s_min)`, so
///   exact equality `St = β·Ŝt` stays in the group;
/// * the EWMA is maintained across group boundaries (the paper computes
///   it over the full interarrival sequence);
/// * negative gaps (out-of-order input) clamp to 0 and therefore group.
pub fn ref_group_series(ts: &[Timestamp], cfg: &TemporalConfig) -> Vec<usize> {
    let mut labels = Vec::with_capacity(ts.len());
    let mut group = 0usize;
    let mut prev: Option<Timestamp> = None;
    let mut pred: Option<f64> = None;
    for &t in ts {
        if let Some(p) = prev {
            let gap = t.seconds_since(p).max(0);
            let split = if gap <= cfg.s_min {
                false
            } else if gap > cfg.s_max {
                true
            } else {
                match pred {
                    None => false,
                    Some(s_hat) => (gap as f64) > cfg.beta * s_hat.max(cfg.s_min as f64),
                }
            };
            pred = Some(match pred {
                None => gap as f64,
                Some(s_hat) => cfg.alpha * gap as f64 + (1.0 - cfg.alpha) * s_hat,
            });
            if split {
                group += 1;
            }
        }
        labels.push(group);
        prev = Some(t);
    }
    labels
}

/// Number of clusters [`ref_group_series`] produces.
pub fn ref_count_groups(ts: &[Timestamp], cfg: &TemporalConfig) -> usize {
    match ref_group_series(ts, cfg).last() {
        Some(&g) => g + 1,
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(alpha: f64, beta: f64) -> TemporalConfig {
        TemporalConfig {
            alpha,
            beta,
            s_min: 1,
            s_max: 3 * 3600,
        }
    }

    #[test]
    fn periodic_series_is_one_group() {
        let ts: Vec<Timestamp> = (0..40).map(|i| Timestamp(i * 300)).collect();
        assert_eq!(ref_count_groups(&ts, &cfg(0.05, 2.0)), 1);
    }

    #[test]
    fn two_hour_gap_splits() {
        let ts = vec![
            Timestamp(0),
            Timestamp(5),
            Timestamp(10),
            Timestamp(10 + 2 * 3600),
        ];
        assert_eq!(ref_count_groups(&ts, &cfg(0.05, 5.0)), 2);
    }
}
