//! Differential suite: the naive reference oracles vs. the optimized
//! pipeline, on netsim corpora (end-to-end, via `verify_dataset`) and on
//! randomized inputs (property tests per stage).
//!
//! Case counts scale with the `PROPTEST_CASES` environment variable
//! (default below per test) — CI's scheduled long-fuzz job sets it high;
//! PR runs keep the defaults.

use proptest::{prop_assert_eq, proptest, ProptestConfig};
use sd_conformance::ref_rules::{ref_count, ref_mine, RefRule};
use sd_conformance::ref_templates::{ref_learn, ref_match};
use sd_conformance::ref_temporal::ref_group_series;
use sd_conformance::verify_dataset;
use sd_model::{ErrorCode, RawMessage, RouterId, TemplateId, Timestamp};
use sd_netsim::corpus::Corpus;
use sd_rules::{mine, CoOccurrence, MineConfig, StreamItem};
use sd_templates::{learn, LearnerConfig};
use sd_temporal::{group_series, TemporalConfig};
use syslogdigest::offline::OfflineConfig;
use syslogdigest::GroupingConfig;

/// Proptest config honoring `PROPTEST_CASES` (the vendored proptest does
/// not read the environment itself).
fn cases(default: u32) -> ProptestConfig {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default);
    ProptestConfig::with_cases(n)
}

// ------------------------------------------------------ end-to-end corpora

/// Every oracle agrees with the optimized pipeline on a full netsim
/// corpus, and the pipeline agrees with itself across thread counts.
#[test]
fn full_corpus_is_conformant() {
    let ocfg = OfflineConfig::dataset_a();
    let gcfg = GroupingConfig::default();
    for (seed, scale) in [(1u64, 0.05), (2, 0.03)] {
        let corpus = Corpus::generate(seed, scale);
        let summary = verify_dataset(&corpus.dataset, &ocfg, &gcfg, 3)
            .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
        assert!(summary.n_templates > 0 && summary.n_groups > 0);
    }
}

// ----------------------------------------------------- per-stage proptests

proptest! {
    #![proptest_config(cases(300))]
    #[test]
    fn temporal_clustering_matches_reference(
        deltas in proptest::collection::vec(0i64..400, 1..60),
        alpha in 0.01f64..0.95,
        beta in 1.0f64..6.0,
        s_min in 0i64..10,
    ) {
        let cfg = TemporalConfig { alpha, beta, s_min, s_max: 300 };
        let mut acc = 0i64;
        let ts: Vec<Timestamp> = deltas
            .iter()
            .map(|d| {
                acc += d;
                Timestamp(acc)
            })
            .collect();
        prop_assert_eq!(group_series(&ts, &cfg), ref_group_series(&ts, &cfg));
    }
}

/// Sort a generated `(delta, router, template)` spec into a valid
/// time-ordered mining stream.
fn stream_of(spec: &[(i64, u32, u32)]) -> Vec<StreamItem> {
    let mut acc = 0i64;
    spec.iter()
        .map(|&(d, r, t)| {
            acc += d;
            (Timestamp(acc), RouterId(r), TemplateId(t))
        })
        .collect()
}

proptest! {
    #![proptest_config(cases(300))]
    #[test]
    fn cooccurrence_counting_matches_reference(
        spec in proptest::collection::vec((0i64..40, 0u32..3, 0u32..6), 0..80),
        w in 0i64..60,
    ) {
        let stream = stream_of(&spec);
        let opt = CoOccurrence::count(&stream, w);
        let reference = ref_count(&stream, w);
        prop_assert_eq!(reference.n_transactions, opt.n_transactions);
        let items: std::collections::BTreeMap<u32, u64> =
            opt.item_counts.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(&reference.item_counts, &items);
        let pairs: std::collections::BTreeMap<(u32, u32), u64> =
            opt.pair_counts.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(&reference.pair_counts, &pairs);
    }
}

proptest! {
    #![proptest_config(cases(300))]
    #[test]
    fn rule_extraction_matches_reference(
        spec in proptest::collection::vec((0i64..40, 0u32..3, 0u32..6), 0..80),
        w in 0i64..60,
        sp_min in 0.0f64..0.3,
        conf_min in 0.0f64..1.0,
    ) {
        let stream = stream_of(&spec);
        let cfg = MineConfig { sp_min, conf_min };
        let opt = mine(&CoOccurrence::count(&stream, w), &cfg);
        let opt: Vec<RefRule> = opt
            .rules()
            .iter()
            .map(|r| RefRule {
                x: r.x.0,
                y: r.y.0,
                support: r.support,
                confidence: r.confidence,
            })
            .collect();
        let reference = ref_mine(&ref_count(&stream, w), &cfg);
        // RefRule equality is derived (== on f64), which is exactly the
        // bitwise contract here: both sides divide identical integers.
        prop_assert_eq!(reference, opt);
    }
}

/// Build a message whose detail is drawn from a small vocabulary, so
/// generated corpora exercise splits, masks, and the k boundary.
fn vocab_msg(code: &str, words: (u8, u8, u8)) -> RawMessage {
    RawMessage::new(
        Timestamp(0),
        "r1",
        ErrorCode::from(code),
        format!("w{} w{} w{}", words.0, words.1, words.2),
    )
}

proptest! {
    #![proptest_config(cases(150))]
    #[test]
    fn template_learning_and_matching_match_reference(
        specs in proptest::collection::vec((0u8..2, (0u8..4, 0u8..12, 0u8..3)), 1..60),
        k in 2usize..12,
    ) {
        let msgs: Vec<RawMessage> = specs
            .iter()
            .map(|&(c, words)| vocab_msg(if c == 0 { "C-1-A" } else { "C-2-B" }, words))
            .collect();
        let cfg = LearnerConfig { k, ..LearnerConfig::default() };
        let set = learn(&msgs, &cfg);
        let mut opt: Vec<String> = set.iter().map(|(_, t)| t.masked()).collect();
        opt.sort();
        prop_assert_eq!(ref_learn(&msgs, &cfg), opt);
        // Matching: every training message and some unseen details resolve
        // to the same template in both matchers.
        for m in &msgs {
            let toks: Vec<&str> = m.detail.split_whitespace().collect();
            prop_assert_eq!(
                set.match_detail(&m.code, &toks),
                ref_match(&set, &m.code, &m.detail)
            );
        }
        let code = ErrorCode::from("C-1-A");
        for unseen in ["w0 w99 w0", "w99 w99 w99", "w0 w0", "w0 w0 w0 w0"] {
            let toks: Vec<&str> = unseen.split_whitespace().collect();
            prop_assert_eq!(
                set.match_detail(&code, &toks),
                ref_match(&set, &code, unseen)
            );
        }
    }
}
