//! Paper-fidelity suite: pins the constants and edge-case semantics the
//! paper specifies (IMC 2010, Table 6 and §4), so a refactor that quietly
//! flips an inequality, a default, or a clamping rule fails here with a
//! named paper section instead of a moved golden digest.
//!
//! Everything in this file tests the **production** implementations; the
//! reference oracles in `sd-conformance` get their own differential suite.

use sd_model::{ErrorCode, RawMessage, Timestamp};
use sd_rules::{mine, CoOccurrence, MineConfig, RuleBase};
use sd_templates::{learn, LearnerConfig};
use sd_temporal::{group_series, EwmaTracker, TemporalConfig};
use syslogdigest::offline::OfflineConfig;
use syslogdigest::GroupingConfig;

// ---------------------------------------------------------------- constants

/// Table 6 / §4 constants, exactly as published.
#[test]
fn defaults_pin_paper_constants() {
    // §4.1.1: prune a tree position when it has more than k = 10 children.
    assert_eq!(LearnerConfig::default().k, 10);

    // Table 6: α, β, Smin = 1 s, Smax = 3 h.
    let a = TemporalConfig::dataset_a();
    assert_eq!(a.alpha, 0.05);
    assert_eq!(a.beta, 5.0);
    assert_eq!(a.s_min, 1);
    assert_eq!(a.s_max, 3 * 3600);
    let b = TemporalConfig::dataset_b();
    assert_eq!(b.alpha, 0.075);
    assert_eq!((b.beta, b.s_min, b.s_max), (5.0, 1, 3 * 3600));

    // §4.1.4: SPmin = 0.05 %, Confmin = 0.8.
    let m = MineConfig::default();
    assert_eq!(m.sp_min, 0.0005);
    assert_eq!(m.conf_min, 0.8);

    // Table 6: W = 120 s (dataset A) / 40 s (dataset B).
    assert_eq!(OfflineConfig::dataset_a().window_secs, 120);
    assert_eq!(OfflineConfig::dataset_b().window_secs, 40);

    // §4.2.3: cross-router simultaneity window ~1 s.
    assert_eq!(GroupingConfig::default().cross_window_secs, 1);
}

// ------------------------------------------------- §4.1.1 prune boundary

fn msgs_with_distinct_words(n: usize) -> Vec<RawMessage> {
    let mut msgs = Vec::new();
    for i in 0..n {
        // Repeat each sub-type so frequencies are unambiguous.
        for _ in 0..5 {
            msgs.push(RawMessage::new(
                Timestamp(0),
                "r1",
                ErrorCode::from("C-1-M"),
                format!("state is value{i}"),
            ));
        }
    }
    msgs
}

/// A position with exactly `k` distinct words splits into `k` sub-types;
/// with `k + 1` it is declared variable and masked. The boundary is
/// "more than k", not "at least k".
#[test]
fn prune_threshold_boundary_is_strictly_more_than_k() {
    let cfg = LearnerConfig {
        k: 3,
        ..LearnerConfig::default()
    };

    let set = learn(&msgs_with_distinct_words(3), &cfg);
    let mut masked: Vec<String> = set.iter().map(|(_, t)| t.masked()).collect();
    masked.sort();
    assert_eq!(
        masked,
        vec![
            "C-1-M state is value0".to_owned(),
            "C-1-M state is value1".to_owned(),
            "C-1-M state is value2".to_owned(),
        ],
        "exactly k distinct words must split, not mask"
    );

    let set = learn(&msgs_with_distinct_words(4), &cfg);
    let masked: Vec<String> = set.iter().map(|(_, t)| t.masked()).collect();
    assert_eq!(
        masked,
        vec!["C-1-M state is *".to_owned()],
        "k + 1 distinct words must mask the position"
    );
}

// ------------------------------------------------ §4.1.3 EWMA semantics

fn t(secs: i64) -> Timestamp {
    Timestamp(secs)
}

fn tcfg(alpha: f64, beta: f64, s_min: i64, s_max: i64) -> TemporalConfig {
    TemporalConfig {
        alpha,
        beta,
        s_min,
        s_max,
    }
}

/// `Ŝt = α·St + (1 − α)·Ŝ(t−1)`, first gap adopted verbatim.
#[test]
fn ewma_update_is_the_paper_equation() {
    let cfg = tcfg(0.25, 5.0, 1, 10_800);
    let mut tr = EwmaTracker::new();
    tr.observe(t(0), &cfg);
    assert_eq!(tr.prediction(), None, "no gap observed yet");
    tr.observe(t(10), &cfg);
    assert_eq!(tr.prediction(), Some(10.0), "first gap adopted as-is");
    tr.observe(t(30), &cfg);
    // 0.25 · 20 + 0.75 · 10 = 12.5 — exact in binary floats.
    assert_eq!(tr.prediction(), Some(12.5));
}

/// Gaps of exactly `Smax` stay grouped; one second more always splits,
/// whatever the EWMA predicts.
#[test]
fn smax_cap_is_exclusive() {
    let cfg = tcfg(0.05, 5.0, 1, 100);
    assert_eq!(group_series(&[t(0), t(100)], &cfg), vec![0, 0]);
    assert_eq!(group_series(&[t(0), t(101)], &cfg), vec![0, 1]);
}

/// Gaps of exactly `Smin` stay grouped even when they exceed `β·Ŝt`.
#[test]
fn smin_short_circuits_the_ewma_test() {
    let cfg = tcfg(0.5, 1.0, 5, 10_800);
    // Prediction settles at 1.0; a gap of 5 > β·Ŝ = 1 would split, but
    // gap ≤ Smin groups unconditionally.
    let labels = group_series(&[t(0), t(1), t(2), t(7)], &cfg);
    assert_eq!(labels, vec![0, 0, 0, 0]);
    // One past Smin, the EWMA test applies and splits.
    let labels = group_series(&[t(0), t(1), t(2), t(9)], &cfg);
    assert_eq!(labels, vec![0, 0, 0, 1]);
}

/// The split test is strict: `St = β·Ŝt` exactly stays in the group;
/// the split fires only on `St > β·Ŝt`.
#[test]
fn split_at_exact_beta_shat_equality_groups() {
    let cfg = tcfg(0.05, 2.0, 1, 10_800);
    // After [0, 10] the prediction is exactly 10, so the boundary gap is
    // exactly 20 — representable, no rounding.
    assert_eq!(group_series(&[t(0), t(10), t(30)], &cfg), vec![0, 0, 0]);
    assert_eq!(group_series(&[t(0), t(10), t(31)], &cfg), vec![0, 0, 1]);
}

/// A collapsed prediction (`Ŝ → 0`) is floored at `Smin` in the split
/// threshold: `St > β·max(Ŝ, Smin)`.
#[test]
fn floor_clamps_a_collapsed_prediction() {
    let cfg = tcfg(0.5, 2.0, 1, 10_800);
    // Identical timestamps drive the prediction to exactly 0.
    let mut tr = EwmaTracker::new();
    for _ in 0..3 {
        tr.observe(t(0), &cfg);
    }
    assert_eq!(tr.prediction(), Some(0.0));
    // Unfloored threshold would be β·0 = 0 and any gap would split;
    // floored it is β·Smin = 2, so a gap of 2 still groups and 3 splits.
    assert_eq!(group_series(&[t(0), t(0), t(0), t(2)], &cfg), vec![0; 4]);
    assert_eq!(
        group_series(&[t(0), t(0), t(0), t(3)], &cfg),
        vec![0, 0, 0, 1]
    );
}

// --------------------------------------- §4.1.4 rule threshold boundaries

fn co(n: u64, items: &[(u32, u64)], pairs: &[((u32, u32), u64)]) -> CoOccurrence {
    let mut co = CoOccurrence {
        n_transactions: n,
        ..CoOccurrence::default()
    };
    for &(t, c) in items {
        co.item_counts.insert(t, c);
    }
    for &(p, c) in pairs {
        co.pair_counts.insert(p, c);
    }
    co
}

/// Both mining thresholds are inclusive: support exactly `SPmin` and
/// confidence exactly `Confmin` keep a rule.
#[test]
fn mining_thresholds_are_inclusive_at_the_boundary() {
    let cfg = MineConfig::default();
    // supp(2) = 5 / 10000 = SPmin exactly; conf(1 ⇒ 2) = 8/10 = Confmin.
    let rules = mine(&co(10_000, &[(1, 10), (2, 5)], &[((1, 2), 8)]), &cfg);
    let ids: Vec<(u32, u32)> = rules.rules().iter().map(|r| (r.x.0, r.y.0)).collect();
    assert_eq!(ids, vec![(1, 2), (2, 1)], "both boundaries must be kept");

    // One transaction below SPmin disqualifies the item entirely …
    let rules = mine(&co(10_000, &[(1, 10), (2, 4)], &[((1, 2), 4)]), &cfg);
    assert!(rules.rules().is_empty(), "supp below SPmin must prune");

    // … and one co-occurrence below Confmin kills only that direction.
    let rules = mine(&co(10_000, &[(1, 10), (2, 5)], &[((1, 2), 7)]), &cfg);
    let ids: Vec<(u32, u32)> = rules.rules().iter().map(|r| (r.x.0, r.y.0)).collect();
    assert_eq!(ids, vec![(2, 1)], "conf 0.7 fails, reverse conf 1.4 holds");
}

/// §4.1.4 conservative maintenance: a rule is deleted only when its
/// re-measured confidence *falls below* the threshold; an antecedent that
/// simply did not occur this week is no evidence against the rule.
#[test]
fn rules_are_deleted_only_on_measured_confidence_fall() {
    let cfg = MineConfig::default();
    let mut base = RuleBase::new();
    let stats = base.update(&co(10_000, &[(1, 10), (2, 10)], &[((1, 2), 9)]), &cfg);
    assert_eq!((stats.added, stats.deleted, stats.total), (2, 0, 2));

    // Week with no sign of template 1 at all: both rules survive.
    let stats = base.update(&co(10_000, &[(3, 10)], &[]), &cfg);
    assert_eq!((stats.added, stats.deleted, stats.total), (0, 0, 2));

    // Week where 1 occurs but the implication no longer holds: confidence
    // is measured (2/10 and 2/10) and both directions fall below 0.8.
    let stats = base.update(&co(10_000, &[(1, 10), (2, 10)], &[((1, 2), 2)]), &cfg);
    assert_eq!((stats.added, stats.deleted, stats.total), (0, 2, 0));
}

/// The boundary of the deletion test is also strict "falls below": a rule
/// re-measured at exactly `Confmin` is kept.
#[test]
fn rule_at_exact_confmin_is_kept_on_update() {
    let cfg = MineConfig::default();
    let mut base = RuleBase::new();
    base.update(&co(10_000, &[(1, 10), (2, 10)], &[((1, 2), 9)]), &cfg);
    let stats = base.update(&co(10_000, &[(1, 10), (2, 10)], &[((1, 2), 8)]), &cfg);
    assert_eq!(stats.deleted, 0, "conf exactly 0.8 must not delete");
}
