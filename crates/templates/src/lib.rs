//! # sd-templates
//!
//! Template learning and matching for router syslog messages (§4.1.1 of the
//! SyslogDigest paper). [`learner::learn`] builds a [`TemplateSet`] from
//! historical messages by constructing per-error-code sub-type trees of
//! frequent words (masking variable fields via the paper's k-children
//! pruning rule); the set then matches live messages to [`TemplateId`]s for
//! the online pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod learner;
pub mod set;

pub use learner::{learn, learn_par, LearnerConfig};
pub use sd_model::TemplateId;
pub use set::{MaskTok, Template, TemplateSet, TokenScratch};
