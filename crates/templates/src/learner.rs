//! Message-template learning (§4.1.1).
//!
//! For each message type (error code) we build a *sub-type tree* over the
//! whitespace-tokenized detail texts: starting from the root (the code
//! itself), repeatedly attach children for the most frequent word at the
//! most discriminating position; a position whose split would create more
//! than `k` children is a *variable field* and is masked instead (this is
//! the paper's pruning rule — "if a parent node has more than k children,
//! discard all children", k = 10). Each root→leaf path becomes one
//! template: the message type plus the detail words with variable fields
//! replaced by `*`.
//!
//! Messages are bucketed by token count first; templates of the same
//! sub-type always render the same number of tokens (multi-token variables
//! like the CPU top-3 process list have a fixed token width), while
//! different sub-types of one code usually differ in length — exactly the
//! Table 3/4 situation.

use crate::set::{MaskTok, Template, TemplateSet};
use sd_model::{par_map, ErrorCode, Parallelism, RawMessage};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tuning knobs for the learner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearnerConfig {
    /// Maximum children per tree node before the split position is
    /// declared variable and masked (paper: 10).
    pub k: usize,
    /// Per-code cap on messages used for learning; above this the code's
    /// messages are stride-sampled. Learning is frequency-based, so a few
    /// tens of thousands of instances saturate the signal.
    pub max_per_code: usize,
}

impl Default for LearnerConfig {
    fn default() -> Self {
        LearnerConfig {
            k: 10,
            max_per_code: 20_000,
        }
    }
}

/// Learn a [`TemplateSet`] from historical raw messages.
pub fn learn(messages: &[RawMessage], config: &LearnerConfig) -> TemplateSet {
    learn_par(messages, config, Parallelism::sequential())
}

/// [`learn`] with the per-`(code, token count)` sub-type trees built on
/// `par.threads` scoped threads. Each bucket's tree is independent and the
/// per-bucket template lists are concatenated in sorted key order (then
/// canonicalized by [`TemplateSet::from_templates`]), so the learned set
/// is identical for every thread count.
pub fn learn_par(messages: &[RawMessage], config: &LearnerConfig, par: Parallelism) -> TemplateSet {
    // Bucket detail token-vectors by (code, token count).
    let mut buckets: HashMap<(ErrorCode, usize), Vec<Vec<&str>>> = HashMap::new();
    let mut counts: HashMap<ErrorCode, usize> = HashMap::new();
    for m in messages {
        let c = counts.entry(m.code.clone()).or_insert(0);
        *c += 1;
        let toks: Vec<&str> = m.detail.split_whitespace().collect();
        buckets
            .entry((m.code.clone(), toks.len()))
            .or_default()
            .push(toks);
    }

    // One work item per (code, token count) bucket with its sampled
    // token-vectors.
    type Bucket<'a> = ((ErrorCode, usize), Vec<Vec<&'a str>>);
    // Deterministic order: sort bucket keys, sampling each bucket up front.
    let mut keys: Vec<(ErrorCode, usize)> = buckets.keys().cloned().collect();
    keys.sort();
    let work: Vec<Bucket<'_>> = keys
        .into_iter()
        .map(|key| {
            let mut msgs = buckets.remove(&key).expect("bucket exists");
            let total_for_code = counts[&key.0];
            if total_for_code > config.max_per_code {
                // Stride-sample to the cap, preserving time spread.
                let keep = (config.max_per_code * msgs.len() / total_for_code).max(64);
                if msgs.len() > keep {
                    let stride = msgs.len() / keep;
                    msgs = msgs.into_iter().step_by(stride.max(1)).collect();
                }
            }
            (key, msgs)
        })
        .collect();

    let per_bucket: Vec<Vec<Template>> = par_map(par, &work, |_, (key, msgs)| {
        let mut out = Vec::new();
        let idx: Vec<usize> = (0..msgs.len()).collect();
        split_node(&key.0, msgs, idx, vec![None; key.1], config, &mut out);
        out
    });
    TemplateSet::from_templates(per_bucket.concat())
}

/// Recursively split one tree node.
///
/// `pattern[p]` is `Some(word)` once position `p` is fixed on this path,
/// `Some("*")`-like masking is represented by fixing to `None`-but-masked —
/// we track masks in `pattern` as `Some(String::new())` would be ambiguous,
/// so masked positions are recorded in a parallel fashion: a position
/// masked on this path is fixed as `Some(MASK)`.
fn split_node(
    code: &ErrorCode,
    msgs: &[Vec<&str>],
    members: Vec<usize>,
    mut pattern: Vec<Option<String>>,
    config: &LearnerConfig,
    out: &mut Vec<Template>,
) {
    const MASK: &str = "\u{0}*";
    loop {
        // Find, over unfixed positions, the word frequencies.
        let len = pattern.len();
        let mut best: Option<(usize, usize, usize)> = None; // (pos, top_count, distinct)
        for p in 0..len {
            if pattern[p].is_some() {
                continue;
            }
            let mut freq: HashMap<&str, usize> = HashMap::new();
            for &mi in &members {
                *freq.entry(msgs[mi][p]).or_insert(0) += 1;
            }
            let distinct = freq.len();
            let top = freq.values().copied().max().unwrap_or(0);
            let better = match best {
                None => true,
                Some((_, bt, _)) => top > bt,
            };
            if better {
                best = Some((p, top, distinct));
            }
        }
        let Some((pos, _top, distinct)) = best else {
            // All positions fixed: emit the template for this leaf.
            emit(code, &pattern, out, MASK);
            return;
        };

        if distinct > config.k {
            // Variable field: mask it and keep refining this node.
            pattern[pos] = Some(MASK.to_owned());
            continue;
        }
        if distinct == 1 {
            // Constant word everywhere: fix it and continue (single child).
            pattern[pos] = Some(msgs[members[0]][pos].to_owned());
            continue;
        }
        // 2..=k distinct words: create one child per word (BFS expansion).
        let mut groups: HashMap<&str, Vec<usize>> = HashMap::new();
        for &mi in &members {
            groups.entry(msgs[mi][pos]).or_default().push(mi);
        }
        let mut words: Vec<&str> = groups.keys().copied().collect();
        words.sort_unstable();
        for w in words {
            let child_members = groups.remove(w).expect("group exists");
            let mut child_pattern = pattern.clone();
            child_pattern[pos] = Some(w.to_owned());
            split_node(code, msgs, child_members, child_pattern, config, out);
        }
        return;
    }
}

fn emit(code: &ErrorCode, pattern: &[Option<String>], out: &mut Vec<Template>, mask: &str) {
    let toks: Vec<MaskTok> = pattern
        .iter()
        .map(|p| match p.as_deref() {
            Some(w) if w == mask => MaskTok::Star,
            Some(w) => MaskTok::Word(w.to_owned()),
            None => MaskTok::Star,
        })
        .collect();
    out.push(Template {
        code: code.clone(),
        toks,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_model::Timestamp;

    fn msg(code: &str, detail: &str) -> RawMessage {
        RawMessage::new(Timestamp(0), "r1", ErrorCode::from(code), detail)
    }

    /// The Table 3 → Table 4 example: 20 BGP messages collapse to 5
    /// sub-types with neighbor IP and VRF masked.
    #[test]
    fn bgp_table3_yields_five_subtypes() {
        let reasons = [
            ("Up", 4),
            ("Down Interface flap", 4),
            ("Down BGP Notification sent", 4),
            ("Down BGP Notification received", 4),
            ("Down Peer closed the session", 4),
        ];
        let mut msgs = Vec::new();
        let mut octet = 1u8;
        for (reason, n) in reasons {
            for i in 0..n {
                msgs.push(msg(
                    "BGP-5-ADJCHANGE",
                    &format!(
                        "neighbor 192.168.{octet}.{} vpn vrf 1000:100{i} {reason}",
                        (i + 1) * 13
                    ),
                ));
                octet += 1;
            }
        }
        // k below the 4 distinct values per var field forces masking.
        let set = learn(
            &msgs,
            &LearnerConfig {
                k: 3,
                max_per_code: 1000,
            },
        );
        let mut masked: Vec<String> = set.iter().map(|(_, t)| t.masked()).collect();
        masked.sort();
        assert_eq!(
            masked,
            vec![
                "BGP-5-ADJCHANGE neighbor * vpn vrf * Down BGP Notification received",
                "BGP-5-ADJCHANGE neighbor * vpn vrf * Down BGP Notification sent",
                "BGP-5-ADJCHANGE neighbor * vpn vrf * Down Interface flap",
                "BGP-5-ADJCHANGE neighbor * vpn vrf * Down Peer closed the session",
                "BGP-5-ADJCHANGE neighbor * vpn vrf * Up",
            ]
        );
    }

    #[test]
    fn link_updown_splits_on_state_not_interface() {
        let mut msgs = Vec::new();
        for i in 0..30 {
            for state in ["down", "up"] {
                msgs.push(msg(
                    "LINK-3-UPDOWN",
                    &format!("Interface Serial{i}/0.10/10:0, changed state to {state}"),
                ));
            }
        }
        let set = learn(&msgs, &LearnerConfig::default());
        let mut masked: Vec<String> = set.iter().map(|(_, t)| t.masked()).collect();
        masked.sort();
        assert_eq!(
            masked,
            vec![
                "LINK-3-UPDOWN Interface * changed state to down",
                "LINK-3-UPDOWN Interface * changed state to up",
            ]
        );
    }

    #[test]
    fn low_cardinality_variable_is_falsely_kept_as_paper_admits() {
        // Only 2 distinct interface values: indistinguishable from a real
        // sub-type split — the GigabitEthernet caveat of §4.1.1.
        let mut msgs = Vec::new();
        for _ in 0..10 {
            for ifc in ["GigabitEthernet1/0,", "GigabitEthernet2/0,"] {
                msgs.push(msg("X-1-Y", &format!("Interface {ifc} flapped")));
            }
        }
        let set = learn(&msgs, &LearnerConfig::default());
        assert_eq!(set.len(), 2, "expected a (harmless) spurious split");
    }

    #[test]
    fn different_lengths_are_distinct_templates() {
        let mut msgs = Vec::new();
        for i in 0..20 {
            msgs.push(msg("C-1-M", &format!("alpha beta value{i}")));
            msgs.push(msg("C-1-M", &format!("alpha beta value{i} gamma")));
        }
        let set = learn(&msgs, &LearnerConfig::default());
        let masked: Vec<String> = set.iter().map(|(_, t)| t.masked()).collect();
        assert!(masked.contains(&"C-1-M alpha beta *".to_owned()));
        assert!(masked.contains(&"C-1-M alpha beta * gamma".to_owned()));
    }

    #[test]
    fn empty_input_learns_nothing() {
        let set = learn(&[], &LearnerConfig::default());
        assert_eq!(set.len(), 0);
    }

    #[test]
    fn sampling_cap_still_learns_the_template() {
        let mut msgs = Vec::new();
        for i in 0..5000 {
            msgs.push(msg(
                "L-2-M",
                &format!("link {i} status degraded code {}", i % 977),
            ));
        }
        let set = learn(
            &msgs,
            &LearnerConfig {
                k: 10,
                max_per_code: 500,
            },
        );
        let masked: Vec<String> = set.iter().map(|(_, t)| t.masked()).collect();
        assert_eq!(
            masked,
            vec!["L-2-M link * status degraded code *".to_owned()]
        );
    }
}
