//! Learned template sets and the online matcher (the "Signature Matching"
//! boxes of Figure 1).

use sd_model::{ErrorCode, RawMessage, TemplateId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One token of a learned template: a fixed word or a masked variable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaskTok {
    /// A literal word that must match exactly.
    Word(String),
    /// A variable position matching any single token.
    Star,
}

/// A learned template: error code plus masked detail tokens.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Template {
    /// The message type.
    pub code: ErrorCode,
    /// Detail pattern; length equals the detail token count it matches.
    pub toks: Vec<MaskTok>,
}

impl Template {
    /// `<code> w1 * w3 …` display form (comparable with the generator's
    /// ground-truth masked strings).
    pub fn masked(&self) -> String {
        let mut s = String::with_capacity(64);
        s.push_str(self.code.as_str());
        for t in &self.toks {
            s.push(' ');
            match t {
                MaskTok::Word(w) => s.push_str(w),
                MaskTok::Star => s.push('*'),
            }
        }
        s
    }

    /// Number of fixed (non-star) tokens — the match-specificity rank.
    pub fn specificity(&self) -> usize {
        self.toks
            .iter()
            .filter(|t| matches!(t, MaskTok::Word(_)))
            .count()
    }

    /// Whether `detail_toks` matches this template.
    pub fn matches(&self, detail_toks: &[&str]) -> bool {
        self.toks.len() == detail_toks.len()
            && self.toks.iter().zip(detail_toks).all(|(t, d)| match t {
                MaskTok::Word(w) => w == d,
                MaskTok::Star => true,
            })
    }

    /// The values at the star positions of a matching detail.
    pub fn extract_vars<'d>(&self, detail_toks: &[&'d str]) -> Vec<&'d str> {
        self.toks
            .iter()
            .zip(detail_toks)
            .filter_map(|(t, d)| matches!(t, MaskTok::Star).then_some(*d))
            .collect()
    }

    /// [`Template::matches`] against tokens given as byte spans of
    /// `detail` (see [`TokenScratch`]) — no token vector required.
    pub fn matches_spans(&self, detail: &str, spans: &[(u32, u32)]) -> bool {
        self.toks.len() == spans.len()
            && self.toks.iter().zip(spans).all(|(t, &(a, b))| match t {
                MaskTok::Word(w) => w == &detail[a as usize..b as usize],
                MaskTok::Star => true,
            })
    }
}

/// Reusable whitespace-tokenizer scratch. Tokens are stored as byte spans
/// into the tokenized string, so a single buffer serves every message of a
/// batch with no per-message allocation (the matcher's hot path).
#[derive(Debug, Default)]
pub struct TokenScratch {
    spans: Vec<(u32, u32)>,
}

impl TokenScratch {
    /// Empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tokenize `s` exactly as `str::split_whitespace` would, replacing
    /// the previous contents; returns the token count.
    pub fn tokenize(&mut self, s: &str) -> usize {
        self.spans.clear();
        let base = s.as_ptr() as usize;
        for tok in s.split_whitespace() {
            let start = (tok.as_ptr() as usize - base) as u32;
            self.spans.push((start, start + tok.len() as u32));
        }
        self.spans.len()
    }

    /// Number of tokens from the last `tokenize`.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the last tokenized string had no tokens.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The token byte spans.
    pub fn spans(&self) -> &[(u32, u32)] {
        &self.spans
    }

    /// Iterate the tokens of `s` (the string last passed to `tokenize`).
    pub fn tokens<'a, 's: 'a>(&'a self, s: &'s str) -> impl Iterator<Item = &'s str> + 'a {
        self.spans
            .iter()
            .map(move |&(a, b)| &s[a as usize..b as usize])
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.masked())
    }
}

/// A set of learned templates with an id space and a two-level
/// code → token-count index for O(candidates) matching. The outer level is
/// keyed by the code *string* so lookups borrow the incoming message's
/// code (`index.get(code.as_str())`) instead of cloning an [`ErrorCode`]
/// per probe.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "TemplateSetData")]
pub struct TemplateSet {
    templates: Vec<Template>,
    #[serde(skip)]
    index: HashMap<String, HashMap<usize, Vec<u32>>>,
}

/// Serialized form of [`TemplateSet`]; deserializing converts through this
/// so the match index is rebuilt automatically.
#[derive(Deserialize)]
struct TemplateSetData {
    templates: Vec<Template>,
}

impl From<TemplateSetData> for TemplateSet {
    fn from(data: TemplateSetData) -> Self {
        let mut set = TemplateSet {
            templates: data.templates,
            index: HashMap::new(),
        };
        set.rebuild_index();
        set
    }
}

impl TemplateSet {
    /// Build from learned templates, deduplicating identical patterns.
    pub fn from_templates(mut templates: Vec<Template>) -> Self {
        templates.sort_by(|a, b| {
            a.code
                .cmp(&b.code)
                .then_with(|| a.masked().cmp(&b.masked()))
        });
        templates.dedup();
        let mut set = TemplateSet {
            templates,
            index: HashMap::new(),
        };
        set.rebuild_index();
        set
    }

    /// Rebuild the lookup index. Deserialization already does this;
    /// calling it again is harmless (kept for compatibility with callers
    /// written against the old manual-rebuild contract).
    pub fn rebuild_index(&mut self) {
        self.index.clear();
        for (i, t) in self.templates.iter().enumerate() {
            self.index
                .entry(t.code.as_str().to_owned())
                .or_default()
                .entry(t.toks.len())
                .or_default()
                .push(i as u32);
        }
        // Most specific candidates first, so the first match wins.
        let templates = &self.templates;
        for by_len in self.index.values_mut() {
            for cands in by_len.values_mut() {
                cands.sort_by_key(|&i| std::cmp::Reverse(templates[i as usize].specificity()));
            }
        }
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Iterate `(id, template)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TemplateId, &Template)> {
        self.templates
            .iter()
            .enumerate()
            .map(|(i, t)| (TemplateId(i as u32), t))
    }

    /// The template for `id` (panics on a foreign id).
    pub fn get(&self, id: TemplateId) -> &Template {
        &self.templates[id.0 as usize]
    }

    /// Match a message against the set, returning the most specific
    /// matching template.
    pub fn match_message(&self, m: &RawMessage) -> Option<TemplateId> {
        self.match_with(&m.code, &m.detail, &mut TokenScratch::new())
    }

    /// Match `(code, detail tokens)` against the set.
    pub fn match_detail(&self, code: &ErrorCode, toks: &[&str]) -> Option<TemplateId> {
        let cands = self.index.get(code.as_str())?.get(&toks.len())?;
        cands
            .iter()
            .find(|&&i| self.templates[i as usize].matches(toks))
            .map(|&i| TemplateId(i))
    }

    /// Allocation-free variant of [`TemplateSet::match_detail`]: tokenizes
    /// `detail` into the caller's reusable `scratch` and matches via byte
    /// spans, so a batch loop performs no per-message allocation here.
    pub fn match_with(
        &self,
        code: &ErrorCode,
        detail: &str,
        scratch: &mut TokenScratch,
    ) -> Option<TemplateId> {
        scratch.tokenize(detail);
        let cands = self.index.get(code.as_str())?.get(&scratch.len())?;
        cands
            .iter()
            .find(|&&i| self.templates[i as usize].matches_spans(detail, scratch.spans()))
            .map(|&i| TemplateId(i))
    }

    /// Set-level accuracy against a ground-truth masked-string set:
    /// the fraction of ground-truth templates reproduced exactly
    /// (the §5.2.1 "94 % of message templates match" metric). Only
    /// ground-truth entries whose code appears in the learned set are
    /// counted (templates never emitted cannot be learned).
    pub fn accuracy_against(&self, ground_truth: &[String]) -> f64 {
        let learned: std::collections::HashSet<String> =
            self.iter().map(|(_, t)| t.masked()).collect();
        let seen_codes: std::collections::HashSet<&str> =
            self.templates.iter().map(|t| t.code.as_str()).collect();
        let relevant: Vec<&String> = ground_truth
            .iter()
            .filter(|g| {
                g.split_whitespace()
                    .next()
                    .is_some_and(|c| seen_codes.contains(c))
            })
            .collect();
        if relevant.is_empty() {
            return 0.0;
        }
        let hit = relevant.iter().filter(|g| learned.contains(**g)).count();
        hit as f64 / relevant.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_model::Timestamp;

    fn set_of(patterns: &[(&str, &str)]) -> TemplateSet {
        let templates = patterns
            .iter()
            .map(|(code, pat)| Template {
                code: ErrorCode::from(*code),
                toks: pat
                    .split_whitespace()
                    .map(|w| {
                        if w == "*" {
                            MaskTok::Star
                        } else {
                            MaskTok::Word(w.to_owned())
                        }
                    })
                    .collect(),
            })
            .collect();
        TemplateSet::from_templates(templates)
    }

    #[test]
    fn matching_picks_most_specific() {
        let set = set_of(&[
            ("C-1-M", "status * changed"),
            ("C-1-M", "status error changed"),
        ]);
        let m = RawMessage::new(
            Timestamp(0),
            "r1",
            ErrorCode::from("C-1-M"),
            "status error changed",
        );
        let id = set.match_message(&m).unwrap();
        assert_eq!(set.get(id).masked(), "C-1-M status error changed");
        let m2 = RawMessage::new(
            Timestamp(0),
            "r1",
            ErrorCode::from("C-1-M"),
            "status warn changed",
        );
        let id2 = set.match_message(&m2).unwrap();
        assert_eq!(set.get(id2).masked(), "C-1-M status * changed");
    }

    #[test]
    fn no_match_on_unknown_code_or_wrong_shape() {
        let set = set_of(&[("C-1-M", "a * c")]);
        let wrong_code = RawMessage::new(Timestamp(0), "r", ErrorCode::from("X-1-Y"), "a b c");
        assert!(set.match_message(&wrong_code).is_none());
        let wrong_len = RawMessage::new(Timestamp(0), "r", ErrorCode::from("C-1-M"), "a b");
        assert!(set.match_message(&wrong_len).is_none());
        let wrong_word = RawMessage::new(Timestamp(0), "r", ErrorCode::from("C-1-M"), "a b d");
        assert!(set.match_message(&wrong_word).is_none());
    }

    #[test]
    fn extract_vars_returns_star_values() {
        let set = set_of(&[("C-1-M", "iface * state *")]);
        let (_, t) = set.iter().next().unwrap();
        let toks = vec!["iface", "Serial1/0,", "state", "down"];
        assert_eq!(t.extract_vars(&toks), vec!["Serial1/0,", "down"]);
    }

    #[test]
    fn dedup_on_build() {
        let set = set_of(&[("C-1-M", "a * c"), ("C-1-M", "a * c")]);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn serde_roundtrip_rebuilds_index_automatically() {
        let set = set_of(&[("C-1-M", "a * c"), ("D-2-N", "x y *")]);
        let json = serde_json::to_string(&set).unwrap();
        // No manual rebuild_index(): deserialization restores the index.
        let back: TemplateSet = serde_json::from_str(&json).unwrap();
        let m = RawMessage::new(Timestamp(0), "r", ErrorCode::from("D-2-N"), "x y 9");
        assert!(back.match_message(&m).is_some());
    }

    #[test]
    fn span_matching_agrees_with_token_matching() {
        let set = set_of(&[
            ("C-1-M", "status * changed"),
            ("C-1-M", "status error changed"),
            ("D-2-N", "x y *"),
        ]);
        let mut scratch = TokenScratch::new();
        for (code, detail) in [
            ("C-1-M", "status error changed"),
            ("C-1-M", "status warn changed"),
            ("C-1-M", "status  warn\tchanged"), // odd whitespace
            ("C-1-M", "status warn"),
            ("D-2-N", "x y anything"),
            ("E-0-Z", "x y anything"),
        ] {
            let code = ErrorCode::from(code);
            let toks: Vec<&str> = detail.split_whitespace().collect();
            assert_eq!(
                set.match_with(&code, detail, &mut scratch),
                set.match_detail(&code, &toks),
                "code {code:?} detail {detail:?}"
            );
        }
    }

    #[test]
    fn token_scratch_mirrors_split_whitespace() {
        let mut scratch = TokenScratch::new();
        for s in ["", "  ", "a", " a  bb\tccc \n d "] {
            let n = scratch.tokenize(s);
            let expect: Vec<&str> = s.split_whitespace().collect();
            assert_eq!(n, expect.len());
            assert_eq!(scratch.tokens(s).collect::<Vec<_>>(), expect);
            assert_eq!(scratch.is_empty(), expect.is_empty());
        }
    }

    #[test]
    fn accuracy_counts_only_seen_codes() {
        let set = set_of(&[("C-1-M", "a * c")]);
        let gt = vec![
            "C-1-M a * c".to_owned(),        // hit
            "C-1-M a * d".to_owned(),        // miss (same code)
            "NEVER-1-SEEN x y z".to_owned(), // excluded: code never learned
        ];
        let acc = set.accuracy_against(&gt);
        assert!((acc - 0.5).abs() < 1e-9, "acc {acc}");
    }
}
