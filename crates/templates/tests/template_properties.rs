//! Property tests for template learning and matching.

use proptest::prelude::*;
use sd_model::{ErrorCode, RawMessage, Timestamp};
use sd_templates::{learn, LearnerConfig, MaskTok};

/// Generate message corpora: a few codes, each with a literal skeleton and
/// variable slots filled from value pools of varying cardinality.
fn corpus() -> impl Strategy<Value = Vec<RawMessage>> {
    let msg = (0u8..3, 0u16..500, 0u16..30).prop_map(|(code, val_a, val_b)| {
        let (code, detail) = match code {
            0 => (
                "LINK-3-UPDOWN",
                format!(
                    "Interface Serial{val_a}/0, changed state to {}",
                    if val_b % 2 == 0 { "down" } else { "up" }
                ),
            ),
            1 => (
                "SYS-2-MALLOC",
                format!("Memory allocation of {val_a} bytes failed at level {val_b}"),
            ),
            _ => (
                "AAA-3-TIMEOUT",
                format!("server 10.0.{}.{} timed out", val_a % 250, val_b % 250),
            ),
        };
        RawMessage::new(Timestamp(0), "r1", ErrorCode::from(code), detail)
    });
    proptest::collection::vec(msg, 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Totality: every message used for learning matches some learned
    /// template afterwards.
    #[test]
    fn learning_is_total_over_its_input(msgs in corpus()) {
        let set = learn(&msgs, &LearnerConfig::default());
        for m in &msgs {
            prop_assert!(
                set.match_message(m).is_some(),
                "unmatched: {}",
                m.to_line()
            );
        }
    }

    /// Every learned template is supported: at least one input message
    /// matches it exactly (no phantom templates).
    #[test]
    fn no_phantom_templates(msgs in corpus()) {
        let set = learn(&msgs, &LearnerConfig::default());
        for (id, t) in set.iter() {
            let hit = msgs.iter().any(|m| {
                set.match_message(m) == Some(id)
            });
            prop_assert!(hit, "phantom template {}", t.masked());
        }
    }

    /// Matching consistency: the matched template's pattern really does
    /// match the tokenized detail, and extraction returns one value per
    /// star.
    #[test]
    fn match_and_extract_agree(msgs in corpus()) {
        let set = learn(&msgs, &LearnerConfig::default());
        for m in &msgs {
            let id = set.match_message(m).expect("total");
            let t = set.get(id);
            let toks: Vec<&str> = m.detail.split_whitespace().collect();
            prop_assert!(t.matches(&toks));
            let stars = t.toks.iter().filter(|x| matches!(x, MaskTok::Star)).count();
            prop_assert_eq!(t.extract_vars(&toks).len(), stars);
        }
    }

    /// A smaller k never yields fewer templates (less aggressive splitting
    /// means masking kicks in earlier, merging sub-types).
    #[test]
    fn k_monotonicity_on_template_count(msgs in corpus()) {
        let small = learn(&msgs, &LearnerConfig { k: 2, max_per_code: 10_000 }).len();
        let large = learn(&msgs, &LearnerConfig { k: 50, max_per_code: 10_000 }).len();
        prop_assert!(small <= large, "k=2 gave {small} > k=50 {large}");
    }
}
