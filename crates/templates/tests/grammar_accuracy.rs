//! End-to-end template learning against the netsim ground-truth grammar —
//! the §5.2.1 validation (the paper reports 94 % of templates matching).
//!
//! Template learning needs each message type to appear enough times for
//! variable fields to show their cardinality, so these tests shorten the
//! *period* but keep per-day rates at preset levels (the `exp_templates`
//! bench binary runs the full 12-week version).

use sd_netsim::{Dataset, DatasetSpec};
use sd_templates::{learn, LearnerConfig};

fn check(mut spec: DatasetSpec, floor: f64) {
    spec.train_days = 35;
    spec.online_days = 1;
    spec.intensity = 1.0; // cascade depth is irrelevant to template shapes
    spec.noise_per_day *= 3.0; // concentrate tail-type instances into fewer days
    let name = spec.name.clone();
    let d = Dataset::generate(spec);
    let set = learn(d.train(), &LearnerConfig::default());
    let gt = d.grammar.masked_set();
    let acc = set.accuracy_against(&gt);
    assert!(
        acc >= floor,
        "dataset {name}: template accuracy {acc:.3} below floor {floor}"
    );
    // Matching coverage: almost all training messages should match some
    // learned template.
    let sample = d.train().iter().step_by(37);
    let mut total = 0usize;
    let mut matched = 0usize;
    for m in sample {
        total += 1;
        if set.match_message(m).is_some() {
            matched += 1;
        }
    }
    let cov = matched as f64 / total as f64;
    assert!(cov > 0.98, "dataset {name}: match coverage {cov:.3}");
}

#[test]
fn dataset_a_templates_mostly_match_ground_truth() {
    check(DatasetSpec::preset_a(), 0.85);
}

#[test]
fn dataset_b_templates_mostly_match_ground_truth() {
    check(DatasetSpec::preset_b(), 0.85);
}
