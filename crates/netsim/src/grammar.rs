//! The ground-truth message grammar.
//!
//! Every syslog message the simulator can emit is an instance of a
//! [`GrammarTemplate`]: an error code plus a sequence of literal words and
//! typed variable slots. The grammar is the single source of truth —
//! the event simulator renders messages *through* it, and the §5.2.1
//! template-accuracy experiment compares the templates learned by
//! `sd-templates` against the grammar's masked forms ("ground truth
//! obtained from hard-coding comprehensive domain knowledge" in the paper).
//!
//! Variable slots are high-cardinality fields (interface names, IPs, VRF
//! ids, counters…). Low-cardinality words such as `down`/`up` or the BGP
//! teardown reasons of Table 4 are *literals*: the paper treats each of
//! those as a distinct sub-type.

use sd_model::{ErrorCode, RawMessage, Timestamp, Vendor};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Marker string that arms the poison hook in the digest core
/// (`syslogdigest::set_poison_marker`): any message whose detail
/// contains this substring makes augmentation panic, exercising the
/// panic-isolation and quarantine paths. Kept deliberately outside the
/// vocabulary of every grammar template so armed runs over normal
/// corpora are unaffected.
pub const POISON_MARKER: &str = "XPOISON-TRIGGERX";

/// A syntactically ordinary message whose detail carries
/// [`POISON_MARKER`]: it parses, round-trips through
/// `RawMessage::to_line`, and — when the poison hook is armed — panics
/// the augmentation stage that touches it.
pub fn poison_message(ts: Timestamp, router: &str) -> RawMessage {
    RawMessage::new(
        ts,
        router,
        ErrorCode::from("SYS-2-INJECTED"),
        format!("diagnostic marker {POISON_MARKER} present"),
    )
}

/// The type of a variable slot in a template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VarKind {
    /// An interface name (`Serial1/0.10/10:0`, `GigabitEthernet2/1`, `1/1/2`).
    Iface,
    /// A controller name tail, e.g. the `1/0/0` of `T3 1/0/0` (the `T3` is a literal).
    Controller,
    /// A dotted-quad IPv4 address.
    Ip,
    /// A VRF id, e.g. `1000:1001`.
    Vrf,
    /// A percentage number (no `%` sign — suffixes carry punctuation).
    Percent,
    /// A small integer (slot numbers, retry counters…).
    Num,
    /// A username.
    User,
    /// A TCP/UDP port number.
    PortNum,
    /// A router or LSP name.
    Name,
    /// The `Pid/Util` top-3 process list, rendered as exactly three tokens.
    PidList,
}

impl VarKind {
    /// How many whitespace tokens an instance of this slot renders to.
    pub fn token_count(self) -> usize {
        match self {
            VarKind::PidList => 3,
            _ => 1,
        }
    }
}

/// One element of a template's detail text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Part {
    /// A literal whitespace-delimited word.
    Lit(String),
    /// A token containing one or more variable slots with constant glue
    /// text around them (e.g. `{ip}:{port}` or `({ip})`). `texts` has one
    /// more element than `kinds`; the token renders as
    /// `texts[0] + v0 + texts[1] + v1 + … + texts[n]`.
    Var {
        /// Slot types, in token order.
        kinds: Vec<VarKind>,
        /// Constant glue around/between the slots.
        texts: Vec<String>,
    },
}

/// A message template: error code + detail pattern.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GrammarTemplate {
    /// Stable key used by event emitters to fetch this template.
    pub key: &'static str,
    /// The message type / error code.
    pub code: ErrorCode,
    /// Detail pattern.
    pub parts: Vec<Part>,
    /// Vendor whose routers emit this.
    pub vendor: Vendor,
    /// Relative rate of *background* (event-less) emissions of this
    /// template; 0 for templates only produced by simulated events.
    pub tail_rate: f64,
}

impl GrammarTemplate {
    /// Render the detail text, pulling a value for each variable slot from
    /// `supply` (called in slot order).
    pub fn render(&self, mut supply: impl FnMut(VarKind) -> String) -> String {
        let mut words: Vec<String> = Vec::with_capacity(self.parts.len());
        for p in &self.parts {
            match p {
                Part::Lit(w) => words.push(w.clone()),
                Part::Var { kinds, texts } => {
                    let mut tok = texts[0].clone();
                    for (i, k) in kinds.iter().enumerate() {
                        tok.push_str(&supply(*k));
                        tok.push_str(&texts[i + 1]);
                    }
                    words.push(tok);
                }
            }
        }
        words.join(" ")
    }

    /// The masked ground-truth form: `<code> w1 w2 * w4 …`. A token
    /// containing any variable slot masks to `*` (one star per rendered
    /// token — the multi-token process list masks to three).
    pub fn masked(&self) -> String {
        let mut words: Vec<&str> = vec![self.code.as_str()];
        for p in &self.parts {
            match p {
                Part::Lit(w) => words.push(w),
                Part::Var { kinds, .. } => {
                    let n: usize = if kinds.len() == 1 {
                        kinds[0].token_count()
                    } else {
                        1
                    };
                    words.extend(std::iter::repeat_n("*", n));
                }
            }
        }
        words.join(" ")
    }

    /// The variable slots in order.
    pub fn vars(&self) -> Vec<VarKind> {
        self.parts
            .iter()
            .flat_map(|p| match p {
                Part::Var { kinds, .. } => kinds.clone(),
                Part::Lit(_) => Vec::new(),
            })
            .collect()
    }
}

/// Parse a pattern like `"Interface {iface}, changed state to down"` into
/// parts. A token may embed any number of `{kind}` slots with constant glue
/// text around them, e.g. `({ip})`, `{ip}:{port}`, or `{num}/{num}`.
fn parse_pattern(pattern: &str) -> Vec<Part> {
    pattern
        .split_whitespace()
        .map(|tok| {
            if !tok.contains('{') {
                return Part::Lit(tok.to_owned());
            }
            let mut kinds = Vec::new();
            let mut texts = Vec::new();
            let mut rest = tok;
            loop {
                match rest.find('{') {
                    None => {
                        texts.push(rest.to_owned());
                        break;
                    }
                    Some(open) => {
                        let close = rest.find('}').unwrap_or_else(|| panic!("bad token {tok}"));
                        assert!(open < close, "bad pattern token {tok}");
                        texts.push(rest[..open].to_owned());
                        kinds.push(var_kind(&rest[open + 1..close]));
                        rest = &rest[close + 1..];
                    }
                }
            }
            Part::Var { kinds, texts }
        })
        .collect()
}

fn var_kind(name: &str) -> VarKind {
    match name {
        "iface" => VarKind::Iface,
        "ctl" => VarKind::Controller,
        "ip" => VarKind::Ip,
        "vrf" => VarKind::Vrf,
        "pct" => VarKind::Percent,
        "num" => VarKind::Num,
        "user" => VarKind::User,
        "port" => VarKind::PortNum,
        "name" => VarKind::Name,
        "pidlist" => VarKind::PidList,
        other => panic!("unknown var kind {{{other}}}"),
    }
}

/// The full grammar for one vendor: lookup by key plus the ground-truth
/// template list.
#[derive(Debug, Clone)]
pub struct Grammar {
    templates: Vec<GrammarTemplate>,
    by_key: HashMap<&'static str, usize>,
}

impl Grammar {
    /// Build the grammar for `vendor`.
    pub fn for_vendor(vendor: Vendor) -> Grammar {
        let specs = match vendor {
            Vendor::V1 => catalog_v1(),
            Vendor::V2 => catalog_v2(),
        };
        let templates: Vec<GrammarTemplate> = specs
            .into_iter()
            .map(|(key, code, pattern, tail_rate)| GrammarTemplate {
                key,
                code,
                parts: parse_pattern(pattern),
                vendor,
                tail_rate,
            })
            .collect();
        let by_key = templates
            .iter()
            .enumerate()
            .map(|(i, t)| (t.key, i))
            .collect();
        Grammar { templates, by_key }
    }

    /// Fetch a template by key. Panics on unknown keys (emitter bug).
    pub fn get(&self, key: &str) -> &GrammarTemplate {
        &self.templates[*self
            .by_key
            .get(key)
            .unwrap_or_else(|| panic!("no template {key}"))]
    }

    /// All templates.
    pub fn templates(&self) -> &[GrammarTemplate] {
        &self.templates
    }

    /// Templates with a nonzero background rate, with their rates.
    pub fn tail_templates(&self) -> impl Iterator<Item = (&GrammarTemplate, f64)> {
        self.templates
            .iter()
            .filter(|t| t.tail_rate > 0.0)
            .map(|t| (t, t.tail_rate))
    }

    /// The set of ground-truth masked template strings (§5.2.1 comparison).
    pub fn masked_set(&self) -> Vec<String> {
        self.templates.iter().map(|t| t.masked()).collect()
    }
}

type Spec = (&'static str, ErrorCode, &'static str, f64);

/// Vendor V1 (Cisco-style) catalog.
///
/// Event templates come first with zero/low tail rates; the long tail of
/// rarer message types follows with Zipf-decaying background rates so the
/// per-type frequency distribution is heavy-tailed (Table 5 relies on
/// this: a small fraction of types covers almost all messages).
fn catalog_v1() -> Vec<Spec> {
    let c1 = ErrorCode::v1;
    let mut v: Vec<Spec> = vec![
        // --- core event templates (mostly event-driven) ---
        ("LINK_DOWN", c1("LINK", 3, "UPDOWN"), "Interface {iface}, changed state to down", 0.0),
        ("LINK_UP", c1("LINK", 3, "UPDOWN"), "Interface {iface}, changed state to up", 0.0),
        (
            "LINEPROTO_DOWN",
            c1("LINEPROTO", 5, "UPDOWN"),
            "Line protocol on Interface {iface}, changed state to down",
            0.0,
        ),
        (
            "LINEPROTO_UP",
            c1("LINEPROTO", 5, "UPDOWN"),
            "Line protocol on Interface {iface}, changed state to up",
            0.0,
        ),
        (
            "CONTROLLER_DOWN",
            c1("CONTROLLER", 5, "UPDOWN"),
            "Controller T3 {ctl}, changed state to down",
            0.0,
        ),
        (
            "CONTROLLER_UP",
            c1("CONTROLLER", 5, "UPDOWN"),
            "Controller T3 {ctl}, changed state to up",
            0.0,
        ),
        (
            "OSPF_DOWN",
            c1("OSPF", 5, "ADJCHG"),
            "Process 64, Nbr {ip} on {iface} from FULL to DOWN, Neighbor Down: Interface down or detached",
            0.0,
        ),
        (
            "OSPF_UP",
            c1("OSPF", 5, "ADJCHG"),
            "Process 64, Nbr {ip} on {iface} from LOADING to FULL, Loading Done",
            0.0,
        ),
        ("BGP_UP", c1("BGP", 5, "ADJCHANGE"), "neighbor {ip} vpn vrf {vrf} Up", 0.0),
        (
            "BGP_DOWN_IFFLAP",
            c1("BGP", 5, "ADJCHANGE"),
            "neighbor {ip} vpn vrf {vrf} Down Interface flap",
            0.0,
        ),
        (
            "BGP_DOWN_SENT",
            c1("BGP", 5, "ADJCHANGE"),
            "neighbor {ip} vpn vrf {vrf} Down BGP Notification sent",
            0.0,
        ),
        (
            "BGP_DOWN_RECV",
            c1("BGP", 5, "ADJCHANGE"),
            "neighbor {ip} vpn vrf {vrf} Down BGP Notification received",
            0.0,
        ),
        (
            "BGP_DOWN_CLOSED",
            c1("BGP", 5, "ADJCHANGE"),
            "neighbor {ip} vpn vrf {vrf} Down Peer closed the session",
            0.0,
        ),
        (
            "CPU_RISE",
            c1("SYS", 1, "CPURISINGTHRESHOLD"),
            "Threshold: Total CPU Utilization(Total/Intr): {pct}%/1%, Top 3 processes (Pid/Util): {pidlist}",
            0.0,
        ),
        (
            "CPU_FALL",
            c1("SYS", 1, "CPUFALLINGTHRESHOLD"),
            "Threshold: Total CPU Utilization(Total/Intr) {pct}%/1%.",
            0.0,
        ),
        (
            "TCP_BADAUTH",
            c1("TCP", 6, "BADAUTH"),
            "Invalid MD5 digest from {ip}:{port} to {ip}:{port}",
            0.2,
        ),
        (
            "CONFIG_I",
            c1("SYS", 5, "CONFIG_I"),
            "Configured from console by {user} on vty0 ({ip})",
            1.2,
        ),
        ("LC_FAIL", c1("HW", 2, "LCDOWN"), "Linecard in slot {num} failed, resetting", 0.0),
        ("LC_UP", c1("HW", 5, "LCUP"), "Linecard in slot {num} is up", 0.0),
        (
            "ENV_TEMP",
            c1("ENVMON", 2, "TEMPHIGH"),
            "Temperature sensor on slot {num} reading {num} C exceeds threshold",
            0.0,
        ),
        (
            "MEM_LOW",
            c1("SYS", 2, "MALLOCFAIL"),
            "Memory allocation of {num} bytes failed from interrupt level, pool Processor",
            0.3,
        ),
    ];
    // --- background tail: Zipf-decaying rates over ~90 additional types ---
    let tail: Vec<(&'static str, ErrorCode, &'static str)> = vec![
        ("NTP_UNSYNC", c1("NTP", 4, "UNSYNC"), "NTP sync is lost with server {ip}"),
        ("NTP_SYNC", c1("NTP", 5, "SYNC"), "NTP sync is restored with server {ip}"),
        (
            "DUPLEX_MISMATCH",
            c1("CDP", 4, "DUPLEX_MISMATCH"),
            "duplex mismatch discovered on {iface} with {name}",
        ),
        ("SNMP_AUTHFAIL", c1("SNMP", 3, "AUTHFAIL"), "Authentication failure for SNMP request from host {ip}"),
        ("SSH_FAIL_V1", c1("SSH", 4, "FAIL"), "SSH authentication failure for user {user} from {ip}"),
        ("VTY_TIMEOUT", c1("SYS", 6, "TTY_EXPIRE_TIMER"), "(exec timer expired, tty {num} ({ip})), user {user}"),
        ("ACL_DENY", c1("SEC", 6, "IPACCESSLOGP"), "list {num} denied tcp {ip}(1433) -> {ip}({port}), 1 packet"),
        ("CRYPTO_FAIL", c1("CRYPTO", 4, "RECVD_PKT_INV_SPI"), "decaps: rec'd IPSEC packet has invalid spi for destaddr={ip}"),
        ("FAN_FAIL", c1("ENVMON", 2, "FANFAIL"), "Fan tray {num} failure detected"),
        ("FAN_OK", c1("ENVMON", 5, "FANOK"), "Fan tray {num} is operating normally"),
        ("PWR_FAIL", c1("ENVMON", 1, "PSFAIL"), "Power supply {num} output failure"),
        ("PWR_OK", c1("ENVMON", 5, "PSOK"), "Power supply {num} output restored"),
        ("BGP_MAXPFX", c1("BGP", 4, "MAXPFX"), "No. of prefix received from {ip} (afi 0) reaches {num}, max {num}"),
        ("BGP_NOTIF_IN", c1("BGP", 3, "NOTIFICATION"), "received from neighbor {ip} 4/0 (hold time expired) 0 bytes"),
        ("PIM_V1_NBR", c1("PIM", 5, "NBRCHG"), "neighbor {ip} DOWN on interface {iface} non DR"),
        ("MPLS_TE", c1("MPLS_TE", 5, "LSP"), "LSP {name} UP"),
        ("ISIS_ADJ", c1("CLNS", 5, "ADJCHANGE"), "ISIS: Adjacency to {name} ({iface}) Up, new adjacency"),
        ("HSRP_CHG", c1("HSRP", 5, "STATECHANGE"), "{iface} Grp {num} state Standby -> Active"),
        ("LDP_NBR", c1("LDP", 5, "NBRCHG"), "LDP Neighbor {ip}:0 is DOWN (Received error notification from peer: Holddown time expired)"),
        ("CEF_INCONSISTENT", c1("FIB", 4, "CEFINCONSISTENT"), "CEF detected inconsistency on {iface}"),
        ("QOS_DROP", c1("QOS", 4, "POLICEDROP"), "Packets dropped by policer on {iface} exceed {num} pps"),
        ("IPV6_ND", c1("IPV6_ND", 4, "DUPLICATE"), "Duplicate address {ip} on {iface}"),
        ("ARP_FLAP", c1("ARP", 4, "FLAP"), "{ip} is flapping between {iface} and {iface}"),
        ("STP_CHG", c1("SPANTREE", 5, "TOPOTRAP"), "topology change trap for vlan {num}"),
        ("MAC_MOVE", c1("MAC", 4, "MOVE"), "Host {ip} is flapping between port {iface} and port {iface}"),
        ("DHCP_SNOOP", c1("DHCP_SNOOPING", 4, "AGENT"), "DHCP snooping binding transfer failed ({num})"),
        ("AAA_SERVER", c1("AAA", 3, "SERVER_DOWN"), "RADIUS server {ip}:{port} is not responding"),
        ("AAA_SERVER_UP", c1("AAA", 5, "SERVER_UP"), "RADIUS server {ip}:{port} is responding again"),
        ("LINEPROTO_LOOP", c1("LINEPROTO", 5, "LOOPSTATUS"), "Interface {iface}, loop detected"),
        ("SERIAL_CRC", c1("SERIAL", 4, "CRCERR"), "Interface {iface}, excessive CRC errors detected {num} in last interval"),
        ("CONTROLLER_ERRS", c1("CONTROLLER", 5, "REMLOOP"), "Controller T3 {ctl}, remote loop detected"),
        ("FLASH_WRITE", c1("FLASH", 3, "WRITEFAIL"), "Flash write failed on device flash: errno {num}"),
        ("REDUNDANCY", c1("RED", 5, "SWITCHOVER"), "Redundancy switchover from unit {num} to unit {num} complete"),
        ("CLOCK_STEP", c1("SYS", 6, "CLOCKUPDATE"), "System clock has been updated from {user} source"),
        ("IMAGE_VERIFY", c1("SYS", 6, "IMGVERIFY"), "Image verification of file {name} completed"),
        ("LINK_ERRDISABLE", c1("PM", 4, "ERR_DISABLE"), "link-flap error detected on {iface}, putting {iface} in err-disable state"),
        ("LINK_RECOVER", c1("PM", 4, "ERR_RECOVER"), "Attempting to recover from link-flap err-disable state on {iface}"),
        ("MCAST_LIMIT", c1("MCAST", 4, "LIMIT"), "Multicast state limit {num} reached on {iface}"),
        ("TCAM_FULL", c1("TCAM", 3, "FULL"), "TCAM region {name} is full, software forwarding on slot {num}"),
        ("NETFLOW_CACHE", c1("NETFLOW", 4, "CACHEFULL"), "Netflow cache is full, {num} flows dropped"),
        ("SMART_LIC", c1("LICENSE", 6, "RENEW"), "Smart license renewal for entitlement {name}"),
        ("PORT_SECURITY", c1("PORT_SECURITY", 2, "VIOLATION"), "Security violation on {iface}, MAC {name} denied"),
        ("OIR_INSERT", c1("OIR", 6, "INSCARD"), "Card inserted in slot {num}, interfaces administratively shut down"),
        ("OIR_REMOVE", c1("OIR", 6, "REMCARD"), "Card removed from slot {num}, interfaces disabled"),
        ("WATCHDOG", c1("SYS", 2, "WATCHDOG"), "Process {name} exceeded watchdog timeout on CPU {num}"),
        ("STACK_LOW", c1("SYS", 3, "STACKLOW"), "Process {name} stack usage {pct}% of limit"),
        ("BUFFER_FAIL", c1("SYS", 3, "NOBUF"), "No buffers available in pool {name}, {num} misses"),
        ("IF_RESET", c1("IF", 4, "RESET"), "Interface {iface} reset by driver, error code {num}"),
        ("KEEPALIVE", c1("IF", 3, "KEEPALIVE"), "Keepalive timeout on {iface}, {num} missed"),
        ("REXEC", c1("SYS", 6, "LOGOUT"), "User {user} has exited tty session {num}({ip})"),
        ("LOGIN_OK", c1("SEC_LOGIN", 5, "LOGIN_SUCCESS"), "Login Success [user: {user}] [Source: {ip}] [localport: {port}]"),
        ("LOGIN_FAILED_V1", c1("SEC_LOGIN", 4, "LOGIN_FAILED"), "Login failed [user: {user}] [Source: {ip}] [localport: {port}] [Reason: Login Authentication Failed]"),
        ("BADPKT", c1("IP", 4, "BADPKT"), "Bad packet received from {ip}, protocol {num}"),
        ("TTL_EXPIRED", c1("IP", 6, "TTLEXPIRE"), "TTL expired for packet from {ip} to {ip}"),
        ("FRAG_OVERFLOW", c1("IP", 4, "FRAGOVERFLOW"), "Fragment reassembly overflow from {ip}"),
        ("SLA_TIMEOUT", c1("RTT", 4, "OPER_TIMEOUT"), "condition occurred, entry number = {num}"),
        ("TRACK_CHG", c1("TRACK", 5, "STATE"), "{num} interface {iface} line-protocol Up -> Down"),
        ("VRRP_CHG", c1("VRRP", 5, "STATECHANGE"), "Vl{num} Grp {num} state Master -> Backup"),
        ("BFD_SESS", c1("BFD", 5, "SESSION"), "BFD session to neighbor {ip} on interface {iface} has gone down, reason: echo failure"),
        ("BFD_SESS_UP", c1("BFD", 5, "SESSIONUP"), "BFD session to neighbor {ip} on interface {iface} is up"),
        ("CDP_NATIVE", c1("CDP", 4, "NATIVE_VLAN_MISMATCH"), "Native VLAN mismatch discovered on {iface} ({num}), with {name} {iface} ({num})"),
        ("ENTITY_ALARM", c1("ENTITY_ALARM", 6, "INFO"), "ASSERT CRITICAL {iface} Physical Port Link Down"),
        ("ENTITY_CLEAR", c1("ENTITY_ALARM", 6, "CLEAR"), "CLEAR CRITICAL {iface} Physical Port Link Down"),
    ];
    for (rank, (key, code, pattern)) in tail.into_iter().enumerate() {
        let rate = 1.0 / (rank as f64 + 2.0).powf(0.7);
        v.push((key, code, pattern, rate));
    }
    v
}

/// Vendor V2 (TiMOS-style) catalog.
fn catalog_v2() -> Vec<Spec> {
    let c2 = ErrorCode::v2;
    let mut v: Vec<Spec> = vec![
        (
            "SNMP_LINKDOWN",
            c2("SNMP", "WARNING", "linkDown"),
            "Interface {iface} is not operational",
            0.0,
        ),
        (
            "SNMP_LINKUP",
            c2("SNMP", "WARNING", "linkup"),
            "Interface {iface} is operational",
            0.0,
        ),
        (
            "SAP_CHANGE",
            c2("SVCMGR", "MAJOR", "sapPortStateChangeProcessed"),
            "The status of all affected SAPs on port {iface} has been updated.",
            0.0,
        ),
        (
            "PIM_NBR_LOSS",
            c2("PIM", "WARNING", "pimNeighborLoss"),
            "PIM neighbor {ip} on interface {iface} lost",
            0.0,
        ),
        (
            "PIM_NBR_UP",
            c2("PIM", "INFO", "pimNeighborUp"),
            "PIM neighbor {ip} on interface {iface} established",
            0.0,
        ),
        (
            "FRR_SWITCH",
            c2("MPLS", "MINOR", "frrProtectionSwitch"),
            "FRR protection switch for LSP {name} to secondary path",
            0.0,
        ),
        (
            "FRR_REVERT",
            c2("MPLS", "MINOR", "frrRevert"),
            "LSP {name} reverted to primary path",
            0.0,
        ),
        (
            "LSP_DOWN",
            c2("MPLS", "MAJOR", "lspDown"),
            "LSP {name} changed state to down",
            0.0,
        ),
        (
            "LSP_UP",
            c2("MPLS", "MAJOR", "lspUp"),
            "LSP {name} changed state to up",
            0.0,
        ),
        (
            "LSP_RETRY",
            c2("MPLS", "MINOR", "lspPathRetry"),
            "LSP {name} path setup retry attempt {num}",
            0.0,
        ),
        (
            "FTP_FAIL",
            c2("SECURITY", "WARNING", "ftpLoginFailed"),
            "FTP login failed for user {user} from host {ip}",
            0.15,
        ),
        (
            "SSH_FAIL",
            c2("SECURITY", "WARNING", "sshLoginFailed"),
            "SSH login failed for user {user} from host {ip}",
            0.15,
        ),
        (
            "BGP_EST",
            c2("BGP", "WARNING", "bgpEstablished"),
            "BGP neighbor {ip} vrf {vrf} moved into established state",
            0.0,
        ),
        (
            "BGP_BWT",
            c2("BGP", "WARNING", "bgpBackwardTransition"),
            "BGP neighbor {ip} vrf {vrf} moved from higher to lower state",
            0.0,
        ),
        (
            "PORT_ETH_DOWN",
            c2("PORT", "MINOR", "etherAlarmSet"),
            "Alarm remoteFault set on port {iface}",
            0.0,
        ),
        (
            "PORT_ETH_CLEAR",
            c2("PORT", "MINOR", "etherAlarmClear"),
            "Alarm remoteFault cleared on port {iface}",
            0.0,
        ),
        (
            "IGMP_QUERY",
            c2("IGMP", "WARNING", "queryVersionMismatch"),
            "IGMP version mismatch detected on interface {iface} from querier {ip}",
            0.25,
        ),
        (
            "SVC_DOWN",
            c2("SVCMGR", "MAJOR", "svcStatusChanged"),
            "Status of service {num} changed to operState down",
            0.0,
        ),
        (
            "SVC_UP",
            c2("SVCMGR", "MAJOR", "svcStatusChangedUp"),
            "Status of service {num} changed to operState up",
            0.0,
        ),
        (
            "CARD_FAIL",
            c2("CHASSIS", "CRITICAL", "cardFailure"),
            "Card failure on slot {num} reason hardware fault",
            0.0,
        ),
        (
            "CARD_UP",
            c2("CHASSIS", "MINOR", "cardInserted"),
            "Card in slot {num} returned to service",
            0.0,
        ),
    ];
    let tail: Vec<(&'static str, ErrorCode, &'static str)> = vec![
        (
            "CHASSIS_FAN",
            c2("CHASSIS", "MAJOR", "fanFailure"),
            "Fan {num} failure detected in fan tray {num}",
        ),
        (
            "CHASSIS_TEMP",
            c2("CHASSIS", "CRITICAL", "tempThresholdExceeded"),
            "Temperature {num} C on card {num} exceeds threshold",
        ),
        (
            "CHASSIS_PWR",
            c2("CHASSIS", "CRITICAL", "powerSupplyFailure"),
            "Power supply {num} failed",
        ),
        (
            "CHASSIS_PWR_OK",
            c2("CHASSIS", "MINOR", "powerSupplyRestored"),
            "Power supply {num} restored",
        ),
        (
            "SYSTEM_CPU",
            c2("SYSTEM", "MINOR", "cpuHigh"),
            "System CPU utilization {pct}% exceeds minor threshold",
        ),
        (
            "SYSTEM_MEM",
            c2("SYSTEM", "MINOR", "memHigh"),
            "Memory pool utilization {pct}% on card {num}",
        ),
        (
            "NTP_V2",
            c2("SYSTEM", "WARNING", "ntpServerUnreachable"),
            "NTP server {ip} is unreachable",
        ),
        (
            "SNMP_AUTH_V2",
            c2("SNMP", "WARNING", "authenticationFailure"),
            "SNMP authentication failure from host {ip}",
        ),
        (
            "OSPF_V2_DOWN",
            c2("OSPF", "WARNING", "ospfNbrStateChange"),
            "OSPF neighbor {ip} on interface {iface} changed state to down",
        ),
        (
            "OSPF_V2_UP",
            c2("OSPF", "WARNING", "ospfNbrStateChangeUp"),
            "OSPF neighbor {ip} on interface {iface} changed state to full",
        ),
        (
            "LDP_V2",
            c2("LDP", "WARNING", "ldpSessionDown"),
            "LDP session to {ip} is down reason peerSentNotification",
        ),
        (
            "LDP_V2_UP",
            c2("LDP", "WARNING", "ldpSessionUp"),
            "LDP session to {ip} is operational",
        ),
        (
            "RSVP_V2",
            c2("RSVP", "WARNING", "rsvpSessionDown"),
            "RSVP session for LSP {name} is down",
        ),
        (
            "FILTER_HIT",
            c2("FILTER", "WARNING", "filterEntryHit"),
            "Filter entry {num} matched {num} packets from {ip}",
        ),
        (
            "DOT1X",
            c2("SECURITY", "WARNING", "dot1xAuthFail"),
            "802.1x authentication failed on port {iface} for supplicant {name}",
        ),
        (
            "RADIUS_V2",
            c2("SECURITY", "MAJOR", "radiusServerTimeout"),
            "RADIUS server {ip} port {port} request timeout",
        ),
        (
            "MDA_SYNC",
            c2("CHASSIS", "MINOR", "mdaSyncFail"),
            "MDA {num}/{num} synchronization lost",
        ),
        (
            "ACCT_OVERFLOW",
            c2("SYSTEM", "WARNING", "acctPolicyOverflow"),
            "Accounting policy {num} record overflow {num} records dropped",
        ),
        (
            "SAA_THRESH",
            c2("SAA", "WARNING", "saaThresholdCrossed"),
            "SAA test {name} round-trip time {num} ms exceeded rising threshold",
        ),
        (
            "VRRP_V2",
            c2("VRRP", "WARNING", "vrrpStateChange"),
            "VRRP instance {num} on interface {iface} changed state to backup",
        ),
        (
            "CFLOWD_FULL",
            c2("CFLOWD", "WARNING", "cacheFull"),
            "Cflowd cache full {num} flows not accounted",
        ),
        (
            "PORT_SFP",
            c2("PORT", "WARNING", "sfpRemoved"),
            "SFP removed from port {iface}",
        ),
        (
            "PORT_SFP_IN",
            c2("PORT", "WARNING", "sfpInserted"),
            "SFP inserted in port {iface}",
        ),
        (
            "TOD_SUITE",
            c2("SYSTEM", "INFO", "todSuiteChange"),
            "Time-of-day suite {name} activated",
        ),
        (
            "CRON_RUN",
            c2("SYSTEM", "INFO", "cronScriptRun"),
            "CRON script {name} completed with exit code {num}",
        ),
        (
            "LOGIN_V2",
            c2("SECURITY", "INFO", "cliLogin"),
            "User {user} logged in from {ip}",
        ),
        (
            "LOGOUT_V2",
            c2("SECURITY", "INFO", "cliLogout"),
            "User {user} logged out from {ip}",
        ),
        (
            "CONFIG_V2",
            c2("SYSTEM", "INFO", "configModify"),
            "Configuration modified by user {user} from {ip}",
        ),
        (
            "IGMP_MAXGRP",
            c2("IGMP", "WARNING", "maxGroupsReached"),
            "Maximum IGMP groups {num} reached on interface {iface}",
        ),
        (
            "MCPATH_CONG",
            c2("MCPATH", "WARNING", "pathCongestion"),
            "Multicast path congestion on interface {iface} channel {ip}",
        ),
        (
            "VIDEO_GAP",
            c2("VIDEO", "WARNING", "rtGapDetected"),
            "Video gap detected on channel {ip} duration {num} ms",
        ),
        (
            "VIDEO_FCC",
            c2("VIDEO", "INFO", "fccSessionLimit"),
            "FCC session limit {num} reached on service {num}",
        ),
        (
            "PTP_SYNC",
            c2("PTP", "WARNING", "ptpSyncLost"),
            "PTP clock sync lost with master {ip}",
        ),
        (
            "ROUTE_LIMIT",
            c2("ROUTER", "WARNING", "routeLimitExceeded"),
            "VRF {vrf} route limit {num} exceeded",
        ),
        (
            "ARP_DUP_V2",
            c2("ROUTER", "WARNING", "duplicateIp"),
            "Duplicate IP address {ip} detected on interface {iface}",
        ),
    ];
    for (rank, (key, code, pattern)) in tail.into_iter().enumerate() {
        let rate = 1.0 / (rank as f64 + 2.0).powf(0.7);
        v.push((key, code, pattern, rate));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogs_have_unique_keys_and_parse() {
        for vendor in [Vendor::V1, Vendor::V2] {
            let g = Grammar::for_vendor(vendor);
            let mut keys: Vec<&str> = g.templates().iter().map(|t| t.key).collect();
            let n = keys.len();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(n, keys.len(), "duplicate keys for {vendor}");
            assert!(n >= 50, "catalog for {vendor} too small: {n}");
        }
    }

    #[test]
    fn masked_forms_are_unique_templates() {
        for vendor in [Vendor::V1, Vendor::V2] {
            let g = Grammar::for_vendor(vendor);
            let mut masked = g.masked_set();
            let n = masked.len();
            masked.sort();
            masked.dedup();
            assert_eq!(n, masked.len(), "colliding masked templates for {vendor}");
        }
    }

    #[test]
    fn render_fills_slots_in_order() {
        let g = Grammar::for_vendor(Vendor::V1);
        let t = g.get("BGP_UP");
        let mut vals = vec!["1000:1001".to_owned(), "192.168.32.42".to_owned()];
        let out = t.render(|k| match k {
            VarKind::Ip => vals.pop().unwrap(),
            VarKind::Vrf => vals.remove(0),
            other => panic!("unexpected slot {other:?}"),
        });
        assert_eq!(out, "neighbor 192.168.32.42 vpn vrf 1000:1001 Up");
    }

    #[test]
    fn masked_matches_paper_table4_shape() {
        let g = Grammar::for_vendor(Vendor::V1);
        assert_eq!(
            g.get("BGP_DOWN_IFFLAP").masked(),
            "BGP-5-ADJCHANGE neighbor * vpn vrf * Down Interface flap"
        );
        assert_eq!(
            g.get("LINEPROTO_DOWN").masked(),
            "LINEPROTO-5-UPDOWN Line protocol on Interface * changed state to down"
        );
    }

    #[test]
    fn pidlist_renders_three_tokens_and_masks_three_stars() {
        let g = Grammar::for_vendor(Vendor::V1);
        let t = g.get("CPU_RISE");
        let masked = t.masked();
        let stars = masked.split_whitespace().filter(|w| *w == "*").count();
        // pct + pidlist(3) = 4 stars
        assert_eq!(stars, 4, "{masked}");
        let rendered = t.render(|k| match k {
            VarKind::Percent => "95".to_owned(),
            VarKind::PidList => "2/71%, 8/6%, 7/3%".to_owned(),
            other => panic!("unexpected {other:?}"),
        });
        assert!(rendered.contains("95%/1%"));
        assert!(rendered.ends_with("2/71%, 8/6%, 7/3%"));
    }

    #[test]
    fn punctuation_stays_glued_to_var_tokens() {
        let g = Grammar::for_vendor(Vendor::V1);
        let t = g.get("LINK_DOWN");
        let out = t.render(|_| "Serial1/0.10/10:0".to_owned());
        assert_eq!(out, "Interface Serial1/0.10/10:0, changed state to down");
    }

    #[test]
    fn tail_templates_have_decaying_rates() {
        let g = Grammar::for_vendor(Vendor::V1);
        let rates: Vec<f64> = g.tail_templates().map(|(_, r)| r).collect();
        assert!(rates.len() > 30);
        let max = rates.iter().cloned().fold(0.0, f64::max);
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min > 20.0,
            "tail should be heavy: max={max} min={min}"
        );
    }

    #[test]
    #[should_panic(expected = "no template")]
    fn unknown_key_panics() {
        Grammar::for_vendor(Vendor::V1).get("NOPE");
    }
}
