//! Synthetic router-level network topology.
//!
//! The paper's two networks are proprietary; this module generates networks
//! with the same *structural* properties the mining pipeline depends on:
//! a physical location hierarchy inside every router (slot → port →
//! physical interface → logical sub-interface, Figure 3), inter-router
//! links terminating on specific interfaces, BGP sessions (optionally in
//! VPN VRFs), multilink bundles, controllers, and — for the IPTV network —
//! a PIM multicast tree whose edges have primary and secondary (multi-hop,
//! MPLS FRR-protected) paths, as required by the §6.1 case study.

use crate::ip::{IpAllocator, Ipv4};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sd_model::Vendor;
use serde::{Deserialize, Serialize};

/// (city code, state code) pool for router sites; state codes are what
/// trouble tickets carry (§5.3 matches locations "at the state level").
pub const SITES: &[(&str, &str)] = &[
    ("nyc", "NY"),
    ("chi", "IL"),
    ("dal", "TX"),
    ("atl", "GA"),
    ("sea", "WA"),
    ("lax", "CA"),
    ("den", "CO"),
    ("mia", "FL"),
    ("bos", "MA"),
    ("phx", "AZ"),
    ("stl", "MO"),
    ("msp", "MN"),
    ("phl", "PA"),
    ("slc", "UT"),
    ("pdx", "OR"),
    ("clt", "NC"),
];

/// Kind of a physical interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IfaceKind {
    /// Channelized serial (vendor V1), e.g. `Serial1/0.10/10:0`.
    Serial,
    /// Gigabit ethernet (vendor V1), e.g. `GigabitEthernet2/1`.
    Ethernet,
    /// Numeric V2 port interface, e.g. `1/1/1`.
    PortV2,
    /// Router loopback.
    Loopback,
}

/// One (physical or logical) interface on a router.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Interface {
    /// Vendor-rendered interface name, unique within the router.
    pub name: String,
    /// Slot (linecard) index on the chassis.
    pub slot: u8,
    /// Port index within the slot.
    pub port: u8,
    /// Sub-interface / channel discriminator, `None` for physical ports.
    pub sub: Option<u16>,
    /// Index of the parent physical interface for logical sub-interfaces.
    pub parent: Option<usize>,
    /// Assigned address, if the interface is L3-configured.
    pub ip: Option<Ipv4>,
    /// Media/vendor kind.
    pub kind: IfaceKind,
}

impl Interface {
    /// Whether this is a logical sub-interface.
    pub fn is_logical(&self) -> bool {
        self.parent.is_some()
    }
}

/// A channelized controller (V1 only), the port-level parent of serial
/// interfaces; the Figure 4 instability scenario flaps one of these.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Controller {
    /// Controller name, e.g. `T3 1/0/0`.
    pub name: String,
    /// Slot index.
    pub slot: u8,
    /// Port index.
    pub port: u8,
    /// Indices (into `Router::interfaces`) of child serial interfaces.
    pub children: Vec<usize>,
}

/// A multilink bundle aggregating several physical member interfaces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bundle {
    /// Bundle interface name, e.g. `Multilink3`.
    pub name: String,
    /// Member physical-interface indices.
    pub members: Vec<usize>,
    /// Bundle L3 address.
    pub ip: Ipv4,
}

/// Role of a router in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterRole {
    /// Backbone core router (or IPTV VHO core).
    Core,
    /// Aggregation / edge router.
    Aggregation,
}

/// A router chassis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Router {
    /// Unique router name, e.g. `cr1.dal` (no whitespace: it appears as a
    /// single syslog field).
    pub name: String,
    /// City code of the hosting site.
    pub site: String,
    /// State code (ticket-matching granularity).
    pub state: String,
    /// Vendor family, determining message grammar and interface naming.
    pub vendor: Vendor,
    /// Network role.
    pub role: RouterRole,
    /// Loopback address.
    pub loopback: Ipv4,
    /// Number of slots in the chassis (slot indices `0..slots`).
    pub slots: u8,
    /// Ports per slot (port indices `0..ports_per_slot`).
    pub ports_per_slot: u8,
    /// All interfaces, physical first then logical children.
    pub interfaces: Vec<Interface>,
    /// Channelized controllers (V1 only).
    pub controllers: Vec<Controller>,
    /// Multilink bundles.
    pub bundles: Vec<Bundle>,
}

impl Router {
    /// Find an interface index by name.
    pub fn iface_by_name(&self, name: &str) -> Option<usize> {
        self.interfaces.iter().position(|i| i.name == name)
    }
}

/// One endpoint of a link: router index + interface index on that router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EndPoint {
    /// Index into `Topology::routers`.
    pub router: usize,
    /// Index into that router's `interfaces`.
    pub iface: usize,
}

/// A physical/logical inter-router link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// One end.
    pub a: EndPoint,
    /// The other end.
    pub b: EndPoint,
}

impl Link {
    /// The opposite endpoint, given one side's router index.
    pub fn peer_of(&self, router: usize) -> Option<EndPoint> {
        if self.a.router == router {
            Some(self.b)
        } else if self.b.router == router {
            Some(self.a)
        } else {
            None
        }
    }
}

/// A BGP session between two routers (optionally inside a VPN VRF).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BgpSession {
    /// One endpoint router index.
    pub a: usize,
    /// Other endpoint router index.
    pub b: usize,
    /// Address `a` uses to reach `b` (the "neighbor" address in `a`'s logs).
    pub b_addr: Ipv4,
    /// Address `b` uses to reach `a`.
    pub a_addr: Ipv4,
    /// VRF id (`1000:1001` style) for VPN sessions, `None` for plain iBGP.
    pub vrf: Option<String>,
    /// Index of the link the session rides on, when single-hop.
    pub link: Option<usize>,
}

/// A multi-hop protection path (MPLS LSP) between two routers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathRoute {
    /// LSP name, e.g. `LSP-cr1.dal-cr2.atl-sec`.
    pub name: String,
    /// Head-end router index.
    pub from: usize,
    /// Tail-end router index.
    pub to: usize,
    /// Link indices the path traverses, in order.
    pub hops: Vec<usize>,
}

/// A PIM adjacency (IPTV multicast-tree edge) with primary and secondary
/// delivery paths (§6.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PimAdjacency {
    /// One endpoint router index.
    pub a: usize,
    /// Other endpoint router index.
    pub b: usize,
    /// Primary single-hop link index.
    pub primary_link: usize,
    /// Secondary multi-hop path index into `Topology::paths`.
    pub secondary_path: usize,
}

/// The whole generated network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// All routers.
    pub routers: Vec<Router>,
    /// All inter-router links.
    pub links: Vec<Link>,
    /// All BGP sessions.
    pub bgp_sessions: Vec<BgpSession>,
    /// Multi-hop protection paths.
    pub paths: Vec<PathRoute>,
    /// PIM multicast-tree adjacencies (empty for non-IPTV networks).
    pub pim: Vec<PimAdjacency>,
}

/// Parameters for topology generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopoSpec {
    /// Total number of routers (min 4).
    pub n_routers: usize,
    /// Vendor family for all routers in the network.
    pub vendor: Vendor,
    /// Whether to overlay an IPTV multicast tree with protection paths.
    pub iptv: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Topology {
    /// Resolve an endpoint to `(router, interface)`.
    pub fn endpoint(&self, ep: EndPoint) -> (&Router, &Interface) {
        let r = &self.routers[ep.router];
        (r, &r.interfaces[ep.iface])
    }

    /// Find the link connecting two routers, if any single-hop link exists.
    pub fn link_between(&self, a: usize, b: usize) -> Option<usize> {
        self.links.iter().position(|l| {
            (l.a.router == a && l.b.router == b) || (l.a.router == b && l.b.router == a)
        })
    }

    /// Generate a topology from a spec. Deterministic in the seed.
    pub fn generate(spec: &TopoSpec) -> Topology {
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x70b0_1051);
        let n = spec.n_routers.max(4);
        let n_core = (n / 4).clamp(2, SITES.len());
        let mut loopbacks = IpAllocator::new(Ipv4::new(10, 255, 0, 1));
        let mut link_ips = IpAllocator::new(Ipv4::new(10, 0, 0, 1));

        let mut routers: Vec<Router> = Vec::with_capacity(n);
        for i in 0..n {
            let role = if i < n_core {
                RouterRole::Core
            } else {
                RouterRole::Aggregation
            };
            let (site, state) = SITES[i % SITES.len()];
            let prefix = match role {
                RouterRole::Core => "cr",
                RouterRole::Aggregation => "ar",
            };
            let name = format!("{prefix}{}.{site}", i / SITES.len() + 1);
            let slots = rng.gen_range(4..=14u8);
            let ports = rng.gen_range(2..=4u8);
            routers.push(Router {
                name,
                site: site.to_owned(),
                state: state.to_owned(),
                vendor: spec.vendor,
                role,
                loopback: loopbacks.alloc(),
                slots,
                ports_per_slot: ports,
                interfaces: vec![Interface {
                    name: "Loopback0".to_owned(),
                    slot: 0,
                    port: 0,
                    sub: None,
                    parent: None,
                    ip: None,
                    kind: IfaceKind::Loopback,
                }],
                controllers: Vec::new(),
                bundles: Vec::new(),
            });
            let lb = routers.last().unwrap().loopback;
            routers.last_mut().unwrap().interfaces[0].ip = Some(lb);
        }

        // Port cursor per router: next free (slot, port).
        let mut cursor: Vec<(u8, u8)> = vec![(0, 0); n];
        let mut links: Vec<Link> = Vec::new();

        let connect = |routers: &mut Vec<Router>,
                       cursor: &mut Vec<(u8, u8)>,
                       links: &mut Vec<Link>,
                       rng: &mut StdRng,
                       link_ips: &mut IpAllocator,
                       a: usize,
                       b: usize| {
            if a == b
                || links
                    .iter()
                    .any(|l| l.peer_of(a).map(|p| p.router) == Some(b))
            {
                return;
            }
            let ea = alloc_link_iface(&mut routers[a], &mut cursor[a], rng, link_ips);
            let eb = alloc_link_iface(&mut routers[b], &mut cursor[b], rng, link_ips);
            links.push(Link {
                a: EndPoint {
                    router: a,
                    iface: ea,
                },
                b: EndPoint {
                    router: b,
                    iface: eb,
                },
            });
        };

        // Core ring plus random chords.
        for i in 0..n_core {
            let j = (i + 1) % n_core;
            connect(
                &mut routers,
                &mut cursor,
                &mut links,
                &mut rng,
                &mut link_ips,
                i,
                j,
            );
        }
        for _ in 0..n_core / 2 {
            let i = rng.gen_range(0..n_core);
            let j = rng.gen_range(0..n_core);
            connect(
                &mut routers,
                &mut cursor,
                &mut links,
                &mut rng,
                &mut link_ips,
                i,
                j,
            );
        }
        // Aggregation routers dual-home to two cores.
        for i in n_core..n {
            let c1 = rng.gen_range(0..n_core);
            let c2 = (c1 + 1 + rng.gen_range(0..n_core.max(2) - 1)) % n_core;
            connect(
                &mut routers,
                &mut cursor,
                &mut links,
                &mut rng,
                &mut link_ips,
                i,
                c1,
            );
            connect(
                &mut routers,
                &mut cursor,
                &mut links,
                &mut rng,
                &mut link_ips,
                i,
                c2,
            );
        }

        // Controllers (V1): wrap each serial physical port in a controller.
        if spec.vendor == Vendor::V1 {
            for r in &mut routers {
                let mut by_port: std::collections::BTreeMap<(u8, u8), Vec<usize>> =
                    std::collections::BTreeMap::new();
                for (idx, ifc) in r.interfaces.iter().enumerate() {
                    if ifc.kind == IfaceKind::Serial && !ifc.is_logical() {
                        by_port.entry((ifc.slot, ifc.port)).or_default().push(idx);
                    }
                }
                for ((slot, port), children) in by_port {
                    let chan = (u32::from(slot) * 7 + u32::from(port) * 3) % 6;
                    r.controllers.push(Controller {
                        name: format!("T3 {slot}/{port}/{chan}"),
                        slot,
                        port,
                        children,
                    });
                }
            }
        }

        // A few multilink bundles on cores with >=2 physical serial ifaces.
        for r in routers.iter_mut().take(n_core) {
            let members: Vec<usize> = r
                .interfaces
                .iter()
                .enumerate()
                .filter(|(_, i)| i.kind == IfaceKind::Serial && !i.is_logical())
                .map(|(idx, _)| idx)
                .take(2)
                .collect();
            if members.len() == 2 && rng.gen_bool(0.5) {
                let ip = link_ips.alloc();
                r.bundles.push(Bundle {
                    name: "Multilink1".to_owned(),
                    members,
                    ip,
                });
            }
        }

        // BGP: iBGP mesh over cores (loopback-to-loopback) + VPN sessions on
        // aggregation routers toward their cores, with VRF ids.
        let mut bgp_sessions = Vec::new();
        for i in 0..n_core {
            for j in (i + 1)..n_core {
                bgp_sessions.push(BgpSession {
                    a: i,
                    b: j,
                    b_addr: routers[j].loopback,
                    a_addr: routers[i].loopback,
                    vrf: None,
                    link: None,
                });
            }
        }
        for (li, l) in links.iter().enumerate() {
            let (ra, rb) = (l.a.router, l.b.router);
            let agg_end = if routers[ra].role == RouterRole::Aggregation {
                Some((ra, rb))
            } else if routers[rb].role == RouterRole::Aggregation {
                Some((rb, ra))
            } else {
                None
            };
            if let Some((agg, core)) = agg_end {
                let vrf = format!("1000:{}", 1000 + rng.gen_range(0..400));
                let a_ep = if l.a.router == agg { l.a } else { l.b };
                let b_ep = if l.a.router == agg { l.b } else { l.a };
                let a_addr = routers[a_ep.router].interfaces[a_ep.iface].ip.unwrap();
                let b_addr = routers[b_ep.router].interfaces[b_ep.iface].ip.unwrap();
                bgp_sessions.push(BgpSession {
                    a: agg,
                    b: core,
                    b_addr,
                    a_addr,
                    vrf: Some(vrf),
                    link: Some(li),
                });
            }
        }

        let mut topo = Topology {
            routers,
            links,
            bgp_sessions,
            paths: Vec::new(),
            pim: Vec::new(),
        };

        // IPTV overlay: a PIM multicast tree spanning *all* routers (BFS
        // over the link graph from router 0), each tree edge protected by
        // a secondary 2-hop path through a third router where one exists.
        // One single-hop LSP is also created per physical link so MPLS
        // reroute events draw from a name pool of realistic cardinality.
        if spec.iptv {
            for (li, l) in topo.links.iter().enumerate() {
                let (a, b) = (l.a.router, l.b.router);
                let name = format!("LSP-{}-{}-pri", topo.routers[a].name, topo.routers[b].name);
                topo.paths.push(PathRoute {
                    name,
                    from: a,
                    to: b,
                    hops: vec![li],
                });
            }
            let n = topo.routers.len();
            let mut parent_of: Vec<Option<usize>> = vec![None; n];
            let mut visited = vec![false; n];
            visited[0] = true;
            let mut queue = std::collections::VecDeque::from([0usize]);
            while let Some(u) = queue.pop_front() {
                for l in &topo.links {
                    if let Some(peer) = l.peer_of(u) {
                        if !visited[peer.router] {
                            visited[peer.router] = true;
                            parent_of[peer.router] = Some(u);
                            queue.push_back(peer.router);
                        }
                    }
                }
            }
            for (i, p) in parent_of.iter().enumerate().take(n).skip(1) {
                let Some(parent) = *p else { continue };
                let Some(primary) = topo.link_between(parent, i) else {
                    continue;
                };
                // Secondary: parent -> x -> i for some x with both links.
                let mut secondary = None;
                let mut order: Vec<usize> = (0..n).collect();
                order.shuffle(&mut rng);
                for x in order {
                    if x == parent || x == i {
                        continue;
                    }
                    if let (Some(h1), Some(h2)) =
                        (topo.link_between(parent, x), topo.link_between(x, i))
                    {
                        secondary = Some(vec![h1, h2]);
                        break;
                    }
                }
                let hops = secondary.unwrap_or_else(|| vec![primary]);
                let name = format!(
                    "LSP-{}-{}-sec",
                    topo.routers[parent].name, topo.routers[i].name
                );
                topo.paths.push(PathRoute {
                    name,
                    from: parent,
                    to: i,
                    hops,
                });
                let secondary_path = topo.paths.len() - 1;
                topo.pim.push(PimAdjacency {
                    a: parent,
                    b: i,
                    primary_link: primary,
                    secondary_path,
                });
            }
        }
        topo
    }
}

/// Allocate a fresh L3 interface on the next free port of `r`, returning its
/// index. Serial ports get a channelized sub-interface (the link actually
/// terminates on the logical interface, like `Serial1/0.10/10:0`); ethernet
/// and V2 ports are used directly.
fn alloc_link_iface(
    r: &mut Router,
    cursor: &mut (u8, u8),
    rng: &mut StdRng,
    ips: &mut IpAllocator,
) -> usize {
    // Spread link interfaces across random (slot, port) positions so
    // slot/port tokens in syslog details have the cardinality real
    // chassis exhibit; a port can host multiple logical interfaces, so
    // collisions just stack another sub-interface. (The cursor parameter
    // is kept by callers for determinism bookkeeping but randomization
    // supersedes sequential allocation.)
    let _ = cursor;
    let slot = rng.gen_range(0..r.slots);
    let port = rng.gen_range(0..r.ports_per_slot);

    match r.vendor {
        Vendor::V1 => {
            let serial = rng.gen_bool(0.6);
            if serial {
                let phys_name = format!("Serial{slot}/{port}");
                let phys = match r.iface_by_name(&phys_name) {
                    Some(p) => p,
                    None => {
                        r.interfaces.push(Interface {
                            name: phys_name,
                            slot,
                            port,
                            sub: None,
                            parent: None,
                            ip: None,
                            kind: IfaceKind::Serial,
                        });
                        r.interfaces.len() - 1
                    }
                };
                let sub = (r
                    .interfaces
                    .iter()
                    .filter(|i| i.parent == Some(phys))
                    .count() as u16
                    + 1)
                    * 10;
                let chan = rng.gen_range(1..30u16);
                let name = format!("Serial{slot}/{port}.{sub}/{chan}:0");
                r.interfaces.push(Interface {
                    name,
                    slot,
                    port,
                    sub: Some(sub),
                    parent: Some(phys),
                    ip: Some(ips.alloc()),
                    kind: IfaceKind::Serial,
                });
                r.interfaces.len() - 1
            } else {
                let phys_name = format!("GigabitEthernet{slot}/{port}");
                match r.iface_by_name(&phys_name) {
                    Some(p) => {
                        // Port already used: stack a dot1q sub-interface.
                        let sub = (r.interfaces.iter().filter(|i| i.parent == Some(p)).count()
                            as u16
                            + 1)
                            * 100;
                        r.interfaces.push(Interface {
                            name: format!("GigabitEthernet{slot}/{port}.{sub}"),
                            slot,
                            port,
                            sub: Some(sub),
                            parent: Some(p),
                            ip: Some(ips.alloc()),
                            kind: IfaceKind::Ethernet,
                        });
                        r.interfaces.len() - 1
                    }
                    None => {
                        r.interfaces.push(Interface {
                            name: phys_name,
                            slot,
                            port,
                            sub: None,
                            parent: None,
                            ip: Some(ips.alloc()),
                            kind: IfaceKind::Ethernet,
                        });
                        r.interfaces.len() - 1
                    }
                }
            }
        }
        Vendor::V2 => {
            let chan = r
                .interfaces
                .iter()
                .filter(|i| i.slot == slot && i.port == port && i.kind == IfaceKind::PortV2)
                .count() as u16
                + 1;
            r.interfaces.push(Interface {
                name: format!("{slot}/{port}/{chan}"),
                slot,
                port,
                sub: Some(chan),
                parent: None,
                ip: Some(ips.alloc()),
                kind: IfaceKind::PortV2,
            });
            r.interfaces.len() - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(vendor: Vendor, iptv: bool) -> TopoSpec {
        TopoSpec {
            n_routers: 24,
            vendor,
            iptv,
            seed: 7,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Topology::generate(&spec(Vendor::V1, false));
        let b = Topology::generate(&spec(Vendor::V1, false));
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn every_router_is_linked() {
        let t = Topology::generate(&spec(Vendor::V1, false));
        for (i, r) in t.routers.iter().enumerate() {
            let deg = t.links.iter().filter(|l| l.peer_of(i).is_some()).count();
            assert!(deg >= 1, "router {} has no links", r.name);
        }
    }

    #[test]
    fn link_endpoints_have_ips_and_valid_indices() {
        let t = Topology::generate(&spec(Vendor::V1, false));
        for l in &t.links {
            for ep in [l.a, l.b] {
                let (r, ifc) = t.endpoint(ep);
                assert!(
                    ifc.ip.is_some(),
                    "link iface {} on {} lacks ip",
                    ifc.name,
                    r.name
                );
            }
        }
    }

    #[test]
    fn v1_subinterfaces_have_physical_parents() {
        let t = Topology::generate(&spec(Vendor::V1, false));
        for r in &t.routers {
            for ifc in &r.interfaces {
                if let Some(p) = ifc.parent {
                    let parent = &r.interfaces[p];
                    assert!(parent.parent.is_none(), "parent of {} is logical", ifc.name);
                    assert_eq!((parent.slot, parent.port), (ifc.slot, ifc.port));
                }
            }
        }
    }

    #[test]
    fn v1_controllers_wrap_serial_ports() {
        let t = Topology::generate(&spec(Vendor::V1, false));
        let with_controllers = t
            .routers
            .iter()
            .filter(|r| !r.controllers.is_empty())
            .count();
        assert!(with_controllers > 0);
        for r in &t.routers {
            for c in &r.controllers {
                assert!(!c.children.is_empty());
                for &ch in &c.children {
                    assert_eq!(r.interfaces[ch].kind, IfaceKind::Serial);
                    assert_eq!(
                        (r.interfaces[ch].slot, r.interfaces[ch].port),
                        (c.slot, c.port)
                    );
                }
            }
        }
    }

    #[test]
    fn v2_has_numeric_port_names_and_no_controllers() {
        let t = Topology::generate(&spec(Vendor::V2, false));
        for r in &t.routers {
            assert!(r.controllers.is_empty());
            for ifc in &r.interfaces {
                if ifc.kind == IfaceKind::PortV2 {
                    assert!(
                        ifc.name.matches('/').count() == 2,
                        "bad V2 name {}",
                        ifc.name
                    );
                }
            }
        }
    }

    #[test]
    fn bgp_sessions_connect_distinct_routers_with_vrfs_on_edges() {
        let t = Topology::generate(&spec(Vendor::V1, false));
        assert!(!t.bgp_sessions.is_empty());
        assert!(t.bgp_sessions.iter().any(|s| s.vrf.is_some()));
        for s in &t.bgp_sessions {
            assert_ne!(s.a, s.b);
            if let Some(v) = &s.vrf {
                assert!(v.starts_with("1000:"), "vrf format {v}");
            }
        }
    }

    #[test]
    fn iptv_overlay_builds_pim_tree_with_secondary_paths() {
        let t = Topology::generate(&spec(Vendor::V2, true));
        assert!(!t.pim.is_empty());
        for adj in &t.pim {
            let link = &t.links[adj.primary_link];
            assert!(link.peer_of(adj.a).is_some() && link.peer_of(adj.b).is_some());
            let path = &t.paths[adj.secondary_path];
            assert_eq!(path.from, adj.a);
            assert_eq!(path.to, adj.b);
            assert!(!path.hops.is_empty());
        }
    }

    #[test]
    fn interface_names_unique_per_router() {
        for vendor in [Vendor::V1, Vendor::V2] {
            let t = Topology::generate(&spec(vendor, false));
            for r in &t.routers {
                let mut names: Vec<&str> = r.interfaces.iter().map(|i| i.name.as_str()).collect();
                names.sort_unstable();
                let before = names.len();
                names.dedup();
                assert_eq!(before, names.len(), "duplicate iface names on {}", r.name);
            }
        }
    }

    #[test]
    fn router_names_embed_site_and_are_unique() {
        let t = Topology::generate(&spec(Vendor::V1, false));
        let mut names: Vec<&str> = t.routers.iter().map(|r| r.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
        for r in &t.routers {
            assert!(r.name.ends_with(&format!(".{}", r.site)));
            assert!(!r.name.contains(' '));
        }
    }
}
