//! Tiny IPv4 helper used by the topology generator.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An IPv4 address as a plain `u32` (network byte order semantics).
///
/// We avoid `std::net::Ipv4Addr` only because we need serde derives and
/// cheap arithmetic allocation; conversion is provided where useful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// Build from dotted-quad octets.
    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(u32::from(a) << 24 | u32::from(b) << 16 | u32::from(c) << 8 | u32::from(d))
    }

    /// Parse dotted-quad text.
    pub fn parse(s: &str) -> Option<Self> {
        let mut it = s.split('.');
        let a: u8 = it.next()?.parse().ok()?;
        let b: u8 = it.next()?.parse().ok()?;
        let c: u8 = it.next()?.parse().ok()?;
        let d: u8 = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        Some(Ipv4::new(a, b, c, d))
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0;
        write!(
            f,
            "{}.{}.{}.{}",
            v >> 24,
            (v >> 16) & 0xff,
            (v >> 8) & 0xff,
            v & 0xff
        )
    }
}

/// Sequential allocator handing out addresses from a private block.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IpAllocator {
    next: u32,
}

impl IpAllocator {
    /// Allocator starting at `10.0.0.1`-style base.
    pub fn new(base: Ipv4) -> Self {
        IpAllocator { next: base.0 }
    }

    /// Hand out the next address, skipping `.0` and `.255` host octets so
    /// rendered configs look like real unicast interface addresses.
    pub fn alloc(&mut self) -> Ipv4 {
        loop {
            let v = self.next;
            self.next = self.next.wrapping_add(1);
            let last = v & 0xff;
            if last != 0 && last != 255 {
                return Ipv4(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let ip = Ipv4::new(192, 168, 32, 42);
        assert_eq!(ip.to_string(), "192.168.32.42");
        assert_eq!(Ipv4::parse("192.168.32.42"), Some(ip));
        assert!(Ipv4::parse("192.168.32").is_none());
        assert!(Ipv4::parse("192.168.32.256").is_none());
        assert!(Ipv4::parse("192.168.32.42.1").is_none());
    }

    #[test]
    fn allocator_skips_network_and_broadcast_octets() {
        let mut alloc = IpAllocator::new(Ipv4::new(10, 0, 0, 254));
        let a = alloc.alloc();
        let b = alloc.alloc();
        let c = alloc.alloc();
        assert_eq!(a.to_string(), "10.0.0.254");
        assert_eq!(b.to_string(), "10.0.1.1"); // skips .255 and .0
        assert_eq!(c.to_string(), "10.0.1.2");
    }
}
