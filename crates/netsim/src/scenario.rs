//! Deterministic, paper-exact scenarios.
//!
//! These reconstruct the concrete examples the paper walks through: the
//! Table 2 toy (16 messages, one link flapping between r1 and r2), the
//! Figure 4 unstable controller, the Figure 5 periodic TCP bad-auth
//! series, and the §6.1 dual-failure PIM outage.

use crate::events::EventSim;
use crate::grammar::Grammar;
use crate::ip::Ipv4;
use crate::topology::{
    Controller, EndPoint, IfaceKind, Interface, Link, Router, RouterRole, Topology,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_model::{RawMessage, Timestamp, Vendor};

/// The two-router topology of Table 2: `r1` interface `Serial1/0.10/10:0`
/// connected to `r2` interface `Serial1/0.20/20:0`.
pub fn toy_topology() -> Topology {
    let mk_router = |name: &str, site: &str, state: &str, lb: Ipv4| Router {
        name: name.to_owned(),
        site: site.to_owned(),
        state: state.to_owned(),
        vendor: Vendor::V1,
        role: RouterRole::Core,
        loopback: lb,
        slots: 2,
        ports_per_slot: 2,
        interfaces: vec![
            Interface {
                name: "Loopback0".to_owned(),
                slot: 0,
                port: 0,
                sub: None,
                parent: None,
                ip: Some(lb),
                kind: IfaceKind::Loopback,
            },
            Interface {
                name: "Serial1/0".to_owned(),
                slot: 1,
                port: 0,
                sub: None,
                parent: None,
                ip: None,
                kind: IfaceKind::Serial,
            },
        ],
        controllers: vec![Controller {
            name: "T3 1/0/0".to_owned(),
            slot: 1,
            port: 0,
            children: vec![1],
        }],
        bundles: Vec::new(),
    };
    let mut r1 = mk_router("r1", "nyc", "NY", Ipv4::new(10, 255, 0, 1));
    let mut r2 = mk_router("r2", "chi", "IL", Ipv4::new(10, 255, 0, 2));
    r1.interfaces.push(Interface {
        name: "Serial1/0.10/10:0".to_owned(),
        slot: 1,
        port: 0,
        sub: Some(10),
        parent: Some(1),
        ip: Some(Ipv4::new(10, 0, 0, 1)),
        kind: IfaceKind::Serial,
    });
    r2.interfaces.push(Interface {
        name: "Serial1/0.20/20:0".to_owned(),
        slot: 1,
        port: 0,
        sub: Some(20),
        parent: Some(1),
        ip: Some(Ipv4::new(10, 0, 0, 2)),
        kind: IfaceKind::Serial,
    });
    Topology {
        routers: vec![r1, r2],
        links: vec![Link {
            a: EndPoint {
                router: 0,
                iface: 2,
            },
            b: EndPoint {
                router: 1,
                iface: 2,
            },
        }],
        bgp_sessions: Vec::new(),
        paths: Vec::new(),
        pim: Vec::new(),
    }
}

/// The exact 16 messages of Table 2 (two full link flaps at 2010-01-10
/// 00:00:00/10/20/30, both routers, LINK + LINEPROTO layers).
pub fn toy_table2_messages() -> Vec<RawMessage> {
    let g = Grammar::for_vendor(Vendor::V1);
    let t0 = Timestamp::from_ymd_hms(2010, 1, 10, 0, 0, 0);
    let if1 = "Serial1/0.10/10:0";
    let if2 = "Serial1/0.20/20:0";
    let mut out = Vec::with_capacity(16);
    let mut push = |ts: Timestamp, router: &str, key: &str, iface: &str| {
        let t = g.get(key);
        let detail = t.render(|_| iface.to_owned());
        out.push(RawMessage::new(ts, router, t.code.clone(), detail).with_gt(1));
    };
    for (i, state) in ["DOWN", "UP", "DOWN", "UP"].iter().enumerate() {
        let base = t0.plus(i as i64 * 10);
        let (link_key, proto_key) = if *state == "DOWN" {
            ("LINK_DOWN", "LINEPROTO_DOWN")
        } else {
            ("LINK_UP", "LINEPROTO_UP")
        };
        push(base, "r1", link_key, if1);
        push(base, "r2", link_key, if2);
        push(base.plus(1), "r1", proto_key, if1);
        push(base.plus(1), "r2", proto_key, if2);
    }
    out
}

/// Figure 4: one controller flapping in clusters over several hours.
/// Returns `(topology, messages)`; messages are time-sorted.
pub fn fig4_controller(seed: u64) -> (Topology, Vec<RawMessage>) {
    let topo = Topology::generate(&crate::topology::TopoSpec {
        n_routers: 8,
        vendor: Vendor::V1,
        iptv: false,
        seed,
    });
    let grammar = Grammar::for_vendor(Vendor::V1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sim = EventSim::new(&topo, &grammar);
    let router = topo
        .routers
        .iter()
        .position(|r| !r.controllers.is_empty())
        .expect("a V1 topology has controllers");
    let t0 = Timestamp::from_ymd_hms(2009, 12, 5, 0, 30, 0);
    // Three instability episodes spread across ~7 hours.
    for cluster in 0..3 {
        sim.controller_flap(&mut rng, router, 0, t0.plus(cluster * 10_800), 5);
    }
    let mut msgs = sim.msgs;
    sd_model::sort_batch(&mut msgs);
    (topo, msgs)
}

/// Figure 5: periodic TCP bad-authentication messages over ~6 hours.
pub fn fig5_tcp_badauth(seed: u64) -> (Topology, Vec<RawMessage>) {
    let topo = Topology::generate(&crate::topology::TopoSpec {
        n_routers: 8,
        vendor: Vendor::V1,
        iptv: false,
        seed,
    });
    let grammar = Grammar::for_vendor(Vendor::V1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x55);
    let mut sim = EventSim::new(&topo, &grammar);
    let t0 = Timestamp::from_ymd_hms(2009, 12, 5, 0, 10, 0);
    sim.tcp_badauth_wave(&mut rng, 0, t0);
    let mut msgs = sim.msgs;
    sd_model::sort_batch(&mut msgs);
    (topo, msgs)
}

/// The §6.1 case study: an IPTV network where a PIM adjacency suffers the
/// dual failure (broken secondary path + primary link failure). Background
/// noise is layered around the cascade so the grouping actually has to
/// separate the event from chaff. Returns `(topology, messages, gt-id)`.
pub fn pim_case(seed: u64) -> (Topology, Vec<RawMessage>, u64) {
    let topo = Topology::generate(&crate::topology::TopoSpec {
        n_routers: 16,
        vendor: Vendor::V2,
        iptv: true,
        seed,
    });
    let grammar = Grammar::for_vendor(Vendor::V2);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x616d);
    let mut sim = EventSim::new(&topo, &grammar);
    let t0 = Timestamp::from_ymd_hms(2009, 12, 5, 12, 0, 0);
    sim.pim_neighbor_loss(&mut rng, 0, t0);
    let gt = sim.events[0].id;
    // Chaff: scattered background messages across the same window.
    for i in 0..200 {
        let router = (i * 7) % topo.routers.len();
        let keys = [
            "LOGIN_V2",
            "SNMP_AUTH_V2",
            "CHASSIS_FAN",
            "NTP_V2",
            "IGMP_QUERY",
        ];
        sim.background(
            &mut rng,
            router,
            keys[i % keys.len()],
            t0.plus((i as i64 * 67) % 14_400),
        );
    }
    let mut msgs = sim.msgs;
    sd_model::sort_batch(&mut msgs);
    (topo, msgs, gt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_sixteen_messages_matching_paper() {
        let msgs = toy_table2_messages();
        assert_eq!(msgs.len(), 16);
        assert_eq!(
            msgs[0].to_line(),
            "2010-01-10 00:00:00 r1 LINK-3-UPDOWN Interface Serial1/0.10/10:0, \
             changed state to down"
        );
        assert_eq!(
            msgs[3].to_line(),
            "2010-01-10 00:00:01 r2 LINEPROTO-5-UPDOWN Line protocol on Interface \
             Serial1/0.20/20:0, changed state to down"
        );
        // Last message at 00:00:31 as in the paper's digest line.
        assert_eq!(msgs.last().unwrap().ts.to_string(), "2010-01-10 00:00:31");
    }

    #[test]
    fn toy_topology_connects_the_paper_interfaces() {
        let t = toy_topology();
        let l = &t.links[0];
        let (r1, i1) = t.endpoint(l.a);
        let (r2, i2) = t.endpoint(l.b);
        assert_eq!(
            (r1.name.as_str(), i1.name.as_str()),
            ("r1", "Serial1/0.10/10:0")
        );
        assert_eq!(
            (r2.name.as_str(), i2.name.as_str()),
            ("r2", "Serial1/0.20/20:0")
        );
    }

    #[test]
    fn fig4_has_clustered_controller_messages() {
        let (_, msgs) = fig4_controller(3);
        let ctl: Vec<_> = msgs
            .iter()
            .filter(|m| m.code.as_str() == "CONTROLLER-5-UPDOWN")
            .collect();
        assert!(ctl.len() >= 24, "got {}", ctl.len());
        // Span multiple hours.
        let span = ctl.last().unwrap().ts.seconds_since(ctl[0].ts);
        assert!(span > 2 * 3600, "span {span}");
    }

    #[test]
    fn pim_case_returns_gt_event_covering_many_codes() {
        let (_, msgs, gt) = pim_case(11);
        let event_msgs: Vec<_> = msgs.iter().filter(|m| m.gt_event == Some(gt)).collect();
        assert!(event_msgs.len() > 20);
        let noise = msgs.iter().filter(|m| m.gt_event.is_none()).count();
        assert!(noise >= 150);
    }
}
