//! Conformance-corpus emission: small, fully deterministic datasets plus
//! their faulted wire feeds, keyed by a single seed — the inputs the
//! differential conformance harness and the golden-corpus regression gate
//! (`validate_conformance`) run over.
//!
//! A corpus is a scaled-down preset-A dataset generated under a given
//! seed, together with one feed per fault variant: `clean` (the verbatim
//! wire feed), `bounded` (reordering within 30 s, duplicates, a burst
//! flood, ~1 % corrupted copies — exactly repairable), and `hostile`
//! (hour-scale reordering, drops, skewed clocks — survivable only).
//! Everything downstream of the seed is bit-for-bit reproducible, so a
//! digest of a corpus run can be pinned in version control.

use crate::dataset::{Dataset, DatasetSpec};
use crate::faults::{inject, FaultReport, FaultSpec};

/// The seeds the checked-in golden corpus pins (6 seeds × 3 variants).
pub const GOLDEN_SEEDS: [u64; 6] = [1, 2, 3, 5, 8, 13];

/// Default dataset scale for conformance corpora: large enough that every
/// pipeline stage (including rule mining) is exercised with non-trivial
/// state, small enough that naive O(n²)-ish reference implementations
/// stay fast.
pub const GOLDEN_SCALE: f64 = 0.05;

/// A deterministic conformance corpus.
pub struct Corpus {
    /// The seed that generated everything below.
    pub seed: u64,
    /// The generated dataset (training + online periods).
    pub dataset: Dataset,
}

impl Corpus {
    /// Generate the corpus for one seed at `scale`.
    pub fn generate(seed: u64, scale: f64) -> Corpus {
        let mut spec = DatasetSpec::preset_a().scaled(scale);
        spec.seed = seed;
        spec.name = format!("conformance-{seed}");
        Corpus {
            seed,
            dataset: Dataset::generate(spec),
        }
    }

    /// The online period as a faulted wire feed under `spec` (the fault
    /// RNG is independent of the dataset seed, so the same corpus can be
    /// replayed under every variant).
    pub fn feed(&self, spec: &FaultSpec) -> (Vec<String>, FaultReport) {
        inject(self.dataset.online(), spec)
    }

    /// [`Corpus::feed`] for a named variant (`clean`/`bounded`/`hostile`),
    /// seeding the fault RNG with the corpus seed.
    pub fn variant_feed(&self, variant: &str) -> (Vec<String>, FaultReport) {
        let spec = match variant {
            "clean" => FaultSpec::clean(self.seed),
            "bounded" => FaultSpec::bounded(self.seed),
            "hostile" => FaultSpec::hostile(self.seed),
            other => panic!("unknown corpus variant {other:?}"),
        };
        self.feed(&spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_in_the_seed() {
        let a = Corpus::generate(3, 0.05);
        let b = Corpus::generate(3, 0.05);
        assert_eq!(a.dataset.messages.len(), b.dataset.messages.len());
        let (fa, ra) = a.variant_feed("bounded");
        let (fb, rb) = b.variant_feed("bounded");
        assert_eq!(fa, fb);
        assert_eq!(ra, rb);
    }

    #[test]
    fn variants_differ_from_clean() {
        let c = Corpus::generate(1, 0.05);
        let (clean, r0) = c.variant_feed("clean");
        assert_eq!(
            r0.n_reordered + r0.n_duplicated + r0.n_corrupted + r0.n_dropped + r0.n_skewed,
            0
        );
        assert_eq!(r0.n_lines, r0.n_input);
        let (bounded, rb) = c.variant_feed("bounded");
        assert!(rb.n_duplicated > 0 || rb.n_reordered > 0);
        assert_ne!(clean, bounded);
    }
}
