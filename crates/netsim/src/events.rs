//! Ground-truth network events and their syslog cascades.
//!
//! Each simulated network condition (a flapping link, an unstable
//! controller, a dual-failure PIM outage, …) emits the multi-template,
//! multi-router message cascade that SyslogDigest is supposed to fold back
//! into *one* event. Every emitted message carries the event's ground-truth
//! id, giving the reproduction a quantitative grouping oracle the original
//! paper lacked (it validated by expert inspection).

use crate::grammar::{Grammar, VarKind};
use crate::topology::{EndPoint, RouterRole, Topology};
use rand::rngs::StdRng;
use rand::Rng;
use sd_model::{GroundTruthId, RawMessage, Timestamp, Vendor};
use serde::{Deserialize, Serialize};

/// Username pool for config sessions, login events and noise. Large enough
/// that the template learner sees usernames as a variable field.
pub const USERS: &[&str] = &[
    "jsmith",
    "ops1",
    "neteng",
    "autoconf",
    "svcmon",
    "root",
    "admin",
    "test",
    "oracle",
    "backup",
    "rancid",
    "nagios",
    "tacacs",
    "mwhite",
    "pgarcia",
    "dkim",
    "ajones",
    "tlee",
    "bchen",
    "rpatel",
    "noc1",
    "noc2",
    "noc3",
    "fieldtech",
    "vendor1",
    "audit",
    "secops",
    "provision",
    "cronuser",
    "labuser",
];

fn pick_user(rng: &mut StdRng) -> String {
    USERS[rng.gen_range(0..USERS.len())].to_owned()
}

/// The kind of a ground-truth event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A link flapping repeatedly (both ends, layers 1–3). Vendor V1.
    LinkFlap,
    /// An unstable channelized controller (Figure 4). Vendor V1.
    ControllerFlap,
    /// A BGP session reset and re-establishment. Vendor V1.
    BgpSessionReset,
    /// CPU utilization threshold crossing. Vendor V1.
    CpuSpike,
    /// A linecard crash taking down all its interfaces. Vendor V1.
    LineCardCrash,
    /// Environmental alarm (temperature). Vendor V1.
    EnvAlarm,
    /// An operator configuration session. Vendor V1.
    ConfigSession,
    /// Periodic TCP MD5 bad-authentication wave (Figure 5). Vendor V1.
    TcpBadAuthWave,
    /// A V2 port flapping with SAP updates. Vendor V2.
    PortFlap,
    /// The §6.1 dual-failure PIM neighbor loss cascade. Vendor V2.
    PimNeighborLoss,
    /// An MPLS fast-reroute protection switch. Vendor V2.
    MplsReroute,
    /// Correlated ftp/ssh login-failure wave. Vendor V2.
    LoginFailureWave,
    /// Service oper-state flapping. Vendor V2.
    SvcFlap,
    /// Chassis card failure. Vendor V2.
    CardFail,
}

impl EventKind {
    /// A short operator-facing label (the "event type" a domain expert
    /// would assign in §4.2.4 presentation).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::LinkFlap => "link flap, line protocol flap",
            EventKind::ControllerFlap => "controller flap",
            EventKind::BgpSessionReset => "bgp session reset",
            EventKind::CpuSpike => "cpu threshold",
            EventKind::LineCardCrash => "linecard failure",
            EventKind::EnvAlarm => "environmental alarm",
            EventKind::ConfigSession => "config session",
            EventKind::TcpBadAuthWave => "tcp bad authentication wave",
            EventKind::PortFlap => "port flap, sap update",
            EventKind::PimNeighborLoss => "pim neighbor loss (dual failure)",
            EventKind::MplsReroute => "mpls protection switch",
            EventKind::LoginFailureWave => "login failure wave",
            EventKind::SvcFlap => "service flap",
            EventKind::CardFail => "chassis card failure",
        }
    }

    /// Baseline operational importance in [0, 1] used to derive trouble
    /// tickets (higher = more likely to be ticketed).
    pub fn base_importance(self) -> f64 {
        match self {
            EventKind::PimNeighborLoss => 1.0,
            EventKind::LineCardCrash | EventKind::CardFail => 0.9,
            EventKind::LinkFlap | EventKind::PortFlap => 0.7,
            EventKind::ControllerFlap => 0.65,
            EventKind::BgpSessionReset | EventKind::MplsReroute | EventKind::SvcFlap => 0.6,
            EventKind::EnvAlarm => 0.5,
            EventKind::CpuSpike => 0.4,
            EventKind::TcpBadAuthWave | EventKind::LoginFailureWave => 0.3,
            EventKind::ConfigSession => 0.1,
        }
    }
}

/// A ground-truth event recorded by the simulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GtEvent {
    /// Unique id; messages reference it via `RawMessage::gt_event`.
    pub id: GroundTruthId,
    /// Event kind.
    pub kind: EventKind,
    /// First message timestamp.
    pub start: Timestamp,
    /// Last message timestamp.
    pub end: Timestamp,
    /// Indices of involved routers in the topology.
    pub routers: Vec<usize>,
    /// Number of syslog messages the event emitted.
    pub n_messages: usize,
    /// Importance in [0, 1] (kind baseline scaled by size), for tickets.
    pub importance: f64,
}

/// Emits event cascades into a message buffer.
pub struct EventSim<'a> {
    /// The network.
    pub topo: &'a Topology,
    /// The vendor grammar (must match the network's vendor).
    pub grammar: &'a Grammar,
    /// All emitted messages (unsorted; callers sort once at the end).
    pub msgs: Vec<RawMessage>,
    /// All recorded ground-truth events.
    pub events: Vec<GtEvent>,
    next_id: GroundTruthId,
}

impl<'a> EventSim<'a> {
    /// New simulator over `topo` speaking `grammar`.
    pub fn new(topo: &'a Topology, grammar: &'a Grammar) -> Self {
        EventSim {
            topo,
            grammar,
            msgs: Vec::new(),
            events: Vec::new(),
            next_id: 1,
        }
    }

    fn push(
        &mut self,
        ts: Timestamp,
        router: usize,
        key: &str,
        vals: &[String],
        gt: GroundTruthId,
    ) {
        let t = self.grammar.get(key);
        let mut it = vals.iter();
        let detail = t.render(|_| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {key}"))
                .clone()
        });
        assert!(it.next().is_none(), "extra var values for {key}");
        self.msgs.push(RawMessage {
            ts,
            router: self.topo.routers[router].name.clone(),
            code: t.code.clone(),
            detail,
            gt_event: Some(gt),
        });
    }

    fn begin(&mut self) -> GroundTruthId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn finish(&mut self, id: GroundTruthId, kind: EventKind, routers: Vec<usize>) {
        let mine: Vec<&RawMessage> = self
            .msgs
            .iter()
            .filter(|m| m.gt_event == Some(id))
            .collect();
        if mine.is_empty() {
            return;
        }
        let start = mine.iter().map(|m| m.ts).min().unwrap();
        let end = mine.iter().map(|m| m.ts).max().unwrap();
        let n = mine.len();
        let importance = (kind.base_importance() * (1.0 + (n as f64).ln() / 10.0)).min(1.0);
        let mut routers = routers;
        routers.sort_unstable();
        routers.dedup();
        self.events.push(GtEvent {
            id,
            kind,
            start,
            end,
            routers,
            n_messages: n,
            importance,
        });
    }

    /// Link-flap cascade on `link_idx` starting at `start`: `n_flaps`
    /// down/up cycles with slowly drifting inter-flap gaps around
    /// `base_gap` seconds; OSPF adjacencies follow each flap, and a BGP
    /// session riding the link goes down once with a 60–120 s hold-timer
    /// lag (the source of dataset A's wide-window association rules).
    pub fn link_flap(
        &mut self,
        rng: &mut StdRng,
        link_idx: usize,
        start: Timestamp,
        n_flaps: usize,
        base_gap: f64,
    ) {
        let id = self.begin();
        let link = self.topo.links[link_idx].clone();
        let ends = [link.a, link.b];
        let names: Vec<String> = ends
            .iter()
            .map(|e| self.topo.endpoint(*e).1.name.clone())
            .collect();
        let peer_ips: Vec<String> = [link.b, link.a]
            .iter()
            .map(|e| {
                self.topo
                    .endpoint(*e)
                    .1
                    .ip
                    .map(|ip| ip.to_string())
                    .unwrap_or_default()
            })
            .collect();
        let with_ospf = rng.gen_bool(0.6);
        let bgp = self
            .topo
            .bgp_sessions
            .iter()
            .position(|s| s.link == Some(link_idx) && rng.gen_bool(0.8));

        let mut gap = base_gap.max(60.0);
        let mut t = start;
        let mut last = start;
        for flap in 0..n_flaps.max(1) {
            let down_dur = rng.gen_range(2..12);
            for (e, ep) in ends.iter().enumerate() {
                self.push(t, ep.router, "LINK_DOWN", &[names[e].clone()], id);
                self.push(
                    t.plus(1),
                    ep.router,
                    "LINEPROTO_DOWN",
                    &[names[e].clone()],
                    id,
                );
                if with_ospf {
                    self.push(
                        t.plus(2),
                        ep.router,
                        "OSPF_DOWN",
                        &[peer_ips[e].clone(), names[e].clone()],
                        id,
                    );
                }
            }
            let up = t.plus(down_dur);
            for (e, ep) in ends.iter().enumerate() {
                self.push(up, ep.router, "LINK_UP", &[names[e].clone()], id);
                self.push(
                    up.plus(1),
                    ep.router,
                    "LINEPROTO_UP",
                    &[names[e].clone()],
                    id,
                );
                if with_ospf {
                    self.push(
                        up.plus(3),
                        ep.router,
                        "OSPF_UP",
                        &[peer_ips[e].clone(), names[e].clone()],
                        id,
                    );
                }
            }
            last = up.plus(3);
            if flap == 0 {
                if let Some(si) = bgp {
                    let s = self.topo.bgp_sessions[si].clone();
                    let hold = rng.gen_range(60..120);
                    let vrf = s.vrf.clone().unwrap_or_else(|| "1000:1000".to_owned());
                    self.push(
                        t.plus(hold),
                        s.a,
                        "BGP_DOWN_IFFLAP",
                        &[s.b_addr.to_string(), vrf.clone()],
                        id,
                    );
                    self.push(
                        t.plus(hold + 1),
                        s.b,
                        "BGP_DOWN_RECV",
                        &[s.a_addr.to_string(), vrf],
                        id,
                    );
                }
            }
            // Cycle spacing drifts slowly (EWMA-friendly) in a band whose
            // spread keeps the up=>next-down lag from clearing Confmin at
            // any W in the Figure 7 grid; cross-template rules come from
            // the within-cycle lags (proto +1 s, OSPF +2 s, BGP hold
            // 60-120 s) — hence dataset A's saturation near W = 120 s.
            // Occasional early re-flaps punish a large EWMA alpha.
            gap = (gap * rng.gen_range(0.9..1.12)).clamp(60.0, 1500.0);
            let jitter = if rng.gen_bool(0.12) {
                rng.gen_range(0.2..0.5)
            } else {
                1.0
            };
            t = t.plus(((gap * jitter) as i64).max(15) + down_dur);
        }
        if let Some(si) = bgp {
            let s = self.topo.bgp_sessions[si].clone();
            let vrf = s.vrf.clone().unwrap_or_else(|| "1000:1000".to_owned());
            self.push(
                last.plus(rng.gen_range(30..90)),
                s.a,
                "BGP_UP",
                &[s.b_addr.to_string(), vrf.clone()],
                id,
            );
            self.push(
                last.plus(rng.gen_range(30..90)),
                s.b,
                "BGP_UP",
                &[s.a_addr.to_string(), vrf],
                id,
            );
        }
        self.finish(id, EventKind::LinkFlap, vec![link.a.router, link.b.router]);
    }

    /// Controller instability (Figure 4): clustered controller up/down
    /// cycles; child serial interfaces follow 10–30 s later (the lag the
    /// paper observes when growing the rule window from 10 to 30 s).
    pub fn controller_flap(
        &mut self,
        rng: &mut StdRng,
        router: usize,
        ctl_idx: usize,
        start: Timestamp,
        n_cycles: usize,
    ) {
        let id = self.begin();
        let r = &self.topo.routers[router];
        let ctl = r.controllers[ctl_idx].clone();
        let ctl_tail = ctl.name.trim_start_matches("T3 ").to_owned();
        // Affected interfaces: logical children of the controller's ports.
        let mut child_ifaces: Vec<String> = Vec::new();
        for &phys in &ctl.children {
            for ifc in &r.interfaces {
                if ifc.parent == Some(phys) {
                    child_ifaces.push(ifc.name.clone());
                }
            }
        }
        let peers: Vec<(usize, String)> = child_peer_ends(self.topo, router, &child_ifaces);

        let mut t = start;
        let mut involved = vec![router];
        for _ in 0..n_cycles.max(1) {
            self.push(
                t,
                router,
                "CONTROLLER_DOWN",
                std::slice::from_ref(&ctl_tail),
                id,
            );
            let lag = rng.gen_range(10..30);
            for ifn in &child_ifaces {
                self.push(
                    t.plus(lag),
                    router,
                    "LINK_DOWN",
                    std::slice::from_ref(ifn),
                    id,
                );
                self.push(
                    t.plus(lag + 1),
                    router,
                    "LINEPROTO_DOWN",
                    std::slice::from_ref(ifn),
                    id,
                );
            }
            for (pr, pifn) in &peers {
                self.push(
                    t.plus(lag),
                    *pr,
                    "LINK_DOWN",
                    std::slice::from_ref(pifn),
                    id,
                );
                self.push(
                    t.plus(lag + 1),
                    *pr,
                    "LINEPROTO_DOWN",
                    std::slice::from_ref(pifn),
                    id,
                );
                involved.push(*pr);
            }
            let dur = rng.gen_range(5..40);
            self.push(
                t.plus(lag + dur),
                router,
                "CONTROLLER_UP",
                std::slice::from_ref(&ctl_tail),
                id,
            );
            for ifn in &child_ifaces {
                self.push(
                    t.plus(lag + dur + 2),
                    router,
                    "LINK_UP",
                    std::slice::from_ref(ifn),
                    id,
                );
                self.push(
                    t.plus(lag + dur + 3),
                    router,
                    "LINEPROTO_UP",
                    std::slice::from_ref(ifn),
                    id,
                );
            }
            for (pr, pifn) in &peers {
                self.push(
                    t.plus(lag + dur + 2),
                    *pr,
                    "LINK_UP",
                    std::slice::from_ref(pifn),
                    id,
                );
                self.push(
                    t.plus(lag + dur + 3),
                    *pr,
                    "LINEPROTO_UP",
                    std::slice::from_ref(pifn),
                    id,
                );
            }
            let cluster_gap = rng.gen_range(400..1200);
            t = t.plus(lag + dur + cluster_gap);
        }
        self.finish(id, EventKind::ControllerFlap, involved);
    }

    /// A BGP session reset: notification sent on one side, received on the
    /// other, session re-established after the hold time.
    pub fn bgp_session_reset(&mut self, rng: &mut StdRng, session: usize, start: Timestamp) {
        let id = self.begin();
        let s = self.topo.bgp_sessions[session].clone();
        let vrf = s.vrf.clone().unwrap_or_else(|| "1000:1000".to_owned());
        let closer_is_a = rng.gen_bool(0.5);
        let (snd, rcv) = if closer_is_a { (s.a, s.b) } else { (s.b, s.a) };
        let (snd_peer, rcv_peer) = if closer_is_a {
            (s.b_addr.to_string(), s.a_addr.to_string())
        } else {
            (s.a_addr.to_string(), s.b_addr.to_string())
        };
        if rng.gen_bool(0.5) {
            self.push(
                start,
                snd,
                "BGP_DOWN_SENT",
                &[snd_peer.clone(), vrf.clone()],
                id,
            );
            self.push(
                start.plus(1),
                rcv,
                "BGP_DOWN_RECV",
                &[rcv_peer.clone(), vrf.clone()],
                id,
            );
        } else {
            self.push(
                start,
                snd,
                "BGP_DOWN_CLOSED",
                &[snd_peer.clone(), vrf.clone()],
                id,
            );
            self.push(
                start.plus(1),
                rcv,
                "BGP_DOWN_CLOSED",
                &[rcv_peer.clone(), vrf.clone()],
                id,
            );
        }
        let re = start.plus(rng.gen_range(30..115));
        self.push(re, snd, "BGP_UP", &[snd_peer, vrf.clone()], id);
        self.push(re.plus(1), rcv, "BGP_UP", &[rcv_peer, vrf], id);
        self.finish(id, EventKind::BgpSessionReset, vec![s.a, s.b]);
    }

    /// CPU spike: rising threshold, optional re-alarms, falling threshold.
    /// When `after_config` is set the spike follows a config session —
    /// a correlation that exists only while the workload schedules it,
    /// exercising weekly rule deletion.
    pub fn cpu_spike(
        &mut self,
        rng: &mut StdRng,
        router: usize,
        start: Timestamp,
        after_config: bool,
    ) {
        let id = self.begin();
        let mut t = start;
        if after_config {
            let user = pick_user(rng);
            let src = format!("192.168.200.{}", rng.gen_range(2..250));
            self.push(t, router, "CONFIG_I", &[user, src], id);
            t = t.plus(rng.gen_range(10..60));
        }
        let pct = rng.gen_range(85..99);
        let pidlist = format!(
            "{}/{}%, {}/{}%, {}/{}%",
            rng.gen_range(1..300),
            rng.gen_range(50..80),
            rng.gen_range(1..300),
            rng.gen_range(2..20),
            rng.gen_range(1..300),
            rng.gen_range(1..9)
        );
        self.push(t, router, "CPU_RISE", &[pct.to_string(), pidlist], id);
        let dur = rng.gen_range(45..110);
        self.push(
            t.plus(dur),
            router,
            "CPU_FALL",
            &[rng.gen_range(20..40).to_string()],
            id,
        );
        self.finish(id, EventKind::CpuSpike, vec![router]);
    }

    /// Linecard crash: card down, every interface on the slot (and the
    /// far end of every affected link) goes down; recovery after a while.
    pub fn linecard_crash(&mut self, rng: &mut StdRng, router: usize, start: Timestamp) {
        let id = self.begin();
        let r = &self.topo.routers[router];
        let mut slots: Vec<u8> = r
            .interfaces
            .iter()
            .filter(|i| i.ip.is_some() && i.slot > 0)
            .map(|i| i.slot)
            .collect();
        slots.sort_unstable();
        slots.dedup();
        let slot = if slots.is_empty() {
            1
        } else {
            slots[rng.gen_range(0..slots.len())]
        };
        let affected: Vec<String> = r
            .interfaces
            .iter()
            .filter(|i| i.slot == slot && i.ip.is_some())
            .map(|i| i.name.clone())
            .collect();
        let peers = child_peer_ends(self.topo, router, &affected);
        self.push(start, router, "LC_FAIL", &[slot.to_string()], id);
        let mut involved = vec![router];
        for ifn in &affected {
            self.push(
                start.plus(2),
                router,
                "LINK_DOWN",
                std::slice::from_ref(ifn),
                id,
            );
            self.push(
                start.plus(3),
                router,
                "LINEPROTO_DOWN",
                std::slice::from_ref(ifn),
                id,
            );
        }
        for (pr, pifn) in &peers {
            self.push(
                start.plus(2),
                *pr,
                "LINK_DOWN",
                std::slice::from_ref(pifn),
                id,
            );
            self.push(
                start.plus(3),
                *pr,
                "LINEPROTO_DOWN",
                std::slice::from_ref(pifn),
                id,
            );
            involved.push(*pr);
        }
        let up = start.plus(rng.gen_range(120..600));
        self.push(up, router, "LC_UP", &[slot.to_string()], id);
        for ifn in &affected {
            self.push(up.plus(4), router, "LINK_UP", std::slice::from_ref(ifn), id);
            self.push(
                up.plus(5),
                router,
                "LINEPROTO_UP",
                std::slice::from_ref(ifn),
                id,
            );
        }
        for (pr, pifn) in &peers {
            self.push(up.plus(4), *pr, "LINK_UP", std::slice::from_ref(pifn), id);
            self.push(
                up.plus(5),
                *pr,
                "LINEPROTO_UP",
                std::slice::from_ref(pifn),
                id,
            );
        }
        self.finish(id, EventKind::LineCardCrash, involved);
    }

    /// Environmental temperature alarm repeating every ~60 s while hot;
    /// the failed fan tray that caused it alarms a few seconds in and
    /// clears at the end (the temp<->fan association only enters the rule
    /// base once this event kind activates, driving Figure 8's week-2+
    /// additions).
    pub fn env_alarm(&mut self, rng: &mut StdRng, router: usize, start: Timestamp) {
        let id = self.begin();
        let slot = rng
            .gen_range(0..self.topo.routers[router].slots)
            .to_string();
        let tray = rng.gen_range(0..6).to_string();
        let n = rng.gen_range(2..8);
        let mut t = start;
        for i in 0..n {
            let temp = rng.gen_range(70..95).to_string();
            self.push(t, router, "ENV_TEMP", &[slot.clone(), temp], id);
            if i == 0 {
                self.push(
                    t.plus(rng.gen_range(5..25)),
                    router,
                    "FAN_FAIL",
                    std::slice::from_ref(&tray),
                    id,
                );
            }
            t = t.plus(rng.gen_range(55..70));
        }
        self.push(t, router, "FAN_OK", &[tray], id);
        self.finish(id, EventKind::EnvAlarm, vec![router]);
    }

    /// Operator configuration session: a handful of CONFIG_I messages.
    pub fn config_session(&mut self, rng: &mut StdRng, router: usize, start: Timestamp) {
        let id = self.begin();
        let user = pick_user(rng);
        let src = format!("192.168.200.{}", rng.gen_range(2..250));
        let n = rng.gen_range(1..5);
        let mut t = start;
        for _ in 0..n {
            self.push(t, router, "CONFIG_I", &[user.clone(), src.clone()], id);
            t = t.plus(rng.gen_range(30..300));
        }
        self.finish(id, EventKind::ConfigSession, vec![router]);
    }

    /// Periodic TCP MD5 bad-auth messages (Figure 5): fixed period with
    /// small jitter, lasting hours — the canonical temporal-grouping case.
    pub fn tcp_badauth_wave(&mut self, rng: &mut StdRng, router: usize, start: Timestamp) {
        let id = self.begin();
        let period = rng.gen_range(240..360);
        let n = rng.gen_range(20..60);
        let attacker = format!("172.16.{}.{}", rng.gen_range(0..255), rng.gen_range(1..254));
        let local = self.topo.routers[router].loopback.to_string();
        let mut t = start;
        for _ in 0..n {
            self.push(
                t,
                router,
                "TCP_BADAUTH",
                &[
                    attacker.clone(),
                    rng.gen_range(1024..65000).to_string(),
                    local.clone(),
                    "179".to_owned(),
                ],
                id,
            );
            // The scanner also trips an ACL moments later — a correlation
            // that only exists once this event kind activates (week 3),
            // so the tcp<->acl rule is a Figure 8 late addition.
            self.push(
                t.plus(rng.gen_range(5..20)),
                router,
                "ACL_DENY",
                &[
                    rng.gen_range(100..200).to_string(),
                    attacker.clone(),
                    local.clone(),
                    rng.gen_range(1024..65000).to_string(),
                ],
                id,
            );
            t = t.plus(period + rng.gen_range(0..8));
        }
        self.finish(id, EventKind::TcpBadAuthWave, vec![router]);
    }

    /// V2 port flap: linkDown/linkup plus SAP state processing 5–40 s later
    /// (the lag behind dataset B's rule-window saturation at W ≈ 40 s).
    pub fn port_flap(
        &mut self,
        rng: &mut StdRng,
        link_idx: usize,
        start: Timestamp,
        n_flaps: usize,
    ) {
        let id = self.begin();
        let link = self.topo.links[link_idx].clone();
        let ends = [link.a, link.b];
        let names: Vec<String> = ends
            .iter()
            .map(|e| self.topo.endpoint(*e).1.name.clone())
            .collect();
        let mut gap: f64 = rng.gen_range(80.0..350.0);
        let mut t = start;
        let svc = rng.gen_range(100..999).to_string();
        let with_svc = rng.gen_bool(0.6);
        let mut last_up = start;
        for flap in 0..n_flaps.max(1) {
            // SAP processing lags linkDown by 5-35 s (the rule-window
            // signal of §5.2.2); the port comes back a little after that,
            // inside dataset B's W = 40 s so down/SAP/up associate.
            let sap_lag = rng.gen_range(5..35);
            let down_dur = sap_lag + rng.gen_range(2..5);
            for (e, ep) in ends.iter().enumerate() {
                self.push(t, ep.router, "SNMP_LINKDOWN", &[names[e].clone()], id);
                self.push(
                    t.plus(sap_lag),
                    ep.router,
                    "SAP_CHANGE",
                    &[names[e].clone()],
                    id,
                );
                // Services ride the SAPs: the first flap takes the service
                // oper-state down on both ends (router-scoped messages, the
                // reason port flaps page people).
                if with_svc && flap == 0 {
                    self.push(
                        t.plus(sap_lag + 1),
                        ep.router,
                        "SVC_DOWN",
                        std::slice::from_ref(&svc),
                        id,
                    );
                }
            }
            let up = t.plus(down_dur);
            for (e, ep) in ends.iter().enumerate() {
                self.push(up, ep.router, "SNMP_LINKUP", &[names[e].clone()], id);
            }
            last_up = up;
            // Same principle as link_flap: cycle spacing spread wide
            // enough that no up=>next-down rule clears Confmin on the W
            // grid; B's learnable lags are the within-cycle down/SAP/up
            // ones (<= 40 s), hence saturation near W = 40 s.
            gap = (gap * rng.gen_range(0.9..1.12)).clamp(60.0, 1500.0);
            let jitter = if rng.gen_bool(0.12) {
                rng.gen_range(0.2..0.5)
            } else {
                1.0
            };
            t = up.plus(((gap * jitter) as i64).max(15));
        }
        if with_svc {
            for ep in &ends {
                self.push(
                    last_up.plus(2),
                    ep.router,
                    "SVC_UP",
                    std::slice::from_ref(&svc),
                    id,
                );
            }
        }
        self.finish(id, EventKind::PortFlap, vec![link.a.router, link.b.router]);
    }

    /// The §6.1 case: the secondary protection path of a PIM adjacency has
    /// silently failed (LSP down, setup retries every ~5 minutes); when the
    /// primary link later fails, fast-reroute has nowhere to go and the PIM
    /// neighbor session — which dual protection should have preserved —
    /// drops, with fallout on every router along both paths.
    pub fn pim_neighbor_loss(&mut self, rng: &mut StdRng, adj_idx: usize, start: Timestamp) {
        let id = self.begin();
        let adj = self.topo.pim[adj_idx].clone();
        let path = self.topo.paths[adj.secondary_path].clone();
        let lsp = path.name.clone();
        let head = path.from;

        // Phase 1: secondary path broken, retrying every ~5 min.
        self.push(start, head, "LSP_DOWN", std::slice::from_ref(&lsp), id);
        let retries = rng.gen_range(12..30);
        let mut t = start.plus(300);
        for i in 0..retries {
            self.push(
                t,
                head,
                "LSP_RETRY",
                &[lsp.clone(), (i + 1).to_string()],
                id,
            );
            t = t.plus(295 + rng.gen_range(0..10));
        }

        // Phase 2: primary link fails mid-retry; FRR fires but the
        // secondary is down, so the PIM session drops.
        let fail = start.plus(300 * (retries as i64 / 2));
        let plink = self.topo.links[adj.primary_link].clone();
        let mut involved = vec![adj.a, adj.b, head];
        for ep in [plink.a, plink.b] {
            let name = self.topo.endpoint(ep).1.name.clone();
            self.push(
                fail,
                ep.router,
                "SNMP_LINKDOWN",
                std::slice::from_ref(&name),
                id,
            );
            self.push(
                fail.plus(rng.gen_range(5..30)),
                ep.router,
                "SAP_CHANGE",
                &[name],
                id,
            );
        }
        self.push(
            fail.plus(1),
            head,
            "FRR_SWITCH",
            std::slice::from_ref(&lsp),
            id,
        );
        self.push(
            fail.plus(1),
            head,
            "RSVP_V2",
            std::slice::from_ref(&lsp),
            id,
        );
        for ep in [plink.a, plink.b] {
            self.push(
                fail.plus(1),
                ep.router,
                "RSVP_V2",
                std::slice::from_ref(&lsp),
                id,
            );
        }
        let (ra, rb) = (adj.a, adj.b);
        let a_ip = self.topo.routers[ra].loopback.to_string();
        let b_ip = self.topo.routers[rb].loopback.to_string();
        let a_if = self.topo.endpoint(plink.a).1.name.clone();
        let b_if = self.topo.endpoint(plink.b).1.name.clone();
        self.push(
            fail.plus(2),
            ra,
            "PIM_NBR_LOSS",
            &[b_ip.clone(), a_if.clone()],
            id,
        );
        self.push(
            fail.plus(2),
            rb,
            "PIM_NBR_LOSS",
            &[a_ip.clone(), b_if.clone()],
            id,
        );
        // Fallout along the secondary path's hop routers.
        let mut cur = path.from;
        for &h in &path.hops {
            if let Some(peer) = self.topo.links[h].peer_of(cur) {
                cur = peer.router;
                involved.push(cur);
                self.push(
                    fail.plus(rng.gen_range(3..15)),
                    cur,
                    "SVC_DOWN",
                    &[rng.gen_range(100..999).to_string()],
                    id,
                );
                let vrf = format!("1000:{}", 1000 + rng.gen_range(0..400));
                self.push(
                    fail.plus(rng.gen_range(3..20)),
                    cur,
                    "BGP_BWT",
                    &[a_ip.clone(), vrf],
                    id,
                );
            }
        }

        // Phase 3: recovery.
        let rec = fail.plus(rng.gen_range(300..1800));
        for ep in [plink.a, plink.b] {
            let name = self.topo.endpoint(ep).1.name.clone();
            self.push(rec, ep.router, "SNMP_LINKUP", &[name], id);
        }
        self.push(rec.plus(2), ra, "PIM_NBR_UP", &[b_ip, a_if], id);
        self.push(rec.plus(2), rb, "PIM_NBR_UP", &[a_ip.clone(), b_if], id);
        self.push(rec.plus(5), head, "LSP_UP", std::slice::from_ref(&lsp), id);
        self.push(rec.plus(6), head, "FRR_REVERT", &[lsp], id);
        let mut cur = path.from;
        for &h in &path.hops {
            if let Some(peer) = self.topo.links[h].peer_of(cur) {
                cur = peer.router;
                self.push(
                    rec.plus(rng.gen_range(5..20)),
                    cur,
                    "SVC_UP",
                    &[rng.gen_range(100..999).to_string()],
                    id,
                );
            }
        }
        self.finish(id, EventKind::PimNeighborLoss, involved);
    }

    /// A successful MPLS FRR protection switch (no PIM impact): one hop of
    /// the protected path flaps, traffic shifts to secondary and reverts.
    /// RSVP path-error notifications propagate along the LSP, so the
    /// head-end and the failing hop both log messages naming the LSP —
    /// the shared path location that lets cross-router grouping stitch
    /// the head-end's view to the hop's link flap.
    pub fn mpls_reroute(&mut self, rng: &mut StdRng, path_idx: usize, start: Timestamp) {
        let id = self.begin();
        let path = self.topo.paths[path_idx].clone();
        let head = path.from;
        let hop = path.hops[rng.gen_range(0..path.hops.len())];
        let link = self.topo.links[hop].clone();
        let mut involved = vec![head];
        for ep in [link.a, link.b] {
            let name = self.topo.endpoint(ep).1.name.clone();
            self.push(
                start,
                ep.router,
                "SNMP_LINKDOWN",
                std::slice::from_ref(&name),
                id,
            );
            self.push(
                start.plus(1),
                ep.router,
                "RSVP_V2",
                std::slice::from_ref(&path.name),
                id,
            );
            self.push(
                start.plus(rng.gen_range(5..35)),
                ep.router,
                "SAP_CHANGE",
                &[name],
                id,
            );
            involved.push(ep.router);
        }
        self.push(
            start.plus(1),
            head,
            "RSVP_V2",
            std::slice::from_ref(&path.name),
            id,
        );
        self.push(
            start.plus(1),
            head,
            "FRR_SWITCH",
            std::slice::from_ref(&path.name),
            id,
        );
        let rec = start.plus(rng.gen_range(60..600));
        for ep in [link.a, link.b] {
            let name = self.topo.endpoint(ep).1.name.clone();
            self.push(rec, ep.router, "SNMP_LINKUP", &[name], id);
        }
        self.push(
            rec.plus(2),
            head,
            "FRR_REVERT",
            std::slice::from_ref(&path.name),
            id,
        );
        self.finish(id, EventKind::MplsReroute, involved);
    }

    /// Correlated ftp/ssh login-failure wave from one scanner, ssh trailing
    /// ftp by 30–40 s (dataset B's W = 30–40 s rule in §5.2.2).
    pub fn login_failure_wave(&mut self, rng: &mut StdRng, router: usize, start: Timestamp) {
        let id = self.begin();
        let scanner = format!("203.0.{}.{}", rng.gen_range(0..255), rng.gen_range(1..254));
        let user = pick_user(rng);
        let n = rng.gen_range(3..12);
        let mut t = start;
        for _ in 0..n {
            self.push(t, router, "FTP_FAIL", &[user.clone(), scanner.clone()], id);
            let lag = rng.gen_range(30..40);
            self.push(
                t.plus(lag),
                router,
                "SSH_FAIL",
                &[user.clone(), scanner.clone()],
                id,
            );
            t = t.plus(lag + rng.gen_range(400..900));
        }
        self.finish(id, EventKind::LoginFailureWave, vec![router]);
    }

    /// Service oper-state flapping on one V2 router. With `with_video` the
    /// flaps are accompanied by video-gap alarms ~10–25 s later — a
    /// correlation the dataset-B workload schedules only during its first
    /// weeks, so the corresponding learned rule is later *deleted* by the
    /// weekly update (Figure 9).
    pub fn svc_flap(
        &mut self,
        rng: &mut StdRng,
        router: usize,
        start: Timestamp,
        with_video: bool,
    ) {
        let id = self.begin();
        let svc = rng.gen_range(100..999).to_string();
        let n = rng.gen_range(2..10);
        let mut t = start;
        for _ in 0..n {
            self.push(t, router, "SVC_DOWN", std::slice::from_ref(&svc), id);
            if with_video {
                self.push(
                    t.plus(rng.gen_range(10..25)),
                    router,
                    "VIDEO_GAP",
                    &[
                        format!("232.0.{}.{}", rng.gen_range(0..16), rng.gen_range(1..254)),
                        rng.gen_range(40..4000).to_string(),
                    ],
                    id,
                );
            }
            let dur = rng.gen_range(26..39);
            self.push(
                t.plus(dur),
                router,
                "SVC_UP",
                std::slice::from_ref(&svc),
                id,
            );
            t = t.plus(dur + rng.gen_range(400..1200));
        }
        self.finish(id, EventKind::SvcFlap, vec![router]);
    }

    /// V2 chassis card failure: card down, its ports down (and link peers),
    /// recovery later.
    pub fn card_fail(&mut self, rng: &mut StdRng, router: usize, start: Timestamp) {
        let id = self.begin();
        let r = &self.topo.routers[router];
        let mut slots: Vec<u8> = r
            .interfaces
            .iter()
            .filter(|i| i.ip.is_some() && i.slot > 0)
            .map(|i| i.slot)
            .collect();
        slots.sort_unstable();
        slots.dedup();
        let slot = if slots.is_empty() {
            1
        } else {
            slots[rng.gen_range(0..slots.len())]
        };
        let affected: Vec<String> = r
            .interfaces
            .iter()
            .filter(|i| i.slot == slot && i.ip.is_some())
            .map(|i| i.name.clone())
            .collect();
        let peers = child_peer_ends(self.topo, router, &affected);
        self.push(start, router, "CARD_FAIL", &[slot.to_string()], id);
        let mut involved = vec![router];
        for ifn in &affected {
            self.push(
                start.plus(2),
                router,
                "SNMP_LINKDOWN",
                std::slice::from_ref(ifn),
                id,
            );
            self.push(
                start.plus(rng.gen_range(7..40)),
                router,
                "SAP_CHANGE",
                std::slice::from_ref(ifn),
                id,
            );
        }
        for (pr, pifn) in &peers {
            self.push(
                start.plus(2),
                *pr,
                "SNMP_LINKDOWN",
                std::slice::from_ref(pifn),
                id,
            );
            involved.push(*pr);
        }
        let up = start.plus(rng.gen_range(180..900));
        self.push(up, router, "CARD_UP", &[slot.to_string()], id);
        for ifn in &affected {
            self.push(
                up.plus(3),
                router,
                "SNMP_LINKUP",
                std::slice::from_ref(ifn),
                id,
            );
        }
        for (pr, pifn) in &peers {
            self.push(
                up.plus(3),
                *pr,
                "SNMP_LINKUP",
                std::slice::from_ref(pifn),
                id,
            );
        }
        self.finish(id, EventKind::CardFail, involved);
    }

    /// Emit a periodic timer series of template `key` on `router`: the
    /// same network element alarming every `period` seconds (±5 % jitter)
    /// for `duration` seconds. Values are frozen per series — a stuck
    /// sensor or timer re-reports the *same* location — which is what
    /// makes such chatter both frequent in history (high `f_m`) and
    /// trivially compressible by temporal grouping.
    pub fn timer_noise(
        &mut self,
        rng: &mut StdRng,
        router: usize,
        key: &str,
        period: i64,
        start: Timestamp,
        duration: i64,
    ) {
        let t = self.grammar.get(key);
        let vals: Vec<String> = t
            .vars()
            .iter()
            .map(|k| self.random_value(rng, router, *k))
            .collect();
        let mut it = vals.iter().cycle();
        let mut ts = start.plus(rng.gen_range(0..period.max(1)));
        let end = start.plus(duration);
        let jitter = (period / 20).max(1);
        while ts < end {
            let mut vit = it.by_ref().take(vals.len());
            let detail = t.render(|_| vit.next().unwrap().clone());
            self.msgs.push(RawMessage {
                ts,
                router: self.topo.routers[router].name.clone(),
                code: t.code.clone(),
                detail,
                gt_event: None,
            });
            ts = ts.plus(period + rng.gen_range(-jitter..=jitter));
        }
    }

    /// Emit a short burst of `n` background messages of the same template
    /// with frozen values (a scanner retrying, an ACL hit repeating),
    /// 5-40 s apart. Bursts keep noise *volume* realistic while temporal
    /// grouping still folds each one into a single group.
    pub fn background_burst(
        &mut self,
        rng: &mut StdRng,
        router: usize,
        key: &str,
        ts: Timestamp,
        n: usize,
    ) {
        let t = self.grammar.get(key);
        let vals: Vec<String> = t
            .vars()
            .iter()
            .map(|k| self.random_value(rng, router, *k))
            .collect();
        let mut cur = ts;
        for _ in 0..n.max(1) {
            let mut it = vals.iter();
            let detail = t.render(|_| it.next().unwrap().clone());
            self.msgs.push(RawMessage {
                ts: cur,
                router: self.topo.routers[router].name.clone(),
                code: t.code.clone(),
                detail,
                gt_event: None,
            });
            cur = cur.plus(rng.gen_range(5..40));
        }
    }

    /// Emit one background-noise instance of `tmpl` at `ts` on `router`,
    /// synthesizing plausible values for each variable slot.
    pub fn background(&mut self, rng: &mut StdRng, router: usize, key: &str, ts: Timestamp) {
        let t = self.grammar.get(key);
        let vals: Vec<String> = t
            .vars()
            .iter()
            .map(|k| self.random_value(rng, router, *k))
            .collect();
        let mut it = vals.iter();
        let detail = t.render(|_| it.next().unwrap().clone());
        self.msgs.push(RawMessage {
            ts,
            router: self.topo.routers[router].name.clone(),
            code: t.code.clone(),
            detail,
            gt_event: None,
        });
    }

    /// Synthesize a plausible value for a variable slot on `router`:
    /// interface names come from the router's real interfaces (so location
    /// extraction has something to verify), IPs mix internal and external.
    fn random_value(&self, rng: &mut StdRng, router: usize, kind: VarKind) -> String {
        let r = &self.topo.routers[router];
        match kind {
            VarKind::Iface => {
                let with_ip: Vec<&str> = r
                    .interfaces
                    .iter()
                    .filter(|i| i.ip.is_some())
                    .map(|i| i.name.as_str())
                    .collect();
                with_ip[rng.gen_range(0..with_ip.len())].to_owned()
            }
            VarKind::Controller => {
                if r.controllers.is_empty() {
                    format!("{}/{}/0", rng.gen_range(0..4), rng.gen_range(0..4))
                } else {
                    let c = &r.controllers[rng.gen_range(0..r.controllers.len())];
                    c.name.trim_start_matches("T3 ").to_owned()
                }
            }
            VarKind::Ip => {
                if rng.gen_bool(0.5) {
                    let other = &self.topo.routers[rng.gen_range(0..self.topo.routers.len())];
                    other.loopback.to_string()
                } else {
                    format!(
                        "{}.{}.{}.{}",
                        rng.gen_range(11..223),
                        rng.gen_range(0..255),
                        rng.gen_range(0..255),
                        rng.gen_range(1..254)
                    )
                }
            }
            VarKind::Vrf => format!("1000:{}", 1000 + rng.gen_range(0..400)),
            VarKind::Percent => rng.gen_range(1..100).to_string(),
            VarKind::Num => rng.gen_range(0..10_000).to_string(),
            VarKind::User => pick_user(rng),
            VarKind::PortNum => rng.gen_range(1..65_000).to_string(),
            VarKind::Name => {
                if rng.gen_bool(0.5) {
                    self.topo.routers[rng.gen_range(0..self.topo.routers.len())]
                        .name
                        .clone()
                } else if !self.topo.paths.is_empty() {
                    self.topo.paths[rng.gen_range(0..self.topo.paths.len())]
                        .name
                        .clone()
                } else {
                    format!("obj{}", rng.gen_range(0..500))
                }
            }
            VarKind::PidList => format!(
                "{}/{}%, {}/{}%, {}/{}%",
                rng.gen_range(1..300),
                rng.gen_range(30..90),
                rng.gen_range(1..300),
                rng.gen_range(2..20),
                rng.gen_range(1..300),
                rng.gen_range(1..9)
            ),
        }
    }
}

/// For each named interface on `router` that terminates a link, the peer's
/// `(router index, interface name)`.
fn child_peer_ends(topo: &Topology, router: usize, iface_names: &[String]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for l in &topo.links {
        for (me, peer) in [(l.a, l.b), (l.b, l.a)] {
            if me.router != router {
                continue;
            }
            let name = &topo.routers[me.router].interfaces[me.iface].name;
            if iface_names.iter().any(|n| n == name) {
                let (pr, pi) = topo.endpoint(peer);
                let _ = pr;
                out.push((peer.router, pi.name.clone()));
            }
        }
    }
    out
}

/// Pick a router index weighted toward `Core` routers.
pub fn pick_router(topo: &Topology, rng: &mut StdRng, want_vendor: Vendor) -> usize {
    loop {
        let i = rng.gen_range(0..topo.routers.len());
        if topo.routers[i].vendor != want_vendor {
            continue;
        }
        if topo.routers[i].role == RouterRole::Core || rng.gen_bool(0.6) {
            return i;
        }
    }
}

/// The endpoints of `link` as `(router, iface-name)` pairs.
pub fn link_end_names(topo: &Topology, link: usize) -> [(usize, String); 2] {
    let l = &topo.links[link];
    let f = |ep: EndPoint| (ep.router, topo.endpoint(ep).1.name.clone());
    [f(l.a), f(l.b)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopoSpec;
    use rand::SeedableRng;

    fn setup(vendor: Vendor, iptv: bool) -> (Topology, Grammar) {
        let topo = Topology::generate(&TopoSpec {
            n_routers: 16,
            vendor,
            iptv,
            seed: 11,
        });
        let grammar = Grammar::for_vendor(vendor);
        (topo, grammar)
    }

    #[test]
    fn link_flap_emits_mirrored_cascade() {
        let (topo, g) = setup(Vendor::V1, false);
        let mut sim = EventSim::new(&topo, &g);
        let mut rng = StdRng::seed_from_u64(1);
        let t0 = Timestamp::from_ymd_hms(2010, 1, 10, 0, 0, 0);
        sim.link_flap(&mut rng, 0, t0, 4, 10.0);
        assert_eq!(sim.events.len(), 1);
        let ev = &sim.events[0];
        assert_eq!(ev.kind, EventKind::LinkFlap);
        assert_eq!(ev.routers.len(), 2);
        assert!(ev.n_messages >= 4 * 2 * 4, "got {}", ev.n_messages);
        // Every message is tagged and within the event window.
        for m in &sim.msgs {
            assert_eq!(m.gt_event, Some(ev.id));
            assert!(m.ts >= ev.start && m.ts <= ev.end);
        }
        // Both ends emit LINK and LINEPROTO.
        let routers: std::collections::HashSet<&str> =
            sim.msgs.iter().map(|m| m.router.as_str()).collect();
        assert_eq!(routers.len(), 2);
        assert!(sim.msgs.iter().any(|m| m.code.as_str() == "LINK-3-UPDOWN"));
        assert!(sim
            .msgs
            .iter()
            .any(|m| m.code.as_str() == "LINEPROTO-5-UPDOWN"));
    }

    #[test]
    fn controller_flap_cascades_with_lag() {
        let (topo, g) = setup(Vendor::V1, false);
        let router = topo
            .routers
            .iter()
            .position(|r| {
                r.controllers.iter().any(|c| {
                    c.children.iter().any(|&ch| {
                        topo.routers
                            .iter()
                            .position(|x| std::ptr::eq(x, r))
                            .is_some_and(|ri| {
                                topo.links.iter().any(|l| {
                                    [l.a, l.b].iter().any(|e| {
                                        e.router == ri
                                            && topo.routers[ri].interfaces[e.iface].parent
                                                == Some(ch)
                                    })
                                })
                            })
                    })
                })
            })
            .expect("some controller with linked children");
        let ctl = topo.routers[router]
            .controllers
            .iter()
            .position(|c| !c.children.is_empty())
            .unwrap();
        let mut sim = EventSim::new(&topo, &g);
        let mut rng = StdRng::seed_from_u64(2);
        sim.controller_flap(&mut rng, router, ctl, Timestamp(0), 3);
        let down_ctl: Vec<_> = sim
            .msgs
            .iter()
            .filter(|m| m.code.as_str() == "CONTROLLER-5-UPDOWN" && m.detail.contains("down"))
            .collect();
        assert_eq!(down_ctl.len(), 3);
        // Child link messages trail the controller drop by 10..30 s.
        let first_ctl = down_ctl[0].ts;
        let first_link = sim
            .msgs
            .iter()
            .filter(|m| m.code.as_str() == "LINK-3-UPDOWN")
            .map(|m| m.ts)
            .min();
        if let Some(fl) = first_link {
            let lag = fl.seconds_since(first_ctl);
            assert!((10..=30).contains(&lag), "lag {lag}");
        }
    }

    #[test]
    fn pim_dual_failure_spans_many_routers_and_codes() {
        let (topo, g) = setup(Vendor::V2, true);
        let mut sim = EventSim::new(&topo, &g);
        let mut rng = StdRng::seed_from_u64(3);
        sim.pim_neighbor_loss(&mut rng, 0, Timestamp(0));
        let ev = &sim.events[0];
        assert_eq!(ev.kind, EventKind::PimNeighborLoss);
        assert!(ev.routers.len() >= 3, "routers {:?}", ev.routers);
        let codes: std::collections::HashSet<&str> =
            sim.msgs.iter().map(|m| m.code.as_str()).collect();
        assert!(codes.len() >= 6, "distinct codes {}", codes.len());
        assert!(codes.contains("PIM-WARNING-pimNeighborLoss"));
        assert!(codes.contains("MPLS-MINOR-lspPathRetry"));
        // Retries are ~5 minutes apart.
        let retries: Vec<Timestamp> = sim
            .msgs
            .iter()
            .filter(|m| m.code.as_str() == "MPLS-MINOR-lspPathRetry")
            .map(|m| m.ts)
            .collect();
        assert!(retries.len() >= 10);
        for w in retries.windows(2) {
            let gap = w[1].seconds_since(w[0]);
            assert!((290..=310).contains(&gap), "retry gap {gap}");
        }
    }

    #[test]
    fn login_wave_pairs_ftp_then_ssh() {
        let (topo, g) = setup(Vendor::V2, false);
        let mut sim = EventSim::new(&topo, &g);
        let mut rng = StdRng::seed_from_u64(4);
        sim.login_failure_wave(&mut rng, 0, Timestamp(0));
        let mut sorted = sim.msgs.clone();
        sd_model::sort_batch(&mut sorted);
        let ftp: Vec<_> = sorted
            .iter()
            .filter(|m| m.code.as_str().contains("ftp"))
            .collect();
        let ssh: Vec<_> = sorted
            .iter()
            .filter(|m| m.code.as_str().contains("ssh"))
            .collect();
        assert_eq!(ftp.len(), ssh.len());
        for (f, s) in ftp.iter().zip(&ssh) {
            let lag = s.ts.seconds_since(f.ts);
            assert!((30..40).contains(&lag), "lag {lag}");
        }
    }

    #[test]
    fn background_messages_use_real_interface_names() {
        let (topo, g) = setup(Vendor::V1, false);
        let mut sim = EventSim::new(&topo, &g);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            sim.background(&mut rng, 2, "SERIAL_CRC", Timestamp(100));
        }
        let r = &topo.routers[2];
        for m in &sim.msgs {
            assert_eq!(m.gt_event, None);
            // Detail embeds one of the router's real interface names.
            assert!(
                r.interfaces.iter().any(|i| m.detail.contains(&i.name)),
                "no real iface in {:?}",
                m.detail
            );
        }
    }

    #[test]
    fn tcp_wave_is_periodic() {
        let (topo, g) = setup(Vendor::V1, false);
        let mut sim = EventSim::new(&topo, &g);
        let mut rng = StdRng::seed_from_u64(6);
        sim.tcp_badauth_wave(&mut rng, 1, Timestamp(0));
        let ts: Vec<Timestamp> = sim
            .msgs
            .iter()
            .filter(|m| m.code.as_str() == "TCP-6-BADAUTH")
            .map(|m| m.ts)
            .collect();
        assert!(ts.len() >= 20);
        let gaps: Vec<i64> = ts.windows(2).map(|w| w[1].seconds_since(w[0])).collect();
        let mean = gaps.iter().sum::<i64>() as f64 / gaps.len() as f64;
        for g in &gaps {
            assert!((*g as f64 - mean).abs() < 20.0, "gap {g} vs mean {mean}");
        }
    }

    #[test]
    fn events_importance_in_unit_range() {
        let (topo, g) = setup(Vendor::V1, false);
        let mut sim = EventSim::new(&topo, &g);
        let mut rng = StdRng::seed_from_u64(7);
        sim.link_flap(&mut rng, 0, Timestamp(0), 30, 20.0);
        sim.cpu_spike(&mut rng, 0, Timestamp(5000), true);
        sim.env_alarm(&mut rng, 1, Timestamp(9000));
        for ev in &sim.events {
            assert!(ev.importance > 0.0 && ev.importance <= 1.0);
            assert!(ev.start <= ev.end);
            assert!(ev.n_messages > 0);
        }
    }
}
