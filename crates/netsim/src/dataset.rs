//! Dataset presets mirroring the paper's two networks.
//!
//! Dataset **A** is a vendor-V1 tier-1 ISP backbone; dataset **B** is a
//! vendor-V2 IPTV backbone with a PIM multicast overlay. The paper trains
//! on three months (Sep–Nov 2009) and runs online on Dec 1–14 2009; the
//! presets reproduce those windows at laptop scale (12 training weeks +
//! 2 online weeks). `scaled()` shrinks everything proportionally for tests.

use crate::config::render_all;
use crate::events::GtEvent;
use crate::grammar::Grammar;
use crate::topology::{TopoSpec, Topology};
use crate::workload::{run, KindMix, WorkloadSpec};
use sd_model::{RawMessage, Timestamp, Vendor, DAY};
use sd_telemetry::Telemetry;
use serde::{Deserialize, Serialize};

/// Full description of a synthetic dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name ("A", "B", …).
    pub name: String,
    /// Router vendor.
    pub vendor: Vendor,
    /// Whether to overlay the IPTV multicast tree.
    pub iptv: bool,
    /// Number of routers.
    pub n_routers: usize,
    /// Training period length in days (paper: ~3 months = 12 weeks).
    pub train_days: u32,
    /// Online period length in days (paper: 2 weeks).
    pub online_days: u32,
    /// Mean ground-truth events per day.
    pub events_per_day: f64,
    /// Mean background-noise messages per day.
    pub noise_per_day: f64,
    /// Master seed.
    pub seed: u64,
    /// First instant of the training period.
    pub start: Timestamp,
    /// Event kind mix.
    pub mix: Vec<KindMix>,
    /// Week after which scheduled-only correlations stop.
    pub decorrelation_week: u32,
    /// Periodic timer-noise series per router.
    pub timers_per_router: usize,
    /// Cascade-size multiplier (see `WorkloadSpec::intensity`).
    pub intensity: f64,
}

impl DatasetSpec {
    /// Dataset A: tier-1 ISP backbone, vendor V1.
    pub fn preset_a() -> Self {
        DatasetSpec {
            name: "A".to_owned(),
            vendor: Vendor::V1,
            iptv: false,
            n_routers: 44,
            train_days: 84,
            online_days: 14,
            events_per_day: 45.0,
            noise_per_day: 30.0,
            seed: 0xA,
            start: Timestamp::from_ymd_hms(2009, 9, 8, 0, 0, 0),
            mix: WorkloadSpec::mix_v1(),
            decorrelation_week: 6,
            timers_per_router: 4,
            intensity: 1.0,
        }
    }

    /// Dataset B: IPTV backbone, vendor V2.
    pub fn preset_b() -> Self {
        DatasetSpec {
            name: "B".to_owned(),
            vendor: Vendor::V2,
            iptv: true,
            n_routers: 36,
            train_days: 84,
            online_days: 14,
            events_per_day: 13.0,
            noise_per_day: 20.0,
            seed: 0xB,
            start: Timestamp::from_ymd_hms(2009, 9, 8, 0, 0, 0),
            mix: WorkloadSpec::mix_v2(),
            decorrelation_week: 7,
            timers_per_router: 3,
            intensity: 2.0,
        }
    }

    /// Shrink days and rates by `f` (for fast tests); keeps at least one
    /// training week and one online day.
    #[must_use]
    pub fn scaled(mut self, f: f64) -> Self {
        self.train_days = ((f64::from(self.train_days) * f) as u32).max(7);
        self.online_days = ((f64::from(self.online_days) * f) as u32).max(1);
        self.events_per_day = (self.events_per_day * f).max(3.0);
        self.noise_per_day = (self.noise_per_day * f).max(5.0);
        self.n_routers = ((self.n_routers as f64 * f) as usize).max(8);
        self
    }

    /// Total simulated days.
    pub fn total_days(&self) -> u32 {
        self.train_days + self.online_days
    }

    /// First instant of the online period.
    pub fn online_start(&self) -> Timestamp {
        self.start.plus(i64::from(self.train_days) * DAY)
    }
}

/// A fully generated dataset: network, configs, months of messages, and
/// the ground truth behind them.
pub struct Dataset {
    /// The generating spec.
    pub spec: DatasetSpec,
    /// The network.
    pub topology: Topology,
    /// The vendor grammar (ground-truth templates).
    pub grammar: Grammar,
    /// One rendered config per router (index-aligned with `topology.routers`).
    pub configs: Vec<String>,
    /// All messages, time-sorted, spanning training + online periods.
    pub messages: Vec<RawMessage>,
    /// Ground-truth events.
    pub gt_events: Vec<GtEvent>,
    /// Index of the first online-period message in `messages`.
    online_split: usize,
}

impl Dataset {
    /// Generate the dataset (deterministic in the spec's seed).
    pub fn generate(spec: DatasetSpec) -> Dataset {
        Self::generate_with(spec, &Telemetry::disabled())
    }

    /// [`generate`](Self::generate) with the generation stages timed in
    /// `tel` (`netsim.topology` / `netsim.configs` / `netsim.workload`
    /// spans, `netsim.messages` counter).
    pub fn generate_with(spec: DatasetSpec, tel: &Telemetry) -> Dataset {
        let topology = {
            let _t = tel.time("netsim.topology");
            Topology::generate(&TopoSpec {
                n_routers: spec.n_routers,
                vendor: spec.vendor,
                iptv: spec.iptv,
                seed: spec.seed,
            })
        };
        let grammar = Grammar::for_vendor(spec.vendor);
        let configs = {
            let _t = tel.time("netsim.configs");
            render_all(&topology)
        };
        let wspec = WorkloadSpec {
            start: spec.start,
            days: spec.total_days(),
            seed: spec.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            events_per_day: spec.events_per_day,
            noise_per_day: spec.noise_per_day,
            mix: spec.mix.clone(),
            decorrelation_week: spec.decorrelation_week,
            timers_per_router: spec.timers_per_router,
            intensity: spec.intensity,
        };
        let w = {
            let _t = tel.time("netsim.workload");
            run(&topology, &grammar, &wspec)
        };
        tel.counter("netsim.messages").add(w.messages.len() as u64);
        let online_start = spec.online_start();
        let online_split = w.messages.partition_point(|m| m.ts < online_start);
        Dataset {
            spec,
            topology,
            grammar,
            configs,
            messages: w.messages,
            gt_events: w.events,
            online_split,
        }
    }

    /// Training-period messages (time-sorted).
    pub fn train(&self) -> &[RawMessage] {
        &self.messages[..self.online_split]
    }

    /// Online-period messages (time-sorted; includes cascade tails that
    /// spill past the nominal end).
    pub fn online(&self) -> &[RawMessage] {
        &self.messages[self.online_split..]
    }

    /// Training messages of week `w` (0-based), for weekly rule updates.
    pub fn train_week(&self, w: u32) -> &[RawMessage] {
        let start = self.spec.start.plus(i64::from(w) * 7 * DAY);
        let end = start.plus(7 * DAY);
        let lo = self.messages.partition_point(|m| m.ts < start);
        let hi = self.messages.partition_point(|m| m.ts < end);
        &self.messages[lo.min(self.online_split)..hi.min(self.online_split)]
    }

    /// Ground-truth events whose span intersects the online period.
    pub fn online_gt_events(&self) -> Vec<&GtEvent> {
        let s = self.spec.online_start();
        self.gt_events.iter().filter(|e| e.end >= s).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dataset_a_generates_consistently() {
        let spec = DatasetSpec::preset_a().scaled(0.1);
        let d = Dataset::generate(spec);
        assert!(!d.messages.is_empty());
        assert_eq!(d.configs.len(), d.topology.routers.len());
        assert_eq!(d.train().len() + d.online().len(), d.messages.len());
        // Split is at the online boundary.
        let boundary = d.spec.online_start();
        assert!(d.train().iter().all(|m| m.ts < boundary));
        assert!(d.online().iter().all(|m| m.ts >= boundary));
    }

    #[test]
    fn weekly_slices_partition_training() {
        let spec = DatasetSpec::preset_a().scaled(0.12);
        let d = Dataset::generate(spec);
        let weeks = d.spec.train_days.div_ceil(7);
        let mut total = 0usize;
        for w in 0..weeks {
            total += d.train_week(w).len();
        }
        assert_eq!(total, d.train().len());
    }

    #[test]
    fn preset_b_has_pim_events() {
        let spec = DatasetSpec::preset_b().scaled(0.15);
        let d = Dataset::generate(spec);
        assert!(d
            .gt_events
            .iter()
            .any(|e| e.kind == crate::events::EventKind::PimNeighborLoss));
        assert!(!d.topology.pim.is_empty());
    }
}
