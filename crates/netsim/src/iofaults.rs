//! Deterministic *storage* fault injection — [`faults`](crate::faults)
//! for the disk instead of the feed.
//!
//! The streaming pipeline persists artifacts (checkpoints, learned
//! knowledge) that real deployments lose to torn writes, bit rot, and
//! full disks. This module manufactures exactly those failures,
//! reproducibly from a seed, so the durability layer's recovery
//! guarantees can be asserted in CI:
//!
//! * [`StorageFault`] — the fault taxonomy: truncation at byte N, a
//!   single flipped bit, a silent short write, and a disk-full error.
//! * [`apply_fault`] / [`corrupt_file`] — damage a byte image / a file
//!   on disk the way the fault would have left it.
//! * [`FaultyWriter`] / [`FaultyReader`] — `io::Write` / `io::Read`
//!   wrappers that inject the fault mid-stream, for exercising code
//!   paths that never materialize the whole artifact in memory.
//!
//! Determinism contract (same philosophy as [`crate::faults`]): the
//! fault derived by [`StorageFault::from_seed`] depends only on
//! `(kind, seed, len)`, so a CI matrix over seeds explores different
//! damage offsets without flaking.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read, Write};
use std::path::Path;

/// One injected storage fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// The file keeps only its first `at` bytes (kill mid-write after a
    /// partial flush — the classic torn write).
    Truncate {
        /// Bytes surviving.
        at: usize,
    },
    /// Bit `bit` of byte `offset` is flipped (media corruption).
    BitFlip {
        /// Damaged byte offset.
        offset: usize,
        /// Flipped bit (0..8).
        bit: u8,
    },
    /// The writer silently accepts only the first `at` bytes and
    /// claims success (a lying storage layer).
    ShortWrite {
        /// Bytes actually persisted.
        at: usize,
    },
    /// The writer persists `at` bytes and then fails with an
    /// out-of-space error (surfaced to the caller, unlike
    /// [`StorageFault::ShortWrite`]).
    DiskFull {
        /// Bytes persisted before the error.
        at: usize,
    },
}

/// The storage-fault kinds [`StorageFault::from_seed`] understands, in
/// canonical spelling (CLI `--storage` values and CI matrix axes).
pub const STORAGE_FAULT_KINDS: [&str; 4] = ["truncate", "bitflip", "short-write", "disk-full"];

impl StorageFault {
    /// Derive a fault of `kind` deterministically from `seed` for an
    /// artifact of `len` bytes. Offsets land uniformly in `0..len`
    /// (0 when the artifact is empty). Returns `None` for an unknown
    /// kind; accepted spellings are [`STORAGE_FAULT_KINDS`] (plus the
    /// `short`/`diskfull` shorthands).
    pub fn from_seed(kind: &str, seed: u64, len: usize) -> Option<StorageFault> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5d_10_fa_17);
        let at = if len == 0 { 0 } else { rng.gen_range(0..len) };
        let bit = rng.gen_range(0..8u32) as u8;
        match kind {
            "truncate" => Some(StorageFault::Truncate { at }),
            "bitflip" => Some(StorageFault::BitFlip { offset: at, bit }),
            "short" | "short-write" => Some(StorageFault::ShortWrite { at }),
            "diskfull" | "disk-full" => Some(StorageFault::DiskFull { at }),
            _ => None,
        }
    }

    /// Canonical kind name (matches [`STORAGE_FAULT_KINDS`]).
    pub fn kind(&self) -> &'static str {
        match self {
            StorageFault::Truncate { .. } => "truncate",
            StorageFault::BitFlip { .. } => "bitflip",
            StorageFault::ShortWrite { .. } => "short-write",
            StorageFault::DiskFull { .. } => "disk-full",
        }
    }
}

/// The byte image a disk holds after `fault` interferes with writing
/// `bytes`: truncation, short write and disk-full all leave a prefix;
/// a bit flip leaves the full length with one bit damaged.
pub fn apply_fault(bytes: &[u8], fault: &StorageFault) -> Vec<u8> {
    match *fault {
        StorageFault::Truncate { at }
        | StorageFault::ShortWrite { at }
        | StorageFault::DiskFull { at } => bytes[..at.min(bytes.len())].to_vec(),
        StorageFault::BitFlip { offset, bit } => {
            let mut out = bytes.to_vec();
            if let Some(b) = out.get_mut(offset) {
                *b ^= 1 << (bit % 8);
            }
            out
        }
    }
}

/// Damage the artifact at `path` in place, as `fault` would have.
pub fn corrupt_file(path: &Path, fault: &StorageFault) -> io::Result<()> {
    let bytes = std::fs::read(path)?;
    std::fs::write(path, apply_fault(&bytes, fault))
}

/// An `io::Write` that injects `fault` into the byte stream. Torn and
/// short writes silently discard everything past the fault offset
/// (claiming success, as a crashed or lying kernel would); disk-full
/// surfaces an error once the offset is reached; bit flips pass the
/// stream through with one bit damaged.
pub struct FaultyWriter<W: Write> {
    inner: W,
    fault: StorageFault,
    written: usize,
}

impl<W: Write> FaultyWriter<W> {
    /// Wrap `inner`, injecting `fault`.
    pub fn new(inner: W, fault: StorageFault) -> Self {
        FaultyWriter {
            inner,
            fault,
            written: 0,
        }
    }

    /// Bytes offered to the writer so far (pre-fault accounting).
    pub fn offered(&self) -> usize {
        self.written
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let start = self.written;
        match self.fault {
            StorageFault::Truncate { at } | StorageFault::ShortWrite { at } => {
                let keep = at.saturating_sub(start).min(buf.len());
                self.inner.write_all(&buf[..keep])?;
                // Claim the whole buffer landed: the caller only finds
                // out at (enveloped) load time.
                self.written = start + buf.len();
                Ok(buf.len())
            }
            StorageFault::DiskFull { at } => {
                let keep = at.saturating_sub(start).min(buf.len());
                self.inner.write_all(&buf[..keep])?;
                self.written = start + keep;
                if keep < buf.len() {
                    Err(io::Error::other("injected fault: no space left on device"))
                } else {
                    Ok(buf.len())
                }
            }
            StorageFault::BitFlip { offset, bit } => {
                if offset >= start && offset < start + buf.len() {
                    let mut damaged = buf.to_vec();
                    damaged[offset - start] ^= 1 << (bit % 8);
                    self.inner.write_all(&damaged)?;
                } else {
                    self.inner.write_all(buf)?;
                }
                self.written = start + buf.len();
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// An `io::Read` that injects `fault` into the byte stream: prefix
/// faults turn into an early EOF at the fault offset, bit flips damage
/// the byte as it streams past.
pub struct FaultyReader<R: Read> {
    inner: R,
    fault: StorageFault,
    pos: usize,
}

impl<R: Read> FaultyReader<R> {
    /// Wrap `inner`, injecting `fault`.
    pub fn new(inner: R, fault: StorageFault) -> Self {
        FaultyReader {
            inner,
            fault,
            pos: 0,
        }
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.fault {
            StorageFault::Truncate { at }
            | StorageFault::ShortWrite { at }
            | StorageFault::DiskFull { at } => {
                let remaining = at.saturating_sub(self.pos);
                if remaining == 0 {
                    return Ok(0);
                }
                let cap = remaining.min(buf.len());
                let n = self.inner.read(&mut buf[..cap])?;
                self.pos += n;
                Ok(n)
            }
            StorageFault::BitFlip { offset, bit } => {
                let n = self.inner.read(buf)?;
                if offset >= self.pos && offset < self.pos + n {
                    buf[offset - self.pos] ^= 1 << (bit % 8);
                }
                self.pos += n;
                Ok(n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic_and_in_range() {
        for kind in STORAGE_FAULT_KINDS {
            let a = StorageFault::from_seed(kind, 7, 1000).expect("known kind");
            let b = StorageFault::from_seed(kind, 7, 1000).expect("known kind");
            assert_eq!(a, b);
            assert_eq!(a.kind(), kind);
            match a {
                StorageFault::Truncate { at }
                | StorageFault::ShortWrite { at }
                | StorageFault::DiskFull { at } => assert!(at < 1000),
                StorageFault::BitFlip { offset, bit } => {
                    assert!(offset < 1000);
                    assert!(bit < 8);
                }
            }
        }
        assert!(StorageFault::from_seed("melt", 7, 10).is_none());
        // Different seeds explore different offsets.
        let offsets: std::collections::HashSet<usize> = (0..32)
            .map(
                |s| match StorageFault::from_seed("truncate", s, 1_000_000) {
                    Some(StorageFault::Truncate { at }) => at,
                    _ => unreachable!(),
                },
            )
            .collect();
        assert!(offsets.len() > 16);
    }

    #[test]
    fn apply_fault_matches_writer_image() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(3000).collect();
        for kind in STORAGE_FAULT_KINDS {
            for seed in [1u64, 2, 3] {
                let fault = StorageFault::from_seed(kind, seed, payload.len()).expect("kind");
                let expected = apply_fault(&payload, &fault);

                let mut sink = Vec::new();
                let mut w = FaultyWriter::new(&mut sink, fault);
                // Write in awkward chunk sizes to cross the fault offset.
                let mut res = Ok(());
                for chunk in payload.chunks(97) {
                    if let Err(e) = w.write_all(chunk) {
                        res = Err(e);
                        break;
                    }
                }
                w.flush().expect("flush");
                drop(w);
                match fault {
                    StorageFault::DiskFull { .. } => {
                        assert!(res.is_err(), "disk-full must surface an error")
                    }
                    _ => assert!(res.is_ok(), "{kind} should be silent"),
                }
                assert_eq!(sink, expected, "kind {kind} seed {seed}");
            }
        }
    }

    #[test]
    fn faulty_reader_truncates_and_flips() {
        let payload: Vec<u8> = (0..200u8).collect();
        let mut out = Vec::new();
        FaultyReader::new(&payload[..], StorageFault::Truncate { at: 50 })
            .read_to_end(&mut out)
            .expect("read");
        assert_eq!(out, &payload[..50]);

        let mut out = Vec::new();
        FaultyReader::new(&payload[..], StorageFault::BitFlip { offset: 10, bit: 0 })
            .read_to_end(&mut out)
            .expect("read");
        assert_eq!(out.len(), payload.len());
        assert_eq!(out[10], payload[10] ^ 1);
        assert_eq!(out[11], payload[11]);
    }

    #[test]
    fn corrupt_file_damages_in_place() {
        let dir = std::env::temp_dir().join("sd_iofaults_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("artifact.bin");
        std::fs::write(&path, [7u8; 100]).expect("write");
        corrupt_file(&path, &StorageFault::Truncate { at: 25 }).expect("corrupt");
        assert_eq!(std::fs::read(&path).expect("read").len(), 25);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
