//! Deterministic fault injection for ingest robustness testing.
//!
//! Real router syslog feeds are hostile in ways the simulator's clean
//! output is not: relays deliver out of order within bounded jitter,
//! retransmit duplicates, truncate lines mid-write, drop lines, run on
//! skewed clocks, and occasionally flood. [`inject`] perturbs a clean
//! generated feed with exactly those faults, driven entirely by
//! [`FaultSpec`] and its seed, so every faulted corpus is reproducible
//! bit for bit.
//!
//! The output is a sequence of *feed lines* (wire format), not parsed
//! messages — corruption happens at the byte level, below the parser.
//!
//! Fault semantics matter for the equivalence tests in `crates/core`:
//!
//! * **Reordering** delays a message by up to `reorder_secs` in delivery
//!   time without touching its timestamp — repairable by a reorder
//!   buffer with `max_skew_secs ≥ reorder_secs`.
//! * **Duplication** and **burst floods** emit byte-identical copies —
//!   removable by content dedup.
//! * **Corruption** emits a *corrupted copy* immediately before the
//!   intact line (modeling a partial write followed by a retransmit), and
//!   the corrupted bytes are guaranteed unparseable — so a parser that
//!   skips malformed lines recovers the exact clean feed.
//! * **Drops** and **clock skew** genuinely lose or alter information;
//!   they appear only in the [`FaultSpec::hostile`] preset, where the
//!   assertion is "count and survive", not equivalence.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sd_model::RawMessage;

/// What to do to a clean feed. All probabilities are per message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed for the fault RNG (independent of the dataset seed).
    pub seed: u64,
    /// Maximum delivery delay, in seconds, for reordered messages.
    pub reorder_secs: i64,
    /// Probability a message is delayed (and thus possibly reordered).
    pub reorder_prob: f64,
    /// Probability a message is delivered twice.
    pub dup_prob: f64,
    /// Probability a corrupted copy precedes a message's intact line.
    pub corrupt_prob: f64,
    /// Probability a message is silently lost (hostile only — breaks
    /// equivalence by construction).
    pub drop_prob: f64,
    /// Constant clock offset, in seconds, applied to the *timestamps* of
    /// skewed routers (hostile only — alters content).
    pub clock_skew_secs: i64,
    /// Every `n`-th router (by name hash) runs on a skewed clock;
    /// `0` disables skew.
    pub skew_router_every: u64,
    /// Extra copies of each message inside the burst window (`0` = none).
    pub burst_copies: usize,
    /// Start of the burst window, as a message index into the feed.
    pub burst_at: usize,
    /// Length of the burst window in messages.
    pub burst_len: usize,
}

impl FaultSpec {
    /// No faults at all: `inject` returns the feed verbatim.
    pub fn clean(seed: u64) -> Self {
        FaultSpec {
            seed,
            reorder_secs: 0,
            reorder_prob: 0.0,
            dup_prob: 0.0,
            corrupt_prob: 0.0,
            drop_prob: 0.0,
            clock_skew_secs: 0,
            skew_router_every: 0,
            burst_copies: 0,
            burst_at: 0,
            burst_len: 0,
        }
    }

    /// Faults a correctly configured ingest layer repairs *exactly*:
    /// bounded reordering, duplicates, a burst flood, and ~1% corrupted
    /// copies. `max_skew_secs ≥ 30` recovers the clean partition.
    pub fn bounded(seed: u64) -> Self {
        FaultSpec {
            reorder_secs: 30,
            reorder_prob: 0.5,
            dup_prob: 0.05,
            corrupt_prob: 0.01,
            burst_copies: 2,
            burst_at: 100,
            burst_len: 50,
            ..FaultSpec::clean(seed)
        }
    }

    /// Beyond-bounds faults: reordering past any reasonable skew window,
    /// real message loss, and skewed router clocks. The ingest layer
    /// must *count* the damage and keep running — equivalence is
    /// impossible by construction.
    pub fn hostile(seed: u64) -> Self {
        FaultSpec {
            reorder_secs: 3600,
            reorder_prob: 0.7,
            dup_prob: 0.15,
            corrupt_prob: 0.05,
            drop_prob: 0.02,
            clock_skew_secs: 900,
            skew_router_every: 3,
            burst_copies: 5,
            burst_at: 50,
            burst_len: 200,
            ..FaultSpec::clean(seed)
        }
    }
}

/// What [`inject`] actually did, for test assertions and reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Messages in the input feed.
    pub n_input: usize,
    /// Messages delivered with a nonzero delay.
    pub n_reordered: usize,
    /// Extra duplicate deliveries emitted (dup + burst copies).
    pub n_duplicated: usize,
    /// Corrupted copies emitted.
    pub n_corrupted: usize,
    /// Messages silently dropped.
    pub n_dropped: usize,
    /// Messages whose timestamp was skewed.
    pub n_skewed: usize,
    /// Total lines in the faulted feed.
    pub n_lines: usize,
}

/// FNV-1a over a router name, for stable skewed-router selection.
fn router_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Corrupt a wire line so that it is *guaranteed* not to parse: truncate
/// at a random point, and if the prefix still parses (short lines with an
/// empty detail are valid), garble the timestamp too.
fn corrupt_line(line: &str, rng: &mut StdRng) -> String {
    let cut = if line.is_empty() {
        0
    } else {
        rng.gen_range(0..line.len())
    };
    // Truncation may split a UTF-8 char; the generator only emits ASCII,
    // but floor to a char boundary anyway so this never panics.
    let mut cut = cut;
    while cut > 0 && !line.is_char_boundary(cut) {
        cut -= 1;
    }
    let mut out = line[..cut].to_owned();
    if RawMessage::parse_line(&out).is_ok() || out.trim().is_empty() {
        // Still (or trivially) parseable: force a malformed timestamp by
        // prefixing the date field.
        out = format!("#{out}");
    }
    out
}

/// Perturb a clean, time-sorted feed according to `spec`. Returns the
/// faulted feed as wire-format lines in delivery order, plus a report of
/// every fault applied. Deterministic: same input + same spec (including
/// seed) always produces the same lines.
pub fn inject(msgs: &[RawMessage], spec: &FaultSpec) -> (Vec<String>, FaultReport) {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut report = FaultReport {
        n_input: msgs.len(),
        ..FaultReport::default()
    };
    // (delivery time, original index, sub-order, line): sub-order places a
    // corrupted copy strictly before its intact line at equal delivery.
    let mut schedule: Vec<(i64, usize, u8, String)> = Vec::with_capacity(msgs.len());
    let burst_end = spec.burst_at.saturating_add(spec.burst_len);

    for (i, m) in msgs.iter().enumerate() {
        // Drain the RNG identically for every message so one fault's
        // probability does not perturb the draws of later messages.
        let delay_roll = rng.gen_bool(spec.reorder_prob.clamp(0.0, 1.0));
        let delay_secs = if spec.reorder_secs > 0 {
            rng.gen_range(0..=spec.reorder_secs)
        } else {
            0
        };
        let dup_roll = rng.gen_bool(spec.dup_prob.clamp(0.0, 1.0));
        let dup_delay = if spec.reorder_secs > 0 {
            rng.gen_range(0..=spec.reorder_secs)
        } else {
            0
        };
        let corrupt_roll = rng.gen_bool(spec.corrupt_prob.clamp(0.0, 1.0));
        let drop_roll = rng.gen_bool(spec.drop_prob.clamp(0.0, 1.0));

        if drop_roll {
            report.n_dropped += 1;
            continue;
        }

        let skewed = spec.skew_router_every > 0
            && spec.clock_skew_secs != 0
            && router_hash(&m.router).is_multiple_of(spec.skew_router_every);
        let line = if skewed {
            report.n_skewed += 1;
            let mut sm = m.clone();
            sm.ts = sm.ts.plus(spec.clock_skew_secs);
            sm.to_line()
        } else {
            m.to_line()
        };

        let delay = if delay_roll { delay_secs } else { 0 };
        if delay > 0 {
            report.n_reordered += 1;
        }
        let delivery = m.ts.0 + delay;

        if corrupt_roll {
            report.n_corrupted += 1;
            schedule.push((delivery, i, 0, corrupt_line(&line, &mut rng)));
        }
        schedule.push((delivery, i, 1, line.clone()));
        if dup_roll {
            report.n_duplicated += 1;
            schedule.push((m.ts.0 + dup_delay, i, 2, line.clone()));
        }
        if spec.burst_copies > 0 && i >= spec.burst_at && i < burst_end {
            for c in 0..spec.burst_copies {
                report.n_duplicated += 1;
                schedule.push((delivery, i, 3 + c as u8, line.clone()));
            }
        }
    }

    // Delivery order; ties broken by original position then sub-order so
    // the result is a deterministic function of (feed, spec).
    schedule.sort_by_key(|e| (e.0, e.1, e.2));
    report.n_lines = schedule.len();
    (schedule.into_iter().map(|(_, _, _, l)| l).collect(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetSpec};

    fn feed() -> Vec<RawMessage> {
        let d = Dataset::generate(DatasetSpec::preset_a().scaled(0.03));
        d.online().to_vec()
    }

    #[test]
    fn clean_spec_is_identity() {
        let msgs = feed();
        let (lines, report) = inject(&msgs, &FaultSpec::clean(7));
        assert_eq!(lines.len(), msgs.len());
        for (line, m) in lines.iter().zip(&msgs) {
            assert_eq!(*line, m.to_line());
        }
        assert_eq!(
            report.n_reordered + report.n_duplicated + report.n_corrupted,
            0
        );
    }

    #[test]
    fn injection_is_deterministic_from_the_seed() {
        let msgs = feed();
        let (a, ra) = inject(&msgs, &FaultSpec::bounded(42));
        let (b, rb) = inject(&msgs, &FaultSpec::bounded(42));
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        let (c, _) = inject(&msgs, &FaultSpec::bounded(43));
        assert_ne!(a, c, "different seeds should fault differently");
    }

    #[test]
    fn bounded_faults_keep_every_intact_line_and_bound_the_delay() {
        let msgs = feed();
        let spec = FaultSpec::bounded(1);
        let (lines, report) = inject(&msgs, &spec);
        assert_eq!(report.n_dropped, 0);
        assert_eq!(report.n_skewed, 0);
        assert!(report.n_reordered > 0);
        assert!(report.n_duplicated > 0);
        assert!(report.n_corrupted > 0);
        // Every clean line survives somewhere in the faulted feed.
        let mut parsed: Vec<RawMessage> = lines
            .iter()
            .filter_map(|l| RawMessage::parse_line(l).ok())
            .collect();
        parsed.sort_by(|a, b| {
            (a.ts, &a.router, &a.code, &a.detail).cmp(&(b.ts, &b.router, &b.code, &b.detail))
        });
        parsed.dedup();
        let mut clean: Vec<RawMessage> = msgs
            .iter()
            .map(|m| RawMessage::parse_line(&m.to_line()).unwrap())
            .collect();
        clean.sort_by(|a, b| {
            (a.ts, &a.router, &a.code, &a.detail).cmp(&(b.ts, &b.router, &b.code, &b.detail))
        });
        clean.dedup();
        assert_eq!(parsed, clean);
    }

    #[test]
    fn corrupted_copies_never_parse() {
        let msgs = feed();
        let spec = FaultSpec {
            corrupt_prob: 1.0,
            ..FaultSpec::clean(9)
        };
        let (lines, report) = inject(&msgs[..500.min(msgs.len())], &spec);
        assert_eq!(report.n_corrupted, 500.min(msgs.len()));
        // Exactly half the lines are corrupted copies; none of them parse.
        let n_ok = lines
            .iter()
            .filter(|l| RawMessage::parse_line(l).is_ok())
            .count();
        assert_eq!(n_ok, 500.min(msgs.len()));
    }

    #[test]
    fn hostile_faults_drop_and_skew() {
        let msgs = feed();
        let (lines, report) = inject(&msgs, &FaultSpec::hostile(3));
        assert!(report.n_dropped > 0);
        assert!(report.n_skewed > 0);
        assert!(!lines.is_empty());
    }
}
