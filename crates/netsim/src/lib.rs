//! # sd-netsim
//!
//! The synthetic-network substrate for the SyslogDigest reproduction. The
//! paper evaluates on proprietary syslog from two AT&T backbones; this
//! crate stands in for those networks end to end:
//!
//! * [`topology`] — routers with the full Figure 3 location hierarchy
//!   (slots, ports, physical and logical interfaces, bundles, controllers),
//!   links, BGP sessions, and an IPTV PIM overlay with protection paths;
//! * [`config`] — per-router configuration files, the location learner's
//!   only input;
//! * [`grammar`] — every message template the simulator can emit, doubling
//!   as the §5.2.1 ground truth;
//! * [`events`] — ground-truth network conditions and their multi-router
//!   syslog cascades, each message tagged with its event id;
//! * [`workload`] — Poisson event scheduling with heavy-tailed target
//!   selection, activation weeks and scheduled decorrelations;
//! * [`dataset`] — presets "A" (ISP, V1) and "B" (IPTV, V2) with the
//!   paper's 12-week training + 2-week online windows;
//! * [`scenario`] — deterministic reconstructions of Table 2, Figures 4–5
//!   and the §6.1 dual-failure case study.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod corpus;
pub mod dataset;
pub mod events;
pub mod faults;
pub mod grammar;
pub mod iofaults;
pub mod ip;
pub mod scenario;
pub mod topology;
pub mod workload;

pub use corpus::{Corpus, GOLDEN_SCALE, GOLDEN_SEEDS};
pub use dataset::{Dataset, DatasetSpec};
pub use events::{EventKind, EventSim, GtEvent};
pub use faults::{inject, FaultReport, FaultSpec};
pub use grammar::{poison_message, Grammar, GrammarTemplate, VarKind, POISON_MARKER};
pub use iofaults::{
    apply_fault, corrupt_file, FaultyReader, FaultyWriter, StorageFault, STORAGE_FAULT_KINDS,
};
pub use topology::{TopoSpec, Topology};
pub use workload::{Workload, WorkloadSpec};
