//! Router configuration rendering.
//!
//! The paper's location learner does **not** parse vendor manuals; it parses
//! router *configs*, which are well structured, to build the location
//! dictionary (§4.1.2). This module renders a config file per router from
//! the generated topology, in a Cisco-like stanza format for vendor V1 and
//! a TiMOS-like format for vendor V2. `sd-locations` consumes these texts —
//! and nothing else — to learn every location it knows.

use crate::topology::{IfaceKind, Topology};
use sd_model::Vendor;
use std::fmt::Write as _;

/// Render the configuration text of router `idx` in `topo`.
///
/// The output contains, for every location object the router knows:
/// hostname, controllers, interfaces (with addresses), multilink bundles
/// (with member lists), link descriptions naming the remote router and
/// interface, BGP neighbor statements (with VRFs), LSP path stanzas and PIM
/// adjacency stanzas.
pub fn render_config(topo: &Topology, idx: usize) -> String {
    let r = &topo.routers[idx];
    let mut out = String::with_capacity(4096);
    match r.vendor {
        Vendor::V1 => {
            let _ = writeln!(out, "hostname {}", r.name);
            let _ = writeln!(out, "site {} state {}", r.site, r.state);
            out.push_str("!\n");
            for c in &r.controllers {
                let _ = writeln!(out, "controller {}", c.name);
                out.push_str("!\n");
            }
            for (i, ifc) in r.interfaces.iter().enumerate() {
                let _ = writeln!(out, "interface {}", ifc.name);
                match ifc.ip {
                    Some(ip) => {
                        let mask = if ifc.kind == IfaceKind::Loopback {
                            "255.255.255.255"
                        } else {
                            "255.255.255.252"
                        };
                        let _ = writeln!(out, " ip address {ip} {mask}");
                    }
                    None => out.push_str(" no ip address\n"),
                }
                if let Some(desc) = link_description(topo, idx, i) {
                    let _ = writeln!(out, " description {desc}");
                }
                out.push_str("!\n");
            }
            for b in &r.bundles {
                let _ = writeln!(out, "interface {}", b.name);
                let _ = writeln!(out, " ip address {} 255.255.255.252", b.ip);
                for &m in &b.members {
                    let _ = writeln!(out, " multilink-group member {}", r.interfaces[m].name);
                }
                out.push_str("!\n");
            }
            out.push_str("router bgp 65000\n");
            for s in &topo.bgp_sessions {
                let (peer_addr, vrf) = if s.a == idx {
                    (s.b_addr, &s.vrf)
                } else if s.b == idx {
                    (s.a_addr, &s.vrf)
                } else {
                    continue;
                };
                match vrf {
                    None => {
                        let _ = writeln!(out, " neighbor {peer_addr} remote-as 65000");
                    }
                    Some(v) => {
                        let _ = writeln!(out, " address-family ipv4 vrf {v}");
                        let _ = writeln!(out, "  neighbor {peer_addr} remote-as 65001");
                    }
                }
            }
            out.push_str("!\n");
        }
        Vendor::V2 => {
            let _ = writeln!(out, "system name {}", r.name);
            let _ = writeln!(out, "system location {} {}", r.site, r.state);
            out.push_str("#\n");
            for (i, ifc) in r.interfaces.iter().enumerate() {
                if ifc.kind == IfaceKind::Loopback {
                    let _ = writeln!(out, "interface system");
                    if let Some(ip) = ifc.ip {
                        let _ = writeln!(out, " address {ip}/32");
                    }
                    out.push_str("#\n");
                    continue;
                }
                let _ = writeln!(out, "port {}", ifc.name);
                if let Some(ip) = ifc.ip {
                    let _ = writeln!(out, " address {ip}/30");
                }
                if let Some(desc) = link_description(topo, idx, i) {
                    let _ = writeln!(out, " description \"{desc}\"");
                }
                out.push_str("#\n");
            }
            out.push_str("router bgp\n");
            for s in &topo.bgp_sessions {
                let (peer_addr, vrf) = if s.a == idx {
                    (s.b_addr, &s.vrf)
                } else if s.b == idx {
                    (s.a_addr, &s.vrf)
                } else {
                    continue;
                };
                match vrf {
                    None => {
                        let _ = writeln!(out, " neighbor {peer_addr}");
                    }
                    Some(v) => {
                        let _ = writeln!(out, " vrf {v} neighbor {peer_addr}");
                    }
                }
            }
            out.push_str("#\n");
        }
    }
    // Path and PIM stanzas are vendor-neutral in our rendering.
    for p in &topo.paths {
        if p.from == idx {
            let names: Vec<&str> = path_router_names(topo, p.hops.iter().copied(), p.from);
            let _ = writeln!(
                out,
                "mpls lsp {} to {} path {}",
                p.name,
                topo.routers[p.to].name,
                names.join(" ")
            );
        }
    }
    for adj in &topo.pim {
        let (peer, local_end) = if adj.a == idx {
            (adj.b, topo.links[adj.primary_link].peer_of(adj.b))
        } else if adj.b == idx {
            (adj.a, topo.links[adj.primary_link].peer_of(adj.a))
        } else {
            continue;
        };
        if let Some(ep) = local_end {
            let local_iface = &topo.routers[ep.router].interfaces[ep.iface].name;
            let _ = writeln!(
                out,
                "pim neighbor {} primary {} secondary-lsp {}",
                topo.routers[peer].name, local_iface, topo.paths[adj.secondary_path].name
            );
        }
    }
    out
}

/// Render configs for every router.
pub fn render_all(topo: &Topology) -> Vec<String> {
    (0..topo.routers.len())
        .map(|i| render_config(topo, i))
        .collect()
}

/// `link to <router> <iface>` description for interface `iface` of router
/// `idx`, if that interface terminates a link.
fn link_description(topo: &Topology, idx: usize, iface: usize) -> Option<String> {
    for l in &topo.links {
        let (me, peer) = if l.a.router == idx && l.a.iface == iface {
            (l.a, l.b)
        } else if l.b.router == idx && l.b.iface == iface {
            (l.b, l.a)
        } else {
            continue;
        };
        let _ = me;
        let (pr, pi) = topo.endpoint(peer);
        return Some(format!("link to {} {}", pr.name, pi.name));
    }
    None
}

/// The router names along a hop sequence starting at `from`.
fn path_router_names(topo: &Topology, hops: impl Iterator<Item = usize>, from: usize) -> Vec<&str> {
    let mut names = vec![topo.routers[from].name.as_str()];
    let mut cur = from;
    for h in hops {
        if let Some(peer) = topo.links[h].peer_of(cur) {
            cur = peer.router;
            names.push(topo.routers[cur].name.as_str());
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopoSpec;

    #[test]
    fn v1_config_contains_hierarchy_and_links() {
        let topo = Topology::generate(&TopoSpec {
            n_routers: 12,
            vendor: Vendor::V1,
            iptv: false,
            seed: 3,
        });
        let cfg = render_config(&topo, 0);
        assert!(cfg.contains(&format!("hostname {}", topo.routers[0].name)));
        assert!(cfg.contains("interface Loopback0"));
        assert!(cfg.contains("ip address 10.255.0.1 255.255.255.255"));
        assert!(cfg.contains("description link to "));
        assert!(cfg.contains("router bgp 65000"));
    }

    #[test]
    fn v2_config_uses_port_stanzas() {
        let topo = Topology::generate(&TopoSpec {
            n_routers: 12,
            vendor: Vendor::V2,
            iptv: true,
            seed: 3,
        });
        let cfg = render_config(&topo, 0);
        assert!(cfg.contains(&format!("system name {}", topo.routers[0].name)));
        assert!(cfg.contains("port "));
        assert!(cfg.contains("description \"link to "));
    }

    #[test]
    fn iptv_head_end_has_pim_and_lsp_stanzas() {
        let topo = Topology::generate(&TopoSpec {
            n_routers: 16,
            vendor: Vendor::V2,
            iptv: true,
            seed: 5,
        });
        let adj = &topo.pim[0];
        let cfg_a = render_config(&topo, adj.a);
        assert!(
            cfg_a.contains("pim neighbor "),
            "missing pim stanza:\n{cfg_a}"
        );
        let head = topo.paths[adj.secondary_path].from;
        let cfg_head = render_config(&topo, head);
        assert!(cfg_head.contains("mpls lsp "), "missing lsp stanza");
    }

    #[test]
    fn descriptions_are_symmetric() {
        let topo = Topology::generate(&TopoSpec {
            n_routers: 10,
            vendor: Vendor::V1,
            iptv: false,
            seed: 9,
        });
        let l = &topo.links[0];
        let (ra, ia) = topo.endpoint(l.a);
        let (rb, ib) = topo.endpoint(l.b);
        let cfg_a = render_config(&topo, l.a.router);
        let cfg_b = render_config(&topo, l.b.router);
        assert!(cfg_a.contains(&format!("link to {} {}", rb.name, ib.name)));
        assert!(cfg_b.contains(&format!("link to {} {}", ra.name, ia.name)));
    }

    #[test]
    fn render_all_gives_one_config_per_router() {
        let topo = Topology::generate(&TopoSpec {
            n_routers: 8,
            vendor: Vendor::V1,
            iptv: false,
            seed: 1,
        });
        let cfgs = render_all(&topo);
        assert_eq!(cfgs.len(), topo.routers.len());
        for (r, c) in topo.routers.iter().zip(&cfgs) {
            assert!(c.contains(&r.name));
        }
    }
}
