//! Workload scheduling: turns a topology + grammar into months of syslog.
//!
//! Events arrive per-day as a Poisson process over a weighted kind mix;
//! targets (links, routers, controllers…) are drawn from heavy-tailed
//! "flappiness" weights so a few chronically unstable elements dominate
//! message volume — the per-router skew Figure 13 shows. Some event kinds
//! *activate* only after a few weeks and some correlations are scheduled
//! only for the first weeks; both drive the weekly rule add/delete dynamics
//! of Figures 8 and 9.

use crate::events::{EventKind, EventSim};
use crate::grammar::Grammar;
use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sd_model::{RawMessage, Timestamp, Vendor, DAY, WEEK};
use serde::{Deserialize, Serialize};

/// Relative weight and activation week for one event kind.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KindMix {
    /// Event kind.
    pub kind: EventKind,
    /// Relative arrival weight once active.
    pub weight: f64,
    /// First week (0-based, relative to workload start) the kind occurs.
    pub activation_week: u32,
}

/// Workload parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// First instant of the workload.
    pub start: Timestamp,
    /// Number of simulated days.
    pub days: u32,
    /// RNG seed.
    pub seed: u64,
    /// Mean ground-truth events per day (network-wide).
    pub events_per_day: f64,
    /// Mean background-noise messages per day (network-wide), spread over
    /// the grammar's tail templates proportionally to their rates.
    pub noise_per_day: f64,
    /// Event kind mix.
    pub mix: Vec<KindMix>,
    /// Week at which scheduled-only correlations stop (config→CPU in V1,
    /// service→video-gap in V2); drives weekly rule deletions.
    pub decorrelation_week: u32,
    /// Periodic timer-noise series per router (frozen-location chatter
    /// like SLA probes or environment polls; compresses temporally but
    /// keeps per-router signature frequencies realistic).
    pub timers_per_router: usize,
    /// Multiplier on per-event cascade sizes (flap counts, cycle counts).
    /// The paper's networks see events of hundreds-to-thousands of
    /// messages; raising this deepens cascades without adding events,
    /// which is what pushes the compression ratio toward the paper's
    /// 10^-3 regime.
    pub intensity: f64,
}

impl WorkloadSpec {
    /// Default mix for a vendor-V1 ISP backbone (dataset A).
    pub fn mix_v1() -> Vec<KindMix> {
        use EventKind::*;
        vec![
            KindMix {
                kind: LinkFlap,
                weight: 0.30,
                activation_week: 0,
            },
            KindMix {
                kind: ControllerFlap,
                weight: 0.10,
                activation_week: 0,
            },
            KindMix {
                kind: BgpSessionReset,
                weight: 0.15,
                activation_week: 0,
            },
            KindMix {
                kind: CpuSpike,
                weight: 0.12,
                activation_week: 0,
            },
            KindMix {
                kind: LineCardCrash,
                weight: 0.03,
                activation_week: 1,
            },
            KindMix {
                kind: EnvAlarm,
                weight: 0.06,
                activation_week: 2,
            },
            KindMix {
                kind: ConfigSession,
                weight: 0.15,
                activation_week: 0,
            },
            KindMix {
                kind: TcpBadAuthWave,
                weight: 0.09,
                activation_week: 3,
            },
        ]
    }

    /// Default mix for a vendor-V2 IPTV backbone (dataset B).
    pub fn mix_v2() -> Vec<KindMix> {
        use EventKind::*;
        vec![
            KindMix {
                kind: PortFlap,
                weight: 0.50,
                activation_week: 0,
            },
            KindMix {
                kind: PimNeighborLoss,
                weight: 0.04,
                activation_week: 0,
            },
            KindMix {
                kind: MplsReroute,
                weight: 0.12,
                activation_week: 1,
            },
            KindMix {
                kind: LoginFailureWave,
                weight: 0.08,
                activation_week: 4,
            },
            KindMix {
                kind: SvcFlap,
                weight: 0.18,
                activation_week: 0,
            },
            KindMix {
                kind: CardFail,
                weight: 0.08,
                activation_week: 2,
            },
        ]
    }
}

/// Output of a workload run.
#[derive(Debug)]
pub struct Workload {
    /// All messages, time-sorted.
    pub messages: Vec<RawMessage>,
    /// All ground-truth events.
    pub events: Vec<crate::events::GtEvent>,
}

/// Sample a Poisson count (Knuth for small λ, normal approximation above).
pub fn poisson(rng: &mut StdRng, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 400.0 {
        let sample: f64 = lambda + lambda.sqrt() * sample_std_normal(rng);
        return sample.max(0.0).round() as usize;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

fn sample_std_normal(rng: &mut StdRng) -> f64 {
    // Box-Muller.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Pareto-ish weights: a few elements get most of the probability mass
/// (the Figure 13 skew), tempered enough that independent incidents on
/// one element rarely overlap in time.
fn flappiness(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.gen::<f64>().powf(2.5) + 0.02).collect()
}

fn weighted_pick(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Run the workload over `topo`.
pub fn run(topo: &Topology, grammar: &Grammar, spec: &WorkloadSpec) -> Workload {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x0eab_10ad);
    let mut sim = EventSim::new(topo, grammar);
    let vendor = topo.routers[0].vendor;

    let link_weights = flappiness(&mut rng, topo.links.len());
    let router_weights = flappiness(&mut rng, topo.routers.len());
    let tail: Vec<(&str, f64)> = grammar.tail_templates().map(|(t, r)| (t.key, r)).collect();
    let tail_total: f64 = tail.iter().map(|(_, r)| r).sum();

    // Periodic timer chatter, one whole-span series per (router, pick).
    // Timers draw only from the highest-rate tail templates: periodic
    // chatter is the *common* noise, and those templates also receive
    // enough sparse instances that their variable fields keep showing
    // their cardinality to the template learner.
    let span = i64::from(spec.days) * DAY;
    let chatty = &tail[..tail.len().min(10)];
    for router in 0..topo.routers.len() {
        for _ in 0..spec.timers_per_router {
            let key = chatty[rng.gen_range(0..chatty.len())].0;
            let period = rng.gen_range(600..3600);
            sim.timer_noise(&mut rng, router, key, period, spec.start, span);
        }
    }

    for day in 0..spec.days {
        let day_start = spec.start.plus(i64::from(day) * DAY);
        let week = (i64::from(day) * DAY / WEEK) as u32;

        // --- ground-truth events ---
        let active: Vec<&KindMix> = spec
            .mix
            .iter()
            .filter(|m| m.activation_week <= week)
            .collect();
        let weights: Vec<f64> = active.iter().map(|m| m.weight).collect();
        let n_events = poisson(&mut rng, spec.events_per_day);
        for _ in 0..n_events {
            if active.is_empty() {
                break;
            }
            let kind = active[weighted_pick(&mut rng, &weights)].kind;
            let t = day_start.plus(rng.gen_range(0..DAY));
            dispatch(
                &mut sim,
                &mut rng,
                kind,
                t,
                week,
                spec,
                &link_weights,
                &router_weights,
                vendor,
            );
        }

        // --- background noise ---
        let n_noise = poisson(&mut rng, spec.noise_per_day);
        for _ in 0..n_noise {
            let mut x = rng.gen::<f64>() * tail_total;
            let mut key = tail[0].0;
            for (k, r) in &tail {
                x -= r;
                if x <= 0.0 {
                    key = k;
                    break;
                }
            }
            let router = rng.gen_range(0..topo.routers.len());
            let t = day_start.plus(rng.gen_range(0..DAY));
            // Geometric-ish burst length, mean ~2.5 messages.
            let mut n = 1usize;
            while n < 8 && rng.gen_bool(0.55) {
                n += 1;
            }
            sim.background_burst(&mut rng, router, key, t, n);
        }
    }

    let mut messages = sim.msgs;
    sd_model::sort_batch(&mut messages);
    Workload {
        messages,
        events: sim.events,
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    sim: &mut EventSim<'_>,
    rng: &mut StdRng,
    kind: EventKind,
    t: Timestamp,
    week: u32,
    spec: &WorkloadSpec,
    link_weights: &[f64],
    router_weights: &[f64],
    vendor: Vendor,
) {
    let correlated = week < spec.decorrelation_week;
    let boost = |n: usize| ((n as f64 * spec.intensity) as usize).max(1);
    match kind {
        EventKind::LinkFlap => {
            let link = weighted_pick(rng, link_weights);
            let n = boost(sample_flap_count(rng));
            let gap = rng.gen_range(80.0..350.0);
            sim.link_flap(rng, link, t, n, gap);
        }
        EventKind::ControllerFlap => {
            // Pick a router that actually has controllers.
            let candidates: Vec<usize> = sim
                .topo
                .routers
                .iter()
                .enumerate()
                .filter(|(_, r)| !r.controllers.is_empty())
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                return;
            }
            let router = candidates[rng.gen_range(0..candidates.len())];
            let ctl = rng.gen_range(0..sim.topo.routers[router].controllers.len());
            let n = boost(rng.gen_range(3..25));
            sim.controller_flap(rng, router, ctl, t, n);
        }
        EventKind::BgpSessionReset => {
            if sim.topo.bgp_sessions.is_empty() {
                return;
            }
            let s = rng.gen_range(0..sim.topo.bgp_sessions.len());
            sim.bgp_session_reset(rng, s, t);
        }
        EventKind::CpuSpike => {
            let router = weighted_pick(rng, router_weights);
            let after_config = correlated && rng.gen_bool(0.7);
            sim.cpu_spike(rng, router, t, after_config);
        }
        EventKind::LineCardCrash => {
            let router = weighted_pick(rng, router_weights);
            sim.linecard_crash(rng, router, t);
        }
        EventKind::EnvAlarm => {
            let router = weighted_pick(rng, router_weights);
            sim.env_alarm(rng, router, t);
        }
        EventKind::ConfigSession => {
            let router = weighted_pick(rng, router_weights);
            sim.config_session(rng, router, t);
        }
        EventKind::TcpBadAuthWave => {
            let router = weighted_pick(rng, router_weights);
            sim.tcp_badauth_wave(rng, router, t);
        }
        EventKind::PortFlap => {
            let link = weighted_pick(rng, link_weights);
            let n = boost(sample_flap_count(rng));
            sim.port_flap(rng, link, t, n);
        }
        EventKind::PimNeighborLoss => {
            if sim.topo.pim.is_empty() {
                return;
            }
            let adj = rng.gen_range(0..sim.topo.pim.len());
            sim.pim_neighbor_loss(rng, adj, t);
        }
        EventKind::MplsReroute => {
            if sim.topo.paths.is_empty() {
                return;
            }
            let p = rng.gen_range(0..sim.topo.paths.len());
            sim.mpls_reroute(rng, p, t);
        }
        EventKind::LoginFailureWave => {
            let router = weighted_pick(rng, router_weights);
            sim.login_failure_wave(rng, router, t);
        }
        EventKind::SvcFlap => {
            let router = weighted_pick(rng, router_weights);
            sim.svc_flap(rng, router, t, correlated);
        }
        EventKind::CardFail => {
            let router = weighted_pick(rng, router_weights);
            sim.card_fail(rng, router, t);
        }
    }
    let _ = vendor;
}

/// Heavy-tailed flap count. Cycle spacing is several minutes, so the
/// count also bounds episode duration: the cap keeps even storm events
/// within ~a day, preventing unrelated incidents from overlapping (and
/// transitively chaining) on busy elements.
fn sample_flap_count(rng: &mut StdRng) -> usize {
    let x: f64 = rng.gen();
    if x < 0.5 {
        rng.gen_range(40..90)
    } else if x < 0.85 {
        rng.gen_range(90..180)
    } else {
        rng.gen_range(180..320)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopoSpec;

    fn small_spec(vendor: Vendor, days: u32) -> (Topology, Grammar, WorkloadSpec) {
        let topo = Topology::generate(&TopoSpec {
            n_routers: 12,
            vendor,
            iptv: vendor == Vendor::V2,
            seed: 42,
        });
        let grammar = Grammar::for_vendor(vendor);
        let mix = match vendor {
            Vendor::V1 => WorkloadSpec::mix_v1(),
            Vendor::V2 => WorkloadSpec::mix_v2(),
        };
        let spec = WorkloadSpec {
            start: Timestamp::from_ymd_hms(2009, 9, 1, 0, 0, 0),
            days,
            seed: 7,
            events_per_day: 20.0,
            noise_per_day: 40.0,
            mix,
            decorrelation_week: 5,
            timers_per_router: 2,
            intensity: 1.0,
        };
        (topo, grammar, spec)
    }

    #[test]
    fn run_is_deterministic_and_sorted() {
        let (topo, grammar, spec) = small_spec(Vendor::V1, 2);
        let w1 = run(&topo, &grammar, &spec);
        let w2 = run(&topo, &grammar, &spec);
        assert_eq!(w1.messages, w2.messages);
        assert!(!w1.messages.is_empty());
        assert!(w1.messages.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn event_messages_reference_recorded_events() {
        let (topo, grammar, spec) = small_spec(Vendor::V1, 2);
        let w = run(&topo, &grammar, &spec);
        let ids: std::collections::HashSet<u64> = w.events.iter().map(|e| e.id).collect();
        let mut tagged = 0usize;
        for m in &w.messages {
            if let Some(gt) = m.gt_event {
                assert!(ids.contains(&gt), "dangling gt id {gt}");
                tagged += 1;
            }
        }
        assert!(tagged > 0);
        let total: usize = w.events.iter().map(|e| e.n_messages).sum();
        assert_eq!(total, tagged);
    }

    #[test]
    fn volume_is_dominated_by_event_cascades() {
        let (topo, grammar, mut spec) = small_spec(Vendor::V1, 3);
        spec.timers_per_router = 0; // compare cascades against sparse noise only
        let w = run(&topo, &grammar, &spec);
        let noise = w.messages.iter().filter(|m| m.gt_event.is_none()).count();
        let tagged = w.messages.len() - noise;
        assert!(
            tagged > noise * 3,
            "events should dominate: {tagged} event msgs vs {noise} noise"
        );
    }

    #[test]
    fn v2_workload_emits_v2_codes_only() {
        let (topo, grammar, spec) = small_spec(Vendor::V2, 2);
        let w = run(&topo, &grammar, &spec);
        assert!(!w.messages.is_empty());
        let known: std::collections::HashSet<&str> = grammar
            .templates()
            .iter()
            .map(|t| t.code.as_str())
            .collect();
        for m in &w.messages {
            assert!(known.contains(m.code.as_str()), "alien code {}", m.code);
        }
    }

    #[test]
    fn activation_weeks_gate_kinds() {
        let (topo, grammar, mut spec) = small_spec(Vendor::V1, 7);
        spec.events_per_day = 40.0;
        let w = run(&topo, &grammar, &spec);
        // TcpBadAuthWave activates week 3; a 1-week run must not contain it.
        assert!(!w.events.iter().any(|e| e.kind == EventKind::TcpBadAuthWave));
        assert!(w.events.iter().any(|e| e.kind == EventKind::LinkFlap));
    }

    #[test]
    fn poisson_mean_is_roughly_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        for lambda in [0.5, 5.0, 50.0, 800.0] {
            let n = 400;
            let total: usize = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.25,
                "lambda {lambda} mean {mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -3.0), 0);
    }
}
