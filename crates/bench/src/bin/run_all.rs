//! Run the complete paper evaluation in order, sharing one context.
use sd_bench::experiments as e;
fn main() {
    let ctx = sd_bench::ctx::Ctx::from_args();
    println!(
        "SyslogDigest reproduction — full evaluation (scale {})",
        ctx.scale
    );
    e::templates_exp::run(&ctx);
    e::table5_exp::run(&ctx);
    e::fig6_exp::run(&ctx);
    e::fig7_exp::run(&ctx);
    e::fig89_exp::run(&ctx);
    e::fig10_exp::run(&ctx);
    e::fig11_exp::run(&ctx);
    e::table6_exp::run(&ctx);
    e::table7_exp::run(&ctx);
    e::fig12_exp::run(&ctx);
    e::fig13_exp::run(&ctx);
    e::fig45_exp::run(&ctx);
    e::tickets_exp::run(&ctx);
    e::pim_exp::run(&ctx);
    e::severity_exp::run(&ctx);
    e::viz_exp::run(&ctx);
    println!("\ndone.");
}
