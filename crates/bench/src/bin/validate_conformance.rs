//! CI gate for pipeline conformance (see `.github/workflows/ci.yml`):
//!
//! For every golden seed it generates the netsim corpus, runs the
//! differential driver (`sd_conformance::verify_dataset`) — naive
//! paper-faithful reference oracles vs. the optimized pipeline, with
//! thread-count determinism checks — then streams the clean / bounded /
//! hostile faulted feeds through the fault-tolerant ingest layer and
//! compares the resulting partition / template / rule digests against
//! the checked-in golden corpus.
//!
//! Structural invariant checked on every run, independent of the golden
//! file: the `bounded` variant's partition must equal `clean`'s (its
//! faults are repairable by construction at `--skew 30`), and `hostile`'s
//! must not (it drops messages).
//!
//! * `--golden PATH` — golden file (default: the checked-in one);
//! * `--bless` — regenerate the golden file instead of comparing;
//! * `--scale F`, `--seeds a,b,c`, `--threads N`, `--skew S` — corpus
//!   shape overrides (the defaults are what the golden file pins);
//! * `--recovery` — run the crash/corrupt/recover/replay conformance
//!   matrix instead ([`sd_conformance::verify_recovery`]): for each seed,
//!   every storage-fault kind must recover to a verifiable checkpoint
//!   generation losing at most one checkpoint interval, and the recovered
//!   replay must digest identically to the uninterrupted run.
//!
//! Exits non-zero with full provenance on the first divergence.

use sd_conformance::golden::{compute_entry, default_golden_path, GoldenEntry};
use sd_conformance::{GoldenFile, GOLDEN_VERSION};
use sd_netsim::corpus::{Corpus, GOLDEN_SCALE, GOLDEN_SEEDS};
use sd_netsim::{inject, FaultSpec};
use syslogdigest::offline::{learn, OfflineConfig};
use syslogdigest::GroupingConfig;

fn fail(msg: &str) -> ! {
    eprintln!("validate_conformance: FAIL: {msg}");
    std::process::exit(1);
}

fn compare(seed: u64, variant: &str, pinned: &GoldenEntry, got: &GoldenEntry) {
    let fields: [(&str, String, String); 8] = [
        (
            "n_lines",
            pinned.n_lines.to_string(),
            got.n_lines.to_string(),
        ),
        (
            "n_events",
            pinned.n_events.to_string(),
            got.n_events.to_string(),
        ),
        ("n_late", pinned.n_late.to_string(), got.n_late.to_string()),
        (
            "n_duplicate",
            pinned.n_duplicate.to_string(),
            got.n_duplicate.to_string(),
        ),
        (
            "n_malformed",
            pinned.n_malformed.to_string(),
            got.n_malformed.to_string(),
        ),
        ("partition", pinned.partition.clone(), got.partition.clone()),
        ("templates", pinned.templates.clone(), got.templates.clone()),
        ("rules", pinned.rules.clone(), got.rules.clone()),
    ];
    for (name, want, have) in fields {
        if want != have {
            fail(&format!(
                "seed {seed} variant {variant}: {name} diverged from golden: \
                 pinned {want}, got {have} \
                 (re-pin intentional changes with --bless)"
            ));
        }
    }
}

/// `--recovery` mode: per seed, stream the bounded-faulted feed with
/// rotated checkpoints, damage the newest generation with every storage
/// fault, and demand recovery within one interval plus a byte-identical
/// replay (see [`sd_conformance::verify_recovery`]).
fn run_recovery(seeds: &[u64], scale: f64, skew: i64) {
    let ocfg = OfflineConfig::dataset_a();
    for &seed in seeds {
        let corpus = Corpus::generate(seed, scale);
        let d = &corpus.dataset;
        let k = learn(&d.configs, d.train(), &ocfg);
        let (lines, _) = inject(d.online(), &FaultSpec::bounded(seed));
        let every = (lines.len() / 5).max(1);
        let dir = std::env::temp_dir().join(format!("sd-recovery-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        match sd_conformance::verify_recovery(&k, &lines, skew, every, 2, seed, &dir) {
            Ok(outcomes) => {
                println!(
                    "ok: seed {seed} recovery conformant — {} lines, interval {every}",
                    lines.len()
                );
                for o in &outcomes {
                    println!("   seed {seed} {o}");
                }
            }
            Err(e) => fail(&format!("seed {seed}: {e}")),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!(
        "validate_conformance: all {} seeds recover from every storage fault",
        seeds.len()
    );
}

fn main() {
    let mut golden_path = default_golden_path();
    let mut bless = false;
    let mut recovery = false;
    let mut scale = GOLDEN_SCALE;
    let mut seeds: Vec<u64> = GOLDEN_SEEDS.to_vec();
    let mut threads = 4usize;
    let mut skew = 30i64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--golden" => golden_path = args.next().unwrap_or_else(|| fail("missing --golden")),
            "--bless" => bless = true,
            "--recovery" => recovery = true,
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("invalid --scale"))
            }
            "--seeds" => {
                let list = args.next().unwrap_or_else(|| fail("missing --seeds"));
                seeds = list
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| fail("invalid --seeds")))
                    .collect();
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("invalid --threads"))
            }
            "--skew" => {
                skew = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("invalid --skew"))
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    if recovery {
        run_recovery(&seeds, scale, skew);
        return;
    }

    let pinned = if bless {
        None
    } else {
        let text = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            fail(&format!(
                "reading {golden_path}: {e} (generate it with --bless)"
            ))
        });
        let f = GoldenFile::from_json(&text).unwrap_or_else(|e| fail(&e));
        if (f.scale - scale).abs() > 1e-12 || f.max_skew_secs != skew {
            fail(&format!(
                "golden file was pinned at scale {} skew {}, but this run uses \
                 scale {scale} skew {skew}",
                f.scale, f.max_skew_secs
            ));
        }
        Some(f)
    };

    let ocfg = OfflineConfig::dataset_a();
    let gcfg = GroupingConfig::default();
    let mut entries = Vec::new();

    for &seed in &seeds {
        let corpus = Corpus::generate(seed, scale);
        let d = &corpus.dataset;

        // Differential oracles: reference vs optimized, threads 1 vs N.
        match sd_conformance::verify_dataset(d, &ocfg, &gcfg, threads) {
            Ok(s) => println!(
                "ok: seed {seed} conformant — {} train / {} online msgs, \
                 {} templates, {} rules, {} edges, {} groups \
                 (threads 1 == {threads})",
                s.n_train, s.n_online, s.n_templates, s.n_rules, s.n_edges, s.n_groups
            ),
            Err(div) => fail(&format!("seed {seed}: {div}")),
        }

        // Golden digests per fault variant.
        let k = learn(&d.configs, d.train(), &ocfg);
        let mut by_variant = Vec::new();
        for variant in sd_conformance::golden::VARIANTS {
            let entry = compute_entry(&k, d.online(), seed, variant, skew);
            println!(
                "   seed {seed} {variant}: {} lines -> {} events, partition {}",
                entry.n_lines, entry.n_events, entry.partition
            );
            if let Some(f) = &pinned {
                let want = f.find(seed, variant).unwrap_or_else(|| {
                    fail(&format!(
                        "golden file has no entry for seed {seed} variant {variant}"
                    ))
                });
                compare(seed, variant, want, &entry);
            }
            by_variant.push(entry);
        }

        // Structural invariants, golden file or not.
        let (clean, bounded, hostile) = (&by_variant[0], &by_variant[1], &by_variant[2]);
        if bounded.partition != clean.partition {
            fail(&format!(
                "seed {seed}: bounded faults were not repaired — partition {} \
                 differs from clean {}",
                bounded.partition, clean.partition
            ));
        }
        if bounded.n_duplicate == 0 {
            fail(&format!(
                "seed {seed}: bounded feed absorbed no duplicates — fault \
                 injection is not exercising the reorder buffer"
            ));
        }
        if hostile.partition == clean.partition {
            fail(&format!(
                "seed {seed}: hostile partition equals clean — drops and clock \
                 skew had no effect, fault injection is broken"
            ));
        }
        entries.extend(by_variant);
    }

    if bless {
        let f = GoldenFile {
            version: GOLDEN_VERSION,
            scale,
            max_skew_secs: skew,
            entries,
        };
        if let Some(dir) = std::path::Path::new(&golden_path).parent() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| fail(&format!("creating {}: {e}", dir.display())));
        }
        std::fs::write(&golden_path, f.to_json() + "\n")
            .unwrap_or_else(|e| fail(&format!("writing {golden_path}: {e}")));
        println!(
            "blessed: wrote {} entries to {golden_path}",
            f.entries.len()
        );
    } else {
        println!(
            "validate_conformance: all {} seeds conformant and matching golden",
            seeds.len()
        );
    }
}
