//! EXP-F11 binary (Figure 11).
fn main() {
    let ctx = sd_bench::ctx::Ctx::from_args();
    sd_bench::experiments::fig11_exp::run(&ctx);
}
