//! Throughput harness for the parallel sharded pipeline (BENCH-digest):
//! measures offline learning and online digest throughput at 1/2/4/8
//! worker threads on dataset A and writes `BENCH_digest.json` with
//! msg/s per thread count, the speedup over the sequential path, and a
//! per-stage wall-clock breakdown from the telemetry spans.
//!
//! Thread counts above the machine's hardware parallelism are still
//! measured (the rows are flagged `"oversubscribed": true`) but excluded
//! from the best-speedup summary — a 2-core CI runner must not report a
//! "regression" merely because the 8-thread row thrashes.
//!
//! Usage: `bench_digest [--scale F] [--reps N] [--out FILE]`
//! (`SD_SCALE` is honored like the experiment binaries).

use sd_model::Parallelism;
use sd_netsim::{Dataset, DatasetSpec};
use sd_telemetry::Telemetry;
use serde::Serialize;
use std::time::Instant;
use syslogdigest::offline::{learn, learn_instrumented, OfflineConfig};
use syslogdigest::{digest, digest_instrumented, GroupingConfig};

#[derive(Serialize)]
struct Point {
    threads: usize,
    secs: f64,
    msgs_per_sec: f64,
    speedup_vs_1t: f64,
    oversubscribed: bool,
}

#[derive(Serialize)]
struct Stage {
    span: String,
    secs: f64,
    calls: u64,
}

#[derive(Serialize)]
struct Report {
    dataset: String,
    scale: f64,
    n_train: usize,
    n_online: usize,
    hardware_threads: usize,
    reps: usize,
    learn: Vec<Point>,
    digest: Vec<Point>,
    /// Best speedup over the 1-thread row, non-oversubscribed rows only.
    learn_best_speedup: f64,
    digest_best_speedup: f64,
    /// Single-threaded per-stage wall-clock breakdown (telemetry spans).
    learn_stages: Vec<Stage>,
    digest_stages: Vec<Stage>,
}

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn points(n_msgs: usize, timed: &[(usize, f64)], hw: usize) -> Vec<Point> {
    let base = timed
        .iter()
        .find(|(t, _)| *t == 1)
        .map(|&(_, s)| s)
        .unwrap_or(f64::NAN);
    timed
        .iter()
        .map(|&(threads, secs)| Point {
            threads,
            secs,
            msgs_per_sec: n_msgs as f64 / secs,
            speedup_vs_1t: base / secs,
            oversubscribed: threads > hw,
        })
        .collect()
}

/// Best speedup across rows that actually had the cores to back it.
fn best_speedup(points: &[Point]) -> f64 {
    points
        .iter()
        .filter(|p| !p.oversubscribed)
        .map(|p| p.speedup_vs_1t)
        .fold(1.0, f64::max)
}

fn stages(prefix: &str, tel: &Telemetry) -> Vec<Stage> {
    tel.snapshot()
        .spans
        .iter()
        .filter(|(path, _)| path.starts_with(prefix))
        .map(|(path, stat)| Stage {
            span: path.clone(),
            secs: stat.secs(),
            calls: stat.calls,
        })
        .collect()
}

fn main() {
    let mut scale: f64 = std::env::var("SD_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.15);
    let mut reps: usize = 3;
    let mut out = "BENCH_digest.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            "--reps" => reps = args.next().and_then(|v| v.parse().ok()).unwrap_or(reps),
            "--out" => out = args.next().unwrap_or(out),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let hw = Parallelism::default().threads;
    let d = Dataset::generate(DatasetSpec::preset_a().scaled(scale));
    let train = d.train();
    let online = d.online();
    println!(
        "BENCH-digest: dataset A scale {scale} ({} train / {} online msgs), \
         {hw} hardware threads, best of {reps}",
        train.len(),
        online.len(),
    );

    let mut learn_times = Vec::new();
    for t in THREADS {
        let mut cfg = OfflineConfig::dataset_a();
        cfg.par = Parallelism::with_threads(t);
        let secs = best_secs(reps, || {
            std::hint::black_box(learn(&d.configs, train, &cfg));
        });
        let flag = if t > hw { "  (oversubscribed)" } else { "" };
        println!(
            "  learn  {t} threads: {secs:>8.3} s  ({:>10.0} msg/s){flag}",
            train.len() as f64 / secs
        );
        learn_times.push((t, secs));
    }

    let k = learn(&d.configs, train, &OfflineConfig::dataset_a());
    let mut digest_times = Vec::new();
    for t in THREADS {
        let cfg = GroupingConfig {
            par: Parallelism::with_threads(t),
            ..GroupingConfig::default()
        };
        let secs = best_secs(reps, || {
            std::hint::black_box(digest(&k, online, &cfg));
        });
        let flag = if t > hw { "  (oversubscribed)" } else { "" };
        println!(
            "  digest {t} threads: {secs:>8.3} s  ({:>10.0} msg/s){flag}",
            online.len() as f64 / secs
        );
        digest_times.push((t, secs));
    }

    // One instrumented single-threaded pass per phase for the stage
    // breakdown (spans measure where the sequential time actually goes).
    let tel = Telemetry::new();
    let mut cfg1 = OfflineConfig::dataset_a();
    cfg1.par = Parallelism::with_threads(1);
    std::hint::black_box(learn_instrumented(&d.configs, train, &cfg1, &tel));
    let gcfg1 = GroupingConfig {
        par: Parallelism::with_threads(1),
        ..GroupingConfig::default()
    };
    std::hint::black_box(digest_instrumented(&k, online, &gcfg1, &tel, false));
    let learn_stages = stages("learn.", &tel);
    let digest_stages = stages("digest.", &tel);
    for s in learn_stages.iter().chain(&digest_stages) {
        println!(
            "  stage  {:<16} {:>8.3} s  ({} calls)",
            s.span, s.secs, s.calls
        );
    }

    let learn_pts = points(train.len(), &learn_times, hw);
    let digest_pts = points(online.len(), &digest_times, hw);
    let report = Report {
        dataset: "preset_a".to_owned(),
        scale,
        n_train: train.len(),
        n_online: online.len(),
        hardware_threads: hw,
        reps,
        learn_best_speedup: best_speedup(&learn_pts),
        digest_best_speedup: best_speedup(&digest_pts),
        learn: learn_pts,
        digest: digest_pts,
        learn_stages,
        digest_stages,
    };
    println!(
        "  best speedup (non-oversubscribed rows): learn {:.2}x, digest {:.2}x",
        report.learn_best_speedup, report.digest_best_speedup
    );
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).expect("write report");
    println!("wrote {out}");
}
