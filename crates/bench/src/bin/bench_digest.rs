//! Throughput harness for the parallel sharded pipeline (BENCH-digest):
//! measures offline learning and online digest throughput at 1/2/4/8
//! worker threads on dataset A and writes `BENCH_digest.json` with
//! msg/s per thread count and the speedup over the sequential path.
//!
//! Usage: `bench_digest [--scale F] [--reps N] [--out FILE]`
//! (`SD_SCALE` is honored like the experiment binaries).

use sd_model::Parallelism;
use sd_netsim::{Dataset, DatasetSpec};
use serde::Serialize;
use std::time::Instant;
use syslogdigest::offline::{learn, OfflineConfig};
use syslogdigest::{digest, GroupingConfig};

#[derive(Serialize)]
struct Point {
    threads: usize,
    secs: f64,
    msgs_per_sec: f64,
    speedup_vs_1t: f64,
}

#[derive(Serialize)]
struct Report {
    dataset: String,
    scale: f64,
    n_train: usize,
    n_online: usize,
    hardware_threads: usize,
    reps: usize,
    learn: Vec<Point>,
    digest: Vec<Point>,
}

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn points(n_msgs: usize, timed: &[(usize, f64)]) -> Vec<Point> {
    let base = timed
        .iter()
        .find(|(t, _)| *t == 1)
        .map(|&(_, s)| s)
        .unwrap_or(f64::NAN);
    timed
        .iter()
        .map(|&(threads, secs)| Point {
            threads,
            secs,
            msgs_per_sec: n_msgs as f64 / secs,
            speedup_vs_1t: base / secs,
        })
        .collect()
}

fn main() {
    let mut scale: f64 = std::env::var("SD_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.15);
    let mut reps: usize = 3;
    let mut out = "BENCH_digest.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            "--reps" => reps = args.next().and_then(|v| v.parse().ok()).unwrap_or(reps),
            "--out" => out = args.next().unwrap_or(out),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let d = Dataset::generate(DatasetSpec::preset_a().scaled(scale));
    let train = d.train();
    let online = d.online();
    println!(
        "BENCH-digest: dataset A scale {scale} ({} train / {} online msgs), \
         {} hardware threads, best of {reps}",
        train.len(),
        online.len(),
        Parallelism::default().threads,
    );

    let mut learn_times = Vec::new();
    for t in THREADS {
        let mut cfg = OfflineConfig::dataset_a();
        cfg.par = Parallelism::with_threads(t);
        let secs = best_secs(reps, || {
            std::hint::black_box(learn(&d.configs, train, &cfg));
        });
        println!(
            "  learn  {t} threads: {secs:>8.3} s  ({:>10.0} msg/s)",
            train.len() as f64 / secs
        );
        learn_times.push((t, secs));
    }

    let k = learn(&d.configs, train, &OfflineConfig::dataset_a());
    let mut digest_times = Vec::new();
    for t in THREADS {
        let cfg = GroupingConfig {
            par: Parallelism::with_threads(t),
            ..GroupingConfig::default()
        };
        let secs = best_secs(reps, || {
            std::hint::black_box(digest(&k, online, &cfg));
        });
        println!(
            "  digest {t} threads: {secs:>8.3} s  ({:>10.0} msg/s)",
            online.len() as f64 / secs
        );
        digest_times.push((t, secs));
    }

    let report = Report {
        dataset: "preset_a".to_owned(),
        scale,
        n_train: train.len(),
        n_online: online.len(),
        hardware_threads: Parallelism::default().threads,
        reps,
        learn: points(train.len(), &learn_times),
        digest: points(online.len(), &digest_times),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).expect("write report");
    println!("wrote {out}");
}
