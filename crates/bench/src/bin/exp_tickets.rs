//! EXP-TKT binary (section 5.3).
fn main() {
    let ctx = sd_bench::ctx::Ctx::from_args();
    sd_bench::experiments::tickets_exp::run(&ctx);
}
