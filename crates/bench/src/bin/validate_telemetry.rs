//! CI guard for the telemetry layer (see `.github/workflows/ci.yml`):
//!
//! * `--metrics FILE` — parse a Prometheus text-format snapshot written
//!   by `sdigest --metrics-out`, failing on any malformed line and on
//!   missing pipeline counters/spans;
//! * `--trace FILE` — validate every JSONL provenance record against the
//!   documented schema (event_id, n_messages, routers, templates, links,
//!   closed_by);
//! * `--baseline FILE` — re-run the digest at the baseline's scale with
//!   telemetry enabled and assert throughput stays within `--min-ratio`
//!   (default 0.95) of the recorded 1-thread figure, i.e. instrumentation
//!   costs at most ~5%;
//! * `--require-durability` — additionally require the durability
//!   counters (`sd_ckpt_n_corrupt`, `sd_ckpt_n_fallback`, and a
//!   quarantine counter) in the `--metrics` snapshot.
//!
//! Exits non-zero with a reason on the first violation.

use sd_model::Parallelism;
use sd_netsim::{Dataset, DatasetSpec};
use sd_telemetry::{validate_exposition, Telemetry};
use serde::Value;
use std::time::Instant;
use syslogdigest::offline::{learn, OfflineConfig};
use syslogdigest::{digest_instrumented, GroupingConfig};

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::I64(n) => Some(*n as f64),
        Value::U64(n) => Some(*n as f64),
        _ => None,
    }
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

fn field_u64(v: &Value, name: &str) -> Option<u64> {
    v.get_field(name).and_then(as_u64)
}

/// Counters any digest run must have registered (batch or streaming).
const REQUIRED_ANY: &[&[&str]] = &[
    &["sd_digest_n_input", "sd_stream_n_input"],
    &["sd_digest_n_events", "sd_stream_n_events"],
];

/// Counters a durability-exercising run (`--require-durability`) must
/// also expose: checkpoint recovery health and the quarantine count.
const REQUIRED_DURABILITY: &[&[&str]] = &[
    &["sd_ckpt_n_corrupt"],
    &["sd_ckpt_n_fallback"],
    &["sd_stream_n_quarantined", "sd_digest_n_quarantined"],
];

fn fail(msg: &str) -> ! {
    eprintln!("validate_telemetry: FAIL: {msg}");
    std::process::exit(1);
}

fn check_metrics(path: &str, require_durability: bool) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("reading {path}: {e}")));
    let n = validate_exposition(&text)
        .unwrap_or_else(|e| fail(&format!("{path} is not valid exposition: {e}")));
    if n == 0 {
        fail(&format!("{path} contains no samples"));
    }
    let mut required: Vec<&[&str]> = REQUIRED_ANY.to_vec();
    if require_durability {
        required.extend(REQUIRED_DURABILITY);
    }
    for group in required {
        if !group
            .iter()
            .any(|name| text.lines().any(|l| l.starts_with(name)))
        {
            fail(&format!("{path} has none of the counters {group:?}"));
        }
    }
    if !text.contains("sd_span_seconds_total") {
        fail(&format!("{path} has no span timings"));
    }
    println!("ok: {path} — {n} samples, required counters and spans present");
}

/// One provenance record must carry these fields with these JSON types.
fn check_trace_record(line_no: usize, v: &Value) {
    let ctx = |field: &str| format!("trace line {line_no}: bad or missing {field:?}");
    let id = field_u64(v, "event_id").unwrap_or_else(|| fail(&ctx("event_id")));
    if id == 0 {
        fail(&format!("trace line {line_no}: event_id must be >= 1"));
    }
    if field_u64(v, "n_messages").unwrap_or_else(|| fail(&ctx("n_messages"))) == 0 {
        fail(&format!("trace line {line_no}: n_messages must be >= 1"));
    }
    let routers = v
        .get_field("routers")
        .and_then(Value::as_array)
        .unwrap_or_else(|| fail(&ctx("routers")));
    if routers.is_empty() || !routers.iter().all(|r| as_str(r).is_some()) {
        fail(&ctx("routers"));
    }
    let templates = v
        .get_field("templates")
        .and_then(Value::as_array)
        .unwrap_or_else(|| fail(&ctx("templates")));
    for t in templates {
        if field_u64(t, "id").is_none()
            || t.get_field("signature").and_then(as_str).is_none()
            || field_u64(t, "members").is_none()
        {
            fail(&ctx("templates[]"));
        }
    }
    let links = v.get_field("links").unwrap_or_else(|| fail(&ctx("links")));
    for stage in ["temporal", "rule", "cross"] {
        if field_u64(links, stage).is_none() {
            fail(&ctx("links"));
        }
    }
    match v.get_field("closed_by").and_then(as_str) {
        Some("batch" | "idle" | "force_closed" | "finish") => {}
        _ => fail(&ctx("closed_by")),
    }
}

fn check_trace(path: &str) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("reading {path}: {e}")));
    let mut n = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::parse(line)
            .unwrap_or_else(|e| fail(&format!("trace line {}: not JSON: {e}", i + 1)));
        check_trace_record(i + 1, &v);
        n += 1;
    }
    if n == 0 {
        fail(&format!("{path} contains no trace records"));
    }
    println!("ok: {path} — {n} provenance records match the schema");
}

fn check_overhead(baseline: &str, min_ratio: f64) {
    let text = std::fs::read_to_string(baseline)
        .unwrap_or_else(|e| fail(&format!("reading {baseline}: {e}")));
    let v: Value =
        serde_json::parse(&text).unwrap_or_else(|e| fail(&format!("{baseline}: not JSON: {e}")));
    let scale = v
        .get_field("scale")
        .and_then(as_f64)
        .unwrap_or_else(|| fail("baseline has no scale"));
    let reps = field_u64(&v, "reps").unwrap_or(3) as usize;
    let base = v
        .get_field("digest")
        .and_then(Value::as_array)
        .and_then(|pts| pts.iter().find(|p| field_u64(p, "threads") == Some(1)))
        .and_then(|p| p.get_field("msgs_per_sec").and_then(as_f64))
        .unwrap_or_else(|| fail("baseline has no 1-thread digest point"));

    let d = Dataset::generate(DatasetSpec::preset_a().scaled(scale));
    let k = learn(&d.configs, d.train(), &OfflineConfig::dataset_a());
    let online = d.online();
    let gcfg = GroupingConfig {
        par: Parallelism::with_threads(1),
        ..GroupingConfig::default()
    };
    let tel = Telemetry::new();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(digest_instrumented(&k, online, &gcfg, &tel, false));
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let instrumented = online.len() as f64 / best;
    let ratio = instrumented / base;
    println!(
        "overhead: baseline {base:.0} msg/s, instrumented {instrumented:.0} msg/s \
         (ratio {ratio:.3}, floor {min_ratio})"
    );
    if ratio < min_ratio {
        fail(&format!(
            "telemetry overhead too high: instrumented throughput is \
             {ratio:.3}x the baseline (floor {min_ratio})"
        ));
    }
}

fn main() {
    let mut metrics = None;
    let mut trace = None;
    let mut baseline = None;
    let mut min_ratio = 0.95;
    let mut require_durability = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--metrics" => metrics = args.next(),
            "--trace" => trace = args.next(),
            "--baseline" => baseline = args.next(),
            "--min-ratio" => {
                min_ratio = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("invalid --min-ratio"))
            }
            "--require-durability" => require_durability = true,
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    if metrics.is_none() && trace.is_none() && baseline.is_none() {
        fail("nothing to validate: pass --metrics, --trace, and/or --baseline");
    }
    if let Some(p) = metrics {
        check_metrics(&p, require_durability);
    }
    if let Some(p) = trace {
        check_trace(&p);
    }
    if let Some(p) = baseline {
        check_overhead(&p, min_ratio);
    }
    println!("validate_telemetry: all checks passed");
}
