//! EXP-F12 binary (Figure 12).
fn main() {
    let ctx = sd_bench::ctx::Ctx::from_args();
    sd_bench::experiments::fig12_exp::run(&ctx);
}
