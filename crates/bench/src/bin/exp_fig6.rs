//! EXP-F6 binary (Figure 6).
fn main() {
    let ctx = sd_bench::ctx::Ctx::from_args();
    sd_bench::experiments::fig6_exp::run(&ctx);
}
