//! EXP-F7 binary (Figure 7).
fn main() {
    let ctx = sd_bench::ctx::Ctx::from_args();
    sd_bench::experiments::fig7_exp::run(&ctx);
}
