//! EXP-SEV binary (severity-ranking baseline comparison).
fn main() {
    let ctx = sd_bench::ctx::Ctx::from_args();
    sd_bench::experiments::severity_exp::run(&ctx);
}
