//! EXP-F10 binary (Figure 10).
fn main() {
    let ctx = sd_bench::ctx::Ctx::from_args();
    sd_bench::experiments::fig10_exp::run(&ctx);
}
