//! EXP-F4/F5 binary (Figures 4-5).
fn main() {
    let ctx = sd_bench::ctx::Ctx::from_args();
    sd_bench::experiments::fig45_exp::run(&ctx);
}
