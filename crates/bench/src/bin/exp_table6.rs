//! EXP-T6 binary (Table 6).
fn main() {
    let ctx = sd_bench::ctx::Ctx::from_args();
    sd_bench::experiments::table6_exp::run(&ctx);
}
