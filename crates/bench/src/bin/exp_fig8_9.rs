//! EXP-F8/F9 binary (Figures 8-9).
fn main() {
    let ctx = sd_bench::ctx::Ctx::from_args();
    sd_bench::experiments::fig89_exp::run(&ctx);
}
