//! EXP-TMPL binary (section 5.2.1).
fn main() {
    let ctx = sd_bench::ctx::Ctx::from_args();
    sd_bench::experiments::templates_exp::run(&ctx);
}
