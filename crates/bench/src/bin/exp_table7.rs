//! EXP-T7 binary (Table 7).
fn main() {
    let ctx = sd_bench::ctx::Ctx::from_args();
    sd_bench::experiments::table7_exp::run(&ctx);
}
