//! EXP-VIZ binary (section 6.2 / Figures 14-15).
fn main() {
    let ctx = sd_bench::ctx::Ctx::from_args();
    sd_bench::experiments::viz_exp::run(&ctx);
}
