//! EXP-F13 binary (Figure 13).
fn main() {
    let ctx = sd_bench::ctx::Ctx::from_args();
    sd_bench::experiments::fig13_exp::run(&ctx);
}
