//! EXP-PIM binary (section 6.1).
fn main() {
    let ctx = sd_bench::ctx::Ctx::from_args();
    sd_bench::experiments::pim_exp::run(&ctx);
}
