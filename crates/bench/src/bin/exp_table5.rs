//! EXP-T5 binary (Table 5).
fn main() {
    let ctx = sd_bench::ctx::Ctx::from_args();
    sd_bench::experiments::table5_exp::run(&ctx);
}
