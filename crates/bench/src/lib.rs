//! # sd-bench
//!
//! The experiment harness: regenerates every table and figure of the
//! SyslogDigest paper against the synthetic substrate. Each experiment is
//! a binary (`cargo run --release -p sd-bench --bin exp_<id>`) built on
//! the shared [`ctx::Ctx`]; `run_all` executes the complete evaluation.
//! Criterion micro/macro benchmarks live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctx;
pub mod experiments;
