//! Shared experiment context: lazily generated datasets A and B with their
//! learned knowledge bases, scaled by a command-line factor so every
//! experiment binary can run from quick smoke (`--scale 0.1`) to full
//! paper scale (`--scale 1`, the default).

use sd_netsim::{Dataset, DatasetSpec};
use std::sync::OnceLock;
use std::time::Instant;
use syslogdigest::offline::{learn, OfflineConfig};
use syslogdigest::DomainKnowledge;

/// A dataset plus the knowledge learned from its training period.
pub struct Bundle {
    /// The generated dataset.
    pub data: Dataset,
    /// Knowledge learned offline from `data.train()` and the configs.
    pub knowledge: DomainKnowledge,
    /// The offline config used (carries the Table 6 defaults).
    pub offline: OfflineConfig,
}

/// Lazily-built experiment context.
pub struct Ctx {
    /// Scale factor applied to both datasets (1.0 = paper-scale presets).
    pub scale: f64,
    a: OnceLock<Bundle>,
    b: OnceLock<Bundle>,
}

impl Ctx {
    /// Context at the given scale.
    pub fn new(scale: f64) -> Self {
        Ctx {
            scale,
            a: OnceLock::new(),
            b: OnceLock::new(),
        }
    }

    /// Parse `--scale <f>` from `std::env::args` (or the `SD_SCALE` env
    /// var); defaults to 1.0.
    pub fn from_args() -> Self {
        let mut scale: Option<f64> = std::env::var("SD_SCALE").ok().and_then(|v| v.parse().ok());
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--scale" {
                scale = args.next().and_then(|v| v.parse().ok());
            }
        }
        Self::new(scale.unwrap_or(1.0))
    }

    fn build(&self, which: char) -> Bundle {
        let (spec, offline) = match which {
            'A' => (DatasetSpec::preset_a(), OfflineConfig::dataset_a()),
            _ => (DatasetSpec::preset_b(), OfflineConfig::dataset_b()),
        };
        let spec = if (self.scale - 1.0).abs() < 1e-9 {
            spec
        } else {
            spec.scaled(self.scale)
        };
        let t = Instant::now();
        let data = Dataset::generate(spec);
        let tg = t.elapsed();
        let t = Instant::now();
        let knowledge = learn(&data.configs, data.train(), &offline);
        eprintln!(
            "[ctx] dataset {which}: {} routers, {} train + {} online msgs \
             (gen {tg:.1?}, learn {:.1?}; {} templates, {} rules)",
            data.topology.routers.len(),
            data.train().len(),
            data.online().len(),
            t.elapsed(),
            knowledge.templates.len(),
            knowledge.rules.len(),
        );
        Bundle {
            data,
            knowledge,
            offline,
        }
    }

    /// Dataset A (tier-1 ISP, vendor V1) with learned knowledge.
    pub fn a(&self) -> &Bundle {
        self.a.get_or_init(|| self.build('A'))
    }

    /// Dataset B (IPTV, vendor V2) with learned knowledge.
    pub fn b(&self) -> &Bundle {
        self.b.get_or_init(|| self.build('B'))
    }

    /// Both bundles as `(name, bundle)` pairs.
    pub fn both(&self) -> [(&'static str, &Bundle); 2] {
        [("A", self.a()), ("B", self.b())]
    }
}

/// Print a section header.
pub fn section(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Print a "what the paper reports" note.
pub fn paper(note: &str) {
    println!("  [paper] {note}");
}
