//! One module per paper table/figure; each exposes `run(&Ctx)` and prints
//! a paper-vs-measured report to stdout.

pub mod fig10_exp;
pub mod fig11_exp;
pub mod fig12_exp;
pub mod fig13_exp;
pub mod fig45_exp;
pub mod fig6_exp;
pub mod fig7_exp;
pub mod fig89_exp;
pub mod pim_exp;
pub mod severity_exp;
pub mod table5_exp;
pub mod table6_exp;
pub mod table7_exp;
pub mod templates_exp;
pub mod tickets_exp;
pub mod viz_exp;
