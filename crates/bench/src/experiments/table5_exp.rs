//! EXP-T5 (Table 5): sensitivity of the minimal support SPmin — the
//! fraction of message types used in rule mining and the fraction of
//! messages those types cover.

use crate::ctx::{paper, section, Ctx};
use sd_rules::{coverage, CoOccurrence};
use std::collections::HashMap;
use syslogdigest::mining_stream;

/// Run the Table 5 sweep.
pub fn run(ctx: &Ctx) {
    section("EXP-T5  (Table 5) — sensitivity of minimal support SPmin");
    paper("SPmin 0.001:  top 13.4% / cov 98.72% (A)   top 14.2% / cov 89.34% (B)");
    paper("SPmin 0.0005: top 27.5% / cov 99.92% (A)   top 32.3% / cov 99.95% (B)");
    paper("SPmin 0.0001: top 42.5% / cov 99.98% (A)   top 54.3% / cov 99.99% (B)");
    println!(
        "  {:<8} {:>10} {:>12} {:>12}",
        "dataset", "SPmin", "top types %", "coverage %"
    );
    for (name, b) in ctx.both() {
        let stream = mining_stream(&b.knowledge, b.data.train());
        let co = CoOccurrence::count(&stream, b.knowledge.window_secs);
        let mut type_counts: HashMap<u32, u64> = HashMap::new();
        for &(_, _, t) in &stream {
            *type_counts.entry(t.0).or_insert(0) += 1;
        }
        for sp in [0.001, 0.0005, 0.0001] {
            let (top, cov) = coverage(&co, &type_counts, sp);
            println!(
                "  {:<8} {:>10} {:>11.1}% {:>11.2}%",
                name,
                sp,
                top * 100.0,
                cov * 100.0
            );
        }
    }
}
