//! EXP-F8/F9 (Figures 8–9): weekly evolution of the rule knowledge base
//! over the 12 training weeks — total / added / deleted per week.
//! Expected shape: the base stabilizes (adds and deletes near zero) after
//! week ~6 for dataset A and ~8 for dataset B.

use crate::ctx::{paper, section, Ctx};
use sd_rules::{CoOccurrence, RuleBase, UpdateStats};
use syslogdigest::mining_stream;

/// Run the weekly update experiment for one bundle; returns per-week stats.
pub fn weekly(b: &crate::ctx::Bundle) -> Vec<UpdateStats> {
    let mut base = RuleBase::new();
    let weeks = b.data.spec.train_days / 7;
    let mut out = Vec::new();
    for w in 0..weeks {
        let msgs = b.data.train_week(w);
        let stream = mining_stream(&b.knowledge, msgs);
        let co = CoOccurrence::count(&stream, b.knowledge.window_secs);
        out.push(base.update(&co, &b.offline.mine));
    }
    out
}

/// Run Figures 8 and 9.
pub fn run(ctx: &Ctx) {
    section("EXP-F8/F9  (Figures 8-9) — weekly rule-base evolution over 12 weeks");
    paper("A stabilizes after week 6, B after week 8; adds/deletes tail off to ~0");
    for (name, b) in ctx.both() {
        println!("  dataset {name}:");
        println!(
            "    {:<6} {:>6} {:>6} {:>8}",
            "week", "added", "del", "total"
        );
        let stats = weekly(b);
        for (w, s) in stats.iter().enumerate() {
            println!(
                "    {:<6} {:>6} {:>6} {:>8}",
                w + 1,
                s.added,
                s.deleted,
                s.total
            );
        }
        let last_churn = stats
            .iter()
            .rposition(|s| s.added + s.deleted > stats.last().map(|l| l.total / 10).unwrap_or(0))
            .map(|i| i + 1)
            .unwrap_or(0);
        println!("    churn (>10% of final base) last seen in week {last_churn}");
    }
}
