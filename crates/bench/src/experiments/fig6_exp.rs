//! EXP-F6 (Figure 6): number of mined rules vs. Confmin for three SPmin
//! values, at W = 60 s, dataset A. Expected shape: rules decrease as
//! Confmin grows; higher SPmin gives fewer rules.

use crate::ctx::{paper, section, Ctx};
use sd_rules::{mine, CoOccurrence, MineConfig};
use syslogdigest::mining_stream;

/// Run the Figure 6 sweep.
pub fn run(ctx: &Ctx) {
    section("EXP-F6  (Figure 6) — #rules vs Confmin x SPmin (W = 60 s, dataset A)");
    paper("rules fall from ~600 to ~100 as Confmin goes 0.5 -> 0.9;");
    paper("larger SPmin always yields fewer rules (absolute counts scale with #templates)");
    let b = ctx.a();
    let stream = mining_stream(&b.knowledge, b.data.train());
    let co = CoOccurrence::count(&stream, 60);
    let confs = [0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9];
    print!("  {:>10}", "Confmin:");
    for c in confs {
        print!(" {c:>6.2}");
    }
    println!();
    for sp in [0.001, 0.0005, 0.0001] {
        print!("  sp={sp:<7}");
        for conf in confs {
            let rs = mine(
                &co,
                &MineConfig {
                    sp_min: sp,
                    conf_min: conf,
                },
            );
            print!(" {:>6}", rs.len());
        }
        println!();
    }
}
