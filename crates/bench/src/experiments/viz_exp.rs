//! EXP-VIZ (§6.2, Figures 14–15): the per-router status-map snapshot —
//! event-based circles vs raw-message circles for the busiest 10-minute
//! window of the online period.

use crate::ctx::{paper, section, Ctx};
use syslogdigest::viz::{gini, snapshot};
use syslogdigest::{digest, GroupingConfig};

/// Run the visualization snapshot on dataset A.
pub fn run(ctx: &Ctx) {
    section("EXP-VIZ  (section 6.2, Figures 14-15) — status-map snapshot");
    paper("raw view skews toward chatty routers; high message counts do not imply");
    paper("bigger trouble — the event view is the accurate picture");
    let b = ctx.a();
    let online = b.data.online();
    let report = digest(&b.knowledge, online, &GroupingConfig::default());

    // Busiest 10-minute window.
    let mut best = (online[0].ts, 0usize);
    let mut lo = 0usize;
    while lo < online.len() {
        let from = online[lo].ts;
        let hi = lo + online[lo..].partition_point(|m| m.ts < from.plus(600));
        if hi - lo > best.1 {
            best = (from, hi - lo);
        }
        lo += (hi - lo).max(1);
    }
    let (from, _) = best;
    let to = from.plus(600);
    println!("  window {from} .. {to}");

    let rows = snapshot(online, &report.events, from, to, |r| {
        b.knowledge.dict.routers.resolve(r.0)
    });
    println!(
        "  {:<14} {:>8} {:>8}  top event",
        "router", "events", "msgs"
    );
    for r in rows.iter().take(10) {
        println!(
            "  {:<14} {:>8} {:>8}  {}",
            r.router, r.n_events, r.n_messages, r.top_label
        );
    }
    let ev: Vec<usize> = rows.iter().map(|r| r.n_events).collect();
    let ms: Vec<usize> = rows.iter().map(|r| r.n_messages).collect();
    println!(
        "  skew: gini(events) = {:.3} vs gini(messages) = {:.3}",
        gini(&ev),
        gini(&ms)
    );
}
