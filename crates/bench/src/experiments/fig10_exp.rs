//! EXP-F10 (Figure 10): temporal-grouping compression ratio vs. the EWMA
//! weight α at β = 2. Expected shape: the ratio worsens (rises) for
//! larger α; the best values sit at small α (paper: 0.05 for A, 0.075
//! for B).

use crate::ctx::{paper, section, Ctx};
use sd_temporal::sweep_alpha;
use syslogdigest::offline::temporal_series;

/// The α grid swept.
pub const ALPHAS: [f64; 10] = [0.0, 0.025, 0.05, 0.075, 0.1, 0.15, 0.2, 0.3, 0.45, 0.6];

/// Run the Figure 10 sweep.
pub fn run(ctx: &Ctx) {
    section("EXP-F10  (Figure 10) — temporal compression ratio vs alpha (beta = 2)");
    paper("larger alpha -> higher (worse) ratio; minima at alpha = 0.05 (A) / 0.075 (B)");
    for (name, b) in ctx.both() {
        let series = temporal_series(&b.knowledge, b.data.train());
        let swept = sweep_alpha(&series, &ALPHAS, 2.0);
        print!("  dataset {name}: ");
        for (a, r) in &swept {
            print!("a={a}:{r:.4}  ");
        }
        let best = swept.iter().min_by(|x, y| x.1.total_cmp(&y.1)).unwrap();
        println!("\n    best alpha = {} (ratio {:.4})", best.0, best.1);
    }
}
