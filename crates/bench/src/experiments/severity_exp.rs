//! EXP-SEV (§2, §4.2.4): the paper argues vendor-assigned severities
//! "cannot be directly used to rank-order the importance of events" — a
//! CPU-threshold message carries severity 1 while a link-down carries 3.
//! This experiment replays the §5.3 ticket correlation under both
//! rankings: the paper's location/frequency score vs. a
//! most-severe-member baseline.

use crate::ctx::{paper, section, Ctx};
use sd_tickets::{correlate, generate_tickets, top_tickets};
use syslogdigest::baselines::severity_rank;
use syslogdigest::{digest, GroupingConfig};

/// Run the ranking comparison for both datasets.
pub fn run(ctx: &Ctx) {
    section("EXP-SEV  (section 2 claim) — paper score vs vendor-severity ranking");
    paper("vendor severity reflects perceived *local* impact and misleads event");
    paper("ranking; the section 4.2.4 score is the paper's replacement");
    for (name, b) in ctx.both() {
        let tickets = generate_tickets(&b.data, 0xC0FFEE);
        let top = top_tickets(&tickets, 30);
        let dg = digest(&b.knowledge, b.data.online(), &GroupingConfig::default());

        let score_rep = correlate(&b.knowledge, &top, &dg.events, 0.05);

        let mut by_severity = dg.events.clone();
        severity_rank(&mut by_severity, b.data.online());
        let sev_rep = correlate(&b.knowledge, &top, &by_severity, 0.05);

        println!(
            "  dataset {name}: top-30 tickets in top-5% — section 4.2.4 score: {}/{}  |  \
             vendor-severity baseline: {}/{}",
            score_rep.n_matched_top, score_rep.n_tickets, sev_rep.n_matched_top, sev_rep.n_tickets
        );
        let med = |ranks: &[usize]| {
            let mut r: Vec<usize> = ranks.iter().copied().filter(|&x| x != usize::MAX).collect();
            r.sort_unstable();
            r.get(r.len() / 2).copied().unwrap_or(usize::MAX)
        };
        println!(
            "    median matched rank: score {} vs severity {}  (of {} events)",
            med(&score_rep.best_ranks),
            med(&sev_rep.best_ranks),
            dg.events.len()
        );
    }
}
