//! EXP-TKT (§5.3): rank the trouble tickets by investigation count, take
//! the top 30, and check each matches a digest event ranked in the top 5%.
//! The paper reports all 30 of 30 matching for dataset B.

use crate::ctx::{paper, section, Ctx};
use sd_tickets::run_ticket_experiment;

/// Run the ticket-correlation experiment for both datasets.
pub fn run(ctx: &Ctx) {
    section("EXP-TKT  (section 5.3) — top-30 trouble tickets vs top-5% digests");
    paper("all 30 tickets match event digests ranked top 5% or higher (dataset B)");
    for (name, b) in ctx.both() {
        let report = run_ticket_experiment(&b.data, &b.knowledge, 30, 0.05, 0xC0FFEE);
        let mut ranks: Vec<String> = report
            .best_ranks
            .iter()
            .map(|&r| {
                if r == usize::MAX {
                    "-".to_owned()
                } else {
                    r.to_string()
                }
            })
            .collect();
        ranks.sort_by_key(|r| r.parse::<usize>().unwrap_or(usize::MAX));
        println!(
            "  dataset {name}: {}/{} matched, {}/{} in top 5%   best ranks: {}",
            report.n_matched,
            report.n_tickets,
            report.n_matched_top,
            report.n_tickets,
            ranks.join(",")
        );
    }
}
