//! EXP-F4/F5 (Figures 4–5): the two temporal-pattern exemplars — an
//! unstable controller flapping in clusters, and a strictly periodic TCP
//! bad-authentication series — plus what the EWMA model does with them.

use crate::ctx::{paper, section, Ctx};
use sd_model::{RawMessage, Timestamp};
use sd_netsim::scenario::{fig4_controller, fig5_tcp_badauth};
use sd_temporal::{group_series, TemporalConfig};

fn timeline(msgs: &[&RawMessage], t0: Timestamp, hours: i64) -> String {
    let cols = 72usize;
    let mut line = vec!['.'; cols];
    for m in msgs {
        let off = m.ts.seconds_since(t0);
        let col = (off * cols as i64 / (hours * 3600)).clamp(0, cols as i64 - 1) as usize;
        line[col] = '|';
    }
    line.into_iter().collect()
}

fn cluster_summary(times: &[Timestamp], cfg: &TemporalConfig) -> String {
    let groups = group_series(times, cfg);
    let n = groups.last().map(|g| g + 1).unwrap_or(0);
    let mut sizes = vec![0usize; n];
    for &g in &groups {
        sizes[g] += 1;
    }
    format!("{n} clusters, sizes {sizes:?}")
}

/// Run the Figure 4/5 exemplars.
pub fn run(_ctx: &Ctx) {
    section("EXP-F4/F5  (Figures 4-5) — temporal pattern exemplars");
    paper("Fig 4: controller up/down in bursts across hours; Fig 5: periodic TCP bad-auth");

    let (_, msgs4) = fig4_controller(20101);
    let ctl: Vec<&RawMessage> = msgs4
        .iter()
        .filter(|m| m.code.as_str() == "CONTROLLER-5-UPDOWN")
        .collect();
    let t0 = ctl[0].ts.start_of_day();
    println!(
        "  Fig 4 controller occurrences over 8 h ({} messages):",
        ctl.len()
    );
    println!("    {}", timeline(&ctl, t0, 8));
    let times: Vec<Timestamp> = ctl.iter().map(|m| m.ts).collect();
    println!(
        "    EWMA grouping: {}",
        cluster_summary(&times, &TemporalConfig::dataset_a())
    );

    let (_, msgs5) = fig5_tcp_badauth(20102);
    let tcp: Vec<&RawMessage> = msgs5
        .iter()
        .filter(|m| m.code.as_str() == "TCP-6-BADAUTH")
        .collect();
    let t0 = tcp[0].ts.start_of_day();
    println!(
        "  Fig 5 TCP bad-auth occurrences over 8 h ({} messages):",
        tcp.len()
    );
    println!("    {}", timeline(&tcp, t0, 8));
    let times: Vec<Timestamp> = tcp.iter().map(|m| m.ts).collect();
    println!(
        "    EWMA grouping: {}",
        cluster_summary(&times, &TemporalConfig::dataset_a())
    );
    let gaps: Vec<i64> = times.windows(2).map(|w| w[1].seconds_since(w[0])).collect();
    let mean = gaps.iter().sum::<i64>() as f64 / gaps.len().max(1) as f64;
    println!("    mean interarrival {mean:.0}s — the periodicity the model locks onto");
}
