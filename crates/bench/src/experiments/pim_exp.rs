//! EXP-PIM (§6.1): the dual-failure PIM neighbor-loss case study. The
//! paper: "hundreds of syslog messages recorded on a dozen routers ... of
//! 15 distinct error codes involving 6 network protocols" associated to
//! one SyslogDigest event, whose signature exposed the five-minute
//! secondary-path connection retries.
//!
//! The incident is staged on dataset B's own network and digested with the
//! knowledge learned from B's 12-week history — exactly the operational
//! setting of the paper's troubleshooting story.

use crate::ctx::{paper, section, Ctx};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_model::{sort_batch, Timestamp};
use sd_netsim::EventSim;
use syslogdigest::{digest, GroupingConfig};

/// Run the case study.
pub fn run(ctx: &Ctx) {
    section("EXP-PIM  (section 6.1) — dual-failure PIM neighbor-loss case study");
    paper("one event; hundreds of messages, ~12 routers, 15 error codes, 6 protocols;");
    paper("signature reveals secondary-path setup retries every ~5 minutes");

    let b = ctx.b();
    let topo = &b.data.topology;
    let mut sim = EventSim::new(topo, &b.data.grammar);
    let mut rng = StdRng::seed_from_u64(61);
    let t0 = Timestamp::from_ymd_hms(2009, 12, 20, 12, 0, 0);
    sim.pim_neighbor_loss(&mut rng, 0, t0);
    let gt = sim.events[0].id;
    // Chaff across every router for the same several hours.
    let keys = [
        "LOGIN_V2",
        "SNMP_AUTH_V2",
        "CHASSIS_FAN",
        "NTP_V2",
        "IGMP_QUERY",
        "CRON_RUN",
    ];
    for i in 0..400usize {
        let router = (i * 7) % topo.routers.len();
        sim.background(
            &mut rng,
            router,
            keys[i % keys.len()],
            t0.plus((i as i64 * 53) % 21_600),
        );
    }
    let mut msgs = sim.msgs;
    sort_batch(&mut msgs);
    let cascade = msgs.iter().filter(|m| m.gt_event == Some(gt)).count();
    println!(
        "  staged incident: {} messages in the window, {} belong to the outage",
        msgs.len(),
        cascade
    );

    let report = digest(&b.knowledge, &msgs, &GroupingConfig::default());
    // Events holding any cascade message, largest first.
    let mut pieces: Vec<(&syslogdigest::NetworkEvent, usize, usize)> = report
        .events
        .iter()
        .enumerate()
        .filter_map(|(rank, e)| {
            let n = e
                .message_idxs
                .iter()
                .filter(|&&i| msgs[i].gt_event == Some(gt))
                .count();
            (n > 0).then_some((e, n, rank))
        })
        .collect();
    pieces.sort_by_key(|p| std::cmp::Reverse(p.1));

    println!(
        "  digest produced {} events; the cascade landed in {} of them:",
        report.events.len(),
        pieces.len()
    );
    for (e, n, rank) in pieces.iter().take(4) {
        let codes: std::collections::BTreeSet<&str> = e
            .message_idxs
            .iter()
            .map(|&i| msgs[i].code.as_str())
            .collect();
        let protocols: std::collections::BTreeSet<&str> = codes
            .iter()
            .map(|c| c.split('-').next().unwrap_or(""))
            .collect();
        let retries = e
            .message_idxs
            .iter()
            .filter(|&&i| msgs[i].code.as_str().contains("lspPathRetry"))
            .count();
        println!("    rank {:>3}: {}", rank + 1, e.format_line());
        println!(
            "             {n} cascade msgs | {} routers | {} codes | {} protocols | {} LSP retries",
            e.routers.len(),
            codes.len(),
            protocols.len(),
            retries
        );
    }
    let main = pieces[0];
    println!(
        "  main event coverage {}/{} cascade messages at digest rank {}",
        main.1,
        cascade,
        main.2 + 1
    );
}
