//! EXP-F7 (Figure 7): number of mined rules vs. window size W at
//! Confmin = 0.8, SPmin = 0.0005. Expected shape: rules grow with W and
//! the growth flattens around W = 120 s for dataset A and W = 40 s for
//! dataset B (the co-occurrence lags baked into each network's behavior).

use crate::ctx::{paper, section, Ctx};
use sd_rules::{mine, CoOccurrence, MineConfig};
use syslogdigest::mining_stream;

/// The W grid swept (seconds).
pub const WINDOWS: [i64; 11] = [5, 10, 20, 30, 40, 60, 90, 120, 180, 240, 300];

/// Sweep rules-vs-W for one bundle; returns `(W, #rules)`.
pub fn sweep(b: &crate::ctx::Bundle) -> Vec<(i64, usize)> {
    let stream = mining_stream(&b.knowledge, b.data.train());
    WINDOWS
        .iter()
        .map(|&w| {
            let co = CoOccurrence::count(&stream, w);
            (w, mine(&co, &MineConfig::default()).len())
        })
        .collect()
}

/// The knee of a rules-vs-W curve: the smallest W beyond which the next
/// step grows the rule count by less than `rel` relatively.
pub fn knee(curve: &[(i64, usize)], rel: f64) -> i64 {
    for w in curve.windows(2) {
        let (w0, n0) = w[0];
        let (_, n1) = w[1];
        if n0 > 0 && (n1 as f64 - n0 as f64) / n0 as f64 <= rel {
            return w0;
        }
    }
    curve.last().map(|&(w, _)| w).unwrap_or(0)
}

/// Run the Figure 7 sweep.
pub fn run(ctx: &Ctx) {
    section("EXP-F7  (Figure 7) — #rules vs window size W (Confmin=0.8, SPmin=0.0005)");
    paper("rules increase with W; growth diminishes at W = 120 s (A) / 40 s (B).");
    paper("the paper also notes new wide-W rules capture implicit timing relations");
    paper("(its example: controller->link lags at 10-30 s; here e.g. the 5-minute");
    paper("PIM secondary-path retry cadence enters dataset B's curve at W >= 180)");
    for (name, b) in ctx.both() {
        let curve = sweep(b);
        print!("  dataset {name}: ");
        for (w, n) in &curve {
            print!("W={w}:{n}  ");
        }
        print!("\n    relative growth per step: ");
        for w in curve.windows(2) {
            let (_, n0) = w[0];
            let (w1, n1) = w[1];
            print!(
                "{w1}:{:+.0}%  ",
                (n1 as f64 - n0 as f64) / (n0 as f64).max(1.0) * 100.0
            );
        }
        println!();
    }
}
