//! EXP-T7 (Table 7): compression ratio of the three grouping stacks —
//! temporal (T), temporal + rule-based (T+R), and all three (T+R+C) —
//! plus (beyond the paper) grouping quality against the simulator's
//! ground truth.

use crate::ctx::{paper, section, Ctx};
use syslogdigest::{compression_table, evaluate_grouping, GroupingConfig};

/// Run the Table 7 experiment.
pub fn run(ctx: &Ctx) {
    section("EXP-T7  (Table 7) — compression ratio by grouping methodology");
    paper("A: T 1.63e-2, T+R 5.15e-3, T+R+C 3.27e-3");
    paper("B: T 9.08e-3, T+R 2.26e-3, T+R+C 0.91e-3");
    println!(
        "  {:<8} {:>12} {:>12} {:>12}",
        "dataset", "T", "T+R", "T+R+C"
    );
    for (name, b) in ctx.both() {
        let table = compression_table(&b.knowledge, b.data.online());
        println!(
            "  {:<8} {:>12.3e} {:>12.3e} {:>12.3e}",
            name, table[0].1, table[1].1, table[2].1
        );
    }
    println!("\n  grouping quality vs simulator ground truth (not in the paper):");
    println!(
        "  {:<8} {:<7} {:>10} {:>8} {:>8} {:>6}",
        "dataset", "stages", "precision", "recall", "frag", "purity"
    );
    for (name, b) in ctx.both() {
        for (stages, cfg) in [
            ("T", GroupingConfig::t_only()),
            ("T+R", GroupingConfig::t_r()),
            ("T+R+C", GroupingConfig::default()),
        ] {
            let q = evaluate_grouping(&b.knowledge, b.data.online(), &cfg);
            println!(
                "  {:<8} {:<7} {:>10.3} {:>8.3} {:>8.2} {:>6.3}",
                name, stages, q.pair_precision, q.pair_recall, q.fragmentation, q.purity
            );
        }
    }
}
