//! EXP-F13 (Figure 13): per-router raw-message vs digested-event counts,
//! sorted by message count. Expected shape: events are much less skewed
//! across routers than raw messages, and the chattiest router enjoys the
//! best compression.

use crate::ctx::{paper, section, Ctx};
use syslogdigest::viz::gini;
use syslogdigest::{per_router_counts, GroupingConfig};

/// Run the Figure 13 analysis.
pub fn run(ctx: &Ctx) {
    section("EXP-F13  (Figure 13) — per-router messages vs events (dataset A, online)");
    paper("event distribution less skewed than messages; best compression on the");
    paper("router with the most raw messages");
    let b = ctx.a();
    let rows = per_router_counts(&b.knowledge, b.data.online(), &GroupingConfig::default());
    println!(
        "  {:<14} {:>9} {:>8} {:>12}",
        "router", "messages", "events", "ratio"
    );
    for (r, m, e) in rows.iter().take(12) {
        println!(
            "  {:<14} {:>9} {:>8} {:>12.2e}",
            r,
            m,
            e,
            *e as f64 / (*m).max(1) as f64
        );
    }
    if rows.len() > 12 {
        println!("  ... ({} more routers)", rows.len() - 12);
    }
    let msgs: Vec<usize> = rows.iter().map(|r| r.1).collect();
    let events: Vec<usize> = rows.iter().map(|r| r.2).collect();
    println!(
        "  skew: gini(messages) = {:.3}  vs  gini(events) = {:.3}",
        gini(&msgs),
        gini(&events)
    );
    let top_ratio = rows[0].2 as f64 / rows[0].1.max(1) as f64;
    let median_ratio = {
        let mut rs: Vec<f64> = rows
            .iter()
            .filter(|r| r.1 > 0)
            .map(|r| r.2 as f64 / r.1 as f64)
            .collect();
        rs.sort_by(f64::total_cmp);
        rs[rs.len() / 2]
    };
    println!(
        "  chattiest router ratio {:.2e} vs median router ratio {:.2e}",
        top_ratio, median_ratio
    );
}
