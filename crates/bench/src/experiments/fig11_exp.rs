//! EXP-F11 (Figure 11): temporal-grouping compression ratio vs. the split
//! threshold β, at the per-dataset default α. Expected shape: the ratio
//! falls as β grows and the improvement flattens (the paper settles on
//! β = 5 for both datasets).

use crate::ctx::{paper, section, Ctx};
use sd_temporal::sweep_beta;
use syslogdigest::offline::temporal_series;

/// The β grid swept.
pub const BETAS: [f64; 6] = [2.0, 3.0, 4.0, 5.0, 6.0, 7.0];

/// Run the Figure 11 sweep.
pub fn run(ctx: &Ctx) {
    section("EXP-F11  (Figure 11) — temporal compression ratio vs beta (alpha at defaults)");
    paper("ratio decreases with beta and the improvement diminishes; beta = 5 chosen");
    for (name, b) in ctx.both() {
        let series = temporal_series(&b.knowledge, b.data.train());
        let swept = sweep_beta(&series, &BETAS, b.knowledge.temporal.alpha);
        print!("  dataset {name} (alpha={}): ", b.knowledge.temporal.alpha);
        for (bv, r) in &swept {
            print!("b={bv}:{r:.4}  ");
        }
        // Knee: improvement below 3% relative.
        let mut chosen = swept.last().unwrap().0;
        for w in swept.windows(2) {
            if w[0].1 > 0.0 && (w[0].1 - w[1].1) / w[0].1 < 0.03 {
                chosen = w[0].0;
                break;
            }
        }
        println!("\n    knee (3% improvement): beta = {chosen}");
    }
}
