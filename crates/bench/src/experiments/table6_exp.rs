//! EXP-T6 (Table 6): the calibrated parameter set — α and β from the
//! temporal sweeps, W from the Figure 7 knee, SPmin/Confmin from the rule
//! stability analysis.

use crate::ctx::{paper, section, Ctx};
use sd_temporal::calibrate;
use syslogdigest::offline::temporal_series;

/// Run the calibration and print the Table 6 analogue.
pub fn run(ctx: &Ctx) {
    section("EXP-T6  (Table 6) — calibrated parameter settings");
    paper("A: alpha 0.05, beta 5, W 120, SPmin 0.0005, Confmin 0.8");
    paper("B: alpha 0.075, beta 5, W 40, SPmin 0.0005, Confmin 0.8");
    println!(
        "  {:<8} {:>7} {:>6} {:>6} {:>8} {:>8}",
        "dataset", "alpha", "beta", "W(s)", "SPmin", "Confmin"
    );
    println!("  (alpha/beta from the Fig 10-11 sweeps; W is the configured Table 6 value,");
    println!("   justified by the Fig 7 growth profile)");
    for (name, b) in ctx.both() {
        let series = temporal_series(&b.knowledge, b.data.train());
        let cal = calibrate(
            &series,
            &crate::experiments::fig10_exp::ALPHAS,
            &crate::experiments::fig11_exp::BETAS,
            0.03,
        );
        println!(
            "  {:<8} {:>7} {:>6} {:>6} {:>8} {:>8}",
            name,
            cal.alpha,
            cal.beta,
            b.knowledge.window_secs,
            b.offline.mine.sp_min,
            b.offline.mine.conf_min
        );
    }
}
