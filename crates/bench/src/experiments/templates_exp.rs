//! EXP-TMPL (§5.2.1): learned templates vs. the generator's ground truth.
//! The paper reports "94% of message templates matches".

use crate::ctx::{paper, section, Ctx};
use sd_templates::{learn, LearnerConfig};

/// Run the template-accuracy experiment for both datasets.
pub fn run(ctx: &Ctx) {
    section("EXP-TMPL  (section 5.2.1) — template identification accuracy");
    paper("94% of message templates match the hard-coded ground truth");
    for (name, b) in ctx.both() {
        let set = learn(b.data.train(), &LearnerConfig::default());
        let gt = b.data.grammar.masked_set();
        let acc = set.accuracy_against(&gt);
        // Message-weighted variant: the share of messages whose matched
        // template is exactly the ground-truth masked form.
        let gt_set: std::collections::HashSet<&String> = gt.iter().collect();
        let mut total = 0usize;
        let mut exact = 0usize;
        for m in b.data.train().iter().step_by(17) {
            total += 1;
            if let Some(id) = set.match_message(m) {
                if gt_set.contains(&set.get(id).masked()) {
                    exact += 1;
                }
            }
        }
        println!(
            "  dataset {name}: template-level accuracy {:.1}%  ({} learned vs {} true); \
             message-weighted {:.1}%",
            acc * 100.0,
            set.len(),
            gt.len(),
            exact as f64 / total.max(1) as f64 * 100.0
        );
    }
}
