//! EXP-F12 (Figure 12): per-day message/event/active-rule counts over the
//! two online weeks of dataset A. Expected shape: events per day stable,
//! ~3 orders of magnitude below messages; active rules stable in the
//! 100-200/day band (scaled to our rule-base size).

use crate::ctx::{paper, section, Ctx};
use syslogdigest::{per_day_series, GroupingConfig};

/// Run the Figure 12 series.
pub fn run(ctx: &Ctx) {
    section("EXP-F12  (Figure 12) — per-day messages / events / active rules (dataset A)");
    paper("~3 orders of magnitude between messages and events; both stable across days");
    let b = ctx.a();
    let mut series = per_day_series(&b.knowledge, b.data.online(), &GroupingConfig::default());
    // Cascade tails can spill a little past the nominal online window;
    // report the nominal days only.
    series.truncate(b.data.spec.online_days as usize);
    println!(
        "  {:<5} {:>9} {:>8} {:>12} {:>8}",
        "day", "messages", "events", "ratio", "rules"
    );
    for s in &series {
        println!(
            "  {:<5} {:>9} {:>8} {:>12.2e} {:>8}",
            s.day + 1,
            s.n_messages,
            s.n_events,
            s.n_events as f64 / s.n_messages.max(1) as f64,
            s.n_active_rules
        );
    }
    let events: Vec<f64> = series.iter().map(|s| s.n_events as f64).collect();
    let mean = events.iter().sum::<f64>() / events.len().max(1) as f64;
    let var = events.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / events.len().max(1) as f64;
    println!(
        "  events/day: mean {:.0}, stddev {:.0} ({:.0}% of mean) — stability check",
        mean,
        var.sqrt(),
        var.sqrt() / mean.max(1.0) * 100.0
    );
}
