//! End-to-end online pipeline throughput: augmentation, grouping, and the
//! full digest of the online period.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sd_model::Parallelism;
use sd_netsim::{Dataset, DatasetSpec};
use std::sync::OnceLock;
use syslogdigest::offline::{learn, OfflineConfig};
use syslogdigest::{augment_batch, digest, group, DomainKnowledge, GroupingConfig};

fn setup() -> &'static (Dataset, DomainKnowledge) {
    static S: OnceLock<(Dataset, DomainKnowledge)> = OnceLock::new();
    S.get_or_init(|| {
        let d = Dataset::generate(DatasetSpec::preset_a().scaled(0.15));
        let k = learn(&d.configs, d.train(), &OfflineConfig::dataset_a());
        (d, k)
    })
}

fn bench_pipeline(c: &mut Criterion) {
    let (d, k) = setup();
    let day = d.online();
    let mut g = c.benchmark_group("online_pipeline");
    g.throughput(Throughput::Elements(day.len() as u64));
    g.bench_function("augment_batch", |b| b.iter(|| augment_batch(k, day)));
    let (batch, _) = augment_batch(k, day);
    g.bench_function("group_trc", |b| {
        b.iter(|| group(k, &batch, &GroupingConfig::default()))
    });
    g.bench_function("digest_end_to_end", |b| {
        b.iter(|| digest(k, day, &GroupingConfig::default()))
    });
    g.finish();
}

/// The tentpole sweep: end-to-end digest at 1/2/4/8 worker threads
/// (threads = 1 is the exact sequential code path).
fn bench_digest_threads(c: &mut Criterion) {
    let (d, k) = setup();
    let day = d.online();
    let mut g = c.benchmark_group("digest_threads");
    g.throughput(Throughput::Elements(day.len() as u64));
    for n in [1usize, 2, 4, 8] {
        let cfg = GroupingConfig {
            par: Parallelism::with_threads(n),
            ..GroupingConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            b.iter(|| digest(k, day, cfg))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline, bench_digest_threads
}
criterion_main!(benches);
