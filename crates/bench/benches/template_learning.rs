//! Throughput of offline template learning (§4.1.1) over realistic
//! message volumes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sd_netsim::{Dataset, DatasetSpec};
use sd_templates::{learn, learn_par, LearnerConfig};
use std::sync::OnceLock;

fn train() -> &'static [sd_model::RawMessage] {
    static DATA: OnceLock<Dataset> = OnceLock::new();
    DATA.get_or_init(|| Dataset::generate(DatasetSpec::preset_a().scaled(0.1)))
        .train()
}

fn bench_learning(c: &mut Criterion) {
    let msgs = train();
    let mut g = c.benchmark_group("template_learning");
    for n in [5_000usize, 20_000, msgs.len().min(60_000)] {
        let slice = &msgs[..n.min(msgs.len())];
        g.throughput(Throughput::Elements(slice.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(slice.len()), slice, |b, s| {
            b.iter(|| learn(s, &LearnerConfig::default()))
        });
    }
    g.finish();
}

/// Learning with the per-bucket trees built on 1/2/4/8 worker threads.
fn bench_learning_threads(c: &mut Criterion) {
    let msgs = train();
    let slice = &msgs[..msgs.len().min(60_000)];
    let mut g = c.benchmark_group("template_learning_threads");
    g.throughput(Throughput::Elements(slice.len() as u64));
    for n in [1usize, 2, 4, 8] {
        let par = sd_model::Parallelism::with_threads(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &par, |b, &par| {
            b.iter(|| learn_par(slice, &LearnerConfig::default(), par))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_learning, bench_learning_threads
}
criterion_main!(benches);
