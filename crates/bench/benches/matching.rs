//! Throughput of online template matching (the hottest per-message
//! operation of the online pipeline).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sd_netsim::{Dataset, DatasetSpec};
use sd_templates::{learn, LearnerConfig, TemplateSet};
use std::sync::OnceLock;

fn setup() -> &'static (Dataset, TemplateSet) {
    static DATA: OnceLock<(Dataset, TemplateSet)> = OnceLock::new();
    DATA.get_or_init(|| {
        let d = Dataset::generate(DatasetSpec::preset_a().scaled(0.1));
        let set = learn(d.train(), &LearnerConfig::default());
        (d, set)
    })
}

fn bench_matching(c: &mut Criterion) {
    let (d, set) = setup();
    let sample: Vec<&sd_model::RawMessage> = d.online().iter().take(20_000).collect();
    let mut g = c.benchmark_group("template_matching");
    g.throughput(Throughput::Elements(sample.len() as u64));
    g.bench_function("match_message", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for m in &sample {
                if set.match_message(m).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matching
}
criterion_main!(benches);
