//! Location learning and extraction costs: dictionary construction from
//! configs and per-message location parsing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sd_locations::{extract, LocationDictionary};
use sd_netsim::{Dataset, DatasetSpec};
use std::sync::OnceLock;

fn data() -> &'static Dataset {
    static D: OnceLock<Dataset> = OnceLock::new();
    D.get_or_init(|| Dataset::generate(DatasetSpec::preset_a().scaled(0.1)))
}

fn bench_locations(c: &mut Criterion) {
    let d = data();
    c.bench_function("dictionary_build", |b| {
        b.iter(|| LocationDictionary::build(&d.configs))
    });

    let dict = LocationDictionary::build(&d.configs);
    let sample: Vec<&sd_model::RawMessage> = d.train().iter().take(20_000).collect();
    let mut g = c.benchmark_group("location_extraction");
    g.throughput(Throughput::Elements(sample.len() as u64));
    g.bench_function("extract", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for m in &sample {
                if let Some(e) = extract(&dict, m) {
                    found += e.locations.len();
                }
            }
            found
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_locations
}
criterion_main!(benches);
