//! Cost of sliding-window transaction counting and rule extraction
//! (§4.1.4) as the window W grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sd_netsim::{Dataset, DatasetSpec};
use sd_rules::{mine, CoOccurrence, MineConfig, StreamItem};
use std::sync::OnceLock;
use syslogdigest::mining_stream;
use syslogdigest::offline::{learn, OfflineConfig};

fn stream() -> &'static [StreamItem] {
    static S: OnceLock<Vec<StreamItem>> = OnceLock::new();
    S.get_or_init(|| {
        let d = Dataset::generate(DatasetSpec::preset_a().scaled(0.1));
        let k = learn(&d.configs, d.train(), &OfflineConfig::dataset_a());
        mining_stream(&k, d.train())
    })
}

fn bench_counting(c: &mut Criterion) {
    let s = stream();
    let mut g = c.benchmark_group("cooccurrence_count");
    g.throughput(Throughput::Elements(s.len() as u64));
    for w in [30i64, 120, 300] {
        g.bench_with_input(BenchmarkId::new("window", w), &w, |b, &w| {
            b.iter(|| CoOccurrence::count(s, w))
        });
    }
    g.finish();

    let co = CoOccurrence::count(s, 120);
    c.bench_function("mine_rules", |b| {
        b.iter(|| mine(&co, &MineConfig::default()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_counting
}
criterion_main!(benches);
