//! Ablations for the design choices DESIGN.md calls out:
//! grouping-stage stacks (T vs T+R vs T+R+C), the template-tree pruning
//! threshold k, and the EWMA model vs a fixed-gap splitter. Each bench
//! also prints the quality-side number once (group counts / template
//! counts), so the time/quality trade-off is visible in one place.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sd_netsim::{Dataset, DatasetSpec};
use std::sync::OnceLock;
use syslogdigest::baselines::{ewma_group_count, fixed_gap_group_count};
use syslogdigest::offline::{learn, OfflineConfig};
use syslogdigest::{augment_batch, group, DomainKnowledge, GroupingConfig};

type Setup = (Dataset, DomainKnowledge, Vec<sd_model::SyslogPlus>);

fn setup() -> &'static Setup {
    static S: OnceLock<Setup> = OnceLock::new();
    S.get_or_init(|| {
        let d = Dataset::generate(DatasetSpec::preset_a().scaled(0.1));
        let k = learn(&d.configs, d.train(), &OfflineConfig::dataset_a());
        let (batch, _) = augment_batch(&k, d.online());
        (d, k, batch)
    })
}

fn bench_stage_ablation(c: &mut Criterion) {
    let (_, k, batch) = setup();
    let mut g = c.benchmark_group("grouping_stages");
    for (name, cfg) in [
        ("T", GroupingConfig::t_only()),
        ("T+R", GroupingConfig::t_r()),
        ("T+R+C", GroupingConfig::default()),
    ] {
        let groups = group(k, batch, &cfg).n_groups;
        println!(
            "[ablation] stages {name}: {groups} groups over {} messages",
            batch.len()
        );
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| group(k, batch, cfg))
        });
    }
    g.finish();
}

fn bench_pruning_k(c: &mut Criterion) {
    let (d, _, _) = setup();
    let slice = &d.train()[..d.train().len().min(30_000)];
    let mut g = c.benchmark_group("template_tree_k");
    for k in [3usize, 10, 30] {
        let cfg = sd_templates::LearnerConfig {
            k,
            max_per_code: 20_000,
        };
        let n = sd_templates::learn(slice, &cfg).len();
        println!("[ablation] k={k}: {n} templates learned");
        g.bench_with_input(BenchmarkId::from_parameter(k), &cfg, |b, cfg| {
            b.iter(|| sd_templates::learn(slice, cfg))
        });
    }
    g.finish();
}

fn bench_ewma_vs_fixed(c: &mut Criterion) {
    let (_, k, batch) = setup();
    let ew = ewma_group_count(k, batch);
    let fx = fixed_gap_group_count(batch, 300);
    println!("[ablation] temporal splitter: EWMA {ew} groups vs fixed-gap(300s) {fx} groups");
    let mut g = c.benchmark_group("temporal_splitter");
    g.bench_function("ewma", |b| b.iter(|| ewma_group_count(k, batch)));
    g.bench_function("fixed_gap_300s", |b| {
        b.iter(|| fixed_gap_group_count(batch, 300))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stage_ablation, bench_pruning_k, bench_ewma_vs_fixed
}
criterion_main!(benches);
