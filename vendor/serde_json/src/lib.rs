//! Offline vendored JSON encoding for the mini-serde value model.
//!
//! Provides the `to_string` / `to_string_pretty` / `from_str` surface the
//! workspace uses. Maps serialize as arrays of `[key, value]` pairs (see
//! the vendored `serde` crate), so the emitted JSON is self-consistent but
//! not byte-compatible with upstream `serde_json` for map-bearing types.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Error produced by encoding or decoding.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching upstream `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------- writer --

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest-roundtrip float formatting; keep a
                // fractional part so the reader sees a float.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser --

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a value tree.
pub fn parse(text: &str) -> Result<Value> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.map(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".to_owned()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".to_owned()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_owned()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".to_owned()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".to_owned()))?;
                            self.pos += 4;
                            // Surrogate pairs: only BMP escapes are emitted
                            // by our writer; decode pairs defensively.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.eat_lit("\\u") {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos..self.pos + 4)
                                        .ok_or_else(|| Error("truncated surrogate".to_owned()))?;
                                    let lo_hex = std::str::from_utf8(lo_hex)
                                        .map_err(|_| Error("bad surrogate".to_owned()))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| Error("bad surrogate".to_owned()))?;
                                    self.pos += 4;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error("invalid \\u escape".to_owned()))?);
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes: step back and take
                    // the full code point.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error("invalid utf-8 in string".to_owned()))?;
                    let c = s.chars().next().expect("nonempty");
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_owned()))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(from_str::<i64>(&to_string(&-42i64).unwrap()).unwrap(), -42);
        assert_eq!(from_str::<f64>(&to_string(&1.5f64).unwrap()).unwrap(), 1.5);
        assert_eq!(from_str::<f64>(&to_string(&5.0f64).unwrap()).unwrap(), 5.0);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        let s = "he said \"hi\"\n\tthere \u{1F600}".to_owned();
        assert_eq!(from_str::<String>(&to_string(&s).unwrap()).unwrap(), s);
    }

    #[test]
    fn container_roundtrip() {
        let v = vec![(1u32, "a".to_owned()), (2, "b".to_owned())];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u32, String)>>(&json).unwrap(), v);
        let mut m = std::collections::HashMap::new();
        m.insert((1u32, 2u32), 7u64);
        let back: std::collections::HashMap<(u32, u32), u64> =
            from_str(&to_string(&m).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_output_parses() {
        let v = vec![vec![1i64, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<i64>>>(&pretty).unwrap(), v);
    }
}
