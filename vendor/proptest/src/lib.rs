//! Offline vendored mini-proptest.
//!
//! Supports the subset of the `proptest` API the workspace's property
//! tests use: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), `prop_assert!` / `prop_assert_eq!`,
//! integer/float range strategies, tuple strategies, `prop::bool::ANY`,
//! `proptest::collection::vec`, `.prop_map`, and string strategies given
//! as regex-like literals (character classes + `{m,n}` repetition).
//!
//! Differences from upstream: failing cases are reported with their case
//! number and seed but are **not shrunk**, and generation streams differ.
//! Each test function's RNG is seeded from its name, so runs are
//! deterministic and repeatable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Test-case failure raised by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test random source.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed from a test name (stable across runs).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// `&str` literals are regex-like string strategies.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = regex_lite::parse(self);
        regex_lite::generate(&pattern, rng.rng())
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy with element strategy `element` and a length range.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng().gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop` namespace (`prop::bool::ANY`, ...).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The any-bool strategy value.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.0.gen_bool(0.5)
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Regex-lite pattern parsing and generation for string strategies.
mod regex_lite {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// One atom of the pattern with its repetition bounds.
    pub struct Piece {
        options: Vec<(char, char)>, // inclusive char ranges to choose among
        min: usize,
        max: usize,
    }

    /// Parse a regex-like literal: literal chars, `[...]` classes (with
    /// ranges and `\n`/`\t`/`\\` escapes), and `{n}` / `{m,n}` repetition.
    pub fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let options: Vec<(char, char)> = match chars[i] {
                '[' => {
                    let close = find_close(&chars, i);
                    let opts = parse_class(&chars[i + 1..close]);
                    i = close + 1;
                    opts
                }
                '\\' => {
                    let c = unescape(chars[i + 1]);
                    i += 2;
                    vec![(c, c)]
                }
                '.' => {
                    i += 1;
                    vec![(' ', '~')]
                }
                c => {
                    i += 1;
                    vec![(c, c)]
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i)
                    .unwrap_or_else(|| panic!("unclosed {{}} in pattern"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("repeat lower bound"),
                        hi.parse().expect("repeat upper bound"),
                    ),
                    None => {
                        let n = body.parse().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { options, min, max });
        }
        pieces
    }

    fn find_close(chars: &[char], open: usize) -> usize {
        let mut j = open + 1;
        while j < chars.len() {
            match chars[j] {
                '\\' => j += 2,
                ']' => return j,
                _ => j += 1,
            }
        }
        panic!("unclosed [] in pattern");
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_class(body: &[char]) -> Vec<(char, char)> {
        // Read one (possibly escaped) char, returning it and the next index.
        fn read_char(body: &[char], i: usize) -> (char, usize) {
            if body[i] == '\\' {
                (unescape(body[i + 1]), i + 2)
            } else {
                (body[i], i + 1)
            }
        }
        let mut opts = Vec::new();
        let mut i = 0;
        while i < body.len() {
            let (lo, next) = read_char(body, i);
            i = next;
            if i + 1 < body.len() && body[i] == '-' {
                let (hi, next) = read_char(body, i + 1);
                i = next;
                assert!(lo <= hi, "inverted class range in pattern");
                opts.push((lo, hi));
            } else {
                opts.push((lo, lo));
            }
        }
        opts
    }

    /// Generate one string from a parsed pattern.
    pub fn generate(pieces: &[Piece], rng: &mut StdRng) -> String {
        let mut out = String::new();
        for piece in pieces {
            let n = rng.gen_range(piece.min..=piece.max);
            for _ in 0..n {
                // Weight options by their width so wide ranges dominate,
                // matching intuition for classes like `[ -~]`.
                let total: u32 = piece
                    .options
                    .iter()
                    .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                    .sum();
                let mut pick = rng.gen_range(0..total);
                for &(lo, hi) in &piece.options {
                    let width = hi as u32 - lo as u32 + 1;
                    if pick < width {
                        out.push(char::from_u32(lo as u32 + pick).expect("in range"));
                        break;
                    }
                    pick -= width;
                }
            }
        }
        out
    }
}

/// Assert inside a proptest body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Define property tests. Each `fn name(arg in strategy, ...)` runs the
/// body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let ($($arg,)+) = {
                    let ($(ref $arg,)+) = strategies;
                    ($($crate::Strategy::generate($arg, &mut rng),)+)
                };
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}
