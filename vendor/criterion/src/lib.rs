//! Offline vendored mini-criterion.
//!
//! The build environment cannot fetch the real `criterion` crate, so this
//! provides the subset of its API the workspace's benches use: `Criterion`
//! with `sample_size`, `bench_function`, `benchmark_group`;
//! `BenchmarkGroup` with `throughput` / `bench_function` /
//! `bench_with_input` / `finish`; `Bencher::iter`; `Throughput`;
//! `BenchmarkId`; and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed over
//! `sample_size` samples whose per-sample iteration count targets ~20 ms of
//! work. Median per-iteration time (and derived element throughput) is
//! printed to stdout. There are no plots, no statistics beyond
//! median/min/max, and no baseline comparison — just honest wall-clock
//! numbers suitable for relative comparisons on one machine.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Units a benchmark processes per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (messages, items) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier within a group (function name + parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the sample's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, self.sample_size, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'c mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, tp: Option<Throughput>, mut f: F) {
    // Warm-up + calibration: find an iteration count giving ~20 ms samples.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
            break;
        }
        // Aim straight for the target from the observed rate, conservatively.
        let per_iter = b.elapsed.as_secs_f64() / iters as f64;
        let target = (0.02 / per_iter.max(1e-9)).ceil() as u64;
        iters = target.clamp(iters * 2, 1 << 20);
    }

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];

    let mut line = format!(
        "{id:<50} median {:>12}  [min {}, max {}]",
        fmt_time(median),
        fmt_time(min),
        fmt_time(max)
    );
    if let Some(tp) = tp {
        let (units, label) = match tp {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        line.push_str(&format!("  {:.3e} {}", units / median, label));
    }
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declare a benchmark group function, criterion-style (both forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running every declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default().sample_size(2);
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7u32));
        g.finish();
    }
}
